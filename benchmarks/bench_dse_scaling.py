"""DSE scaling benchmark: memoized engine + parallel explorer vs. seed-style sweep.

The rendered table contains wall-clock timings and is therefore not
byte-reproducible (the scenario is registered with ``deterministic=False``).

Thin shim over the ``dse_scaling`` scenario: the experiment itself (setup, table
rendering, qualitative shape checks) lives in :mod:`repro.scenarios.catalog` and
also runs via ``python -m repro run dse_scaling``.  This file only adapts it to
the pytest-benchmark harness and persists the table to
``benchmarks/results/dse_scaling.txt``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.report import save_result_text
from repro.scenarios import REGISTRY

RESULTS_DIR = Path(__file__).parent / "results"
SCENARIO = "dse_scaling"


def test_dse_scaling(benchmark):
    outcome = benchmark.pedantic(lambda: REGISTRY.run(SCENARIO), rounds=1, iterations=1)
    save_result_text(RESULTS_DIR / f"{SCENARIO}.txt", outcome.table)
    REGISTRY.verify(SCENARIO, outcome)
