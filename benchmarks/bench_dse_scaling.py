"""DSE scaling benchmark: memoized engine + parallel explorer vs. seed-style sweep.

Measures the reference grid sweep of the `bench_dse_ablation` design space
(TeMPO, core_height x core_width x num_wavelengths = 18 points, the paper's
(280x28) x (28x280) GEMM) in four configurations:

1. **seed-style** -- engine cache disabled: every point rebuilds the template
   architecture and re-runs every analysis pass, exactly like the seed explorer;
2. **cached (cold)** -- one fresh shared EvaluationCache: the sweep itself reuses
   the passes that each varied parameter leaves valid (structural rebinds instead
   of template rebuilds, memoized critical paths / floorplans / operand digests);
3. **cached (steady-state)** -- the same explorer sweeping again, as in any
   interactive or repeated exploration session: all design points are point-level
   cache hits;
4. **cached + parallel** -- the cold sweep on a `concurrent.futures` thread pool,
   asserting the bit-identical-ordering guarantee.

Timing protocol: each configuration is run ``ROUNDS`` times and the minimum is
reported (standard practice to suppress scheduler noise); cold configurations get
a *fresh* cache every round, steady-state reuses one explorer.
"""

from __future__ import annotations

import time

from repro.arch import ArchitectureConfig
from repro.arch.templates import build_tempo
from repro.explore import DesignSpace, DesignSpaceExplorer
from repro.utils.format import format_table

from benchmarks.helpers import paper_gemm, run_once, save_result

ROUNDS = 5

SPACE = DesignSpace(
    {"core_height": [2, 4, 8], "core_width": [2, 4, 8], "num_wavelengths": [1, 4]}
)
BASE = ArchitectureConfig(num_tiles=2, cores_per_tile=2)


def make_explorer(cache: bool, max_workers=None) -> DesignSpaceExplorer:
    return DesignSpaceExplorer(
        build_tempo,
        [paper_gemm()],
        base_config=BASE,
        cache=cache,
        max_workers=max_workers,
    )


def timed_sweep(explorer: DesignSpaceExplorer):
    start = time.perf_counter()
    result = explorer.explore(SPACE)
    return time.perf_counter() - start, result


def run_scaling():
    timings = {}

    seed_result = cold_result = warm_result = None
    seed_times, cold_times, warm_times, par_times = [], [], [], []
    for _ in range(ROUNDS):
        t, seed_result = timed_sweep(make_explorer(cache=False))
        seed_times.append(t)
        explorer = make_explorer(cache=True)
        t, cold_result = timed_sweep(explorer)
        cold_times.append(t)
        t, warm_result = timed_sweep(explorer)
        warm_times.append(t)
        t, _ = timed_sweep(make_explorer(cache=True, max_workers=4))
        par_times.append(t)
    timings["seed-style (cache off)"] = min(seed_times)
    timings["cached, cold"] = min(cold_times)
    timings["cached, steady-state"] = min(warm_times)
    timings["cached + parallel (4 workers), cold"] = min(par_times)

    # Determinism: parallel and serial sweeps yield identical DesignPoint records.
    par_result = make_explorer(cache=True, max_workers=4).explore(SPACE)
    assert par_result.points == cold_result.points

    stats = {
        stage: (s.hits, s.lookups) for stage, s in sorted(cold_result.cache_stats.items())
    }
    return timings, seed_result, cold_result, warm_result, par_result, stats


def render(timings, stats) -> str:
    base = timings["seed-style (cache off)"]
    rows = [
        (label, f"{seconds * 1e3:.2f}", f"{base / seconds:.2f}x")
        for label, seconds in timings.items()
    ]
    table = format_table(["configuration", "sweep wall-clock (ms)", "speedup"], rows)
    stat_lines = "\n".join(
        f"  {stage:16s} {hits}/{lookups} hits" for stage, (hits, lookups) in stats.items()
    )
    return (
        f"grid: {SPACE.size()} points (core_height x core_width x num_wavelengths), "
        "TeMPO, paper GEMM\n"
        f"{table}\n\ncold-sweep cache hit rates per pass:\n{stat_lines}"
    )


def test_dse_scaling(benchmark):
    timings, seed_result, cold_result, warm_result, par_result, stats = run_once(
        benchmark, run_scaling
    )
    save_result("dse_scaling", render(timings, stats))

    # All configurations agree on every recorded value.
    assert cold_result.points == seed_result.points
    assert warm_result.points == seed_result.points
    assert par_result.points == seed_result.points

    # The shared cache pays even within one cold sweep: structural rebinds
    # replace 16 of 18 template builds, and lambda-insensitive passes collapse.
    assert stats["build"] == (16, 18)
    assert stats["critical_path"][0] >= 9
    assert stats["floorplan"][0] >= 16

    t_seed = timings["seed-style (cache off)"]
    t_cold = timings["cached, cold"]
    t_warm = timings["cached, steady-state"]
    # Cold, the engine cache removes well over half the sweep; steady-state
    # (every realistic repeated / interactive sweep) clears 3x with a wide margin.
    # Thresholds are set below the locally measured ratios (~2.9x cold, ~80x
    # steady-state on an idle machine) to stay robust on loaded CI runners.
    assert t_cold < t_seed / 1.75, f"cold cached sweep only {t_seed / t_cold:.2f}x faster"
    assert t_warm < t_seed / 3.0, f"steady-state sweep only {t_seed / t_warm:.2f}x faster"
