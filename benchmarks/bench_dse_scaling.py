"""DSE scaling benchmarks: memoized engine, parallel explorer, execution backends.

Thin shims over the ``dse_scaling``, ``dse_large_grid`` and
``dse_backend_scaling`` scenarios: the experiments themselves (setup, table
rendering, qualitative shape checks) live in :mod:`repro.scenarios.catalog` and
also run via ``python -m repro run <name>``.  This file only adapts them to the
pytest-benchmark harness and persists the tables to ``benchmarks/results/``.

``dse_scaling`` measures what the shared pass cache buys within one process;
``dse_backend_scaling`` measures what the process backend buys *across* GILs on
the 192-point ``dse_large_grid`` sweep (``REPRO_BACKEND_JOBS`` sizes the worker
pools).  The timing tables are wall-clock and therefore not byte-reproducible
(both scenarios are registered with ``deterministic=False``); the large-grid
table itself is byte-identical under every backend.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.report import save_result_text
from repro.scenarios import REGISTRY

RESULTS_DIR = Path(__file__).parent / "results"


def _bench_scenario(benchmark, name: str, **kwargs):
    outcome = benchmark.pedantic(
        lambda: REGISTRY.run(name, **kwargs), rounds=1, iterations=1
    )
    save_result_text(RESULTS_DIR / f"{name}.txt", outcome.table)
    REGISTRY.verify(name, outcome)
    return outcome


def test_dse_scaling(benchmark):
    _bench_scenario(benchmark, "dse_scaling")


def test_dse_large_grid(benchmark):
    _bench_scenario(benchmark, "dse_large_grid")


def test_dse_backend_scaling(benchmark):
    outcome = _bench_scenario(benchmark, "dse_backend_scaling")
    timings = outcome.metrics["timings_ms"]
    print(
        f"\nbackend wall-clock on dse_large_grid ({outcome.metrics['jobs']} jobs): "
        + ", ".join(f"{b}={t:.1f} ms" for b, t in timings.items())
        + f"; processes are {timings['threads'] / timings['processes']:.2f}x vs threads"
    )
