"""Extension benchmark: automated design-space exploration + modeling ablations.

Two studies beyond the paper's figures, exercising the design choices DESIGN.md
calls out:

1. a small automated DSE over TeMPO (core size x wavelengths) with Pareto-front
   extraction over energy / latency / area -- the paper's stated future extension;
2. an ablation of the modeling features themselves (layout awareness, data
   awareness, idle-lane gating) on one design point, quantifying how much each
   feature changes the reported numbers.
"""

from __future__ import annotations

import numpy as np

from repro import SimulationConfig, Simulator
from repro.arch import ArchitectureConfig
from repro.arch.templates import build_scatter, build_tempo
from repro.dataflow.gemm import GEMMWorkload
from repro.explore import DesignSpace, DesignSpaceExplorer
from repro.utils.format import format_table

from benchmarks.helpers import paper_gemm, run_once, save_result


def run_dse():
    explorer = DesignSpaceExplorer(
        build_tempo,
        [paper_gemm()],
        base_config=ArchitectureConfig(num_tiles=2, cores_per_tile=2),
    )
    space = DesignSpace({"core_height": [2, 4, 8], "core_width": [2, 4, 8],
                         "num_wavelengths": [1, 4]})
    result = explorer.explore(space)
    front = result.pareto_front(("energy_uj", "latency_ns", "area_mm2"))
    rows = [
        (", ".join(f"{k}={v}" for k, v in sorted(p.parameters.items())),
         f"{p.energy_uj:.3f}", f"{p.latency_ns:.0f}", f"{p.area_mm2:.3f}",
         "yes" if p in front else "no")
        for p in result.points
    ]
    table = format_table(
        ["design point", "energy (uJ)", "latency (ns)", "area (mm2)", "pareto"], rows
    )
    return result, front, table


def run_ablation():
    rng = np.random.default_rng(5)
    workload = GEMMWorkload(
        "ablation_layer", m=512, k=16, n=16,
        weight_values=rng.normal(0, 0.25, size=(16, 16)),
        input_values=rng.normal(0, 0.5, size=(512, 16)),
    )
    settings = {
        "full model": SimulationConfig(),
        "no layout awareness": SimulationConfig(use_layout_aware_area=False),
        "no data awareness": SimulationConfig(data_aware=False),
        "no idle-lane gating": SimulationConfig(include_idle_gating=False),
        "no memory model": SimulationConfig(include_memory=False),
    }
    # Two carriers so every ablation has a visible effect: SCATTER exercises data
    # awareness (weight-dependent phase-shifter power), TeMPO exercises layout
    # awareness (its dot-product node is a floorplanned composite block).
    rows = []
    metrics = {}
    for label, config in settings.items():
        scatter_result = Simulator(build_scatter(), config).run(workload)
        tempo_result = Simulator(build_tempo(), config).run(workload)
        metrics[label] = {
            "energy_uj": scatter_result.total_energy_uj,
            "area_mm2": scatter_result.total_area_mm2,
            "tempo_area_mm2": tempo_result.total_area_mm2,
        }
        rows.append(
            (label, f"{scatter_result.total_energy_uj:.3f}",
             f"{scatter_result.total_area_mm2:.3f}",
             f"{tempo_result.total_area_mm2:.3f}",
             f"{scatter_result.total_time_ns:.0f}")
        )
    table = format_table(
        ["configuration", "SCATTER energy (uJ)", "SCATTER area (mm2)",
         "TeMPO area (mm2)", "SCATTER latency (ns)"],
        rows,
    )
    return metrics, table


def run_all():
    dse_result, front, dse_table = run_dse()
    ablation_metrics, ablation_table = run_ablation()
    text = "\n".join(
        [
            "-- design-space exploration (TeMPO, Pareto over energy/latency/area) --",
            dse_table,
            "",
            "-- modeling-feature ablation (SCATTER) --",
            ablation_table,
        ]
    )
    return dse_result, front, ablation_metrics, text


def test_dse_and_ablation(benchmark):
    dse_result, front, ablation, text = run_once(benchmark, run_all)
    save_result("dse_ablation", text)

    # DSE: the grid is fully evaluated and the Pareto front is a proper subset that
    # contains the single-objective optima.
    assert len(dse_result) == 18
    assert 1 <= len(front) < len(dse_result)
    for objective in ("energy_uj", "latency_ns", "area_mm2"):
        best = dse_result.best(objective)
        assert any(p.parameters == best.parameters for p in front)

    # Ablations: removing each modeling feature moves the reported numbers in the
    # documented direction.
    full = ablation["full model"]
    assert ablation["no layout awareness"]["tempo_area_mm2"] < full["tempo_area_mm2"]
    assert ablation["no data awareness"]["energy_uj"] > full["energy_uj"]
    assert ablation["no idle-lane gating"]["energy_uj"] >= full["energy_uj"]
    assert ablation["no memory model"]["energy_uj"] < full["energy_uj"]
    assert ablation["no memory model"]["area_mm2"] < full["area_mm2"]
