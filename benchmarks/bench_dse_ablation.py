"""Extension benchmark: automated design-space exploration + modeling ablations.

Thin shim over the ``dse_ablation`` scenario: the experiment itself (setup, table
rendering, qualitative shape checks) lives in :mod:`repro.scenarios.catalog` and
also runs via ``python -m repro run dse_ablation``.  This file only adapts it to
the pytest-benchmark harness and persists the table to
``benchmarks/results/dse_ablation.txt``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.report import save_result_text
from repro.scenarios import REGISTRY

RESULTS_DIR = Path(__file__).parent / "results"
SCENARIO = "dse_ablation"


def test_dse_and_ablation(benchmark):
    outcome = benchmark.pedantic(lambda: REGISTRY.run(SCENARIO), rounds=1, iterations=1)
    save_result_text(RESULTS_DIR / f"{SCENARIO}.txt", outcome.table)
    REGISTRY.verify(SCENARIO, outcome)
