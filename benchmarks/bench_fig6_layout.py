"""Fig. 6: signal-flow-aware floorplan vs. naive footprint sum vs. real layout.

The paper's example node measures 4416 um^2 in the real layout; summing device
footprints gives only 1270.5 um^2, while the row-based floorplanner estimates
4531.5 um^2.  We regenerate the three numbers for the TeMPO dot-product node.
"""

from __future__ import annotations

from repro.arch.templates import build_tempo
from repro.arch.templates.tempo import tempo_node_netlist
from repro.layout import SignalFlowFloorplanner, naive_footprint_sum_um2
from repro.utils.format import format_table

from benchmarks.helpers import run_once, save_result

PAPER_NAIVE_UM2 = 1270.5
PAPER_REAL_UM2 = 4416.0
PAPER_ESTIMATE_UM2 = 4531.5


def generate_fig6():
    arch = build_tempo()
    node = tempo_node_netlist()
    naive = naive_footprint_sum_um2(node, arch.library)
    planner = SignalFlowFloorplanner(
        device_spacing_um=arch.node_device_spacing_um,
        boundary_um=arch.node_boundary_um,
    )
    plan = planner.plan(node, arch.library)
    rows = [
        ("naive footprint sum", naive, PAPER_NAIVE_UM2),
        ("floorplan estimate", plan.area_um2, PAPER_ESTIMATE_UM2),
        ("real layout (reference)", float("nan"), PAPER_REAL_UM2),
    ]
    table = format_table(["method", "measured (um2)", "paper (um2)"], rows)
    return {"naive": naive, "planned": plan.area_um2, "plan": plan, "table": table}


def test_fig6_layout_estimation(benchmark):
    result = run_once(benchmark, generate_fig6)
    save_result("fig6_layout", result["table"])
    naive, planned = result["naive"], result["planned"]
    # Shape: the naive sum underestimates the real layout by >2x; the floorplan
    # estimate lands within 25% of the real layout area.
    assert PAPER_REAL_UM2 / naive > 2.0
    assert abs(planned - PAPER_REAL_UM2) / PAPER_REAL_UM2 < 0.25
    # The floorplan bounding box is fully packed with the node's five devices.
    assert len(result["plan"].placements) == 5
