"""Fig. 6: signal-flow-aware floorplan vs. naive footprint sum vs. real layout.

Thin shim over the ``fig6_layout`` scenario: the experiment itself (setup, table
rendering, qualitative shape checks) lives in :mod:`repro.scenarios.catalog` and
also runs via ``python -m repro run fig6_layout``.  This file only adapts it to
the pytest-benchmark harness and persists the table to
``benchmarks/results/fig6_layout.txt``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.report import save_result_text
from repro.scenarios import REGISTRY

RESULTS_DIR = Path(__file__).parent / "results"
SCENARIO = "fig6_layout"


def test_fig6_layout_estimation(benchmark):
    outcome = benchmark.pedantic(lambda: REGISTRY.run(SCENARIO), rounds=1, iterations=1)
    save_result_text(RESULTS_DIR / f"{SCENARIO}.txt", outcome.table)
    REGISTRY.verify(SCENARIO, outcome)
