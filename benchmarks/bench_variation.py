"""Variation-aware Monte Carlo accuracy studies (repro.variation extension).

Thin shims over the ``variation_robustness``, ``accuracy_vs_precision`` and
``accuracy_energy_pareto`` scenarios: the experiments (noise corners, Monte
Carlo sampling, accuracy-energy DSE) live in :mod:`repro.scenarios.catalog`
and also run via ``python -m repro run <name>``.  These files only adapt them
to the pytest-benchmark harness and persist the tables to
``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.report import save_result_text
from repro.scenarios import REGISTRY

RESULTS_DIR = Path(__file__).parent / "results"

SCENARIOS = ("variation_robustness", "accuracy_vs_precision", "accuracy_energy_pareto")


@pytest.mark.parametrize("name", SCENARIOS)
def test_variation_scenario(benchmark, name):
    outcome = benchmark.pedantic(lambda: REGISTRY.run(name), rounds=1, iterations=1)
    save_result_text(RESULTS_DIR / f"{name}.txt", outcome.table)
    REGISTRY.verify(name, outcome)
