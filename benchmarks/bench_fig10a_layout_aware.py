"""Fig. 10(a): TeMPO area with and without layout awareness.

Paper reference: the layout-unaware (footprint-sum) estimate is 0.63 mm^2 while the
layout-aware estimate is 0.84 mm^2 -- the naive method underestimates the node area
by ~72% and the whole accelerator by ~25%.
"""

from __future__ import annotations

from repro import SimulationConfig
from repro.arch.templates import build_tempo
from repro.core.area import AreaAnalyzer
from repro.core.report import render_breakdown

from benchmarks.helpers import run_once, save_result

PAPER_AWARE_MM2 = 0.84
PAPER_UNAWARE_MM2 = 0.63


def run_fig10a():
    arch = build_tempo()
    analyzer = AreaAnalyzer(SimulationConfig(include_memory=False))
    aware = analyzer.analyze(arch, layout_aware=True)
    unaware = analyzer.analyze(arch, layout_aware=False)
    text = "\n".join(
        [
            "-- layout-aware breakdown (mm2) --",
            render_breakdown(aware.breakdown_mm2, unit="mm2"),
            "",
            "-- layout-unaware breakdown (mm2) --",
            render_breakdown(unaware.breakdown_mm2, unit="mm2"),
            "",
            f"layout-aware total  : {aware.photonic_core_area_mm2:.3f} mm2 "
            f"(paper {PAPER_AWARE_MM2})",
            f"layout-unaware total: {unaware.photonic_core_area_mm2:.3f} mm2 "
            f"(paper {PAPER_UNAWARE_MM2})",
            f"node area: floorplanned {aware.node_area_um2:.1f} um2 vs naive "
            f"{aware.node_area_naive_um2:.1f} um2",
        ]
    )
    return aware, unaware, text


def test_fig10a_layout_awareness(benchmark):
    aware, unaware, text = run_once(benchmark, run_fig10a)
    save_result("fig10a_layout_aware", text)

    ratio = unaware.photonic_core_area_mm2 / aware.photonic_core_area_mm2
    paper_ratio = PAPER_UNAWARE_MM2 / PAPER_AWARE_MM2  # 0.75
    # The unaware estimate must be a clear underestimate, close to the paper's gap.
    assert ratio < 0.92
    assert abs(ratio - paper_ratio) < 0.2
    # The node-level gap is the root cause (naive sum misses routing whitespace).
    assert aware.node_area_um2 / aware.node_area_naive_um2 > 2.0
