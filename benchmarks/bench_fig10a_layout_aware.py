"""Fig. 10(a): TeMPO area with and without layout awareness.

Thin shim over the ``fig10a_layout_aware`` scenario: the experiment itself (setup, table
rendering, qualitative shape checks) lives in :mod:`repro.scenarios.catalog` and
also runs via ``python -m repro run fig10a_layout_aware``.  This file only adapts it to
the pytest-benchmark harness and persists the table to
``benchmarks/results/fig10a_layout_aware.txt``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.report import save_result_text
from repro.scenarios import REGISTRY

RESULTS_DIR = Path(__file__).parent / "results"
SCENARIO = "fig10a_layout_aware"


def test_fig10a_layout_awareness(benchmark):
    outcome = benchmark.pedantic(lambda: REGISTRY.run(SCENARIO), rounds=1, iterations=1)
    save_result_text(RESULTS_DIR / f"{SCENARIO}.txt", outcome.table)
    REGISTRY.verify(SCENARIO, outcome)
