"""Fig. 11: per-layer energy of VGG-8 (CIFAR-10) under heterogeneous mapping.

Convolutional layers are mapped to SCATTER and the two linear layers to a Clements
MZI mesh; both sub-architectures share the same on-chip memory hierarchy.  The
benchmark regenerates the per-layer energy breakdown (the bars of Fig. 11) and
checks the structural facts: 8 layers, convs on SCATTER, linears on the MZI mesh,
and convolutions dominating the total energy.

Set ``REPRO_VGG_WIDTH`` (default 0.25) to scale the channel widths; the layer
structure and mapping are identical at any width.
"""

from __future__ import annotations

import os

import numpy as np

from repro import Simulator
from repro.arch.architecture import HeterogeneousArchitecture
from repro.arch.templates import build_mzi_mesh, build_scatter
from repro.onn import ONNConversionConfig, convert_to_onn, extract_workloads
from repro.onn.models import build_vgg8_cifar10
from repro.utils.format import format_table

from benchmarks.helpers import run_once, save_result


def run_fig11():
    width = float(os.environ.get("REPRO_VGG_WIDTH", "0.25"))
    model = build_vgg8_cifar10(width_multiplier=width, input_size=32)
    convert_to_onn(
        model,
        ONNConversionConfig(
            ptc_assignment={"conv": "scatter", "linear": "mzi_mesh"}, prune_ratio=0.3
        ),
    )
    image = np.random.default_rng(0).normal(size=(3, 32, 32))
    workloads = extract_workloads(model, image)

    system = HeterogeneousArchitecture(name="vgg8_hybrid")
    system.add("scatter", build_scatter())
    system.add("mzi_mesh", build_mzi_mesh())
    sim = Simulator(system, type_rules={"conv": "scatter", "linear": "mzi_mesh"})
    result = sim.run(workloads)

    rows = []
    for layer in result.layers:
        breakdown = layer.energy.breakdown_pj
        rows.append(
            (
                layer.name,
                layer.arch_name,
                f"{layer.workload.num_macs}",
                f"{layer.total_energy_pj / 1e6:.4f}",
                f"{breakdown.get('PS', 0.0) / 1e6:.4f}",
                f"{breakdown.get('DAC', 0.0) / 1e6:.4f}",
                f"{breakdown.get('ADC', 0.0) / 1e6:.4f}",
                f"{breakdown.get('DM', 0.0) / 1e6:.4f}",
            )
        )
    table = format_table(
        ["layer", "sub-arch", "MACs", "total (uJ)", "PS (uJ)", "DAC (uJ)", "ADC (uJ)", "DM (uJ)"],
        rows,
    )
    return result, table


def test_fig11_heterogeneous_mapping(benchmark):
    result, table = run_once(benchmark, run_fig11)
    save_result("fig11_heterogeneous", table)

    assert len(result.layers) == 8
    conv_layers = result.layers_on("scatter")
    linear_layers = result.layers_on("mzi_mesh")
    assert len(conv_layers) == 6
    assert len(linear_layers) == 2
    # Convolutions carry the bulk of VGG-8's compute and therefore its energy.
    conv_energy = sum(l.total_energy_pj for l in conv_layers)
    linear_energy = sum(l.total_energy_pj for l in linear_layers)
    assert conv_energy > linear_energy
    # Both sub-architectures share one memory hierarchy (a single report).
    assert result.memory is not None
    assert set(result.area_reports) == {"scatter", "mzi_mesh"}
