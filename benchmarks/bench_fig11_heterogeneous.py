"""Fig. 11: per-layer energy of VGG-8 (CIFAR-10) under heterogeneous mapping.

Set ``REPRO_VGG_WIDTH`` (default 0.25) to scale the channel widths.

Thin shim over the ``fig11_heterogeneous`` scenario: the experiment itself (setup, table
rendering, qualitative shape checks) lives in :mod:`repro.scenarios.catalog` and
also runs via ``python -m repro run fig11_heterogeneous``.  This file only adapts it to
the pytest-benchmark harness and persists the table to
``benchmarks/results/fig11_heterogeneous.txt``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.report import save_result_text
from repro.scenarios import REGISTRY

RESULTS_DIR = Path(__file__).parent / "results"
SCENARIO = "fig11_heterogeneous"


def test_fig11_heterogeneous_mapping(benchmark):
    outcome = benchmark.pedantic(lambda: REGISTRY.run(SCENARIO), rounds=1, iterations=1)
    save_result_text(RESULTS_DIR / f"{SCENARIO}.txt", outcome.table)
    REGISTRY.verify(SCENARIO, outcome)
