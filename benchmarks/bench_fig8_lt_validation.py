"""Fig. 8: BERT-Base (single 224x224 ImageNet image) on Lightening-Transformer.

Set ``REPRO_BERT_LAYERS`` (default 4) to scale the number of simulated encoder
blocks; totals are extrapolated to 12 layers either way.

Thin shim over the ``fig8_lt_validation`` scenario: the experiment itself (setup, table
rendering, qualitative shape checks) lives in :mod:`repro.scenarios.catalog` and
also runs via ``python -m repro run fig8_lt_validation``.  This file only adapts it to
the pytest-benchmark harness and persists the table to
``benchmarks/results/fig8_lt_validation.txt``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.report import save_result_text
from repro.scenarios import REGISTRY

RESULTS_DIR = Path(__file__).parent / "results"
SCENARIO = "fig8_lt_validation"


def test_fig8_lightening_transformer_validation(benchmark):
    outcome = benchmark.pedantic(lambda: REGISTRY.run(SCENARIO), rounds=1, iterations=1)
    save_result_text(RESULTS_DIR / f"{SCENARIO}.txt", outcome.table)
    REGISTRY.verify(SCENARIO, outcome)
