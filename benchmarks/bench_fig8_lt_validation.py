"""Fig. 8: BERT-Base (single 224x224 ImageNet image) on Lightening-Transformer.

Paper settings: 4 tiles, 2 cores per tile, 12x12 cores, 12 wavelengths at 5 GHz.
Reference values: chip area 59.83 mm^2 (SimPhony) vs 60.30 mm^2 (LT); average power
20.77 W (SimPhony) vs 14.75 W (LT).  We regenerate the area and power breakdowns for
the BERT-Base-class encoder over image patches.

The full 12-layer extraction runs a real numpy forward pass (~17 GMACs); set
``REPRO_BERT_LAYERS`` to a smaller value to run a scaled-down version -- per-layer
costs are identical across encoder blocks, so the totals are extrapolated to 12
layers either way.
"""

from __future__ import annotations

import os

import numpy as np

from repro import SimulationConfig, Simulator
from repro.arch.templates import build_lightening_transformer
from repro.core.report import render_breakdown, scale_breakdown
from repro.onn import ONNConversionConfig, convert_to_onn, extract_workloads
from repro.onn.models import build_bert_base_image

from benchmarks.helpers import run_once, save_result

PAPER_AREA_MM2 = {"simphony": 59.83, "reference": 60.30}
PAPER_POWER_W = {"simphony": 20.77, "reference": 14.75}
FULL_LAYERS = 12


def run_fig8():
    num_layers = int(os.environ.get("REPRO_BERT_LAYERS", "4"))
    num_layers = max(1, min(num_layers, FULL_LAYERS))
    model = build_bert_base_image(image_size=224, num_layers=num_layers)
    convert_to_onn(model, ONNConversionConfig(default_ptc="lightening_transformer"))
    image = np.random.default_rng(0).normal(size=(3, 224, 224))
    workloads = extract_workloads(model, image)

    arch = build_lightening_transformer()
    sim = Simulator(arch, SimulationConfig(include_memory=True))
    result = sim.run(workloads)

    # Per-block costs are identical; extrapolate energy/time to the full 12 layers.
    scale = FULL_LAYERS / num_layers
    energy = scale_breakdown(result.energy_breakdown_pj, scale)
    time_ns = result.total_time_ns * scale
    power_w = {key: value / time_ns / 1e3 for key, value in energy.items()}

    area = result.area_breakdown_mm2
    text = "\n".join(
        [
            f"encoder blocks simulated: {num_layers} (extrapolated to {FULL_LAYERS})",
            "",
            "-- area breakdown (mm2) --",
            render_breakdown(area, unit="mm2"),
            f"paper reference: SimPhony {PAPER_AREA_MM2['simphony']} mm2, "
            f"LT {PAPER_AREA_MM2['reference']} mm2",
            "",
            "-- power breakdown (W) --",
            render_breakdown(power_w, unit="W"),
            f"paper reference: SimPhony {PAPER_POWER_W['simphony']} W, "
            f"LT {PAPER_POWER_W['reference']} W",
        ]
    )
    return result, area, power_w, text


def test_fig8_lightening_transformer_validation(benchmark):
    result, area, power_w, text = run_once(benchmark, run_fig8)
    save_result("fig8_lt_validation", text)

    total_area = sum(area.values())
    total_power = sum(power_w.values())
    # Order-of-magnitude agreement with the reference chip (59.83 / 60.30 mm^2 and
    # 20.77 / 14.75 W): tens of mm^2 of chip area and watts-range power, with
    # converters and memory among the dominant contributors.
    assert 15.0 < total_area < 180.0
    assert 3.0 < total_power < 150.0
    for label in ("DAC", "ADC", "MZM", "Laser", "DM"):
        assert label in power_w, label
    assert "Mem" in area
    # Converters are a first-order power contributor, as in the reference breakdown.
    converters = power_w["DAC"] + power_w["ADC"]
    assert converters > 0.10 * total_power
    top_power = sorted(power_w, key=power_w.get)[-3:]
    assert set(top_power) & {"DAC", "ADC", "DM", "Laser"}
