"""Table I: PTC taxonomy -- operand ranges, reconfiguration speed, #forwards.

Thin shim over the ``table1_taxonomy`` scenario: the experiment itself (setup, table
rendering, qualitative shape checks) lives in :mod:`repro.scenarios.catalog` and
also runs via ``python -m repro run table1_taxonomy``.  This file only adapts it to
the pytest-benchmark harness and persists the table to
``benchmarks/results/table1_taxonomy.txt``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.report import save_result_text
from repro.scenarios import REGISTRY

RESULTS_DIR = Path(__file__).parent / "results"
SCENARIO = "table1_taxonomy"


def test_table1_taxonomy(benchmark):
    outcome = benchmark.pedantic(lambda: REGISTRY.run(SCENARIO), rounds=1, iterations=1)
    save_result_text(RESULTS_DIR / f"{SCENARIO}.txt", outcome.table)
    REGISTRY.verify(SCENARIO, outcome)
