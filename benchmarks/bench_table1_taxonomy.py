"""Table I: PTC taxonomy -- operand ranges, reconfiguration speed, #forwards.

Regenerates the taxonomy table from the architecture templates themselves: each
template's taxonomy entry and the latency multiplier the dataflow mapper actually
applies must agree with the paper's rows.
"""

from __future__ import annotations

from repro.arch.taxonomy import TABLE_I
from repro.arch.templates import (
    build_mrr_weight_bank,
    build_mzi_mesh,
    build_pcm_crossbar,
    build_tempo,
    build_butterfly_mesh,
)
from repro.dataflow.gemm import GEMMWorkload
from repro.dataflow.mapping import DataflowMapper
from repro.utils.format import format_table

from benchmarks.helpers import run_once, save_result

PAPER_ROWS = {
    "MZI Array": ("R", "Dynamic", "R", "Static", "Direct", 1),
    "Butterfly Mesh": ("R", "Dynamic", "C", "Static", "Pos-Neg", 1),
    "MRR Array": ("R+", "Dynamic", "R", "Dynamic", "Direct", 2),
    "PCM Crossbar": ("R+", "Dynamic", "R+", "Static", "Direct", 4),
    "TeMPO": ("R", "Dynamic", "R", "Dynamic", "Direct", 1),
}

BUILDERS = {
    "MZI Array": build_mzi_mesh,
    "Butterfly Mesh": build_butterfly_mesh,
    "MRR Array": build_mrr_weight_bank,
    "PCM Crossbar": build_pcm_crossbar,
    "TeMPO": build_tempo,
}


def generate_table1():
    mapper = DataflowMapper()
    probe = GEMMWorkload("probe", m=64, k=64, n=64)
    rows = []
    measured_forwards = {}
    for key, entry in TABLE_I.items():
        rows.append(
            (
                entry.name,
                entry.operand_a_range.value,
                entry.operand_a_reconfig.value.capitalize(),
                entry.operand_b_range.value,
                entry.operand_b_reconfig.value.capitalize(),
                entry.forward_method,
                entry.num_forwards,
            )
        )
        arch = BUILDERS[entry.name]()
        measured_forwards[entry.name] = mapper.map(probe, arch).forwards
    table = format_table(
        ["design", "A range", "A reconfig", "B range", "B reconfig", "method", "#forwards"],
        rows,
    )
    return table, measured_forwards


def test_table1_taxonomy(benchmark):
    table, measured_forwards = run_once(benchmark, generate_table1)
    save_result("table1_taxonomy", table)
    for name, (_, _, _, _, _, forwards) in PAPER_ROWS.items():
        assert measured_forwards[name] == forwards, name
    # The two weight-static designs must carry a reconfiguration penalty.
    assert build_mzi_mesh().weight_reconfig_cycles() > 0
    assert build_pcm_crossbar().weight_reconfig_cycles() > 0
    assert build_tempo().weight_reconfig_cycles() == 0
