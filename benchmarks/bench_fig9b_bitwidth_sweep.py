"""Fig. 9(b): energy vs. input/weight/output bitwidth on TeMPO, (280x28)x(28x280) GEMM.

Thin shim over the ``fig9b_bitwidth_sweep`` scenario: the experiment itself (setup, table
rendering, qualitative shape checks) lives in :mod:`repro.scenarios.catalog` and
also runs via ``python -m repro run fig9b_bitwidth_sweep``.  This file only adapts it to
the pytest-benchmark harness and persists the table to
``benchmarks/results/fig9b_bitwidth_sweep.txt``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.report import save_result_text
from repro.scenarios import REGISTRY

RESULTS_DIR = Path(__file__).parent / "results"
SCENARIO = "fig9b_bitwidth_sweep"


def test_fig9b_bitwidth_sweep(benchmark):
    outcome = benchmark.pedantic(lambda: REGISTRY.run(SCENARIO), rounds=1, iterations=1)
    save_result_text(RESULTS_DIR / f"{SCENARIO}.txt", outcome.table)
    REGISTRY.verify(SCENARIO, outcome)
