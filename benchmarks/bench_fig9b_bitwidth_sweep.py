"""Fig. 9(b): energy vs. input/weight/output bitwidth on TeMPO, (280x28)x(28x280) GEMM.

Converter (DAC/ADC) power is exponential in resolution and the laser power doubles
per extra input bit, so total energy rises steeply with bitwidth -- the knob users
sweep to find the efficiency sweet spot.
"""

from __future__ import annotations

from repro import Simulator
from repro.arch import ArchitectureConfig
from repro.arch.templates import build_tempo
from repro.utils.format import format_table

from benchmarks.helpers import paper_gemm, run_once, save_result

BITWIDTHS = (2, 3, 4, 5, 6, 7, 8)
SERIES_COMPONENTS = ("Laser", "PS", "PD", "MZM", "ADC", "DAC", "Integrator", "DM")


def run_bitwidth_sweep():
    series = {}
    for bits in BITWIDTHS:
        arch = build_tempo(
            config=ArchitectureConfig(input_bits=bits, weight_bits=bits, output_bits=bits),
            name=f"tempo_b{bits}",
        )
        result = Simulator(arch).run(paper_gemm(bits=bits))
        breakdown = result.energy_breakdown_pj
        series[bits] = {
            "total_uj": result.total_energy_uj,
            **{label: breakdown.get(label, 0.0) / 1e6 for label in SERIES_COMPONENTS},
        }
    rows = [
        (bits, f"{data['total_uj']:.3f}")
        + tuple(f"{data[label]:.4f}" for label in SERIES_COMPONENTS)
        for bits, data in series.items()
    ]
    table = format_table(
        ["bitwidth", "total (uJ)"] + [f"{c} (uJ)" for c in SERIES_COMPONENTS], rows
    )
    return series, table


def test_fig9b_bitwidth_sweep(benchmark):
    series, table = run_once(benchmark, run_bitwidth_sweep)
    save_result("fig9b_bitwidth_sweep", table)

    totals = [series[b]["total_uj"] for b in BITWIDTHS]
    # Energy increases monotonically with bitwidth and grows super-linearly overall.
    assert all(later > earlier for earlier, later in zip(totals, totals[1:]))
    assert totals[-1] / totals[0] > 2.0
    # Converters drive the increase.
    assert series[8]["DAC"] > series[2]["DAC"]
    assert series[8]["ADC"] > series[2]["ADC"]
    # Laser power doubles per extra input bit, so it also rises sharply.
    assert series[8]["Laser"] > 4.0 * series[2]["Laser"]
