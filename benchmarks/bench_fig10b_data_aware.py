"""Fig. 10(b): SCATTER energy with and without data awareness.

Paper reference (weight-static SCATTER PTC, real weight values): total PS+MZM energy
falls from 69 (data-unaware) to 37 (data-aware, analytical power model) to 36
(data-aware, rigorous simulated/measured power model); the phase-shifter energy
alone drops 0.0537 uJ -> 0.0215 uJ -> 0.0209 uJ, a ~60% reduction.

The three fidelity levels map to the three response models of Fig. 5:
ConstantPower (nominal P_pi), the analytical arccos phase model, and a tabulated
"measured" curve that is slightly below the analytical one.
"""

from __future__ import annotations

import numpy as np

from repro import SimulationConfig, Simulator
from repro.arch.templates import build_scatter
from repro.devices.response import QuadraticPhaseShifterResponse, TabulatedResponse
from repro.dataflow.gemm import GEMMWorkload
from repro.utils.format import format_table

from benchmarks.helpers import run_once, save_result

PAPER_PS_UJ = {"data_unaware": 0.0537, "analytical": 0.0215, "measured": 0.0209}


def _measured_phase_shifter_curve(p_pi_mw: float) -> TabulatedResponse:
    """A 'chip-measured' heater curve: slightly more efficient than the ideal model.

    The curve is characterized over the full signed weight range so negative weight
    values interpolate correctly (the analytical model folds the sign internally).
    """
    settings = np.linspace(-1.0, 1.0, 33)
    analytical = QuadraticPhaseShifterResponse(p_pi_mw)
    powers = np.array([analytical.power_mw(s) for s in settings]) * 0.97
    return TabulatedResponse(settings, powers)


def _scatter_workload() -> GEMMWorkload:
    rng = np.random.default_rng(7)
    return GEMMWorkload(
        "scatter_conv_layer",
        m=1024,
        k=16,
        n=16,
        weight_values=rng.normal(0.0, 0.25, size=(16, 16)),
        input_values=rng.normal(0.0, 0.5, size=(1024, 16)),
    )


def run_fig10b():
    workload = _scatter_workload()
    results = {}

    # (1) data-unaware: every phase shifter burns its nominal P_pi power.
    arch = build_scatter()
    results["data_unaware"] = Simulator(arch, SimulationConfig(data_aware=False)).run(workload)

    # (2) data-aware with the analytical phase/power model.
    arch = build_scatter()
    results["analytical"] = Simulator(arch, SimulationConfig(data_aware=True)).run(workload)

    # (3) data-aware with a measured (tabulated) device power curve.
    arch = build_scatter()
    p_pi = arch.library["phase_shifter"].nominal_power_mw()
    arch.library.register(
        arch.library["phase_shifter"].with_response(_measured_phase_shifter_curve(p_pi))
    )
    results["measured"] = Simulator(arch, SimulationConfig(data_aware=True)).run(workload)

    rows = []
    summary = {}
    for mode, result in results.items():
        ps_uj = result.energy_breakdown_pj.get("PS", 0.0) / 1e6
        mzm_uj = result.energy_breakdown_pj.get("MZM", 0.0) / 1e6
        summary[mode] = {"ps_uj": ps_uj, "mzm_uj": mzm_uj, "total_uj": result.total_energy_uj}
        rows.append(
            (mode, f"{ps_uj:.4f}", f"{mzm_uj:.4f}", f"{result.total_energy_uj:.4f}",
             f"{PAPER_PS_UJ[mode]:.4f}")
        )
    table = format_table(
        ["mode", "PS (uJ)", "MZM (uJ)", "total (uJ)", "paper PS (uJ)"], rows
    )
    return summary, table


def test_fig10b_data_aware_energy(benchmark):
    summary, table = run_once(benchmark, run_fig10b)
    save_result("fig10b_data_aware", table)

    unaware = summary["data_unaware"]["ps_uj"]
    analytical = summary["analytical"]["ps_uj"]
    measured = summary["measured"]["ps_uj"]
    # Shape: data awareness roughly halves the PS energy; the rigorous model trims a
    # little more (paper: 0.0537 -> 0.0215 -> 0.0209 uJ).
    assert analytical < 0.7 * unaware
    assert measured <= analytical
    assert measured > 0.8 * analytical
    paper_ratio = PAPER_PS_UJ["analytical"] / PAPER_PS_UJ["data_unaware"]  # ~0.40
    ours_ratio = analytical / unaware
    assert abs(ours_ratio - paper_ratio) < 0.25
