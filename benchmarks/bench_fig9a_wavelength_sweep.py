"""Fig. 9(a): energy vs. number of wavelengths on TeMPO, (280x28)x(28x280) GEMM.

The paper sweeps 1-7 wavelengths while scaling the MZMs and laser sources with the
wavelength count: more spectral parallelism shortens execution and shrinks the
energy of components that do not scale with wavelengths, while the MZM energy stays
roughly constant (their count grows with the wavelength count).
"""

from __future__ import annotations

from repro import Simulator
from repro.arch import ArchitectureConfig
from repro.arch.templates import build_tempo
from repro.utils.format import format_table

from benchmarks.helpers import paper_gemm, run_once, save_result

WAVELENGTHS = (1, 2, 3, 4, 5, 6, 7)
SERIES_COMPONENTS = ("Laser", "PS", "PD", "MZM", "ADC", "DAC", "Integrator", "DM")


def run_wavelength_sweep():
    series = {}
    for wavelengths in WAVELENGTHS:
        arch = build_tempo(
            config=ArchitectureConfig(num_wavelengths=wavelengths),
            name=f"tempo_w{wavelengths}",
        )
        result = Simulator(arch).run(paper_gemm())
        breakdown = result.energy_breakdown_pj
        series[wavelengths] = {
            "total_uj": result.total_energy_uj,
            "time_ns": result.total_time_ns,
            **{label: breakdown.get(label, 0.0) / 1e6 for label in SERIES_COMPONENTS},
        }
    rows = [
        (w, f"{data['total_uj']:.3f}", f"{data['time_ns']:.0f}")
        + tuple(f"{data[label]:.3f}" for label in SERIES_COMPONENTS)
        for w, data in series.items()
    ]
    table = format_table(
        ["# wavelengths", "total (uJ)", "time (ns)"] + [f"{c} (uJ)" for c in SERIES_COMPONENTS],
        rows,
    )
    return series, table


def test_fig9a_wavelength_sweep(benchmark):
    series, table = run_once(benchmark, run_wavelength_sweep)
    save_result("fig9a_wavelength_sweep", table)

    totals = [series[w]["total_uj"] for w in WAVELENGTHS]
    times = [series[w]["time_ns"] for w in WAVELENGTHS]
    # More wavelengths -> faster execution and lower total energy (paper trend).
    assert times[0] > times[-1]
    assert totals[0] > totals[-1]
    # Components that do not scale with wavelengths shrink with the runtime (the ADC
    # is bounded by the fixed number of output samples, so it must not grow)...
    assert series[7]["ADC"] <= series[1]["ADC"] * 1.05
    assert series[7]["Integrator"] < series[1]["Integrator"]
    assert series[7]["PS"] < series[1]["PS"]
    # ...while the MZM energy stays roughly constant (count scales with wavelengths).
    mzm_ratio = series[7]["MZM"] / series[1]["MZM"]
    assert 0.5 < mzm_ratio < 2.0
