"""Fig. 7: SimPhony validated against TeMPO on the (280x28)x(28x280) GEMM.

Architecture setting from the paper: core width/height 4, 2 tiles, 2 cores per tile.
The paper reports a photonic-core area of ~0.84 mm^2 (both SimPhony and the TeMPO
reference) and matching energy breakdowns; we regenerate both breakdowns and check
the area is in range and converters dominate energy.
"""

from __future__ import annotations

from repro import SimulationConfig, Simulator
from repro.arch.templates import build_tempo
from repro.core.report import render_breakdown

from benchmarks.helpers import paper_gemm, run_once, save_result

PAPER_AREA_MM2 = 0.84           # both SimPhony and TeMPO reference in Fig. 7(a)
PAPER_ENERGY_COMPONENTS = ("Laser", "PS", "PD", "MZM", "ADC", "DAC", "Integrator")


def run_fig7():
    arch = build_tempo()
    sim = Simulator(arch, SimulationConfig(include_memory=False))
    result = sim.run(paper_gemm())
    area_report = result.area_reports["tempo"]
    text = "\n".join(
        [
            "-- area breakdown (photonic core, mm2) --",
            render_breakdown(area_report.breakdown_mm2, unit="mm2"),
            f"paper reference total: {PAPER_AREA_MM2} mm2",
            "",
            "-- energy breakdown (pJ) --",
            render_breakdown(result.energy_breakdown_pj, unit="pJ"),
            f"total energy: {result.total_energy_uj:.3f} uJ "
            f"({result.energy_per_mac_pj:.3f} pJ/MAC)",
        ]
    )
    return result, area_report, text


def test_fig7_tempo_validation(benchmark):
    result, area_report, text = run_once(benchmark, run_fig7)
    save_result("fig7_tempo_validation", text)

    area = area_report.photonic_core_area_mm2
    # Area within ~2x band of the reference value (component data are representative,
    # not PDK-exact); the breakdown must contain the reference components.
    assert 0.4 < area < 1.7
    for label in ("ADC", "DAC", "Node", "TIA", "MZM", "Y Branch", "Crossing"):
        assert label in area_report.breakdown_mm2
    # ADC macros and the dot-product nodes are the two largest area contributors.
    top_two = sorted(area_report.breakdown_um2, key=area_report.breakdown_um2.get)[-2:]
    assert set(top_two) <= {"ADC", "Node", "DAC"}

    for label in PAPER_ENERGY_COMPONENTS:
        assert label in result.energy_breakdown_pj, label
    breakdown = result.energy_breakdown_pj
    assert breakdown["DAC"] + breakdown["ADC"] > 0.3 * result.total_energy_pj
    assert 0.5 < result.energy_per_mac_pj < 20.0
