"""Fig. 7: SimPhony validated against TeMPO on the (280x28)x(28x280) GEMM.

Thin shim over the ``fig7_tempo_validation`` scenario: the experiment itself (setup, table
rendering, qualitative shape checks) lives in :mod:`repro.scenarios.catalog` and
also runs via ``python -m repro run fig7_tempo_validation``.  This file only adapts it to
the pytest-benchmark harness and persists the table to
``benchmarks/results/fig7_tempo_validation.txt``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.report import save_result_text
from repro.scenarios import REGISTRY

RESULTS_DIR = Path(__file__).parent / "results"
SCENARIO = "fig7_tempo_validation"


def test_fig7_tempo_validation(benchmark):
    outcome = benchmark.pedantic(lambda: REGISTRY.run(SCENARIO), rounds=1, iterations=1)
    save_result_text(RESULTS_DIR / f"{SCENARIO}.txt", outcome.table)
    REGISTRY.verify(SCENARIO, outcome)
