"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation section:
it computes the same rows/series the paper reports, prints them, writes them to
``benchmarks/results/<name>.txt`` (so EXPERIMENTS.md can quote them), and asserts the
qualitative shape.  Timings are collected with pytest-benchmark in single-shot
pedantic mode -- the interesting output is the reproduced data, not the runtime.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

import numpy as np

from repro.dataflow.gemm import GEMMWorkload

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Persist a benchmark's table to benchmarks/results/<name>.txt and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")


def paper_gemm(bits: int = 8, seed: int = 0) -> GEMMWorkload:
    """The (280x28) x (28x280) GEMM used for the TeMPO validation and sweeps."""
    rng = np.random.default_rng(seed)
    return GEMMWorkload(
        "gemm_280x28_28x280",
        m=280,
        k=28,
        n=280,
        input_bits=bits,
        weight_bits=bits,
        output_bits=bits,
        weight_values=rng.normal(0.0, 0.25, size=(28, 280)),
        input_values=rng.normal(0.0, 0.5, size=(280, 28)),
    )


def run_once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
