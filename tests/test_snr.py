"""Tests for the optical receiver SNR analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import ArchitectureConfig
from repro.arch.templates import build_tempo
from repro.core.link_budget import LinkBudgetAnalyzer
from repro.core.snr import SNRAnalyzer


class TestSNRBasics:
    def test_snr_increases_with_power(self):
        analyzer = SNRAnalyzer()
        weak = analyzer.analyze_received_power(0.001, 5.0)
        strong = analyzer.analyze_received_power(1.0, 5.0)
        assert strong.snr_linear > weak.snr_linear
        assert strong.effective_bits > weak.effective_bits

    def test_snr_decreases_with_bandwidth(self):
        analyzer = SNRAnalyzer()
        slow = analyzer.analyze_received_power(0.1, 1.0)
        fast = analyzer.analyze_received_power(0.1, 25.0)
        assert slow.snr_db > fast.snr_db

    def test_noise_components_positive(self):
        report = SNRAnalyzer().analyze_received_power(0.1, 5.0)
        assert report.shot_noise_ma2 > 0
        assert report.thermal_noise_ma2 > 0
        assert report.rin_noise_ma2 > 0
        assert report.photocurrent_ma == pytest.approx(0.1)  # 1 A/W on 0.1 mW

    def test_thermal_limited_at_low_power(self):
        report = SNRAnalyzer().analyze_received_power(1e-4, 5.0)
        assert report.thermal_noise_ma2 > report.shot_noise_ma2

    def test_rin_or_shot_limited_at_high_power(self):
        report = SNRAnalyzer().analyze_received_power(10.0, 5.0)
        assert max(report.shot_noise_ma2, report.rin_noise_ma2) > report.thermal_noise_ma2

    def test_zero_power_gives_minus_inf_db(self):
        report = SNRAnalyzer().analyze_received_power(0.0, 5.0)
        assert report.snr_db == float("-inf")
        assert report.effective_bits == 0.0

    def test_invalid_inputs(self):
        analyzer = SNRAnalyzer()
        with pytest.raises(ValueError):
            analyzer.analyze_received_power(-1.0, 5.0)
        with pytest.raises(ValueError):
            analyzer.analyze_received_power(1.0, 0.0)
        with pytest.raises(ValueError):
            SNRAnalyzer(responsivity_a_per_w=0.0)
        with pytest.raises(ValueError):
            SNRAnalyzer(load_resistance_ohm=-1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=1e-4, max_value=10.0))
    def test_effective_bits_monotone_in_power(self, power_mw):
        analyzer = SNRAnalyzer()
        assert (
            analyzer.analyze_received_power(2 * power_mw, 5.0).effective_bits
            >= analyzer.analyze_received_power(power_mw, 5.0).effective_bits
        )


class TestEffectiveBitsEdgeCases:
    """SNRReport behaviour at the degenerate corners the variation subsystem hits."""

    def test_zero_received_power_resolves_zero_bits(self):
        report = SNRAnalyzer().analyze_received_power(0.0, 5.0)
        assert report.snr_linear == 0.0
        assert report.snr_db == float("-inf")
        assert report.effective_bits == 0.0
        assert not report.supports_bits(1)

    def test_near_zero_power_is_finite_and_non_negative(self):
        report = SNRAnalyzer().analyze_received_power(1e-15, 5.0)
        assert report.snr_linear > 0.0
        assert report.effective_bits == 0.0  # floored, never negative
        assert report.snr_db < 0.0

    def test_effective_bits_never_negative(self):
        # A sub-1.76 dB SNR would give negative ENOB; the floor clamps it.
        for power_mw in (1e-12, 1e-9, 1e-6):
            report = SNRAnalyzer().analyze_received_power(power_mw, 25.0)
            assert report.effective_bits >= 0.0

    def test_zero_or_negative_bandwidth_rejected(self):
        analyzer = SNRAnalyzer()
        with pytest.raises(ValueError, match="bandwidth"):
            analyzer.analyze_received_power(1.0, 0.0)
        with pytest.raises(ValueError, match="bandwidth"):
            analyzer.analyze_received_power(1.0, -5.0)

    def test_rin_dominated_regime_caps_effective_bits(self):
        """With RIN ~ P^2 (like the signal), more power stops buying bits."""
        noisy_laser = SNRAnalyzer(rin_db_per_hz=-130.0)
        report = noisy_laser.analyze_received_power(10.0, 5.0)
        assert report.rin_noise_ma2 > report.shot_noise_ma2
        assert report.rin_noise_ma2 > report.thermal_noise_ma2
        # The SNR plateaus at 1 / (RIN * bandwidth): a 10x power increase moves
        # the resolvable precision by well under a bit.
        more_power = noisy_laser.analyze_received_power(100.0, 5.0)
        assert more_power.effective_bits - report.effective_bits < 0.2
        # A quieter laser at the same power resolves strictly more bits.
        quiet = SNRAnalyzer(rin_db_per_hz=-155.0).analyze_received_power(10.0, 5.0)
        assert quiet.effective_bits > report.effective_bits


class TestMinimumPower:
    def test_minimum_power_supports_requested_bits(self):
        analyzer = SNRAnalyzer()
        power = analyzer.minimum_power_for_bits(8, bandwidth_ghz=5.0)
        assert analyzer.analyze_received_power(power, 5.0).supports_bits(8)
        assert not analyzer.analyze_received_power(power * 0.5, 5.0).supports_bits(8)

    def test_more_bits_need_more_power(self):
        analyzer = SNRAnalyzer()
        assert analyzer.minimum_power_for_bits(8, 5.0) > analyzer.minimum_power_for_bits(4, 5.0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            SNRAnalyzer().minimum_power_for_bits(0, 5.0)


class TestArchitectureSNR:
    def test_link_budget_power_yields_usable_snr(self, tempo_arch):
        """The Eq.-1 laser power must leave enough SNR to resolve the input levels."""
        link = LinkBudgetAnalyzer().analyze(tempo_arch)
        report = SNRAnalyzer().analyze(tempo_arch, link)
        assert report.snr_db > 0
        assert report.effective_bits >= 1.0

    def test_higher_input_bits_give_more_received_power(self):
        analyzer = SNRAnalyzer()
        low = build_tempo(config=ArchitectureConfig(input_bits=4), name="b4")
        high = build_tempo(config=ArchitectureConfig(input_bits=8), name="b8")
        assert (
            analyzer.analyze(high).received_power_mw
            > analyzer.analyze(low).received_power_mw
        )

    def test_analyze_without_explicit_link_budget(self, tempo_arch):
        report = SNRAnalyzer().analyze(tempo_arch)
        assert report.received_power_mw > 0
