"""Tests for the directed 2-pin netlist and its weighted DAG lowering."""

import pytest
from hypothesis import given, strategies as st

from repro.devices import DeviceLibrary
from repro.netlist import CircuitDAG, Netlist
from repro.netlist.netlist import linear_netlist


def make_chain() -> Netlist:
    netlist = Netlist(name="chain")
    netlist.add_instance("laser", "laser")
    netlist.add_instance("mzm", "mzm")
    netlist.add_instance("pd", "pd")
    netlist.chain("laser", "mzm", "pd")
    return netlist


class TestNetlistConstruction:
    def test_add_and_lookup(self):
        netlist = make_chain()
        assert len(netlist) == 3
        assert netlist.device_of("mzm") == "mzm"
        assert "laser" in netlist

    def test_duplicate_instance_rejected(self):
        netlist = make_chain()
        with pytest.raises(ValueError):
            netlist.add_instance("laser", "laser")

    def test_empty_name_rejected(self):
        netlist = Netlist()
        with pytest.raises(ValueError):
            netlist.add_instance("", "laser")

    def test_net_to_unknown_instance_rejected(self):
        netlist = make_chain()
        with pytest.raises(KeyError):
            netlist.connect("laser", "ghost")

    def test_self_loop_rejected(self):
        netlist = make_chain()
        with pytest.raises(ValueError):
            netlist.connect("mzm", "mzm")

    def test_chain_needs_two(self):
        netlist = make_chain()
        with pytest.raises(ValueError):
            netlist.chain("laser")

    def test_unknown_instance_lookup(self):
        netlist = make_chain()
        with pytest.raises(KeyError):
            netlist.instance("nope")

    def test_linear_netlist_helper(self):
        netlist = linear_netlist("lin", [("a", "laser"), ("b", "mzm"), ("c", "pd")])
        assert netlist.sources() == ["a"]
        assert netlist.sinks() == ["c"]


class TestGraphStructure:
    def test_sources_and_sinks(self):
        netlist = make_chain()
        assert netlist.sources() == ["laser"]
        assert netlist.sinks() == ["pd"]

    def test_successors_predecessors(self):
        netlist = make_chain()
        assert netlist.successors("laser") == ["mzm"]
        assert netlist.predecessors("pd") == ["mzm"]

    def test_topological_order_is_consistent(self):
        netlist = make_chain()
        order = netlist.topological_order()
        assert order.index("laser") < order.index("mzm") < order.index("pd")

    def test_cycle_detection(self):
        netlist = make_chain()
        netlist.connect("pd", "laser")
        with pytest.raises(ValueError):
            netlist.topological_order()

    def test_topological_levels(self):
        netlist = Netlist(name="fanin")
        for name in ("a", "b", "c", "d"):
            netlist.add_instance(name, "y_branch")
        netlist.connect("a", "c")
        netlist.connect("b", "c")
        netlist.connect("c", "d")
        levels = netlist.topological_levels()
        assert levels[0] == ["a", "b"]
        assert levels[1] == ["c"]
        assert levels[2] == ["d"]

    def test_validate_against_library(self, default_library):
        netlist = make_chain()
        netlist.validate(device_names=default_library.names())
        netlist.add_instance("bogus", "not_a_device")
        with pytest.raises(KeyError):
            netlist.validate(device_names=default_library.names())

    def test_merge_prefixes_names(self):
        parent = Netlist(name="parent")
        child = make_chain()
        mapping = parent.merge(child, prefix="n0")
        assert mapping["laser"] == "n0.laser"
        assert len(parent) == 3
        assert ("n0.laser", "n0.mzm") in parent.edge_list()

    def test_merge_requires_prefix(self):
        parent = Netlist()
        with pytest.raises(ValueError):
            parent.merge(make_chain(), prefix="")


class TestCircuitDAG:
    def test_critical_path_of_chain(self, default_library):
        netlist = make_chain()
        dag = CircuitDAG(netlist, default_library)
        path = dag.critical_path()
        assert path.instances == ("laser", "mzm", "pd")
        expected = (
            default_library["laser"].insertion_loss_db
            + default_library["mzm"].insertion_loss_db
            + default_library["pd"].insertion_loss_db
        )
        assert path.insertion_loss_db == pytest.approx(expected)

    def test_loss_multiplier_scales_edge(self, default_library):
        netlist = make_chain()
        base = CircuitDAG(netlist, default_library).critical_path().insertion_loss_db
        scaled = CircuitDAG(
            netlist, default_library, loss_multipliers={"mzm": 3.0}
        ).critical_path().insertion_loss_db
        extra = 2.0 * default_library["mzm"].insertion_loss_db
        assert scaled == pytest.approx(base + extra)

    def test_multiplier_for_unknown_instance_rejected(self, default_library):
        with pytest.raises(KeyError):
            CircuitDAG(make_chain(), default_library, loss_multipliers={"ghost": 2.0})

    def test_negative_multiplier_rejected(self, default_library):
        with pytest.raises(ValueError):
            CircuitDAG(make_chain(), default_library, loss_multipliers={"mzm": -1.0})

    def test_branching_takes_lossier_path(self, default_library):
        netlist = Netlist(name="branch")
        netlist.add_instance("laser", "laser")
        netlist.add_instance("low_loss", "y_branch")   # 0.1 dB
        netlist.add_instance("high_loss", "mzm")       # 4 dB
        netlist.add_instance("pd", "pd")
        netlist.connect("laser", "low_loss")
        netlist.connect("laser", "high_loss")
        netlist.connect("low_loss", "pd")
        netlist.connect("high_loss", "pd")
        path = dagpath = CircuitDAG(netlist, default_library).critical_path()
        assert "high_loss" in path.instances

    def test_path_insertion_loss_validates_edges(self, default_library):
        dag = CircuitDAG(make_chain(), default_library)
        with pytest.raises(ValueError):
            dag.path_insertion_loss_db(["laser", "pd"])

    def test_single_instance_circuit(self, default_library):
        netlist = Netlist(name="solo")
        netlist.add_instance("mzm", "mzm")
        dag = CircuitDAG(netlist, default_library)
        path = dag.critical_path()
        assert path.instances == ("mzm",)
        assert path.insertion_loss_db == pytest.approx(
            default_library["mzm"].insertion_loss_db
        )

    def test_empty_netlist(self, default_library):
        dag = CircuitDAG(Netlist(name="empty"), default_library)
        assert dag.critical_path().insertion_loss_db == 0.0

    def test_longest_path_from_source(self, default_library):
        dag = CircuitDAG(make_chain(), default_library)
        path = dag.longest_path_from("mzm")
        assert path.instances[0] == "mzm"
        assert path.instances[-1] == "pd"

    def test_level_of(self, default_library):
        dag = CircuitDAG(make_chain(), default_library)
        assert dag.level_of("laser") == 0
        assert dag.level_of("pd") == 2
        with pytest.raises(KeyError):
            dag.level_of("ghost")

    @given(st.integers(min_value=2, max_value=12))
    def test_chain_loss_is_sum_of_devices(self, length):
        library = DeviceLibrary.default()
        netlist = Netlist(name="gen_chain")
        names = []
        for i in range(length):
            name = f"c{i}"
            netlist.add_instance(name, "crossing")
            names.append(name)
        netlist.chain(*names)
        dag = CircuitDAG(netlist, library)
        expected = length * library["crossing"].insertion_loss_db
        assert dag.critical_path().insertion_loss_db == pytest.approx(expected)
