"""Tests for link-budget analysis and the Eq. (1) laser power model."""

import pytest
from hypothesis import given, strategies as st

from repro.arch import ArchitectureConfig
from repro.arch.templates import build_tempo
from repro.core.link_budget import LinkBudgetAnalyzer, required_laser_power_mw


class TestEquationOne:
    def test_zero_loss_baseline(self):
        optical, electrical = required_laser_power_mw(
            insertion_loss_db=0.0,
            pd_sensitivity_dbm=-30.0,
            input_bits=1,
            extinction_ratio_db=100.0,
            wall_plug_efficiency=1.0,
        )
        # Receiver floor 1 uW, 2 levels, negligible ER penalty.
        assert optical == pytest.approx(2e-3, rel=1e-3)
        assert electrical == pytest.approx(optical)

    def test_loss_increases_power_exponentially(self):
        low, _ = required_laser_power_mw(3.0, -25.0, 8, 8.0)
        high, _ = required_laser_power_mw(13.0, -25.0, 8, 8.0)
        assert high / low == pytest.approx(10.0, rel=1e-6)

    def test_each_extra_bit_doubles_power(self):
        p4, _ = required_laser_power_mw(5.0, -25.0, 4, 8.0)
        p5, _ = required_laser_power_mw(5.0, -25.0, 5, 8.0)
        assert p5 / p4 == pytest.approx(2.0)

    def test_extinction_ratio_penalty(self):
        ideal, _ = required_laser_power_mw(5.0, -25.0, 8, 100.0)
        lossy, _ = required_laser_power_mw(5.0, -25.0, 8, 3.0)
        assert lossy > ideal
        assert lossy / ideal == pytest.approx(1.0 / (1.0 - 10 ** (-0.3)), rel=1e-6)

    def test_wall_plug_efficiency_scales_electrical_only(self):
        optical_a, electrical_a = required_laser_power_mw(5.0, -25.0, 8, 8.0, 1.0)
        optical_b, electrical_b = required_laser_power_mw(5.0, -25.0, 8, 8.0, 0.2)
        assert optical_a == pytest.approx(optical_b)
        assert electrical_b == pytest.approx(5.0 * electrical_a)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(insertion_loss_db=-1.0, pd_sensitivity_dbm=-25, input_bits=8, extinction_ratio_db=8),
            dict(insertion_loss_db=5.0, pd_sensitivity_dbm=-25, input_bits=0, extinction_ratio_db=8),
            dict(insertion_loss_db=5.0, pd_sensitivity_dbm=-25, input_bits=8, extinction_ratio_db=0),
            dict(insertion_loss_db=5.0, pd_sensitivity_dbm=-25, input_bits=8, extinction_ratio_db=8,
                 wall_plug_efficiency=0.0),
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            required_laser_power_mw(**kwargs)

    @given(
        st.floats(min_value=0.0, max_value=30.0),
        st.integers(min_value=1, max_value=12),
    )
    def test_monotone_in_loss_and_bits(self, loss, bits):
        base, _ = required_laser_power_mw(loss, -25.0, bits, 8.0)
        more_loss, _ = required_laser_power_mw(loss + 1.0, -25.0, bits, 8.0)
        more_bits, _ = required_laser_power_mw(loss, -25.0, bits + 1, 8.0)
        assert more_loss > base
        assert more_bits > base


class TestLinkBudgetAnalyzer:
    def test_report_fields(self, tempo_arch):
        report = LinkBudgetAnalyzer().analyze(tempo_arch)
        assert report.insertion_loss_db == pytest.approx(
            tempo_arch.critical_path_loss_db()
        )
        assert report.laser_optical_power_mw > 0
        assert report.laser_electrical_power_mw > report.laser_optical_power_mw
        assert report.input_bits == tempo_arch.config.input_bits
        assert report.num_sources >= 1

    def test_uses_device_parameters(self, tempo_arch):
        report = LinkBudgetAnalyzer().analyze(tempo_arch)
        assert report.pd_sensitivity_dbm == tempo_arch.library["pd"].sensitivity_dbm
        assert report.extinction_ratio_db == tempo_arch.library["mzm"].extinction_ratio_db
        assert report.wall_plug_efficiency == tempo_arch.library["laser"].wall_plug_efficiency

    def test_bigger_arrays_need_more_laser_power(self):
        small = build_tempo(config=ArchitectureConfig(core_width=2), name="small")
        large = build_tempo(config=ArchitectureConfig(core_width=12), name="large")
        analyzer = LinkBudgetAnalyzer()
        assert (
            analyzer.analyze(large).laser_optical_power_mw
            > analyzer.analyze(small).laser_optical_power_mw
        )

    def test_wavelengths_scale_total_power(self):
        one = build_tempo(config=ArchitectureConfig(num_wavelengths=1), name="w1")
        four = build_tempo(config=ArchitectureConfig(num_wavelengths=4), name="w4")
        analyzer = LinkBudgetAnalyzer()
        report_one = analyzer.analyze(one)
        report_four = analyzer.analyze(four)
        assert report_four.num_sources == 4 * report_one.num_sources
        assert (
            report_four.total_laser_electrical_power_mw
            > report_one.total_laser_electrical_power_mw
        )

    def test_lower_bitwidth_lowers_laser_power(self):
        high = build_tempo(config=ArchitectureConfig(input_bits=8), name="b8")
        low = build_tempo(config=ArchitectureConfig(input_bits=4), name="b4")
        analyzer = LinkBudgetAnalyzer()
        assert (
            analyzer.analyze(low).laser_optical_power_mw
            < analyzer.analyze(high).laser_optical_power_mw
        )
