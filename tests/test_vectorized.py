"""PR 5: vectorized forward path, trial-batched Monte Carlo, bench harness.

Covers the three contracts the performance work must not break:

- the stride-tricks im2col and every ``forward_batch`` agree with the legacy
  loop path (bit-identical where the arithmetic is re-orderings of the same
  elementwise ops, <= 1e-9 everywhere else);
- the trial-batched Monte Carlo consumes each trial's SeedSequence child RNG
  bit-identically to the per-trial loop, so reports match across forward
  modes, chunkings and execution backends;
- the ``repro bench`` harness produces sane machine-readable reports and its
  speedup gate fails loudly when a comparison is missing.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.dataflow.gemm import GEMMWorkload
from repro.exec import partition_indices
from repro.onn.layers import (
    FORWARD_MODE_ENV,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    MultiHeadAttention,
    ReLU,
    Sequential,
    forward_mode,
)
from repro.onn.models import build_mlp, build_vgg8_cifar10
from repro.onn.models.transformer import TransformerEncoder
from repro.onn.quantize import quantize_uniform, quantize_uniform_batch
from repro.scenarios import REGISTRY
from repro.scenarios.bench import (
    BENCH_SCHEMA,
    bench_scenarios,
    check_speedups,
    time_scenario,
    write_bench_report,
)
from repro.variation import (
    AccuracyRequest,
    NoiseSpec,
    PhaseError,
    WeightEncodingError,
    noisy_forward,
    noisy_forward_batch,
    standard_noise,
)
from repro.variation.accuracy import (
    classification_agreement,
    classification_agreement_batch,
    model_fingerprint,
    output_rmse,
    output_rmse_batch,
)
from repro.variation.models import Crosstalk, LinkLossDrift, VariationModel
from repro.variation.montecarlo import run_monte_carlo
from repro.variation.sampler import trial_rng

RNG = np.random.default_rng(20250730)


@pytest.fixture
def loop_mode(monkeypatch):
    monkeypatch.setenv(FORWARD_MODE_ENV, "loop")


@pytest.fixture
def small_models():
    return {
        "mlp": build_mlp((16, 24, 12, 6), rng=np.random.default_rng(3)),
        "vgg": build_vgg8_cifar10(
            width_multiplier=0.0625, input_size=8, hidden_features=32,
            rng=np.random.default_rng(4),
        ),
        "transformer": TransformerEncoder(
            image_size=8, patch_size=4, embed_dim=16, num_heads=4, mlp_dim=32,
            num_layers=2, num_classes=5, rng=np.random.default_rng(5),
        ),
    }


def model_input(kind: str) -> np.ndarray:
    rng = np.random.default_rng(99)
    if kind == "mlp":
        return rng.normal(size=(48, 16))
    if kind == "vgg":
        return rng.normal(size=(3, 8, 8))
    return rng.normal(size=(3, 8, 8))


class TestForwardMode:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv(FORWARD_MODE_ENV, raising=False)
        assert forward_mode() == "vectorized"

    def test_env_selects_loop(self, loop_mode):
        assert forward_mode() == "loop"

    def test_unknown_mode_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(FORWARD_MODE_ENV, "turbo")
        with pytest.raises(ValueError, match="REPRO_FORWARD"):
            forward_mode()


class TestIm2colEquivalence:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (3, 2)])
    def test_loop_and_strided_im2col_are_bit_identical(self, stride, padding):
        conv = Conv2d(3, 4, 3, stride=stride, padding=padding,
                      rng=np.random.default_rng(0))
        x = RNG.normal(size=(3, 11, 9))
        cols_loop, hw_loop = conv._im2col_loop(x)
        cols_fast, hw_fast = conv._im2col_strided(x)
        assert hw_loop == hw_fast
        assert np.array_equal(cols_loop, cols_fast)

    def test_forward_and_gemms_match_across_modes(self, monkeypatch):
        conv = Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(1))
        x = RNG.normal(size=(2, 7, 7))
        monkeypatch.setenv(FORWARD_MODE_ENV, "loop")
        y_loop = conv.forward(x)
        gemms_loop, _ = conv.extract_gemms(x)
        monkeypatch.setenv(FORWARD_MODE_ENV, "vectorized")
        y_fast = conv.forward(x)
        gemms_fast, _ = conv.extract_gemms(x)
        assert np.array_equal(y_loop, y_fast)
        assert np.array_equal(gemms_loop[0].input_values, gemms_fast[0].input_values)

    def test_batched_im2col_matches_per_trial(self):
        conv = Conv2d(3, 4, 3, stride=2, padding=1, rng=np.random.default_rng(2))
        stack = RNG.normal(size=(5, 3, 9, 9))
        cols_batch, hw = conv._im2col_batch(stack)
        for i in range(stack.shape[0]):
            cols_i, hw_i = conv._im2col_strided(stack[i])
            assert hw == hw_i
            assert np.array_equal(cols_batch[i], cols_i)


class TestForwardBatchLayers:
    """forward_batch of every layer type against the per-trial loop."""

    def assert_batch_matches(self, layer, stack, weight=None, tol=0.0):
        batched = layer.forward_batch(stack, weight=weight) if weight is not None \
            else layer.forward_batch(stack)
        for i in range(stack.shape[0]):
            if weight is None:
                expected = layer.forward(stack[i])
            else:
                expected = Module.forward_batch(layer, stack[i][None], weight[i][None])[0]
            np.testing.assert_allclose(batched[i], expected, atol=tol, rtol=0)

    def test_linear_with_per_trial_weights(self):
        layer = Linear(6, 4, rng=np.random.default_rng(0))
        stack = RNG.normal(size=(5, 9, 6))
        weights = RNG.normal(size=(5, 4, 6))
        batched = layer.forward_batch(stack, weight=weights)
        for i in range(5):
            expected = stack[i] @ weights[i].T + layer.bias
            np.testing.assert_allclose(batched[i], expected, atol=1e-12, rtol=0)

    def test_linear_vector_per_trial(self):
        layer = Linear(6, 4, rng=np.random.default_rng(0))
        stack = RNG.normal(size=(5, 6))
        weights = RNG.normal(size=(5, 4, 6))
        batched = layer.forward_batch(stack, weight=weights)
        for i in range(5):
            np.testing.assert_allclose(
                batched[i], stack[i] @ weights[i].T + layer.bias, atol=1e-12, rtol=0
            )

    def test_conv_with_per_trial_weights(self):
        layer = Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(1))
        stack = RNG.normal(size=(4, 2, 6, 6))
        weights = RNG.normal(size=(4, 3, 2, 3, 3))
        batched = layer.forward_batch(stack, weight=weights)
        import copy
        for i in range(4):
            clone = copy.copy(layer)
            clone.weight = weights[i]
            clone.pruning_mask = None
            np.testing.assert_allclose(
                batched[i], clone.forward(stack[i]), atol=1e-12, rtol=0
            )

    def test_attention_batch_matches_per_trial(self):
        layer = MultiHeadAttention(16, 4, rng=np.random.default_rng(2))
        stack = RNG.normal(size=(3, 7, 16))
        batched = layer.forward_batch(stack)
        for i in range(3):
            np.testing.assert_allclose(
                batched[i], layer.forward(stack[i]), atol=1e-9, rtol=0
            )

    @pytest.mark.parametrize(
        "layer,shape",
        [
            (ReLU(), (4, 5, 6)),
            (GELU(), (4, 5, 6)),
            (Flatten(), (4, 3, 5, 5)),
            (MaxPool2d(2), (4, 3, 6, 6)),
            (AvgPool2d(2), (4, 3, 6, 6)),
            (BatchNorm2d(3), (4, 3, 5, 5)),
            (LayerNorm(6), (4, 5, 6)),
        ],
    )
    def test_stateless_layers_batch_exactly(self, layer, shape):
        if isinstance(layer, BatchNorm2d):
            layer.scale = RNG.normal(size=3)
            layer.shift = RNG.normal(size=3)
        stack = RNG.normal(size=shape)
        batched = layer.forward_batch(stack)
        for i in range(shape[0]):
            assert np.array_equal(batched[i], layer.forward(stack[i]))

    def test_sequential_chains_forward_batch(self):
        model = Sequential(
            Linear(6, 8, rng=np.random.default_rng(0)), ReLU(),
            Linear(8, 3, rng=np.random.default_rng(1)),
        )
        stack = RNG.normal(size=(4, 5, 6))
        batched = model.forward_batch(stack)
        for i in range(4):
            np.testing.assert_allclose(
                batched[i], model.forward(stack[i]), atol=1e-12, rtol=0
            )

    def test_base_module_fallback_clones_per_trial(self):
        class Doubler(Module):
            def __init__(self):
                super().__init__(name="doubler")
                self.weight = np.array([2.0])

            def forward(self, x):
                return x * self.weight[0]

        layer = Doubler()
        stack = RNG.normal(size=(3, 4))
        weights = np.array([[1.0], [2.0], [3.0]])
        batched = layer.forward_batch(stack, weight=weights)
        for i in range(3):
            assert np.array_equal(batched[i], stack[i] * weights[i, 0])
        # the shared layer is never mutated by the fallback
        assert layer.weight[0] == 2.0


class TestModelEquivalence:
    @pytest.mark.parametrize("kind", ["mlp", "vgg", "transformer"])
    def test_loop_vs_vectorized_forward(self, monkeypatch, small_models, kind):
        model = small_models[kind]
        x = model_input(kind)
        monkeypatch.setenv(FORWARD_MODE_ENV, "loop")
        y_loop = model.forward(x)
        monkeypatch.setenv(FORWARD_MODE_ENV, "vectorized")
        y_fast = model.forward(x)
        np.testing.assert_allclose(y_fast, y_loop, atol=1e-9, rtol=0)

    @pytest.mark.parametrize("kind", ["mlp", "vgg", "transformer"])
    def test_loop_vs_vectorized_gemm_extraction(self, monkeypatch, small_models, kind):
        model = small_models[kind]
        x = model_input(kind)
        monkeypatch.setenv(FORWARD_MODE_ENV, "loop")
        gemms_loop, out_loop = model.extract_gemms(x)
        monkeypatch.setenv(FORWARD_MODE_ENV, "vectorized")
        gemms_fast, out_fast = model.extract_gemms(x)
        assert [g.name for g in gemms_loop] == [g.name for g in gemms_fast]
        np.testing.assert_allclose(out_fast, out_loop, atol=1e-9, rtol=0)
        for a, b in zip(gemms_loop, gemms_fast):
            np.testing.assert_allclose(
                b.input_values, a.input_values, atol=1e-9, rtol=0
            )
            np.testing.assert_allclose(
                b.weight_values, a.weight_values, atol=1e-9, rtol=0
            )

    def test_non_sequential_model_batches_via_fallback(self, small_models):
        model = small_models["transformer"]
        x = model_input("transformer")
        stack = np.stack([x, x * 0.5])
        batched = model.forward_batch(stack)
        np.testing.assert_allclose(batched[0], model.forward(x), atol=0, rtol=0)
        np.testing.assert_allclose(
            batched[1], model.forward(x * 0.5), atol=0, rtol=0
        )


class TestQuantizeBatch:
    @pytest.mark.parametrize("symmetric", [True, False])
    @pytest.mark.parametrize("bits", [1, 3, 8])
    def test_matches_per_slice_quantize(self, symmetric, bits):
        stack = RNG.normal(size=(6, 5, 4))
        stack[2] = 0.0  # degenerate slice: zero peak / zero span
        batched = quantize_uniform_batch(stack, bits, symmetric=symmetric)
        for i in range(6):
            expected = quantize_uniform(stack[i], bits, symmetric=symmetric)
            assert np.array_equal(batched[i], expected)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            quantize_uniform_batch(np.ones((2, 2)), 0)


class TestNoiseBatchEquivalence:
    def per_trial_reference(self, spec, weights, seed, trials):
        outs = []
        for t in range(trials):
            outs.append(spec.perturb_weights(weights, trial_rng(seed, t)))
        return np.stack(outs)

    @pytest.mark.parametrize(
        "spec",
        [
            NoiseSpec((WeightEncodingError(sigma=0.05),)),
            NoiseSpec((WeightEncodingError(sigma=0.05, relative=False),)),
            NoiseSpec((PhaseError(sigma_rad=0.1),)),
            standard_noise(),
        ],
    )
    def test_batch_weights_bit_identical(self, spec):
        weights = RNG.normal(size=(6, 5))
        rngs = [trial_rng(11, t) for t in range(7)]
        batched = spec.perturb_weights_batch(weights, rngs)
        expected = self.per_trial_reference(spec, weights, 11, 7)
        assert np.array_equal(batched, expected)

    def test_fused_sampling_supported_for_builtins_only(self):
        assert standard_noise().supports_fused_sampling()

        class CustomNoise(VariationModel):
            pass

        assert not NoiseSpec((CustomNoise(),)).supports_fused_sampling()
        assert not NoiseSpec(
            (WeightEncodingError(), CustomNoise())
        ).supports_fused_sampling()

    def test_fused_draw_count_covers_stochastic_models(self):
        spec = standard_noise()
        assert spec.weight_draw_count(30) == 60  # encoding + phase
        assert NoiseSpec((Crosstalk(), LinkLossDrift())).weight_draw_count(30) == 0

    def test_crosstalk_batch_is_bit_identical(self):
        model = Crosstalk.from_db(25.0)
        stack = RNG.normal(size=(5, 9, 7))
        batched = model.perturb_activations_batch(stack, [trial_rng(0, 0)] * 5)
        for i in range(5):
            assert np.array_equal(batched[i], model.perturb_activations(stack[i], None))


class TestNoisyForwardBatch:
    def reference_stack(self, model, x, spec, seed, trials, effective):
        outs, losses = [], []
        for t in range(trials):
            rng = trial_rng(seed, t)
            losses.append(spec.sample_loss_db(rng))
            outs.append(noisy_forward(model, x, spec, rng,
                                      effective_bits=effective[t]))
        return np.stack(outs), losses

    def test_bit_identical_to_per_trial_loop(self, small_models):
        model = small_models["mlp"]
        x = model_input("mlp")
        spec = standard_noise()
        trials = 9
        # Mixed resolved bit groups: some trials quantize at 6 bits, some at 8.
        effective = [8.4, 6.2, 8.4, 6.2, 8.4, 8.4, 6.2, 8.4, 6.2]
        expected, _ = self.reference_stack(model, x, spec, 13, trials, effective)
        rngs = [trial_rng(13, t) for t in range(trials)]
        for rng in rngs:
            spec.sample_loss_db(rng)  # consume the loss draw like the caller does
        batched = noisy_forward_batch(model, x, spec, rngs, effective_bits=effective)
        assert np.array_equal(batched, expected)

    def test_custom_model_falls_back_without_breaking_streams(self, small_models):
        class ScaledEncoding(WeightEncodingError):
            """Subclass: unknown draw layout, must use the per-model path."""

        spec = NoiseSpec((ScaledEncoding(sigma=0.1),))
        assert not spec.supports_fused_sampling()
        model = small_models["mlp"]
        x = model_input("mlp")
        expected, _ = self.reference_stack(model, x, spec, 5, 4, [None] * 4)
        rngs = [trial_rng(5, t) for t in range(4)]
        for rng in rngs:
            spec.sample_loss_db(rng)
        batched = noisy_forward_batch(model, x, spec, rngs)
        assert np.array_equal(batched, expected)

    def test_pruning_masks_stay_exactly_zero(self):
        model = build_mlp((8, 6, 4), rng=np.random.default_rng(8))
        mask = np.random.default_rng(1).random(size=model.layers[0].weight.shape) > 0.5
        model.layers[0].pruning_mask = mask
        spec = standard_noise()
        x = np.random.default_rng(2).normal(size=(10, 8))
        expected = []
        for t in range(5):
            rng = trial_rng(3, t)
            spec.sample_loss_db(rng)
            expected.append(noisy_forward(model, x, spec, rng))
        rngs = [trial_rng(3, t) for t in range(5)]
        for rng in rngs:
            spec.sample_loss_db(rng)
        batched = noisy_forward_batch(model, x, spec, rngs)
        assert np.array_equal(batched, np.stack(expected))

    @pytest.mark.parametrize("kind", ["vgg", "transformer"])
    def test_conv_and_opaque_models_batch_correctly(self, small_models, kind):
        model = small_models[kind]
        x = model_input(kind)
        spec = standard_noise()
        expected = []
        for t in range(3):
            rng = trial_rng(17, t)
            spec.sample_loss_db(rng)
            expected.append(noisy_forward(model, x, spec, rng, effective_bits=7.5))
        rngs = [trial_rng(17, t) for t in range(3)]
        for rng in rngs:
            spec.sample_loss_db(rng)
        batched = noisy_forward_batch(model, x, spec, rngs,
                                      effective_bits=[7.5] * 3)
        np.testing.assert_allclose(batched, np.stack(expected), atol=1e-9, rtol=0)

    def test_rejects_empty_or_mismatched_trials(self, small_models):
        with pytest.raises(ValueError):
            noisy_forward_batch(small_models["mlp"], model_input("mlp"),
                                standard_noise(), [])
        with pytest.raises(ValueError):
            noisy_forward_batch(small_models["mlp"], model_input("mlp"),
                                standard_noise(), [trial_rng(0, 0)],
                                effective_bits=[8.0, 8.0])


class TestBatchedMetrics:
    def test_agreement_batch_matches_scalar(self):
        ref = RNG.normal(size=(12, 5))
        outs = RNG.normal(size=(6, 12, 5))
        batched = classification_agreement_batch(outs, ref)
        for i in range(6):
            assert batched[i] == classification_agreement(outs[i], ref)

    def test_rmse_batch_matches_scalar(self):
        ref = RNG.normal(size=(12, 5))
        outs = RNG.normal(size=(6, 12, 5))
        batched = output_rmse_batch(outs, ref)
        for i in range(6):
            assert batched[i] == pytest.approx(output_rmse(outs[i], ref), abs=1e-15)

    def test_single_sample_reference(self):
        ref = RNG.normal(size=5)
        outs = RNG.normal(size=(4, 5))
        batched = classification_agreement_batch(outs, ref)
        for i in range(4):
            assert batched[i] == classification_agreement(outs[i], ref)


class TestBatchedMonteCarlo:
    def request(self, **kwargs):
        model = build_mlp((16, 24, 12, 6), rng=np.random.default_rng(3))
        inputs = np.random.default_rng(9).normal(size=(48, 16))
        defaults = dict(noise=standard_noise(), trials=13, seed=7)
        defaults.update(kwargs)
        return AccuracyRequest(model, inputs, **defaults)

    def test_loop_and_batched_reports_are_identical(self, monkeypatch):
        monkeypatch.setenv(FORWARD_MODE_ENV, "loop")
        loop_report = run_monte_carlo(self.request())
        monkeypatch.setenv(FORWARD_MODE_ENV, "vectorized")
        batched_report = run_monte_carlo(self.request())
        assert loop_report == batched_report

    def test_reports_identical_across_backends(self):
        serial = run_monte_carlo(self.request(backend="serial"))
        threads = run_monte_carlo(self.request(backend="threads", jobs=3))
        processes = run_monte_carlo(self.request(backend="processes", jobs=2))
        assert serial == threads
        assert serial == processes

    def test_per_trial_seeds_survive_chunking(self, monkeypatch):
        """extra_loss_db is the first draw of each trial's stream: bit-equal
        values across modes prove the seed contract held under batching."""
        monkeypatch.setenv(FORWARD_MODE_ENV, "loop")
        loop_report = run_monte_carlo(self.request(trials=70))
        monkeypatch.setenv(FORWARD_MODE_ENV, "vectorized")
        batched_report = run_monte_carlo(self.request(trials=70))
        assert loop_report.accuracies == batched_report.accuracies
        assert loop_report.effective_bits_mean == batched_report.effective_bits_mean

    def test_partition_indices_is_deterministic_and_complete(self):
        chunks = partition_indices(10, 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [i for chunk in chunks for i in chunk] == list(range(10))
        assert partition_indices(10, 3) == chunks
        assert partition_indices(2, 8) == [[0], [1]]
        assert partition_indices(0, 4) == []
        with pytest.raises(ValueError):
            partition_indices(4, 0)
        with pytest.raises(ValueError):
            partition_indices(-1, 2)


class TestFingerprintMemoization:
    def test_model_fingerprint_is_cached_per_instance(self):
        model = build_mlp((6, 4), rng=np.random.default_rng(0))
        first = model_fingerprint(model)
        assert getattr(model, "_repro_fingerprint") == first
        assert model_fingerprint(model) is first

    def test_request_fingerprint_is_cached_per_instance(self):
        request = AccuracyRequest(
            build_mlp((6, 4), rng=np.random.default_rng(0)),
            np.random.default_rng(1).normal(size=(4, 6)),
        )
        first = request.fingerprint()
        assert request.fingerprint() is first

    def test_normalized_operands_are_memoized_and_read_only(self):
        rng = np.random.default_rng(0)
        workload = GEMMWorkload(
            "w", m=4, n=3, k=5,
            weight_values=rng.normal(size=(5, 3)),
            input_values=rng.normal(size=(4, 5)),
        )
        weights = workload.normalized_weights()
        assert workload.normalized_weights() is weights
        assert not weights.flags.writeable
        inputs = workload.normalized_inputs()
        assert workload.normalized_inputs() is inputs
        assert not inputs.flags.writeable
        assert float(np.max(np.abs(weights))) == pytest.approx(1.0)

    def test_with_bits_copy_gets_fresh_memo(self):
        rng = np.random.default_rng(0)
        workload = GEMMWorkload(
            "w", m=4, n=3, k=5, weight_values=rng.normal(size=(5, 3)),
        )
        original = workload.normalized_weights()
        copy = workload.with_bits(4, 4)
        assert copy.normalized_weights() is not original
        assert np.array_equal(copy.normalized_weights(), original)


class TestBenchHarness:
    def test_time_scenario_records_passes_and_stats(self):
        timing = time_scenario("table1_taxonomy", repeats=2, warmup=0)
        assert timing.repeats == 2
        assert timing.mode == "vectorized/seedseq/float64"
        assert timing.knobs["REPRO_FORWARD"] == "vectorized"
        assert timing.knobs["REPRO_RNG"] == "seedseq"
        assert timing.knobs["REPRO_DTYPE"] == "float64"
        assert timing.median_s > 0
        assert timing.p90_s >= timing.median_s >= timing.min_s
        assert len(timing.times_s) == 2

    def test_bench_scenarios_payload_and_speedup_gate(self):
        payload = bench_scenarios(
            ["table1_taxonomy"], repeats=1, warmup=0,
            compare_loop=["table1_taxonomy"],
        )
        assert payload["schema"] == BENCH_SCHEMA
        entry = payload["scenarios"]["table1_taxonomy"]
        assert "loop" in entry and "vectorized" in entry
        assert entry["speedup_median"] > 0
        assert check_speedups(payload, {"table1_taxonomy": 0.0}) == []
        failures = check_speedups(payload, {"table1_taxonomy": 1e9})
        assert failures and "below" in failures[0]
        assert check_speedups(payload, {"missing": 1.0}) == ["missing: not benchmarked"]

    def test_compare_loop_must_be_selected(self):
        with pytest.raises(ValueError, match="not in the benchmark selection"):
            bench_scenarios(["table1_taxonomy"], repeats=1, warmup=0,
                            compare_loop=["fig6_layout"])

    def test_write_report_round_trips(self, tmp_path):
        payload = bench_scenarios(["table1_taxonomy"], repeats=1, warmup=0)
        target = write_bench_report(payload, tmp_path / "bench.json")
        loaded = json.loads(target.read_text())
        assert loaded["scenarios"]["table1_taxonomy"]["vectorized"]["repeats"] == 1

    def test_cli_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        assert main([
            "bench", "table1_taxonomy", "--repeats", "1", "--warmup", "0",
            "--compare-loop", "table1_taxonomy",
            "--fail-below", "table1_taxonomy=0.0",
            "--output", str(out),
        ]) == 0
        captured = capsys.readouterr()
        assert "table1_taxonomy" in captured.out
        assert out.exists()
        payload = json.loads(out.read_text())
        assert "speedup_median" in payload["scenarios"]["table1_taxonomy"]

    def test_cli_bench_fail_below_needs_comparison(self):
        with pytest.raises(SystemExit):
            main([
                "bench", "table1_taxonomy", "--repeats", "1", "--warmup", "0",
                "--fail-below", "table1_taxonomy=1.0",
            ])

    def test_cli_bench_unmet_threshold_fails(self, tmp_path, capsys):
        assert main([
            "bench", "table1_taxonomy", "--repeats", "1", "--warmup", "0",
            "--compare-loop", "table1_taxonomy",
            "--fail-below", "table1_taxonomy=1000000",
            "--output", str(tmp_path / "b.json"),
        ]) == 1
        assert "SPEEDUP CHECK FAILED" in capsys.readouterr().err


class TestScenarioTablesUnchanged:
    """The vectorized default must reproduce the committed accuracy tables."""

    def test_variation_robustness_table_matches_loop_path(self, monkeypatch):
        monkeypatch.setenv(FORWARD_MODE_ENV, "vectorized")
        fast = REGISTRY.run("variation_robustness", store=None, force=True)
        monkeypatch.setenv(FORWARD_MODE_ENV, "loop")
        legacy = REGISTRY.run("variation_robustness", store=None, force=True)
        assert fast.table == legacy.table
