"""Tests for the CACTI-substitute memory models and the four-level hierarchy."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import (
    HBMModel,
    MemoryHierarchy,
    MemoryLevel,
    RegisterFileModel,
    SRAMModel,
    required_glb_blocks,
)


class TestSRAMModel:
    def test_reference_point(self):
        sram = SRAMModel(capacity_bytes=64 * 1024)
        assert sram.read_energy_pj_per_bit == pytest.approx(0.30)
        assert sram.access_time_ns == pytest.approx(1.0)
        assert sram.area_mm2 == pytest.approx(0.30)

    def test_energy_grows_with_capacity(self):
        small = SRAMModel(capacity_bytes=64 * 1024)
        large = SRAMModel(capacity_bytes=1024 * 1024)
        assert large.read_energy_pj_per_bit > small.read_energy_pj_per_bit
        assert large.access_time_ns > small.access_time_ns
        assert large.area_mm2 > small.area_mm2

    def test_sqrt_capacity_scaling(self):
        base = SRAMModel(capacity_bytes=64 * 1024)
        quad = SRAMModel(capacity_bytes=4 * 64 * 1024)
        assert quad.read_energy_pj_per_bit == pytest.approx(2 * base.read_energy_pj_per_bit)

    def test_tech_scaling_reduces_energy(self):
        old = SRAMModel(capacity_bytes=64 * 1024, tech_nm=45)
        new = SRAMModel(capacity_bytes=64 * 1024, tech_nm=14)
        assert new.read_energy_pj_per_bit < old.read_energy_pj_per_bit
        assert new.area_mm2 < old.area_mm2

    def test_banking_increases_bandwidth(self):
        flat = SRAMModel(capacity_bytes=1024 * 1024, num_blocks=1)
        banked = flat.with_blocks(8)
        assert banked.bandwidth_bits_per_ns > flat.bandwidth_bits_per_ns
        assert banked.area_mm2 > flat.area_mm2  # banking overhead

    def test_banking_reduces_per_access_energy(self):
        flat = SRAMModel(capacity_bytes=1024 * 1024, num_blocks=1)
        banked = flat.with_blocks(16)
        assert banked.read_energy_pj_per_bit < flat.read_energy_pj_per_bit

    def test_write_more_expensive_than_read(self):
        sram = SRAMModel(capacity_bytes=128 * 1024)
        assert sram.write_energy_pj_per_bit > sram.read_energy_pj_per_bit
        assert sram.access_energy_pj(100, write=True) > sram.access_energy_pj(100)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SRAMModel(capacity_bytes=0)
        with pytest.raises(ValueError):
            SRAMModel(capacity_bytes=1024, buswidth_bits=0)
        with pytest.raises(ValueError):
            SRAMModel(capacity_bytes=1024, num_blocks=0)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            SRAMModel(capacity_bytes=1024).access_energy_pj(-1)

    @given(st.integers(min_value=10, max_value=26))
    def test_energy_monotone_in_capacity(self, log_capacity):
        smaller = SRAMModel(capacity_bytes=2**log_capacity)
        larger = SRAMModel(capacity_bytes=2 ** (log_capacity + 1))
        assert larger.read_energy_pj_per_bit >= smaller.read_energy_pj_per_bit


class TestHBMAndRF:
    def test_hbm_energy_per_bit(self):
        hbm = HBMModel()
        assert hbm.access_energy_pj(1000) == pytest.approx(3900.0)
        assert hbm.area_mm2 == 0.0

    def test_hbm_more_expensive_than_sram(self):
        assert HBMModel().read_energy_pj_per_bit > SRAMModel(2 * 1024 * 1024).read_energy_pj_per_bit

    def test_rf_cheapest(self):
        rf = RegisterFileModel()
        assert rf.read_energy_pj_per_bit < SRAMModel(64 * 1024).read_energy_pj_per_bit
        assert rf.access_energy_pj(64) == pytest.approx(64 * rf.energy_pj_per_bit)

    def test_invalid_hbm(self):
        with pytest.raises(ValueError):
            HBMModel(capacity_bytes=0)
        with pytest.raises(ValueError):
            HBMModel(bandwidth_gb_per_s=0)


class TestRequiredGlbBlocks:
    def test_paper_formula(self):
        # demand 120 B/ns, 1 ns cycle, 256-bit (32 B) bus -> ceil(120/32) = 4 blocks
        assert required_glb_blocks(120.0, 1.0, 256) == 4

    def test_zero_demand_needs_one_block(self):
        assert required_glb_blocks(0.0, 1.0, 64) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            required_glb_blocks(-1.0, 1.0, 64)
        with pytest.raises(ValueError):
            required_glb_blocks(1.0, 0.0, 64)

    @given(st.floats(min_value=0.1, max_value=1000.0))
    def test_block_count_meets_demand(self, demand):
        cycle_ns, buswidth = 1.0, 256
        blocks = required_glb_blocks(demand, cycle_ns, buswidth)
        assert blocks * buswidth / 8.0 / cycle_ns >= demand - 1e-6


class TestMemoryHierarchy:
    def test_default_has_all_levels(self):
        hierarchy = MemoryHierarchy.default()
        for level in MemoryLevel:
            assert hierarchy.level(level) is not None

    def test_for_workload_sizes_levels(self):
        hierarchy = MemoryHierarchy.for_workload(
            max_layer_bytes=500_000, tile_bytes=20_000, cycle_bytes=100
        )
        glb = hierarchy.level(MemoryLevel.GLB)
        lb = hierarchy.level(MemoryLevel.LB)
        rf = hierarchy.level(MemoryLevel.RF)
        assert glb.capacity_bytes >= 500_000
        assert lb.capacity_bytes >= 20_000
        assert rf.capacity_bytes >= 100
        assert glb.capacity_bytes > lb.capacity_bytes > rf.capacity_bytes

    def test_adapt_glb_bandwidth(self):
        hierarchy = MemoryHierarchy.default(glb_bytes=1024 * 1024, buswidth_bits=256)
        demand = 200.0  # bytes per ns
        blocks = hierarchy.adapt_glb_bandwidth(demand)
        assert blocks >= 1
        assert hierarchy.meets_bandwidth(MemoryLevel.GLB, demand)

    def test_adapt_glb_trims_excess_blocks(self):
        hierarchy = MemoryHierarchy.default(glb_bytes=1024 * 1024, buswidth_bits=256)
        blocks = hierarchy.adapt_glb_bandwidth(1.0)  # trivially satisfiable
        assert blocks == 1

    def test_energy_accounting(self):
        hierarchy = MemoryHierarchy.default()
        energy = hierarchy.access_energy_pj(MemoryLevel.GLB, 1024)
        assert energy > 0
        assert hierarchy.access_energy_pj(MemoryLevel.HBM, 1024) > energy

    def test_onchip_area_excludes_hbm(self):
        hierarchy = MemoryHierarchy.default()
        assert hierarchy.onchip_area_mm2() < 100  # HBM stack would dwarf this

    def test_onchip_leakage_excludes_hbm(self):
        hierarchy = MemoryHierarchy.default()
        assert hierarchy.onchip_leakage_mw() < hierarchy.leakage_mw()

    def test_describe_keys(self):
        summary = MemoryHierarchy.default().describe()
        assert set(summary) == {"hbm", "glb", "lb", "rf"}
        assert summary["glb"]["num_blocks"] >= 1

    def test_unknown_level_raises(self):
        hierarchy = MemoryHierarchy(levels={})
        with pytest.raises(KeyError):
            hierarchy.level(MemoryLevel.GLB)

    def test_adapt_requires_sram_glb(self):
        hierarchy = MemoryHierarchy(levels={MemoryLevel.GLB: HBMModel()})
        with pytest.raises(TypeError):
            hierarchy.adapt_glb_bandwidth(10.0)
