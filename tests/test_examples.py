"""Smoke tests: every example script runs end to end and prints its report."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_has_at_least_three_scripts(self):
        scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3
        assert "quickstart.py" in scripts

    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "energy breakdown" in out
        assert "link budget" in out

    def test_data_aware_energy_runs(self, capsys):
        load_example("data_aware_energy").main()
        out = capsys.readouterr().out
        assert "data-aware" in out
        assert "PS energy" in out

    def test_heterogeneous_vgg8_runs_small(self, capsys):
        load_example("heterogeneous_vgg8").main(width_multiplier=0.1)
        out = capsys.readouterr().out
        assert "scatter" in out
        assert "mzi_mesh" in out
        assert "total energy" in out

    @pytest.mark.parametrize(
        "name", ["design_space_sweep", "pareto_exploration", "strategy_exploration"]
    )
    def test_sweep_examples_importable(self, name):
        module = load_example(name)
        assert hasattr(module, "main")

    def test_scenario_batch_runs_smoke_subset(self, capsys):
        load_example("scenario_batch").main(names=["fig6_layout"])
        out = capsys.readouterr().out
        assert "store hit" in out
        assert "engine passes executed: 0" in out
