"""Tests for SimPhony-DevLib: device specs, responses, electrical and photonic devices."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.devices import (
    ADC,
    DAC,
    TIA,
    ConstantPower,
    Device,
    DeviceCategory,
    DeviceSpec,
    Integrator,
    Laser,
    LinearResponse,
    MachZehnderModulator,
    MicroRingResonator,
    MZIPhaseShifter,
    PCMCell,
    Photodetector,
    PolynomialResponse,
    QuadraticPhaseShifterResponse,
    TabulatedResponse,
    ThermoOpticPhaseShifter,
    WaveguideCrossing,
    YBranch,
)
from repro.devices.response import response_from_callable


class TestDeviceSpec:
    def test_footprint(self):
        spec = DeviceSpec("d", DeviceCategory.PHOTONIC, width_um=10, height_um=5)
        assert spec.footprint_um2 == 50

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("d", DeviceCategory.PHOTONIC, width_um=-1, height_um=5)

    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("d", DeviceCategory.PHOTONIC, 1, 1, insertion_loss_db=-0.5)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("d", DeviceCategory.ELECTRICAL, 1, 1, static_power_mw=-1)

    def test_replace_keeps_original(self):
        spec = DeviceSpec("d", DeviceCategory.PHOTONIC, 10, 5, insertion_loss_db=1.0)
        new = spec.replace(insertion_loss_db=2.0)
        assert spec.insertion_loss_db == 1.0
        assert new.insertion_loss_db == 2.0


class TestDeviceBase:
    def test_scaled_override(self):
        device = YBranch()
        bigger = device.scaled(width_um=100.0)
        assert bigger.width_um == 100.0
        assert device.width_um != 100.0

    def test_energy_per_cycle_combines_power_and_op_energy(self):
        spec = DeviceSpec(
            "d", DeviceCategory.ELECTRICAL, 1, 1, static_power_mw=2.0, energy_per_op_pj=3.0
        )
        device = Device(spec)
        # 2 mW over 0.2 ns = 0.4 pJ, plus 3 pJ per op.
        assert device.energy_per_cycle_pj(5.0) == pytest.approx(3.4)

    def test_energy_per_cycle_rejects_bad_frequency(self):
        device = YBranch()
        with pytest.raises(ValueError):
            device.energy_per_cycle_pj(0.0)

    def test_category_helpers(self):
        assert YBranch().is_photonic()
        assert DAC().is_electrical()


class TestPowerResponses:
    def test_constant_power(self):
        response = ConstantPower(5.0)
        assert response.power_mw(0.0) == 5.0
        assert response.power_mw(1.0) == 5.0
        assert response.max_power_mw() == 5.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantPower(-1.0)

    def test_linear_response_scales_with_magnitude(self):
        response = LinearResponse(10.0)
        assert response.power_mw(0.0) == 0.0
        assert response.power_mw(0.5) == pytest.approx(5.0)
        assert response.power_mw(-0.5) == pytest.approx(5.0)
        assert response.power_mw(2.0) == pytest.approx(10.0)  # clipped

    def test_linear_average(self):
        response = LinearResponse(10.0)
        avg = response.average_power_mw([0.0, 1.0])
        assert avg == pytest.approx(5.0)

    def test_polynomial_response(self):
        # P = 1 + 2*v^2
        response = PolynomialResponse([1.0, 0.0, 2.0])
        assert response.power_mw(0.0) == pytest.approx(1.0)
        assert response.power_mw(1.0) == pytest.approx(3.0)
        assert response.max_power_mw() == pytest.approx(3.0)

    def test_tabulated_response_interpolates(self):
        response = TabulatedResponse([0.0, 1.0], [0.0, 8.0])
        assert response.power_mw(0.5) == pytest.approx(4.0)
        assert response.power_mw(2.0) == pytest.approx(8.0)  # clamps

    def test_tabulated_rejects_bad_tables(self):
        with pytest.raises(ValueError):
            TabulatedResponse([0.0], [1.0])
        with pytest.raises(ValueError):
            TabulatedResponse([0.0, 0.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            TabulatedResponse([0.0, 1.0], [1.0, -2.0])

    def test_quadratic_phase_shifter_zero_weight_costs_half_pi(self):
        response = QuadraticPhaseShifterResponse(p_pi_mw=20.0)
        # weight 0 -> phase pi/2 -> half of P_pi
        assert response.power_mw(0.0) == pytest.approx(10.0)
        # weight 1 -> phase 0 -> no power
        assert response.power_mw(1.0) == pytest.approx(0.0)

    def test_quadratic_average_below_nominal(self):
        response = QuadraticPhaseShifterResponse(p_pi_mw=20.0)
        rng = np.random.default_rng(0)
        weights = rng.normal(0, 0.3, size=1000)
        assert response.average_power_mw(weights) < response.max_power_mw()

    def test_callable_response(self):
        response = response_from_callable(lambda v: 2.0 * abs(v), max_power_mw=2.0)
        assert response.power_mw(0.5) == pytest.approx(1.0)
        assert response.power_mw(-1.0) == pytest.approx(2.0)
        assert response.max_power_mw() == 2.0

    @given(st.floats(min_value=-1.0, max_value=1.0))
    def test_linear_response_never_exceeds_max(self, value):
        response = LinearResponse(7.5)
        assert 0.0 <= response.power_mw(value) <= 7.5 + 1e-9

    @given(st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=50))
    def test_average_bounded_by_max(self, values):
        response = QuadraticPhaseShifterResponse(p_pi_mw=15.0)
        assert response.average_power_mw(values) <= response.max_power_mw() + 1e-9


class TestDataConverters:
    def test_dac_power_scales_with_bits(self):
        low = DAC(bits=4)
        high = DAC(bits=8)
        assert high.static_power_mw > low.static_power_mw

    def test_dac_power_scales_with_rate(self):
        slow = DAC(sampling_rate_ghz=1.0)
        fast = DAC(sampling_rate_ghz=10.0)
        assert fast.static_power_mw > slow.static_power_mw

    def test_dac_rescaled(self):
        dac = DAC(bits=8, sampling_rate_ghz=5.0)
        rescaled = dac.rescaled(bits=4)
        assert rescaled.bits == 4
        assert rescaled.sampling_rate_ghz == 5.0
        assert rescaled.static_power_mw < dac.static_power_mw

    def test_adc_walden_model(self):
        adc = ADC(bits=8, sampling_rate_ghz=5.0, fom_fj_per_conv_step=30.0)
        expected_dynamic = 30.0 * 256 * 1e-3 * 5.0
        assert adc.static_power_mw == pytest.approx(expected_dynamic + 0.2)

    def test_adc_energy_per_conversion(self):
        adc = ADC(bits=6, fom_fj_per_conv_step=10.0)
        assert adc.energy_per_conversion_pj == pytest.approx(10.0 * 64 * 1e-3)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            DAC(bits=0)
        with pytest.raises(ValueError):
            ADC(bits=-1)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            DAC(sampling_rate_ghz=0.0)

    def test_tia_and_integrator_defaults(self):
        assert TIA().static_power_mw > 0
        assert Integrator().max_integration_cycles > 1
        with pytest.raises(ValueError):
            Integrator(max_integration_cycles=0)


class TestPhotonicDevices:
    def test_laser_wall_plug_efficiency(self):
        laser = Laser(wall_plug_efficiency=0.25)
        assert laser.electrical_power_mw(10.0) == pytest.approx(40.0)

    def test_laser_rejects_bad_wpe(self):
        with pytest.raises(ValueError):
            Laser(wall_plug_efficiency=0.0)
        with pytest.raises(ValueError):
            Laser(wall_plug_efficiency=1.5)

    def test_laser_rejects_negative_optical_power(self):
        with pytest.raises(ValueError):
            Laser().electrical_power_mw(-1.0)

    def test_mzm_properties(self):
        mzm = MachZehnderModulator(bandwidth_ghz=40.0, extinction_ratio_db=9.0)
        assert mzm.spec.max_frequency_ghz == 40.0
        assert mzm.extinction_ratio_db == 9.0
        assert mzm.energy_per_op_pj == pytest.approx(0.05)

    def test_phase_shifter_data_dependence(self):
        ps = ThermoOpticPhaseShifter(p_pi_mw=20.0)
        assert ps.power_mw(1.0) < ps.power_mw(0.0)
        assert ps.nominal_power_mw() == pytest.approx(20.0)

    def test_mzi_has_two_phase_shifters_worth_of_power(self):
        mzi = MZIPhaseShifter(p_pi_mw=20.0)
        assert mzi.nominal_power_mw() == pytest.approx(40.0)

    def test_mrr_linear_tuning(self):
        mrr = MicroRingResonator(tuning_power_mw=4.0)
        assert mrr.power_mw(0.5) == pytest.approx(2.0)

    def test_pcm_zero_static_power(self):
        pcm = PCMCell()
        assert pcm.power_mw(0.7) == 0.0
        assert pcm.reconfig_time_ns >= 100.0
        assert pcm.spec.extra["write_energy_pj"] > 0

    def test_photodetector_sensitivity(self):
        pd = Photodetector(sensitivity_dbm=-28.0)
        assert pd.sensitivity_dbm == -28.0
        with pytest.raises(ValueError):
            Photodetector(responsivity_a_per_w=0.0)

    def test_passives_have_loss_but_no_power(self):
        for device in (YBranch(), WaveguideCrossing()):
            assert device.insertion_loss_db > 0
            assert device.nominal_power_mw() == 0.0
