"""Tests for the search strategies and the fast Pareto-front extraction."""

import itertools

import numpy as np
import pytest

from repro.arch import ArchitectureConfig
from repro.arch.templates import build_tempo
from repro.dataflow.gemm import GEMMWorkload
from repro.explore import (
    CoordinateDescent,
    DesignPoint,
    DesignSpace,
    DesignSpaceExplorer,
    GridSearch,
    RandomSearch,
    pareto_front,
)
from repro.explore.search import resolve_strategy


def make_point(**objectives) -> DesignPoint:
    defaults = dict(
        parameters={}, energy_uj=1.0, latency_ns=1.0, area_mm2=1.0,
        power_w=1.0, laser_power_mw=1.0, energy_per_mac_pj=1.0,
    )
    defaults.update(objectives)
    return DesignPoint(**defaults)


def brute_force_front(points, objectives):
    """The seed's O(n^2) all-pairs reference implementation."""
    return [
        candidate
        for candidate in points
        if not any(other.dominates(candidate, objectives) for other in points)
    ]


class TestParetoFrontEquivalence:
    """The incremental sweep must match the brute-force result exactly."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("num_objectives", [1, 2, 3])
    def test_random_clouds(self, seed, num_objectives):
        rng = np.random.default_rng(seed)
        objectives = ["energy_uj", "latency_ns", "area_mm2"][:num_objectives]
        points = []
        for i in range(120):
            values = {o: float(rng.integers(0, 12)) for o in objectives}
            points.append(make_point(parameters={"i": i}, **values))
        fast = pareto_front(points, objectives)
        slow = brute_force_front(points, objectives)
        assert fast == slow  # same points, same (input) order

    def test_duplicates_all_kept(self):
        a = make_point(energy_uj=1.0, latency_ns=2.0)
        b = make_point(energy_uj=1.0, latency_ns=2.0)
        front = pareto_front([a, b], ["energy_uj", "latency_ns"])
        assert len(front) == 2

    def test_input_order_preserved(self):
        pts = [
            make_point(energy_uj=3.0, latency_ns=1.0),
            make_point(energy_uj=1.0, latency_ns=3.0),
            make_point(energy_uj=2.0, latency_ns=2.0),
        ]
        front = pareto_front(pts, ["energy_uj", "latency_ns"])
        assert front == pts

    def test_chain_of_dominated_points(self):
        # c is dominated only through transitivity-friendly ordering.
        pts = [make_point(energy_uj=float(i), latency_ns=float(i)) for i in range(10)]
        front = pareto_front(pts, ["energy_uj", "latency_ns"])
        assert front == [pts[0]]


@pytest.fixture()
def explorer():
    return DesignSpaceExplorer(
        build_tempo,
        [GEMMWorkload("g", m=64, k=16, n=64)],
        base_config=ArchitectureConfig(num_tiles=1, cores_per_tile=1),
    )


SPACE = DesignSpace({"core_height": [2, 4], "core_width": [2, 4, 8]})


class TestGridSearch:
    def test_covers_full_grid(self, explorer):
        result = explorer.explore(SPACE, strategy=GridSearch())
        assert len(result) == 6
        assert result.evaluations == 6
        assert result.strategy == "grid"

    def test_batched_grid_same_points(self, explorer):
        whole = explorer.explore(SPACE, strategy=GridSearch())
        batched = explorer.explore(SPACE, strategy=GridSearch(batch_size=2))
        assert whole.points == batched.points

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            GridSearch(batch_size=0)


class TestRandomSearch:
    def test_deterministic_for_seed(self, explorer):
        r1 = explorer.explore(SPACE, strategy=RandomSearch(num_samples=8, seed=3))
        r2 = explorer.explore(SPACE, strategy=RandomSearch(num_samples=8, seed=3))
        assert r1.points == r2.points
        assert r1.evaluations == 8

    def test_samples_come_from_candidates(self, explorer):
        result = explorer.explore(SPACE, strategy=RandomSearch(num_samples=10, seed=0))
        for point in result.points:
            assert point.parameters["core_height"] in (2, 4)
            assert point.parameters["core_width"] in (2, 4, 8)

    def test_requires_positive_samples(self):
        with pytest.raises(ValueError):
            RandomSearch(num_samples=0)

    def test_constructible_by_name_defaults_to_space_size(self, explorer):
        result = explorer.explore(SPACE, strategy="random")
        assert result.evaluations == SPACE.size()


class TestCoordinateDescent:
    def test_finds_grid_optimum_on_separable_objective(self, explorer):
        # Latency is monotone in core size, so coordinate descent must land on
        # the same optimum the exhaustive grid finds.
        grid = explorer.explore(SPACE, strategy=GridSearch())
        cd = explorer.explore(
            SPACE, strategy=CoordinateDescent(objective="latency_ns")
        )
        assert (
            cd.best("latency_ns").parameters == grid.best("latency_ns").parameters
        )

    def test_reports_strategy_name(self, explorer):
        result = explorer.explore(SPACE, strategy=CoordinateDescent())
        assert result.strategy == "coordinate_descent"
        assert result.evaluations >= 1

    def test_explicit_start_point(self, explorer):
        strategy = CoordinateDescent(
            objective="latency_ns", start={"core_height": 4, "core_width": 8}
        )
        result = explorer.explore(SPACE, strategy=strategy)
        assert result.best("latency_ns").parameters == {
            "core_height": 4, "core_width": 8,
        }

    def test_start_must_cover_swept_parameters(self, explorer):
        strategy = CoordinateDescent(start={"core_height": 4})
        with pytest.raises(KeyError):
            explorer.explore(SPACE, strategy=strategy)

    def test_invalid_max_rounds(self):
        with pytest.raises(ValueError):
            CoordinateDescent(max_rounds=0)

    def test_no_redundant_round_when_start_is_optimal(self, explorer):
        # Start at the latency optimum of a 2x2 space: one start evaluation plus
        # one line per coordinate, then stop -- adopting the start point must
        # not count as a round improvement (which would force a second round).
        small = DesignSpace({"core_height": [2, 4], "core_width": [2, 4]})
        strategy = CoordinateDescent(
            objective="latency_ns", start={"core_height": 4, "core_width": 4}
        )
        result = explorer.explore(small, strategy=strategy)
        assert result.evaluations == 3  # start + one alternative per coordinate


class TestExploreLoop:
    def test_strategy_by_name(self, explorer):
        result = explorer.explore(SPACE, strategy="grid")
        assert len(result) == 6

    def test_unknown_strategy_name(self, explorer):
        with pytest.raises(KeyError):
            explorer.explore(SPACE, strategy="simulated_annealing")

    def test_bad_strategy_type(self, explorer):
        with pytest.raises(TypeError):
            explorer.explore(SPACE, strategy=42)

    def test_progress_streams_in_order(self, explorer):
        seen = []
        explorer.explore(
            SPACE,
            strategy=GridSearch(),
            progress=lambda point, n, total: seen.append((dict(point.parameters), n, total)),
        )
        assert len(seen) == 6
        assert [n for _, n, _ in seen] == list(range(1, 7))
        assert all(total == 6 for _, _, total in seen)
        expected = [dict(zip(sorted(SPACE.parameters), combo))
                    for combo in itertools.product([2, 4], [2, 4, 8])]
        assert [p for p, _, _ in seen] == expected

    def test_max_evaluations_budget(self, explorer):
        result = explorer.explore(SPACE, max_evaluations=3)
        assert result.evaluations == 3
        assert len(result) == 3

    def test_invalid_budget(self, explorer):
        with pytest.raises(ValueError):
            explorer.explore(SPACE, max_evaluations=0)

    def test_resolve_default_is_grid(self):
        assert isinstance(resolve_strategy(None), GridSearch)

    def test_random_then_grid_share_cache(self, explorer):
        explorer.explore(SPACE, strategy=GridSearch())
        before = explorer.cache.stats["design_point"].misses
        result = explorer.explore(SPACE, strategy=RandomSearch(num_samples=12, seed=1))
        # Every random sample revisits a grid point: zero new evaluations.
        assert explorer.cache.stats["design_point"].misses == before
        assert result.evaluations == 12
