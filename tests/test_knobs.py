"""The central REPRO_* knob registry (repro.core.knobs)."""

import os

import pytest

from repro.core import knobs
from repro.core.knobs import (
    REPRO_ENV_PREFIX,
    Knob,
    all_knobs,
    forced_env,
    is_registered,
    knob_names,
    numeric_knob_names,
    raw_value,
    register,
    repro_env_snapshot,
    value,
)


# -- declarations ----------------------------------------------------------------------


def test_every_mode_knob_is_declared():
    names = knob_names()
    for name in (
        "REPRO_FORWARD",
        "REPRO_DTYPE",
        "REPRO_RNG",
        "REPRO_MC_TRIALS",
        "REPRO_MC_BACKEND",
        "REPRO_STORE",
        "REPRO_CLUSTER_HOST",
        "REPRO_CLUSTER_PORT",
    ):
        assert name in names


def test_numeric_knobs_cover_the_result_affecting_surface():
    numeric = set(numeric_knob_names())
    assert {"REPRO_FORWARD", "REPRO_DTYPE", "REPRO_RNG", "REPRO_MC_TRIALS"} <= numeric
    # Execution shape must never be classified as numerics.
    assert "REPRO_MC_JOBS" not in numeric
    assert "REPRO_CLUSTER_WORKERS" not in numeric


def test_register_is_idempotent_and_conflicts_raise():
    knob = knobs.get("REPRO_FORWARD")
    again = register(
        "REPRO_FORWARD",
        default="vectorized",
        choices=("vectorized", "loop"),
        affects_numerics=True,
        description=knob.description,
    )
    assert again == knob
    with pytest.raises(ValueError, match="different declaration"):
        register("REPRO_FORWARD", default="loop", choices=("vectorized", "loop"))


def test_unknown_knob_is_an_actionable_keyerror():
    with pytest.raises(KeyError, match="repro/core/knobs.py"):
        knobs.get("REPRO_NO_SUCH_KNOB")
    with pytest.raises(KeyError):
        raw_value("REPRO_NO_SUCH_KNOB")
    assert not is_registered("REPRO_NO_SUCH_KNOB")


def test_knob_validation():
    with pytest.raises(ValueError, match="must start with"):
        Knob(name="OTHER_THING")
    with pytest.raises(ValueError, match="type must be one of"):
        Knob(name="REPRO_X", type="bool")
    with pytest.raises(ValueError, match="not in"):
        Knob(name="REPRO_X", default="c", choices=("a", "b"))


# -- typed values ----------------------------------------------------------------------


def test_value_coerces_and_falls_back_to_default():
    with forced_env("REPRO_MC_TRIALS", "17"):
        assert value("REPRO_MC_TRIALS") == 17
    with forced_env("REPRO_CLUSTER_WAIT_S", "2.5"):
        assert value("REPRO_CLUSTER_WAIT_S") == 2.5
    assert value("REPRO_FORWARD") in ("vectorized", "loop")  # default applies
    assert value("REPRO_MC_TRIALS") is None or isinstance(
        value("REPRO_MC_TRIALS"), int
    )


def test_value_rejects_bad_coercion_and_choices():
    with forced_env("REPRO_MC_TRIALS", "many"):
        with pytest.raises(ValueError, match="must parse as int"):
            value("REPRO_MC_TRIALS")
    with forced_env("REPRO_FORWARD", "warp"):
        with pytest.raises(ValueError, match="must be one of"):
            value("REPRO_FORWARD")


def test_forced_env_restores_previous_state():
    name = "REPRO_MC_BACKEND"
    before = os.environ.get(name)
    with forced_env(name, "serial"):
        assert raw_value(name) == "serial"
        with forced_env(name, None):  # None = leave as is
            assert raw_value(name) == "serial"
    assert os.environ.get(name) == before
    with pytest.raises(KeyError):
        with forced_env("REPRO_NO_SUCH_KNOB", "x"):
            pass


# -- the snapshot contract -------------------------------------------------------------


def test_snapshot_contains_every_set_registered_knob():
    with forced_env("REPRO_FORWARD", "loop"), forced_env("REPRO_MC_TRIALS", "5"):
        snapshot = repro_env_snapshot()
        assert snapshot["REPRO_FORWARD"] == "loop"
        assert snapshot["REPRO_MC_TRIALS"] == "5"
    assert all(key.startswith(REPRO_ENV_PREFIX) for key in repro_env_snapshot())


def test_snapshot_safety_net_captures_unregistered_prefix_vars(monkeypatch):
    monkeypatch.setenv("REPRO_FUTURE_KNOB", "on")
    assert repro_env_snapshot()["REPRO_FUTURE_KNOB"] == "on"


def test_numeric_knobs_always_snapshotted_when_set(monkeypatch):
    # The registry-derivation guarantee: set every numeric knob, every one
    # appears -- no hand-maintained list to forget an entry.
    for index, name in enumerate(numeric_knob_names()):
        knob = knobs.get(name)
        raw = knob.default
        if raw is None:
            raw = str(index) if knob.type in ("int", "float") else "x"
        monkeypatch.setenv(name, raw)
    snapshot = repro_env_snapshot()
    for name in numeric_knob_names():
        assert name in snapshot


def test_all_knobs_sorted_and_documented():
    listed = all_knobs()
    assert list(listed) == sorted(listed, key=lambda k: k.name)
    for knob in listed:
        assert knob.description, f"{knob.name} needs a description"
