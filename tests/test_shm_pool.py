"""Zero-copy transport, warm worker pools, and the work-stealing partition.

The contracts under test mirror the dispatch-path design:

- shm handles are content-addressed, inline below the segment threshold, and
  leak nothing -- not even when a cluster worker is SIGKILLed mid-round;
- warm pools reuse worker processes across dispatches, revalidate their
  ``REPRO_*`` snapshot on checkout, reap themselves when idle, and preserve
  the result-store warm start (a second batch runs zero engine passes);
- ``steal_partition`` is a pure function of its arguments whose chunks
  concatenate to ``range(count)``, so completion-driven scheduling stays
  byte-identical to serial no matter which worker drags its feet.
"""

from __future__ import annotations

import glob
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.knobs import forced_env
from repro.exec import (
    ClusterBackend,
    ProcessBackend,
    ShmHandle,
    active_segments,
    as_array,
    as_object,
    coordinator_for,
    pool_status,
    publish_array,
    publish_object,
    resolve_array,
    resolve_object,
    run_worker,
    spawn_local_workers,
    steal_partition,
    stop_pools,
    unlink_all,
)
from repro.exec import pool as pool_mod
from repro.exec.shm import INLINE_MAX_BYTES
from repro.variation import AccuracyRequest, run_monte_carlo, standard_noise
from repro.onn.models import build_mlp

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))


# -- task functions (module-level so subprocess workers can unpickle them) -------------


def _worker_pid(shared, task):
    return os.getpid()


def _slow_square(shared, task):
    # Task 0 is the deliberate straggler: everyone else finishes first, so
    # completion-driven chunk assignment runs in a scrambled order.
    if task == 0:
        time.sleep(0.25)
    return task * task


def _sum_resolved(shared, task):
    array = as_array(shared)
    return float(array.sum()) + task


def _sum_resolved_or_die(shared, task):
    sentinel, value = task
    if sentinel is not None and not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return float(as_array(shared).sum()) + value


# -- helpers ---------------------------------------------------------------------------


def _repro_shm_files():
    return sorted(glob.glob("/dev/shm/repro-*"))


@pytest.fixture(autouse=True)
def _clean_slate():
    stop_pools()
    unlink_all()
    yield
    stop_pools()
    unlink_all()


def _thread_workers(coord, count):
    threads = [
        threading.Thread(
            target=run_worker,
            args=(coord.host, coord.port),
            kwargs=dict(once=True, quiet=True),
            daemon=True,
        )
        for _ in range(count)
    ]
    for thread in threads:
        thread.start()
    return threads


# -- shm transport ---------------------------------------------------------------------


class TestShmTransport:
    def test_small_payloads_ship_inline(self):
        array = np.arange(64, dtype=np.float64)
        with forced_env("REPRO_SHM", "on"):
            handle = publish_array(array)
        assert isinstance(handle, ShmHandle)
        assert handle.inline is not None
        assert active_segments() == []
        np.testing.assert_array_equal(resolve_array(handle), array)

    def test_large_arrays_publish_segments(self):
        array = np.random.default_rng(0).normal(
            size=(INLINE_MAX_BYTES // 8 + 512,)
        )
        with forced_env("REPRO_SHM", "on"):
            handle = publish_array(array)
            assert handle.inline is None
            assert len(active_segments()) == 1
            resolved = resolve_array(handle)
            np.testing.assert_array_equal(resolved, array)
            assert not resolved.flags.writeable
        del resolved
        unlink_all()
        assert active_segments() == []
        assert _repro_shm_files() == []

    def test_publish_is_content_addressed(self):
        array = np.random.default_rng(1).normal(size=(INLINE_MAX_BYTES // 8 + 16,))
        with forced_env("REPRO_SHM", "on"):
            first = publish_array(array)
            second = publish_array(array.copy())
            assert first.digest == second.digest
            assert len(active_segments()) == 1

    def test_object_round_trip(self):
        payload = {"spec": (1, 2, 3), "label": "alpha"}
        with forced_env("REPRO_SHM", "on"):
            handle = publish_object(payload)
        assert resolve_object(handle) == payload
        assert as_object(handle) == payload
        # Non-handles pass through untouched.
        assert as_object(payload) is payload

    def test_shm_off_inlines_everything(self):
        array = np.zeros(INLINE_MAX_BYTES // 8 + 1024)
        with forced_env("REPRO_SHM", "off"):
            handle = publish_array(array)
        assert handle.inline is not None
        assert active_segments() == []
        np.testing.assert_array_equal(as_array(handle), array)


class TestShmLeaks:
    def test_cluster_worker_sigkill_leaks_no_segments(self, tmp_path):
        """SIGKILLing a worker that attached a segment must leak nothing.

        The parent owns the segment (workers attach untracked), so after the
        round completes on the surviving worker and the parent unlinks, the
        /dev/shm namespace must be spotless -- the exact scenario a crashed
        fleet leaves behind.
        """
        array = np.random.default_rng(2).normal(size=(INLINE_MAX_BYTES // 8 + 256,))
        coord = coordinator_for("127.0.0.1", 0)
        processes = spawn_local_workers(
            2, coord.host, coord.port, env={"PYTHONPATH": TESTS_DIR}
        )
        try:
            coord.wait_for_workers(2, 60)
            with forced_env("REPRO_SHM", "on"):
                handle = publish_array(array)
                backend = ClusterBackend(jobs=2, host=coord.host, port=coord.port)
                sentinel = str(tmp_path / "die-once")
                tasks = [(sentinel if i == 1 else None, i) for i in range(6)]
                results = backend.map_tasks(
                    _sum_resolved_or_die, tasks, shared=handle
                )
            expected = [float(array.sum()) + i for i in range(6)]
            assert results == pytest.approx(expected)
        finally:
            coord.close("shutdown")
            for process in processes:
                try:
                    process.wait(timeout=15)
                except Exception:  # noqa: BLE001 - last resort
                    process.terminate()
                    process.wait(timeout=15)
        unlink_all()
        assert _repro_shm_files() == []


# -- warm pools ------------------------------------------------------------------------


class TestWarmPool:
    def test_warm_pool_reuses_worker_processes(self):
        with forced_env("REPRO_POOL", "warm"):
            backend = ProcessBackend(jobs=2)
            first = set(backend.map_tasks(_worker_pid, list(range(4))))
            second = set(backend.map_tasks(_worker_pid, list(range(4))))
            # Which of the pool's workers pulls a given chunk is timing
            # dependent, but both dispatches must draw from the same two
            # persistent processes -- a cold path would fork fresh pids.
            assert len(first | second) <= 2, (
                "warm dispatches must reuse the pool's workers"
            )
            status = pool_status()
        assert len(status) == 1
        assert status[0]["dispatches"] >= 2

    def test_cold_mode_keeps_no_resident_pools(self):
        with forced_env("REPRO_POOL", "cold"):
            backend = ProcessBackend(jobs=2)
            backend.map_tasks(_worker_pid, list(range(4)))
            assert pool_status() == []

    def test_env_revalidation_restarts_idle_pool(self):
        with forced_env("REPRO_POOL", "warm"):
            backend = ProcessBackend(jobs=2)
            with forced_env("REPRO_DTYPE", "float64"):
                first = set(backend.map_tasks(_worker_pid, list(range(4))))
            with forced_env("REPRO_DTYPE", "float32"):
                second = set(backend.map_tasks(_worker_pid, list(range(4))))
            status = pool_status()
        assert first.isdisjoint(second), (
            "a REPRO_* snapshot change must restart the pool's workers"
        )
        assert status[0]["restarts"] == 1

    def test_checkout_under_active_lease_gets_private_executor(self):
        with forced_env("REPRO_POOL", "warm"):
            with forced_env("REPRO_DTYPE", "float64"):
                executor, release = pool_mod.checkout(2)
            with forced_env("REPRO_DTYPE", "float32"):
                private, private_release = pool_mod.checkout(2)
            try:
                assert private is not executor, (
                    "an env mismatch with an active lease must not restart "
                    "the leased pool"
                )
            finally:
                private_release()
                release()

    def test_idle_pool_reaps_itself(self):
        with forced_env("REPRO_POOL", "warm"), forced_env(
            "REPRO_POOL_IDLE_S", "0.2"
        ):
            backend = ProcessBackend(jobs=2)
            backend.map_tasks(_worker_pid, list(range(2)))
            assert len(pool_status()) == 1
            deadline = time.monotonic() + 5.0
            while pool_status() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool_status() == []

    def test_stop_pools_tears_everything_down(self):
        with forced_env("REPRO_POOL", "warm"):
            ProcessBackend(jobs=2).map_tasks(_worker_pid, [0])
            assert stop_pools() == 1
            assert pool_status() == []

    def test_second_warm_batch_runs_zero_engine_passes(self, tmp_path):
        from repro.scenarios import BatchRunner, ResultStore

        names = ("table1_taxonomy", "fig6_layout")
        store = ResultStore(tmp_path / "store")
        with forced_env("REPRO_POOL", "warm"):
            first = BatchRunner(store=store, max_workers=2).run(names)
            second = BatchRunner(store=store, max_workers=2).run(names)
        assert first.ok and second.ok
        assert second.all_from_store
        assert second.engine_passes == 0, (
            "warm pools must preserve the store warm start"
        )


# -- work-stealing partition -----------------------------------------------------------


class TestStealPartition:
    @pytest.mark.parametrize("count", [0, 1, 7, 24, 100])
    @pytest.mark.parametrize("workers", [1, 2, 3, 8])
    def test_chunks_concatenate_to_range(self, count, workers):
        chunks = steal_partition(count, workers)
        flat = [index for chunk in chunks for index in chunk]
        assert flat == list(range(count))

    def test_deterministic_pure_function(self):
        assert steal_partition(100, 3) == steal_partition(100, 3)

    def test_guided_chunks_shrink_toward_the_tail(self):
        sizes = [len(chunk) for chunk in steal_partition(100, 4)]
        assert sizes[0] == max(sizes)
        assert sizes[-1] == min(sizes)
        assert sizes == sorted(sizes, reverse=True)

    def test_cap_bounds_every_chunk(self):
        chunks = steal_partition(100, 2, cap=8)
        assert all(len(chunk) <= 8 for chunk in chunks)
        assert [i for c in chunks for i in c] == list(range(100))

    def test_single_worker_minimizes_round_trips(self):
        assert steal_partition(24, 1) == [list(range(24))]
        assert [len(c) for c in steal_partition(24, 1, cap=10)] == [10, 10, 4]

    def test_invalid_arguments_fail_loudly(self):
        with pytest.raises(ValueError):
            steal_partition(-1, 2)
        with pytest.raises(ValueError):
            steal_partition(4, 0)
        with pytest.raises(ValueError):
            steal_partition(4, 2, cap=0)


# -- straggler determinism -------------------------------------------------------------


class TestStragglerDeterminism:
    def test_straggler_results_identical_across_backends(self):
        expected = [i * i for i in range(10)]
        serial = [_slow_square(None, task) for task in range(10)]
        with forced_env("REPRO_POOL", "warm"):
            warm = ProcessBackend(jobs=2).map_tasks(_slow_square, list(range(10)))
        coord = coordinator_for("127.0.0.1", 0)
        try:
            _thread_workers(coord, 2)
            backend = ClusterBackend(jobs=2, host=coord.host, port=coord.port)
            cluster = backend.map_tasks(_slow_square, list(range(10)))
        finally:
            coord.close("shutdown")
        assert serial == warm == cluster == expected

    def test_monte_carlo_warm_shm_matches_serial(self):
        model = build_mlp((16, 24, 12, 6), rng=np.random.default_rng(3))
        inputs = np.random.default_rng(9).normal(size=(32, 16))

        def report(backend):
            return run_monte_carlo(
                AccuracyRequest(
                    model, inputs, noise=standard_noise(), trials=8, seed=7,
                    backend=backend, jobs=2,
                )
            )

        serial = report("serial")
        with forced_env("REPRO_POOL", "warm"), forced_env("REPRO_SHM", "on"):
            warm_shm = report("processes")
        assert warm_shm == serial
