"""Tests for symbolic scaling rules."""

import pytest
from hypothesis import given, strategies as st

from repro.netlist.scaling import ONE, ScalingRule

PARAMS = {"R": 2, "C": 2, "H": 4, "W": 4, "LAMBDA": 3, "T_ACC": 8}


class TestEvaluation:
    def test_constant(self):
        assert ScalingRule(5).count(PARAMS) == 5

    def test_product(self):
        assert ScalingRule("R*C*H*W").count(PARAMS) == 64

    def test_paper_mzi_mesh_rule(self):
        # R*C*H*(H-1)/2 with H=4 -> 2*2*4*3/2 = 24
        assert ScalingRule("R*C*H*(H-1)/2").count(PARAMS) == 24

    def test_min_function(self):
        assert ScalingRule("R*C*min(H, W)").count(PARAMS) == 16

    def test_max_with_guard(self):
        assert ScalingRule("max(C*W-1, 1)").count({"C": 1, "W": 1}) == 1

    def test_ceil_log2(self):
        assert ScalingRule("ceil(log2(max(H, 2)))").count(PARAMS) == 2

    def test_division_rounds_up(self):
        assert ScalingRule("H/3").count(PARAMS) == 2

    def test_fractional_duty(self):
        assert ScalingRule("1/max(T_ACC, 1)").evaluate(PARAMS) == pytest.approx(0.125)

    def test_unknown_parameter_raises_with_context(self):
        with pytest.raises(KeyError) as err:
            ScalingRule("R*Q").evaluate(PARAMS)
        assert "Q" in str(err.value)
        assert "R" in str(err.value)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ScalingRule("0-5").count(PARAMS)


class TestValidation:
    def test_empty_expression_rejected(self):
        with pytest.raises(ValueError):
            ScalingRule("")

    def test_non_arithmetic_rejected(self):
        with pytest.raises(ValueError):
            ScalingRule("__import__('os').system('ls')")

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            ScalingRule("open('x')")

    def test_attribute_access_rejected(self):
        with pytest.raises(ValueError):
            ScalingRule("R.__class__")

    def test_string_constant_rejected(self):
        with pytest.raises(ValueError):
            ScalingRule("'abc'")

    def test_keyword_arguments_rejected(self):
        with pytest.raises(ValueError):
            ScalingRule("max(R, default=1)")

    def test_type_error_for_bad_input(self):
        with pytest.raises(TypeError):
            ScalingRule([1, 2])


class TestComposition:
    def test_multiplication_operator(self):
        rule = ScalingRule("R*H") * "LAMBDA"
        assert rule.count(PARAMS) == 24

    def test_multiplication_with_rule(self):
        rule = ScalingRule("R") * ScalingRule("C")
        assert rule.count(PARAMS) == 4

    def test_equality_and_hash(self):
        assert ScalingRule("R*C") == ScalingRule("R*C")
        assert hash(ScalingRule("R*C")) == hash(ScalingRule("R*C"))
        assert ScalingRule("R*C") != ScalingRule("C*R")

    def test_one_constant(self):
        assert ONE.count(PARAMS) == 1

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    def test_node_count_matches_closed_form(self, r, c, h, w):
        params = {"R": r, "C": c, "H": h, "W": w}
        assert ScalingRule("R*C*H*W").count(params) == r * c * h * w

    @given(st.integers(min_value=1, max_value=64))
    def test_count_is_ceiling(self, h):
        params = {"H": h}
        assert ScalingRule("H/4").count(params) == -(-h // 4)
