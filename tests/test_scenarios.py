"""The scenario subsystem: spec validation, registry, store, batch runner."""

from __future__ import annotations

import json

import pytest

from repro.core.cache import EvaluationCache
from repro.core.engine import observe_passes
from repro.scenarios import (
    REGISTRY,
    BatchRunner,
    ResultStore,
    ScenarioResult,
    ScenarioSpec,
    run_scenario,
    scenario_fingerprint,
)

FAST_SCENARIOS = ("table1_taxonomy", "fig6_layout", "fig7_tempo_validation",
                  "fig10a_layout_aware")


# -- ScenarioSpec validation ------------------------------------------------------------


class TestScenarioSpecValidation:
    def test_minimal_spec_is_valid(self):
        spec = ScenarioSpec(name="demo", title="a demo")
        assert spec.name == "demo"
        assert spec.deterministic

    def test_unknown_config_override_raises_with_suggestion(self):
        with pytest.raises(KeyError, match=r"core_heigth.*did you mean 'core_height'"):
            ScenarioSpec(name="demo", title="t", config_overrides={"core_heigth": 4})

    def test_unknown_sim_override_raises_with_suggestion(self):
        with pytest.raises(KeyError, match=r"data_awre.*did you mean 'data_aware'"):
            ScenarioSpec(name="demo", title="t", sim_overrides={"data_awre": False})

    def test_unknown_sweep_field_raises_with_suggestion(self):
        with pytest.raises(KeyError, match=r"num_wavelegnths.*did you mean"):
            ScenarioSpec(name="demo", title="t", sweep={"num_wavelegnths": (1, 2)})

    def test_scalar_sweep_axis_raises(self):
        with pytest.raises(TypeError, match="sequence of candidate values"):
            ScenarioSpec(name="demo", title="t", sweep={"core_height": 4})

    def test_string_sweep_axis_raises(self):
        with pytest.raises(TypeError, match="sequence of candidate values"):
            ScenarioSpec(name="demo", title="t", sweep={"core_height": "248"})

    def test_empty_sweep_axis_raises(self):
        with pytest.raises(ValueError, match="no candidate values"):
            ScenarioSpec(name="demo", title="t", sweep={"core_height": ()})

    def test_unknown_template_raises(self):
        with pytest.raises(KeyError, match="architecture template"):
            ScenarioSpec(name="demo", title="t", templates=("tempoo",))

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="search strategy"):
            ScenarioSpec(name="demo", title="t", strategy="genetic")

    def test_unknown_objective_raises(self):
        with pytest.raises(KeyError, match="objective"):
            ScenarioSpec(name="demo", title="t", objectives=("energy_j",))

    def test_bad_name_raises(self):
        with pytest.raises(ValueError, match="identifier-like"):
            ScenarioSpec(name="", title="t")

    def test_arch_and_sim_config_helpers_apply_overrides(self):
        spec = ScenarioSpec(
            name="demo", title="t",
            config_overrides={"num_tiles": 4},
            sim_overrides={"include_memory": False},
        )
        assert spec.arch_config().num_tiles == 4
        assert spec.arch_config(core_width=8).core_width == 8
        assert spec.sim_config().include_memory is False

    def test_resolve_params_rejects_unknown_with_suggestion(self):
        spec = ScenarioSpec(name="demo", title="t", params={"num_layers": 4})
        with pytest.raises(KeyError, match=r"num_layer.*did you mean 'num_layers'"):
            spec.resolve_params({"num_layer": 2})

    def test_resolve_params_coerces_env_strings(self):
        spec = ScenarioSpec(
            name="demo", title="t",
            params={"num_layers": 4}, env_params={"num_layers": "DEMO_LAYERS"},
        )
        assert spec.resolve_params(env={"DEMO_LAYERS": "7"}) == {"num_layers": 7}
        assert spec.resolve_params({"num_layers": "2"}) == {"num_layers": 2}
        with pytest.raises(ValueError, match="expects a int"):
            spec.resolve_params(env={"DEMO_LAYERS": "many"})


# -- registry ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_seed_benchmark_scenarios_are_registered(self, results_dir):
        stems = sorted(p.stem for p in results_dir.glob("*.txt"))
        assert stems, "no checked-in benchmark results found"
        for stem in stems:
            assert stem in REGISTRY, f"no scenario registered for {stem}.txt"

    def test_unknown_name_raises_with_suggestion(self):
        with pytest.raises(KeyError, match=r"did you mean 'fig6_layout'"):
            REGISTRY.get("fig6_layot")

    def test_duplicate_registration_raises(self):
        spec = REGISTRY.get("fig6_layout").spec
        with pytest.raises(ValueError, match="already registered"):
            REGISTRY.register(spec)(lambda ctx: None)

    def test_smoke_tag_selects_fast_subset(self):
        smoke = REGISTRY.names(tag="smoke")
        assert set(FAST_SCENARIOS) <= set(smoke)
        assert "fig8_lt_validation" not in smoke

    def test_specs_are_declarative_and_fingerprintable(self):
        for scenario in REGISTRY:
            params = scenario.spec.resolve_params()
            fp = scenario_fingerprint(scenario.spec, params, scenario.build)
            assert isinstance(fp, str) and len(fp) == 40
            # Same inputs -> same fingerprint (content addressing is stable).
            assert fp == scenario_fingerprint(scenario.spec, params, scenario.build)

    def test_params_change_the_fingerprint(self):
        base = REGISTRY.fingerprint("fig8_lt_validation")
        other = REGISTRY.fingerprint("fig8_lt_validation", {"num_layers": 1})
        assert base != other


# -- execution + store ------------------------------------------------------------------


@pytest.fixture()
def results_dir():
    from pathlib import Path

    return Path(__file__).resolve().parent.parent / "benchmarks" / "results"


class TestRunAndStore:
    def test_run_fills_identity_and_metrics_are_json_canonical(self):
        result = run_scenario("fig6_layout")
        assert result.name == "fig6_layout"
        assert result.fingerprint
        assert not result.from_store
        assert result.metrics == json.loads(json.dumps(result.metrics))

    def test_store_round_trip_equals_in_memory_result(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        live = run_scenario("fig6_layout", store=store)
        reloaded = store.load(live.name, live.fingerprint)
        assert reloaded is not None
        assert reloaded.from_store
        assert reloaded.table == live.table
        assert reloaded.metrics == live.metrics
        assert reloaded.params == live.params
        # The reloaded result passes the same qualitative checks.
        REGISTRY.verify("fig6_layout", reloaded)

    def test_second_run_is_a_store_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = run_scenario("table1_taxonomy", store=store)
        second = run_scenario("table1_taxonomy", store=store)
        assert not first.from_store
        assert second.from_store
        assert second.table == first.table

    def test_force_bypasses_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_scenario("table1_taxonomy", store=store)
        again = run_scenario("table1_taxonomy", store=store, force=True)
        assert not again.from_store

    def test_different_params_address_different_artifacts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        a = run_scenario("fig11_heterogeneous", store=store,
                         params={"width_multiplier": 0.1})
        b = run_scenario("fig11_heterogeneous", store=store,
                         params={"width_multiplier": 0.15})
        assert a.fingerprint != b.fingerprint
        assert store.load("fig11_heterogeneous", a.fingerprint) is not None
        assert store.load("fig11_heterogeneous", b.fingerprint) is not None

    def test_store_entries_lists_artifacts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_scenario("fig6_layout", store=store)
        entries = store.entries()
        assert [e["name"] for e in entries] == ["fig6_layout"]
        assert entries[0]["table"]


class TestBatchRunner:
    def test_batch_shares_one_cache_and_persists(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = BatchRunner(store=store).run(FAST_SCENARIOS)
        assert report.ok
        assert not report.all_from_store
        assert report.engine_passes > 0
        assert {item.name for item in report.items} == set(FAST_SCENARIOS)

    def test_repeated_batch_hits_store_and_runs_no_engine_pass(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = BatchRunner(store=store).run(FAST_SCENARIOS)
        second = BatchRunner(store=store).run(FAST_SCENARIOS)
        assert first.ok and second.ok
        assert second.all_from_store
        assert second.engine_passes == 0, (
            "a store-served batch must not re-run any engine pass"
        )
        for item in second.items:
            assert item.result.table == first.item(item.name).result.table

    def test_parallel_batch_matches_serial(self, tmp_path):
        serial = BatchRunner(store=None).run(FAST_SCENARIOS)
        parallel = BatchRunner(store=None, max_workers=4).run(FAST_SCENARIOS)
        assert serial.ok and parallel.ok
        for a, b in zip(serial.items, parallel.items):
            assert a.name == b.name
            assert a.result.table == b.result.table

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            BatchRunner().run(["fig6_layout", "nope"])

    def test_build_error_is_captured_per_item(self, tmp_path, monkeypatch):
        scenario = REGISTRY.get("fig6_layout")
        monkeypatch.setattr(
            scenario, "build", lambda ctx: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        report = BatchRunner().run(["fig6_layout", "table1_taxonomy"])
        assert not report.ok
        assert report.item("fig6_layout").error == "RuntimeError: boom"
        assert report.item("table1_taxonomy").ok


class TestEnginePassObserver:
    def test_observer_sees_every_pass_of_a_run(self):
        from repro.arch.templates import build_tempo
        from repro.core.engine import EvaluationEngine
        from repro.dataflow.gemm import GEMMWorkload

        seen = []
        with observe_passes(lambda name, engine: seen.append(name)):
            EvaluationEngine(build_tempo(), cache=EvaluationCache(enabled=False)).run(
                GEMMWorkload("g", m=8, k=8, n=8)
            )
        assert seen == [
            "route", "map", "memory", "link_budget", "area", "layer_analysis",
            "aggregate",
        ]
        # Observers are gone after the with-block.
        seen.clear()
        EvaluationEngine(build_tempo(), cache=EvaluationCache(enabled=False)).run(
            GEMMWorkload("g2", m=8, k=8, n=8)
        )
        assert seen == []
