"""Execution backends, scoped pass observation, and store/runner concurrency.

The satellite guarantees of the backend subsystem:

- every backend returns results in task order, so serial, thread and process
  executions are byte-identical;
- concurrent writers (threads *and* processes) never publish a torn artifact
  into one :class:`~repro.scenarios.store.ResultStore`;
- pass counting is per-runner (scoped by cache identity), so concurrent
  runners or an enclosing ``observe_passes`` block never cross-contaminate;
- validation errors (bad ``--jobs``, unknown ``--backend``, NaN objectives,
  unpicklable process tasks) are loud and actionable.
"""

from __future__ import annotations

import json
import math
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro.cli import main
from repro.core.cache import EvaluationCache
from repro.core.engine import observe_passes
from repro.exec import (
    BACKENDS,
    PassTiming,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    merge_cache_stats,
    merge_pass_timings,
    partition_indices,
    resolve_backend,
)
from repro.explore import DesignPoint, DesignSpace, DesignSpaceExplorer, pareto_front
from repro.scenarios import BatchRunner, ResultStore, ScenarioResult

PASS_SCENARIOS = ("fig7_tempo_validation", "fig6_layout", "table1_taxonomy")


# -- helpers that must be picklable (module-level) for process-backend tests -----------


def _square_task(shared, task):
    offset = shared or 0
    return task * task + offset


def _failing_task(shared, task):
    if task == 3:
        raise RuntimeError("task three exploded")
    return task


def _worker_pid(shared, task):
    import os

    return os.getpid()


def _save_artifact(args):
    """Worker for multi-process store hammering: save one artifact, return its path."""
    root, name, fp, writer = args
    store = ResultStore(root)
    result = ScenarioResult(
        table=f"table from writer {writer}\n" + "x" * 20000,
        metrics={"writer": writer, "blob": "y" * 20000},
        name=name,
        fingerprint=fp,
    )
    return str(store.save(result))


def _assert_store_artifacts_complete(store: ResultStore) -> None:
    """Every .json in the store parses and carries its full payload; no tmp files."""
    artifacts = list(store.root.glob("*.json"))
    assert artifacts, "no artifacts were published"
    for path in artifacts:
        payload = json.loads(path.read_text())  # a torn file would raise here
        assert payload["fingerprint"][:16] == path.stem.rsplit("-", 1)[-1]
        assert len(payload["metrics"]["blob"]) == 20000
        assert payload["table"].endswith("x" * 20000)
    leftovers = [p for p in store.root.iterdir() if p.suffix == ".tmp"]
    assert leftovers == [], f"temp files left behind: {leftovers}"


# -- backend basics ---------------------------------------------------------------------


class TestBackends:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_map_tasks_preserves_task_order(self, backend):
        resolved = resolve_backend(backend, jobs=3)
        tasks = list(range(17))
        assert resolved.map_tasks(_square_task, tasks, shared=1) == [
            t * t + 1 for t in tasks
        ]

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_empty_task_list(self, backend):
        assert resolve_backend(backend, jobs=2).map_tasks(_square_task, []) == []

    @pytest.mark.parametrize("chunksize", [1, 3, 100])
    def test_process_chunking_is_order_invariant(self, chunksize):
        backend = ProcessBackend(jobs=2, chunksize=chunksize)
        tasks = list(range(11))
        assert backend.map_tasks(_square_task, tasks) == [t * t for t in tasks]

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_task_errors_propagate(self, backend):
        resolved = resolve_backend(backend, jobs=2)
        with pytest.raises(RuntimeError, match="task three exploded"):
            resolved.map_tasks(_failing_task, [1, 2, 3, 4])

    def test_process_backend_rejects_unpicklable_tasks(self):
        backend = ProcessBackend(jobs=2)
        with pytest.raises(ValueError, match="picklable"):
            backend.map_tasks(_square_task, [lambda: None])

    def test_process_backend_rejects_unpicklable_fn(self):
        backend = ProcessBackend(jobs=2)
        with pytest.raises(ValueError, match="module-level"):
            backend.map_tasks(lambda shared, task: task, [1])

    def test_session_keeps_process_workers_alive_across_rounds(self):
        """Multi-round strategies must not re-fork (and lose worker memos) per
        batch: inside one session, consecutive map_tasks calls land on the same
        worker processes."""
        backend = ProcessBackend(jobs=2, chunksize=1)
        with backend.session():
            assert backend._pool is not None
            first = set(backend.map_tasks(_worker_pid, range(8)))
            second = set(backend.map_tasks(_worker_pid, range(8)))
        # One pool serves both rounds: across them at most `jobs` distinct
        # workers ever ran (fresh pools per round would show up to 2x, and
        # the pool spawns lazily, so per-round sets need not even overlap).
        assert len(first | second) <= backend.jobs
        # After the session the pool is torn down.
        assert backend._pool is None
        assert set(backend.map_tasks(_worker_pid, range(8))).isdisjoint(first)

    def test_sessions_nest_and_share_the_outer_pool(self):
        backend = ProcessBackend(jobs=2, chunksize=1)
        with backend.session():
            outer = set(backend.map_tasks(_worker_pid, range(8)))
            with backend.session():
                inner = set(backend.map_tasks(_worker_pid, range(8)))
            # The inner exit must not have torn down the outer session's pool.
            assert backend._pool is not None
            final = set(backend.map_tasks(_worker_pid, range(8)))
        assert len(outer | inner | final) <= backend.jobs
        assert backend._pool is None

    def test_coordinate_descent_on_processes_matches_serial(self):
        from repro.arch import ArchitectureConfig
        from repro.arch.templates import build_tempo
        from repro.dataflow.gemm import GEMMWorkload
        from repro.explore.search import CoordinateDescent

        workload = GEMMWorkload("g", m=32, k=16, n=32)
        base = ArchitectureConfig(
            num_tiles=1, cores_per_tile=1, core_height=2, core_width=2
        )
        space = DesignSpace({"core_height": [2, 4], "num_wavelengths": [1, 2]})

        def run(backend):
            return DesignSpaceExplorer(
                build_tempo, [workload], base_config=base, backend=backend,
                max_workers=2,
            ).explore(space, strategy=CoordinateDescent(objective="energy_uj"))

        serial, procs = run("serial"), run("processes")
        assert procs.points == serial.points
        assert procs.evaluations == serial.evaluations


class TestResolveBackend:
    def test_none_defaults_to_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend(None, jobs=1), SerialBackend)

    def test_none_with_jobs_is_threads(self):
        backend = resolve_backend(None, jobs=4)
        assert isinstance(backend, ThreadBackend)
        assert backend.jobs == 4

    def test_names_construct_their_backend(self):
        assert set(BACKENDS) == {"serial", "threads", "processes", "cluster"}
        assert isinstance(resolve_backend("serial", jobs=8), SerialBackend)
        assert resolve_backend("threads", jobs=3).jobs == 3
        assert resolve_backend("processes", jobs=2).jobs == 2
        # Constructing the cluster backend must not open any socket yet: the
        # coordinator starts lazily on the first map_tasks call.
        assert resolve_backend("cluster", jobs=2).jobs == 2

    def test_instance_passthrough(self):
        backend = ThreadBackend(2)
        assert resolve_backend(backend) is backend

    def test_unknown_name_suggests(self):
        with pytest.raises(KeyError, match=r"procces.*did you mean 'processes'"):
            resolve_backend("procces")

    @pytest.mark.parametrize("jobs", [0, -2])
    def test_bad_jobs_rejected(self, jobs):
        with pytest.raises(ValueError, match="positive integer"):
            resolve_backend("threads", jobs=jobs)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError, match="backend must be"):
            resolve_backend(3.14)


class TestTelemetryMerging:
    def test_merge_pass_timings(self):
        a = {"map": PassTiming(count=2, total_s=0.5)}
        b = {"map": PassTiming(count=1, total_s=0.25), "area": PassTiming(1, 0.1)}
        merged = merge_pass_timings([a, b])
        assert merged["map"].count == 3
        assert merged["map"].total_s == pytest.approx(0.75)
        assert merged["area"].count == 1

    def test_merge_cache_stats(self):
        from repro.core.cache import CacheStats

        merged = merge_cache_stats(
            [{"map": CacheStats(hits=2, misses=1)}, {"map": CacheStats(hits=0, misses=4)}]
        )
        assert (merged["map"].hits, merged["map"].misses) == (2, 5)

    def test_merge_pass_timings_is_associative_and_order_independent(self):
        """Cluster merges fold telemetry in worker-completion order, which is
        nondeterministic -- the merge must not care how deltas are grouped."""
        a = {"map": PassTiming(count=2, total_s=0.5)}
        b = {"map": PassTiming(count=1, total_s=0.25), "area": PassTiming(1, 0.1)}
        c = {"area": PassTiming(count=3, total_s=0.3), "link": PassTiming(2, 0.2)}

        def flatten(timings):
            return {k: (v.count, pytest.approx(v.total_s)) for k, v in timings.items()}

        left = merge_pass_timings([merge_pass_timings([a, b]), c])
        right = merge_pass_timings([a, merge_pass_timings([b, c])])
        flat = merge_pass_timings([a, b, c])
        reversed_order = merge_pass_timings([c, b, a])
        assert flatten(left) == flatten(flat)
        assert flatten(right) == flatten(flat)
        assert flatten(reversed_order) == flatten(flat)

    def test_merge_cache_stats_is_associative_and_order_independent(self):
        from repro.core.cache import CacheStats

        a = {"map": CacheStats(hits=2, misses=1)}
        b = {"map": CacheStats(hits=1, misses=0), "area": CacheStats(hits=3, misses=2)}
        c = {"area": CacheStats(hits=0, misses=5)}

        def flatten(stats):
            return {k: (v.hits, v.misses) for k, v in stats.items()}

        flat = merge_cache_stats([a, b, c])
        assert flatten(merge_cache_stats([merge_cache_stats([a, b]), c])) == flatten(flat)
        assert flatten(merge_cache_stats([a, merge_cache_stats([b, c])])) == flatten(flat)
        assert flatten(merge_cache_stats([c, b, a])) == flatten(flat)


class TestPartitionIndices:
    def test_empty_task_list_has_no_chunks(self):
        assert partition_indices(0, 4) == []

    def test_more_workers_than_tasks_yields_one_chunk_per_task(self):
        chunks = partition_indices(3, 8)
        assert chunks == [[0], [1], [2]]

    def test_single_task_single_chunk(self):
        assert partition_indices(1, 1) == [[0]]
        assert partition_indices(1, 16) == [[0]]

    def test_chunks_are_contiguous_and_complete(self):
        for count, parts in [(10, 3), (7, 7), (5, 2), (64, 5)]:
            chunks = partition_indices(count, parts)
            assert [i for chunk in chunks for i in chunk] == list(range(count))
            sizes = [len(chunk) for chunk in chunks]
            assert max(sizes) - min(sizes) <= 1

    def test_invalid_arguments_are_loud(self):
        with pytest.raises(ValueError, match="non-negative"):
            partition_indices(-1, 2)
        with pytest.raises(ValueError, match="positive"):
            partition_indices(4, 0)


# -- scoped pass observation ------------------------------------------------------------


class TestScopedPassObservation:
    def test_concurrent_runners_do_not_cross_contaminate(self):
        """Two runners in flight at once each count only their own passes."""
        reports = {}

        def run(key, names):
            reports[key] = BatchRunner(store=None).run(names)

        threads = [
            threading.Thread(target=run, args=("a", ["fig7_tempo_validation"])),
            threading.Thread(target=run, args=("b", ["fig10b_data_aware"])),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # fig7 simulates once (7 passes); fig10b simulates three modes (21).
        # Global (unscoped) counting would report 28 on both.
        assert reports["a"].engine_passes == 7
        assert reports["b"].engine_passes == 21

    def test_runner_inside_observed_block_keeps_its_own_count(self):
        seen_by_outer = []
        with observe_passes(lambda stage, engine: seen_by_outer.append(stage)):
            report = BatchRunner(store=None).run(["fig7_tempo_validation"])
        assert report.engine_passes == 7
        # The outer observer still sees everything (it chose not to filter).
        assert len(seen_by_outer) >= 7

    def test_stacked_registration_of_the_same_callback(self):
        events = []

        def cb(stage, engine):
            events.append(stage)

        from repro.arch.templates import build_tempo
        from repro.core.engine import EvaluationEngine
        from repro.dataflow.gemm import GEMMWorkload

        with observe_passes(cb):
            with observe_passes(cb):
                EvaluationEngine(
                    build_tempo(), cache=EvaluationCache(enabled=False)
                ).run(GEMMWorkload("g", m=8, k=8, n=8))
            inner = len(events)
            EvaluationEngine(
                build_tempo(), cache=EvaluationCache(enabled=False)
            ).run(GEMMWorkload("g2", m=8, k=8, n=8))
        assert inner == 14  # both registrations fired per pass
        assert len(events) == inner + 7  # one registration left after inner exit

    def test_observer_timing_argument(self):
        timed = []
        with observe_passes(lambda stage, engine, elapsed_s: timed.append((stage, elapsed_s))):
            from repro.arch.templates import build_tempo
            from repro.core.engine import EvaluationEngine
            from repro.dataflow.gemm import GEMMWorkload

            EvaluationEngine(build_tempo(), cache=EvaluationCache(enabled=False)).run(
                GEMMWorkload("g", m=8, k=8, n=8)
            )
        assert len(timed) == 7
        assert all(isinstance(t, float) and t >= 0.0 for _, t in timed)


class TestConcurrentScalingRules:
    def test_concurrent_rule_construction_never_races(self):
        """Regression: ast.parse is not thread-safe on CPython <= 3.11, so
        concurrent template builds (thread-backend sweeps with caching off)
        intermittently raised ``SystemError: AST constructor recursion depth
        mismatch`` until ScalingRule serialized parsing behind a shared memo."""
        from repro.netlist.scaling import ScalingRule

        errors = []

        def build(worker):
            try:
                for i in range(200):
                    # Distinct expressions defeat the memo, forcing real parses.
                    rule = ScalingRule(f"R*C*H*W + {worker} * ceil(H / {i + 1})")
                    assert rule.count({"R": 2, "C": 2, "H": 4, "W": 4}) >= 64
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=build, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


# -- store concurrency ------------------------------------------------------------------


class TestStoreConcurrency:
    N_WRITERS = 8
    ROUNDS = 10

    def _fingerprints(self, same: bool):
        if same:
            return ["f" * 40] * self.N_WRITERS
        return [format(i, "x") * 40 for i in range(self.N_WRITERS)]

    @pytest.mark.parametrize("same_fingerprint", [True, False])
    def test_threaded_writers_never_tear_artifacts(self, tmp_path, same_fingerprint):
        store = ResultStore(tmp_path / "store")
        fps = self._fingerprints(same_fingerprint)
        errors = []

        def hammer(writer):
            try:
                for _ in range(self.ROUNDS):
                    _save_artifact((store.root, "demo", fps[writer], writer))
                    loaded = store.load("demo", fps[writer])
                    if loaded is not None:
                        assert len(loaded.metrics["blob"]) == 20000
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(self.N_WRITERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        _assert_store_artifacts_complete(store)
        expected = 1 if same_fingerprint else self.N_WRITERS
        assert len(list(store.root.glob("*.json"))) == expected

    @pytest.mark.parametrize("same_fingerprint", [True, False])
    def test_process_writers_never_tear_artifacts(self, tmp_path, same_fingerprint):
        store = ResultStore(tmp_path / "store")
        fps = self._fingerprints(same_fingerprint)
        jobs = [
            (store.root, "demo", fps[writer], writer)
            for writer in range(self.N_WRITERS)
            for _ in range(3)
        ]
        with ProcessPoolExecutor(max_workers=4) as pool:
            paths = list(pool.map(_save_artifact, jobs))
        assert all(path.endswith(".json") for path in paths)
        _assert_store_artifacts_complete(store)
        expected = 1 if same_fingerprint else self.N_WRITERS
        assert len(list(store.root.glob("*.json"))) == expected

    def test_mixed_thread_and_process_writers(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        fp = "a" * 40
        with ProcessPoolExecutor(max_workers=2) as procs, ThreadPoolExecutor(4) as pool:
            futures = [
                procs.submit(_save_artifact, (store.root, "demo", fp, i))
                for i in range(4)
            ] + [
                pool.submit(_save_artifact, (store.root, "demo", fp, 100 + i))
                for i in range(4)
            ]
            for future in futures:
                future.result()
        _assert_store_artifacts_complete(store)


# -- backend equivalence on real batches -------------------------------------------------


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return BatchRunner(store=None).run(PASS_SCENARIOS)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_batch_tables_and_pass_counts_match_serial(self, serial_report, backend):
        report = BatchRunner(store=None, backend=backend, jobs=2).run(PASS_SCENARIOS)
        assert report.ok
        assert report.backend == backend
        for ours, reference in zip(report.items, serial_report.items):
            assert ours.name == reference.name
            assert ours.result.table == reference.result.table
            assert ours.result.metrics == reference.result.metrics
        assert report.engine_passes == serial_report.engine_passes
        assert sum(t.count for t in report.pass_timings.values()) == report.engine_passes

    def test_process_batch_warm_starts_from_the_store(self, tmp_path):
        store_root = tmp_path / "store"
        first = BatchRunner(store=ResultStore(store_root), backend="processes", jobs=2).run(
            PASS_SCENARIOS
        )
        second = BatchRunner(store=ResultStore(store_root), backend="processes", jobs=2).run(
            PASS_SCENARIOS
        )
        assert first.ok and not first.all_from_store
        assert first.engine_passes > 0
        assert second.all_from_store
        assert second.engine_passes == 0, (
            "a store-served process batch must not even spawn workers"
        )

    def test_process_batch_captures_errors_per_item(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BERT_LAYERS", "not-a-number")
        report = BatchRunner(store=None, backend="processes", jobs=2).run(
            ["fig8_lt_validation", "fig6_layout"]
        )
        assert not report.ok
        assert "ValueError" in report.item("fig8_lt_validation").error
        assert report.item("fig6_layout").ok

    def test_process_batch_requires_the_global_registry(self):
        from repro.scenarios.registry import ScenarioRegistry

        with pytest.raises(ValueError, match="module-global"):
            BatchRunner(registry=ScenarioRegistry(), backend="processes")

    def test_process_batch_rejects_a_shared_cache(self):
        # Workers keep per-process caches; silently dropping a caller's
        # pre-warmed cache would masquerade as a cold run.
        with pytest.raises(ValueError, match="cannot share an in-memory"):
            BatchRunner(cache=EvaluationCache(), backend="processes")

    def test_explorer_backends_agree_and_merge_telemetry(self):
        from repro.arch import ArchitectureConfig
        from repro.arch.templates import build_tempo
        from repro.dataflow.gemm import GEMMWorkload

        workload = GEMMWorkload("g", m=64, k=16, n=64)
        base = ArchitectureConfig(
            num_tiles=1, cores_per_tile=1, core_height=2, core_width=2
        )
        space = DesignSpace({"core_height": [2, 4], "num_wavelengths": [1, 2]})

        def explore(backend):
            explorer = DesignSpaceExplorer(
                build_tempo, [workload], base_config=base, backend=backend,
                max_workers=2,
            )
            return explorer.explore(space)

        serial = explore("serial")
        for backend in ("threads", "processes"):
            result = explore(backend)
            assert result.points == serial.points
            assert result.backend == backend
            passes = sum(t.count for t in result.pass_timings.values())
            assert passes == sum(t.count for t in serial.pass_timings.values())
            assert result.cache_stats  # worker hit/miss telemetry merged back

    def test_explorer_process_backend_rejects_closure_builder(self):
        from repro.arch.templates import build_tempo
        from repro.dataflow.gemm import GEMMWorkload

        explorer = DesignSpaceExplorer(
            lambda **kwargs: build_tempo(**kwargs),
            [GEMMWorkload("g", m=8, k=8, n=8)],
            backend="processes",
        )
        with pytest.raises(ValueError, match="module-level"):
            explorer.explore(DesignSpace({"core_height": [2]}))


# -- NaN objectives ---------------------------------------------------------------------


class TestParetoNaN:
    def _point(self, **overrides) -> DesignPoint:
        values = dict(
            parameters={"core_height": 2}, energy_uj=1.0, latency_ns=1.0,
            area_mm2=1.0, power_w=1.0, laser_power_mw=1.0, energy_per_mac_pj=1.0,
        )
        values.update(overrides)
        return DesignPoint(**values)

    def test_nan_objective_raises_naming_the_point(self):
        good = self._point()
        bad = self._point(parameters={"core_height": 8}, latency_ns=math.nan)
        with pytest.raises(ValueError, match=r"core_height=8.*latency_ns"):
            pareto_front([good, bad], ["energy_uj", "latency_ns"])

    def test_nan_in_unused_objective_is_ignored(self):
        point = self._point(latency_ns=math.nan)
        assert pareto_front([point], ["energy_uj"]) == [point]

    def test_non_nan_front_unchanged(self):
        a = self._point(energy_uj=1.0, latency_ns=2.0)
        b = self._point(energy_uj=2.0, latency_ns=1.0)
        c = self._point(energy_uj=3.0, latency_ns=3.0)
        assert pareto_front([a, b, c], ["energy_uj", "latency_ns"]) == [a, b]


# -- CLI argument validation ------------------------------------------------------------


class TestCliBackendValidation:
    @pytest.mark.parametrize("jobs", ["0", "-4", "two"])
    def test_bad_jobs_is_a_clean_usage_error(self, jobs, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch", "--jobs", jobs, "--no-store", "fig6_layout"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--jobs" in err
        assert "Traceback" not in err

    def test_bad_backend_is_a_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch", "--backend", "cuda", "--no-store", "fig6_layout"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err

    def test_batch_with_process_backend_runs(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "batch", "fig6_layout", "table1_taxonomy",
            "--backend", "processes", "--jobs", "2", "--store", store,
        ]) == 0
        out = capsys.readouterr().out
        assert "backend: processes (2 jobs)" in out
        # Second run warm-starts from the store without spawning workers.
        assert main([
            "batch", "fig6_layout", "table1_taxonomy",
            "--backend", "processes", "--jobs", "2", "--store", store,
        ]) == 0
        out = capsys.readouterr().out
        assert "store hit" in out
        assert "engine passes executed: 0" in out
