"""The variation-aware Monte Carlo accuracy subsystem (repro.variation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.architecture import ArchitectureConfig
from repro.arch.templates import build_tempo
from repro.core.cache import EvaluationCache
from repro.core.engine import EvaluationEngine
from repro.explore import DesignSpace, DesignSpaceExplorer, pareto_front
from repro.onn.models import build_mlp
from repro.onn.quantize import receiver_limited_bits
from repro.onn.workload import extract_workloads
from repro.scenarios import REGISTRY, BatchRunner, ResultStore, run_scenario
from repro.variation import (
    IDEAL,
    AccuracyRequest,
    Crosstalk,
    LinkLossDrift,
    LinkOperatingPoint,
    NoiseSpec,
    PhaseError,
    WeightEncodingError,
    model_fingerprint,
    noisy_forward,
    reference_forward,
    run_monte_carlo,
    standard_noise,
    trial_rng,
)


@pytest.fixture(scope="module")
def mc_model():
    return build_mlp((16, 24, 12, 6), rng=np.random.default_rng(3))


@pytest.fixture(scope="module")
def mc_inputs():
    return np.random.default_rng(9).normal(size=(32, 16))


def make_request(mc_model, mc_inputs, **kwargs):
    kwargs.setdefault("noise", standard_noise())
    kwargs.setdefault("trials", 8)
    kwargs.setdefault("seed", 7)
    return AccuracyRequest(mc_model, mc_inputs, **kwargs)


# -- deterministic sampling -------------------------------------------------------------


class TestSampler:
    def test_same_seed_and_trial_reproduce_the_stream(self):
        a = trial_rng(5, 3).normal(size=16)
        b = trial_rng(5, 3).normal(size=16)
        assert np.array_equal(a, b)

    def test_trials_are_independent(self):
        a = trial_rng(5, 0).normal(size=16)
        b = trial_rng(5, 1).normal(size=16)
        assert not np.array_equal(a, b)

    def test_seeds_are_independent(self):
        a = trial_rng(5, 0).normal(size=16)
        b = trial_rng(6, 0).normal(size=16)
        assert not np.array_equal(a, b)

    def test_construction_order_is_irrelevant(self):
        """Chunked/partitioned construction (process backend) changes nothing."""
        forward = [trial_rng(11, t).normal(size=4) for t in range(6)]
        backward = {t: trial_rng(11, t).normal(size=4) for t in reversed(range(6))}
        for t in range(6):
            assert np.array_equal(forward[t], backward[t])

    def test_negative_trial_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            trial_rng(0, -1)


# -- variation models -------------------------------------------------------------------


class TestVariationModels:
    def test_zero_magnitude_is_identity(self):
        spec = standard_noise().scaled(0.0)
        rng = trial_rng(0, 0)
        w = np.linspace(-1, 1, 12).reshape(3, 4)
        assert np.array_equal(spec.perturb_weights(w.copy(), rng), w)
        assert spec.static_loss_db() == 0.0
        assert spec.sample_loss_db(rng) == 0.0

    def test_weight_encoding_error_scales_with_sigma(self):
        w = np.ones((64, 64))
        small = WeightEncodingError(sigma=0.01).perturb_weights(w, trial_rng(1, 0))
        large = WeightEncodingError(sigma=0.10).perturb_weights(w, trial_rng(1, 0))
        assert np.abs(large - w).mean() > 5 * np.abs(small - w).mean()

    def test_phase_error_only_attenuates(self):
        w = np.ones(1000)
        out = PhaseError(sigma_rad=0.3).perturb_weights(w, trial_rng(2, 0))
        assert np.all(out <= 1.0)
        assert out.mean() < 1.0

    def test_crosstalk_mixes_lanes_and_preserves_totals(self):
        x = np.array([[1.0, 0.0, 0.0, 0.0]])
        mixed = Crosstalk(coupling=0.3).perturb_activations(x, trial_rng(0, 0))
        assert mixed[0, 0] < 1.0
        assert np.all(mixed[0, 1:] > 0.0)
        assert mixed.sum() == pytest.approx(1.0)

    def test_crosstalk_from_db(self):
        assert Crosstalk.from_db(30.0).coupling == pytest.approx(1e-3)

    def test_link_loss_drift_static_vs_sampled(self):
        drift = LinkLossDrift(mean_db=0.5, sigma_db=0.25)
        assert drift.static_loss_db() == 0.5
        samples = [drift.sample_loss_db(trial_rng(3, t)) for t in range(64)]
        assert all(s >= 0.0 for s in samples)
        assert np.std(samples) > 0.0

    def test_spec_scaling_scales_every_model(self):
        spec = standard_noise().scaled(2.0)
        weight, phase, xtalk, drift = spec.models
        assert weight.sigma == pytest.approx(0.04)
        assert phase.sigma_rad == pytest.approx(0.04)
        assert drift.mean_db == pytest.approx(1.0)
        assert xtalk.coupling == pytest.approx(2 * 10 ** (-2.7))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            WeightEncodingError(sigma=-0.1)
        with pytest.raises(ValueError):
            Crosstalk(coupling=1.5)
        with pytest.raises(ValueError):
            LinkLossDrift(mean_db=-1.0)
        with pytest.raises(TypeError):
            NoiseSpec(("not a model",))
        with pytest.raises(ValueError):
            standard_noise().scaled(-1.0)


# -- receiver-limited quantization ------------------------------------------------------


class TestReceiverLimitedBits:
    def test_effective_caps_nominal(self):
        assert receiver_limited_bits(8, 5.9) == 5

    def test_nominal_caps_effective(self):
        assert receiver_limited_bits(4, 9.2) == 4

    def test_floors_at_one_bit(self):
        assert receiver_limited_bits(8, 0.0) == 1
        assert receiver_limited_bits(8, 0.7) == 1

    def test_unmodeled_receiver_passes_through(self):
        assert receiver_limited_bits(6, None) == 6
        assert receiver_limited_bits(6, float("inf")) == 6

    def test_nan_and_bad_nominal_raise(self):
        with pytest.raises(ValueError, match="NaN"):
            receiver_limited_bits(8, float("nan"))
        with pytest.raises(ValueError):
            receiver_limited_bits(0, 4.0)


# -- noisy forward ----------------------------------------------------------------------


class TestNoisyForward:
    def test_model_is_never_mutated(self, mc_model, mc_inputs):
        before = [layer.weight.copy() for layer in mc_model.layers
                  if hasattr(layer, "weight")]
        noisy_forward(mc_model, mc_inputs, standard_noise(), trial_rng(0, 0))
        after = [layer.weight for layer in mc_model.layers if hasattr(layer, "weight")]
        for w0, w1 in zip(before, after):
            assert np.array_equal(w0, w1)

    def test_ideal_spec_matches_reference(self, mc_model, mc_inputs):
        a = noisy_forward(mc_model, mc_inputs, IDEAL, effective_bits=6.5)
        b = reference_forward(mc_model, mc_inputs, effective_bits=6.5)
        assert np.array_equal(a, b)

    def test_noise_changes_outputs(self, mc_model, mc_inputs):
        clean = reference_forward(mc_model, mc_inputs)
        noisy = noisy_forward(
            mc_model, mc_inputs, standard_noise().scaled(2.0), trial_rng(0, 0)
        )
        assert not np.array_equal(clean, noisy)

    def test_model_fingerprint_tracks_weights(self, mc_inputs):
        a = build_mlp((8, 6, 4), rng=np.random.default_rng(0))
        b = build_mlp((8, 6, 4), rng=np.random.default_rng(0))
        c = build_mlp((8, 6, 4), rng=np.random.default_rng(1))
        assert model_fingerprint(a) == model_fingerprint(b)
        assert model_fingerprint(a) != model_fingerprint(c)

    def test_model_fingerprint_tracks_structural_state(self):
        """Weight-free layer attributes (pool sizes, norm scales) must key the digest."""
        from repro.onn.layers import BatchNorm2d, MaxPool2d, Sequential

        assert model_fingerprint(Sequential(MaxPool2d(2))) != model_fingerprint(
            Sequential(MaxPool2d(3))
        )
        plain = BatchNorm2d(4)
        scaled = BatchNorm2d(4)
        scaled.scale = scaled.scale * 2.0
        assert model_fingerprint(Sequential(plain)) != model_fingerprint(
            Sequential(scaled)
        )


# -- Monte Carlo over execution backends ------------------------------------------------


class TestMonteCarlo:
    def test_zero_noise_is_exact_fidelity(self, mc_model, mc_inputs):
        request = make_request(
            mc_model, mc_inputs, noise=standard_noise().scaled(0.0), trials=3
        )
        report = run_monte_carlo(request)
        assert report.accuracy_mean == 1.0
        assert report.rmse_mean == 0.0

    def test_reports_are_identical_across_backends(self, mc_model, mc_inputs):
        """The acceptance contract: per-trial seeding is backend-invariant."""
        link = LinkOperatingPoint(
            optical_power_mw=1.2, insertion_loss_db=6.0, bandwidth_ghz=5.0
        )
        reports = {
            backend: run_monte_carlo(
                make_request(mc_model, mc_inputs, backend=backend, jobs=jobs),
                link=link,
            )
            for backend, jobs in (("serial", None), ("threads", 4), ("processes", 2))
        }
        assert reports["threads"] == reports["serial"]
        assert reports["processes"] == reports["serial"]
        assert reports["serial"].accuracies  # per-trial values round-trip

    def test_aggregates_cover_per_trial_spread(self, mc_model, mc_inputs):
        report = run_monte_carlo(
            make_request(mc_model, mc_inputs, noise=standard_noise().scaled(2.0))
        )
        assert report.trials == 8
        assert len(report.accuracies) == 8
        assert report.accuracy_min <= report.accuracy_mean <= report.accuracy_max
        assert 0.0 <= report.accuracy_mean <= 1.0
        assert report.error_rate == pytest.approx(1.0 - report.accuracy_mean)

    def test_float_reference_measures_quantization_too(self, mc_model, mc_inputs):
        quantized = run_monte_carlo(
            make_request(mc_model, mc_inputs, noise=NoiseSpec()),
            input_bits=3, weight_bits=3, output_bits=3,
        )
        vs_float = run_monte_carlo(
            make_request(mc_model, mc_inputs, noise=NoiseSpec(), reference="float"),
            input_bits=3, weight_bits=3, output_bits=3,
        )
        assert quantized.accuracy_mean == 1.0  # fidelity to itself
        assert vs_float.accuracy_mean < 1.0    # 3-bit grids lose real accuracy
        assert vs_float.rmse_mean > 0.0

    def test_request_validation(self, mc_model, mc_inputs):
        with pytest.raises(ValueError, match="trials"):
            AccuracyRequest(mc_model, mc_inputs, trials=0)
        with pytest.raises(ValueError, match="reference"):
            AccuracyRequest(mc_model, mc_inputs, reference="digital")

    def test_fingerprint_excludes_backend(self, mc_model, mc_inputs):
        a = make_request(mc_model, mc_inputs, backend="serial")
        b = make_request(mc_model, mc_inputs, backend="processes", jobs=2)
        c = make_request(mc_model, mc_inputs, seed=8)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


# -- engine integration -----------------------------------------------------------------


class TestEngineAccuracyPasses:
    def test_run_accuracy_produces_finite_report(self, mc_model, mc_inputs):
        engine = EvaluationEngine(build_tempo())
        report = engine.run_accuracy(make_request(mc_model, mc_inputs))
        assert 0.0 <= report.accuracy_mean <= 1.0
        assert np.isfinite(report.effective_bits_nominal)

    def test_unchanged_triple_is_a_cache_hit(self, mc_model, mc_inputs):
        engine = EvaluationEngine(build_tempo())
        request = make_request(mc_model, mc_inputs)
        first = engine.run_accuracy(request)
        second = engine.run_accuracy(request)
        assert second is first
        stats = engine.cache.stats
        assert stats["mc_accuracy"].hits == 1
        assert stats["receiver_precision"].hits == 1

    def test_noise_spec_change_misses(self, mc_model, mc_inputs):
        engine = EvaluationEngine(build_tempo())
        engine.run_accuracy(make_request(mc_model, mc_inputs))
        engine.run_accuracy(
            make_request(mc_model, mc_inputs, noise=standard_noise().scaled(2.0))
        )
        assert engine.cache.stats["mc_accuracy"].misses == 2

    def test_disabled_cache_recomputes(self, mc_model, mc_inputs):
        engine = EvaluationEngine(build_tempo(), cache=EvaluationCache(enabled=False))
        request = make_request(mc_model, mc_inputs, trials=2)
        assert engine.run_accuracy(request) == engine.run_accuracy(request)

    def test_engine_snr_analyzer_reaches_monte_carlo(self, mc_model, mc_inputs):
        """A configured receiver noise model must drive the MC effective bits."""
        from repro.core.snr import SNRAnalyzer

        request = make_request(mc_model, mc_inputs, trials=2)
        default = EvaluationEngine(build_tempo()).run_accuracy(request)
        degraded_engine = EvaluationEngine(build_tempo())
        degraded_engine.snr_analyzer = SNRAnalyzer(rin_db_per_hz=-120.0)
        degraded = degraded_engine.run_accuracy(request)
        assert degraded.effective_bits_nominal < default.effective_bits_nominal
        assert degraded.effective_bits_mean < default.effective_bits_mean

    def test_nominal_bits_match_receiver_precision_pass(self, mc_model, mc_inputs):
        """mc_accuracy's nominal bits come from the receiver_precision SNR report."""
        engine = EvaluationEngine(build_tempo())
        request = make_request(mc_model, mc_inputs, trials=2)
        report = engine.run_accuracy(request)
        link = engine.link_budget_for(engine.single_arch)
        received_mw = link.laser_optical_power_mw * 10.0 ** (
            -(link.insertion_loss_db + request.noise.static_loss_db()) / 10.0
        )
        expected = engine.snr_analyzer.analyze_received_power(
            received_mw, engine.single_arch.config.frequency_ghz
        )
        assert report.effective_bits_nominal == expected.effective_bits

    def test_observer_sees_the_accuracy_passes(self, mc_model, mc_inputs):
        from repro.core.engine import observe_passes

        seen = []
        with observe_passes(lambda name, engine: seen.append(name)):
            EvaluationEngine(build_tempo()).run_accuracy(
                make_request(mc_model, mc_inputs, trials=2)
            )
        assert seen == ["receiver_precision", "mc_accuracy"]


# -- DSE integration --------------------------------------------------------------------


class TestAccuracyObjective:
    def test_points_carry_accuracy_and_error_rate(self, mc_model, mc_inputs):
        workloads = extract_workloads(mc_model, mc_inputs)
        explorer = DesignSpaceExplorer(
            build_tempo, workloads,
            accuracy=make_request(mc_model, mc_inputs, trials=4),
        )
        result = explorer.explore(DesignSpace({"input_bits": (4, 8)}))
        assert len(result.points) == 2
        for point in result.points:
            assert point.accuracy is not None
            assert 0.0 <= point.error_rate <= 1.0
            assert point.objective("error_rate") == pytest.approx(1 - point.accuracy)
        front = pareto_front(result.points, ("error_rate", "energy_uj"))
        assert 1 <= len(front) <= 2

    def test_missing_accuracy_objective_fails_loudly(self, mc_model, mc_inputs):
        workloads = extract_workloads(mc_model, mc_inputs)
        explorer = DesignSpaceExplorer(build_tempo, workloads)
        result = explorer.explore(DesignSpace({"input_bits": (4, 8)}))
        point = result.points[0]
        assert point.accuracy is None and point.error_rate is None
        with pytest.raises(ValueError, match="not evaluated"):
            point.objective("error_rate")
        with pytest.raises(ValueError, match="not evaluated"):
            pareto_front(result.points, ("error_rate", "energy_uj"))

    def test_backends_record_identical_accuracy_points(self, mc_model, mc_inputs):
        workloads = extract_workloads(mc_model, mc_inputs)
        space = DesignSpace({"input_bits": (4, 8)})

        def sweep(backend):
            explorer = DesignSpaceExplorer(
                build_tempo, workloads,
                accuracy=make_request(mc_model, mc_inputs, trials=4),
            )
            return explorer.explore(space, backend=backend, max_workers=2)

        serial = sweep("serial")
        assert sweep("threads").points == serial.points
        assert sweep("processes").points == serial.points

    def test_rejects_non_request_accuracy(self, mc_model, mc_inputs):
        workloads = extract_workloads(mc_model, mc_inputs)
        with pytest.raises(TypeError, match="AccuracyRequest"):
            DesignSpaceExplorer(build_tempo, workloads, accuracy="noisy")


# -- registered scenarios ---------------------------------------------------------------


class TestVariationScenarios:
    def test_robustness_table_is_byte_identical_across_backends(self):
        """Acceptance: same seed -> same Monte Carlo table on every backend."""
        serial = run_scenario("variation_robustness")
        threads = run_scenario(
            "variation_robustness", params={"backend": "threads", "jobs": "4"}
        )
        processes = run_scenario(
            "variation_robustness", params={"backend": "processes", "jobs": "2"}
        )
        assert threads.table == serial.table
        assert processes.table == serial.table

    def test_pareto_scenario_runs_through_repro_batch(self, tmp_path):
        """Acceptance: accuracy as a DSE objective, batch-run and persisted."""
        store = ResultStore(tmp_path / "store")
        report = BatchRunner(store=store).run(["accuracy_energy_pareto"])
        assert report.ok
        item = report.item("accuracy_energy_pareto")
        REGISTRY.verify("accuracy_energy_pareto", item.result)
        again = BatchRunner(store=store).run(["accuracy_energy_pareto"])
        assert again.all_from_store
        assert again.engine_passes == 0

    def test_precision_scenario_shows_the_saturating_curve(self):
        result = run_scenario("accuracy_vs_precision")
        REGISTRY.verify("accuracy_vs_precision", result)
        series = {int(k): v for k, v in result.metrics["series"].items()}
        assert series[8]["accuracy_mean"] > series[2]["accuracy_mean"]

    def test_workload_seed_params_change_inputs_without_source_edits(self):
        base = run_scenario("fig10b_data_aware")
        reseeded = run_scenario("fig10b_data_aware", params={"workload_seed": 8})
        assert base.table != reseeded.table
        assert base.params["workload_seed"] == 7
