"""Tests for the design-space exploration extension."""

import pytest

from repro.arch import ArchitectureConfig
from repro.arch.templates import build_tempo
from repro.dataflow.gemm import GEMMWorkload
from repro.explore import (
    DesignPoint,
    DesignSpace,
    DesignSpaceExplorer,
    pareto_front,
)


def make_point(**objectives) -> DesignPoint:
    defaults = dict(
        parameters={}, energy_uj=1.0, latency_ns=1.0, area_mm2=1.0,
        power_w=1.0, laser_power_mw=1.0, energy_per_mac_pj=1.0,
    )
    defaults.update(objectives)
    return DesignPoint(**defaults)


class TestDesignSpace:
    def test_grid_size(self):
        space = DesignSpace({"core_height": [2, 4], "num_wavelengths": [1, 2, 4]})
        assert space.size() == 6
        assert len(list(space.grid())) == 6

    def test_grid_contains_all_combinations(self):
        space = DesignSpace({"core_height": [2, 4], "core_width": [2, 8]})
        combos = {(g["core_height"], g["core_width"]) for g in space.grid()}
        assert combos == {(2, 2), (2, 8), (4, 2), (4, 8)}

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            DesignSpace({"warp_factor": [1, 2]})

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace({})
        with pytest.raises(ValueError):
            DesignSpace({"core_height": []})


class TestParetoFront:
    def test_single_point_is_front(self):
        point = make_point()
        assert pareto_front([point], ["energy_uj"]) == [point]

    def test_dominated_point_removed(self):
        good = make_point(energy_uj=1.0, latency_ns=1.0)
        bad = make_point(energy_uj=2.0, latency_ns=2.0)
        front = pareto_front([good, bad], ["energy_uj", "latency_ns"])
        assert front == [good]

    def test_tradeoff_points_both_kept(self):
        fast = make_point(energy_uj=2.0, latency_ns=1.0)
        frugal = make_point(energy_uj=1.0, latency_ns=2.0)
        front = pareto_front([fast, frugal], ["energy_uj", "latency_ns"])
        assert set(id(p) for p in front) == {id(fast), id(frugal)}

    def test_requires_objectives(self):
        with pytest.raises(ValueError):
            pareto_front([make_point()], [])

    def test_unknown_objective(self):
        with pytest.raises(KeyError):
            make_point().objective("speed_of_light")

    def test_dominates_is_strict(self):
        a = make_point(energy_uj=1.0)
        b = make_point(energy_uj=1.0)
        assert not a.dominates(b, ["energy_uj"])


class TestExplorer:
    @pytest.fixture()
    def explorer(self):
        workload = GEMMWorkload("g", m=64, k=16, n=64)
        base = ArchitectureConfig(num_tiles=1, cores_per_tile=1, core_height=2, core_width=2)
        return DesignSpaceExplorer(build_tempo, [workload], base_config=base)

    def test_evaluate_single_point(self, explorer):
        point = explorer.evaluate({"num_wavelengths": 2})
        assert point.energy_uj > 0
        assert point.latency_ns > 0
        assert point.area_mm2 > 0
        assert point.parameters == {"num_wavelengths": 2}

    def test_explore_grid(self, explorer):
        space = DesignSpace({"core_height": [2, 4], "num_wavelengths": [1, 2]})
        result = explorer.explore(space)
        assert len(result) == 4
        assert len(result.pareto_front()) >= 1
        assert len(result.pareto_front()) <= len(result)

    def test_best_by_objective(self, explorer):
        space = DesignSpace({"core_height": [2, 8]})
        result = explorer.explore(space)
        fastest = result.best("latency_ns")
        assert fastest.latency_ns == min(p.latency_ns for p in result.points)

    def test_bigger_cores_are_faster_but_larger(self, explorer):
        small = explorer.evaluate({"core_height": 2, "core_width": 2})
        large = explorer.evaluate({"core_height": 8, "core_width": 8})
        assert large.latency_ns < small.latency_ns
        assert large.area_mm2 > small.area_mm2

    def test_as_rows(self, explorer):
        result = explorer.explore(DesignSpace({"core_height": [2]}))
        rows = result.as_rows()
        assert len(rows) == 1
        assert "core_height=2" in rows[0][0]

    def test_best_on_empty_result_rejected(self):
        from repro.explore.dse import ExplorationResult

        with pytest.raises(ValueError):
            ExplorationResult().best("energy_uj")

    def test_requires_workloads(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(build_tempo, [])

    def test_rejects_non_workload_objects(self):
        with pytest.raises(TypeError):
            DesignSpaceExplorer(build_tempo, ["not a workload"])
