"""The cluster coordinator/worker backend: protocol, fault tolerance, determinism.

The contract under test: a ``--backend cluster`` run is byte-identical to a
serial run (same task encodings, deterministic chunk reassembly, per-trial
seed contracts), survives worker death mid-round by reassigning in-flight
chunks to survivors, and never depends on the *worker's* environment -- task
encodings carry the parent's forward/RNG/dtype modes.
"""

from __future__ import annotations

import dataclasses
import math
import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.exec import (
    ClusterBackend,
    ClusterTaskError,
    ProcessBackend,
    coordinator_for,
    parse_address,
    resolve_backend,
    run_worker,
    spawn_local_workers,
)
from repro.exec.cluster import PROTOCOL, recv_frame, send_frame
from repro.onn.layers import dtype_mode, forward_mode, pinned_modes
from repro.onn.models import build_mlp
from repro.scenarios import REGISTRY, BatchRunner
from repro.variation import (
    AccuracyRequest,
    reference_forward,
    run_monte_carlo,
    standard_noise,
)
from repro.variation.montecarlo import _run_trial_chunk, _TrialContext

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))


# -- task functions (module-level so subprocess workers can unpickle them) -------------


def _square(shared, task):
    return (shared or 0) + task * task


def _boom(shared, task):
    if task == 5:
        raise ValueError("task five exploded")
    return task


def _die_once(shared, task):
    """Kill this worker the first time the flagged task runs.

    The sentinel file makes the suicide one-shot: the reassigned attempt on a
    surviving worker sees the file and completes normally, so the final result
    list is still a pure function of the task encoding.
    """
    sentinel, value = task
    if sentinel is not None and not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 3


# -- helpers ---------------------------------------------------------------------------


@pytest.fixture()
def coordinator():
    coord = coordinator_for("127.0.0.1", 0)
    yield coord
    coord.close("shutdown")


def _thread_workers(coord, count):
    """In-process workers speaking the real TCP protocol (fast; no numpy import)."""
    threads = [
        threading.Thread(
            target=run_worker,
            args=(coord.host, coord.port),
            kwargs=dict(once=True, quiet=True),
            daemon=True,
        )
        for _ in range(count)
    ]
    for thread in threads:
        thread.start()
    return threads


def _spawn(coord, count, extra_env=None):
    env = {"PYTHONPATH": TESTS_DIR}
    if extra_env:
        env.update(extra_env)
    return spawn_local_workers(count, coord.host, coord.port, env=env)


def _reap(coord, processes):
    coord.close("shutdown")
    for process in processes:
        try:
            process.wait(timeout=15)
        except Exception:  # noqa: BLE001 - last resort
            process.terminate()
            process.wait(timeout=15)


def _backend(coord, jobs=2, wait_s=60.0):
    return ClusterBackend(jobs=jobs, host=coord.host, port=coord.port, wait_s=wait_s)


# -- protocol & scheduling (in-thread workers) -----------------------------------------


class TestClusterProtocol:
    def test_map_tasks_preserves_task_order(self, coordinator):
        _thread_workers(coordinator, 2)
        backend = _backend(coordinator)
        results = backend.map_tasks(_square, list(range(23)), shared=100)
        assert results == [100 + i * i for i in range(23)]

    def test_empty_task_list(self, coordinator):
        assert _backend(coordinator).map_tasks(_square, []) == []

    def test_task_errors_carry_the_remote_traceback(self, coordinator):
        _thread_workers(coordinator, 1)
        backend = _backend(coordinator, jobs=1)
        with pytest.raises(ClusterTaskError, match="task five exploded"):
            backend.map_tasks(_boom, list(range(8)))
        # The worker survives a task error: the next round still works.
        assert backend.map_tasks(_square, [1, 2, 3]) == [1, 4, 9]

    def test_rounds_reuse_connected_workers(self, coordinator):
        _thread_workers(coordinator, 2)
        backend = _backend(coordinator)
        for _ in range(3):
            assert backend.map_tasks(_square, list(range(9))) == [
                i * i for i in range(9)
            ]
        assert coordinator.worker_count == 2

    def test_unpicklable_tasks_fail_fast(self, coordinator):
        backend = _backend(coordinator)
        with pytest.raises(ValueError, match="picklable"):
            backend.map_tasks(lambda shared, task: task, [1, 2])

    def test_handshake_rejects_protocol_mismatch(self, coordinator):
        sock = socket.create_connection((coordinator.host, coordinator.port), timeout=5)
        try:
            send_frame(sock, ("hello", {"protocol": "repro-cluster/999", "pid": 1}))
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply[0] == "reject"
        assert "protocol mismatch" in reply[1]
        assert PROTOCOL in reply[1]

    def test_wait_for_workers_timeout_names_the_cli(self, coordinator):
        with pytest.raises(RuntimeError, match="repro worker --connect"):
            coordinator.wait_for_workers(1, timeout_s=0.2)

    def test_backend_registry_and_address_parsing(self):
        backend = resolve_backend("cluster", jobs=3)
        assert isinstance(backend, ClusterBackend)
        assert backend.jobs == 3
        assert parse_address("node7:7621") == ("node7", 7621)
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("7621")
        with pytest.raises(ValueError, match="integer"):
            parse_address("host:http")
        with pytest.raises(ValueError, match=r"\[1, 65535\]"):
            parse_address("host:99999")

    def test_worker_exits_zero_after_drain_and_one_without_coordinator(self):
        coord = coordinator_for("127.0.0.1", 0)
        outcome = {}

        def serve():
            outcome["rc"] = run_worker(
                coord.host, coord.port, retry_s=0.05,
                connect_timeout_s=0.5, quiet=True,
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        coord.wait_for_workers(1, 10.0)
        coord.close("drain")
        thread.join(timeout=10)
        assert outcome["rc"] == 0  # served one session, then no coordinator
        # A worker that never finds a coordinator reports failure.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        assert run_worker(
            "127.0.0.1", free_port, retry_s=0.05, connect_timeout_s=0.3, quiet=True
        ) == 1


# -- fault tolerance (subprocess workers) ----------------------------------------------


class TestClusterFaultTolerance:
    def test_killed_worker_mid_round_reassigns_its_chunks(self, tmp_path):
        coord = coordinator_for("127.0.0.1", 0)
        processes = _spawn(coord, 2)
        try:
            coord.wait_for_workers(2, 60.0)
            sentinel = str(tmp_path / "died")
            tasks = [(sentinel if i == 4 else None, i) for i in range(12)]
            results = _backend(coord).map_tasks(_die_once, tasks)
            assert results == [i * 3 for i in range(12)]
            assert os.path.exists(sentinel)  # the suicide actually happened
            assert coord.worker_count == 1  # and the victim is gone
            # The surviving fleet still serves later rounds.
            follow_up = _backend(coord, jobs=1).map_tasks(_square, [2, 3])
            assert follow_up == [4, 9]
        finally:
            _reap(coord, processes)


# -- end-to-end determinism (subprocess workers) ---------------------------------------


@pytest.fixture(scope="module")
def mc_model():
    return build_mlp((12, 16, 5), rng=np.random.default_rng(3))


@pytest.fixture(scope="module")
def mc_inputs():
    return np.random.default_rng(9).normal(size=(16, 12))


class TestClusterDeterminism:
    def test_monte_carlo_cluster_report_is_bit_identical_to_serial(
        self, mc_model, mc_inputs
    ):
        serial = run_monte_carlo(
            AccuracyRequest(
                mc_model, mc_inputs, noise=standard_noise(), trials=12, seed=7
            )
        )
        coord = coordinator_for("127.0.0.1", 0)
        processes = _spawn(coord, 2)
        try:
            coord.wait_for_workers(2, 60.0)
            clustered = run_monte_carlo(
                AccuracyRequest(
                    mc_model,
                    mc_inputs,
                    noise=standard_noise(),
                    trials=12,
                    seed=7,
                    backend=_backend(coord),
                )
            )
        finally:
            _reap(coord, processes)
        assert clustered == serial

    def test_batch_tables_and_pass_counts_match_serial(self):
        names = ["fig6_layout", "table1_taxonomy", "variation_robustness"]
        serial_report = BatchRunner(store=None).run(names)
        coord = coordinator_for("127.0.0.1", 0)
        processes = _spawn(coord, 2)
        try:
            coord.wait_for_workers(2, 60.0)
            cluster_report = BatchRunner(store=None, backend=_backend(coord)).run(names)
        finally:
            _reap(coord, processes)
        assert cluster_report.ok
        for serial_item, cluster_item in zip(serial_report.items, cluster_report.items):
            assert cluster_item.name == serial_item.name
            assert cluster_item.result.table == serial_item.result.table
        assert cluster_report.engine_passes == serial_report.engine_passes
        assert cluster_report.backend == "cluster"
        # Worker telemetry merged back exactly as the process backend does.
        assert cluster_report.pass_timings
        assert cluster_report.cache_stats


# -- mode pinning (the env-propagation satellite) --------------------------------------


def _trial_context(model, inputs, **overrides):
    spec = standard_noise()
    reference = reference_forward(
        model, inputs, input_bits=8, weight_bits=8, output_bits=8,
        effective_bits=math.inf,
    )
    fields = dict(
        model=model,
        inputs=np.asarray(inputs, dtype=float),
        reference=reference,
        spec=spec,
        input_bits=8,
        weight_bits=8,
        output_bits=8,
        seed=7,
        link=None,
        rng_mode="seedseq",
        forward_mode="vectorized",
        dtype_mode="float64",
    )
    fields.update(overrides)
    return _TrialContext(**fields)


class TestModePinning:
    def test_pinned_modes_override_and_restore(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORWARD", "vectorized")
        monkeypatch.setenv("REPRO_DTYPE", "float64")
        with pinned_modes("loop", "float32"):
            assert forward_mode() == "loop"
            assert dtype_mode() == "float32"
            with pinned_modes(dtype="float64"):  # nested pin, forward inherited
                assert forward_mode() == "loop"
                assert dtype_mode() == "float64"
            assert dtype_mode() == "float32"
        assert forward_mode() == "vectorized"
        assert dtype_mode() == "float64"

    def test_invalid_pins_fail_loudly(self):
        with pytest.raises(ValueError, match="forward mode"):
            with pinned_modes(forward="simd"):
                pass
        with pytest.raises(ValueError, match="dtype mode"):
            with pinned_modes(dtype="float16"):
                pass

    def test_trial_results_ignore_parent_env_flips_after_encoding(
        self, mc_model, mc_inputs, monkeypatch
    ):
        context = _trial_context(mc_model, mc_inputs)
        baseline = _run_trial_chunk(context, list(range(6)))
        # Sanity: the pinned dtype really is load-bearing -- a context encoded
        # in float32 mode must NOT reproduce the float64 baseline.
        flipped_context = dataclasses.replace(context, dtype_mode="float32")
        assert _run_trial_chunk(flipped_context, list(range(6))) != baseline
        # Flip the parent environment AFTER encoding: results must not move.
        monkeypatch.setenv("REPRO_FORWARD", "loop")
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        assert _run_trial_chunk(context, list(range(6))) == baseline

    def test_process_workers_ignore_their_inherited_env(
        self, mc_model, mc_inputs, monkeypatch
    ):
        """The regression the satellite names: encode tasks, flip the parent
        env, fan out over real worker processes (which inherit the flipped
        env), and require bit-identical results."""
        context = _trial_context(mc_model, mc_inputs)
        chunks = [list(range(3)), list(range(3, 6))]
        baseline = [_run_trial_chunk(context, chunk) for chunk in chunks]
        monkeypatch.setenv("REPRO_FORWARD", "loop")
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        nested = ProcessBackend(jobs=2).map_tasks(
            _run_trial_chunk, chunks, shared=context
        )
        assert nested == baseline
