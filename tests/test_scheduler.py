"""Tests for heterogeneous layer-to-sub-architecture mapping."""

import numpy as np
import pytest

from repro.arch.architecture import HeterogeneousArchitecture
from repro.dataflow.gemm import GEMMWorkload
from repro.dataflow.scheduler import HeterogeneousMapper
from repro.onn.workload import LayerWorkload


def _layer(name, layer_type, ptc=None):
    return LayerWorkload(
        gemm=GEMMWorkload(name, m=8, n=8, k=8, layer_type=layer_type),
        layer_name=name,
        layer_type=layer_type,
        ptc_type=ptc,
    )


@pytest.fixture()
def hybrid_system(scatter_arch, mzi_arch):
    system = HeterogeneousArchitecture(name="hybrid")
    system.add("scatter", scatter_arch)
    system.add("mzi_mesh", mzi_arch)
    return system


class TestRouting:
    def test_ptc_tag_wins(self, hybrid_system):
        mapper = HeterogeneousMapper(hybrid_system, type_rules={"conv": "mzi_mesh"})
        assignments = mapper.assign([_layer("conv1", "conv", ptc="scatter")])
        assert assignments[0].subarch_key == "scatter"

    def test_type_rule_used_without_tag(self, hybrid_system):
        mapper = HeterogeneousMapper(
            hybrid_system, type_rules={"conv": "scatter", "linear": "mzi_mesh"}
        )
        assignments = mapper.assign([_layer("conv1", "conv"), _layer("fc1", "linear")])
        assert assignments[0].subarch_key == "scatter"
        assert assignments[1].subarch_key == "mzi_mesh"

    def test_default_fallback(self, hybrid_system):
        mapper = HeterogeneousMapper(hybrid_system, default_subarch="mzi_mesh")
        assignments = mapper.assign([_layer("attn", "attention")])
        assert assignments[0].subarch_key == "mzi_mesh"

    def test_unknown_ptc_tag_falls_back(self, hybrid_system):
        mapper = HeterogeneousMapper(hybrid_system, default_subarch="scatter")
        assignments = mapper.assign([_layer("x", "linear", ptc="nonexistent")])
        assert assignments[0].subarch_key == "scatter"

    def test_assignment_carries_arch(self, hybrid_system, scatter_arch):
        mapper = HeterogeneousMapper(hybrid_system, type_rules={"conv": "scatter"})
        assignment = mapper.assign([_layer("conv1", "conv")])[0]
        assert assignment.arch is scatter_arch
        assert assignment.layer_name == "conv1"


class TestPartition:
    def test_partition_groups_by_subarch(self, hybrid_system):
        mapper = HeterogeneousMapper(
            hybrid_system, type_rules={"conv": "scatter", "linear": "mzi_mesh"}
        )
        groups = mapper.partition(
            [_layer("c1", "conv"), _layer("c2", "conv"), _layer("fc", "linear")]
        )
        assert len(groups["scatter"]) == 2
        assert len(groups["mzi_mesh"]) == 1

    def test_partition_contains_all_subarch_keys(self, hybrid_system):
        mapper = HeterogeneousMapper(hybrid_system)
        groups = mapper.partition([])
        assert set(groups) == {"scatter", "mzi_mesh"}


class TestValidation:
    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousMapper(HeterogeneousArchitecture(name="empty"))

    def test_bad_default_rejected(self, hybrid_system):
        with pytest.raises(KeyError):
            HeterogeneousMapper(hybrid_system, default_subarch="missing")

    def test_bad_rule_rejected(self, hybrid_system):
        with pytest.raises(KeyError):
            HeterogeneousMapper(hybrid_system, type_rules={"conv": "missing"})
