"""Tests for the TorchONN-lite layers: forward correctness and GEMM extraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.onn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    MultiHeadAttention,
    ReLU,
    Sequential,
)


class TestLinear:
    def test_forward_matches_numpy(self):
        layer = Linear(4, 3, name="fc")
        x = np.arange(4.0)
        expected = layer.weight @ x + layer.bias
        np.testing.assert_allclose(layer(x), expected)

    def test_batched_forward(self):
        layer = Linear(4, 3)
        x = np.ones((5, 4))
        assert layer(x).shape == (5, 3)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Linear(4, 3)(np.ones(5))

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert layer(np.zeros(4)) == pytest.approx(np.zeros(3))

    def test_extract_gemm_shape(self):
        layer = Linear(8, 6, name="fc")
        gemms, out = layer.extract_gemms(np.ones((10, 8)))
        assert len(gemms) == 1
        gemm = gemms[0]
        assert (gemm.m, gemm.k, gemm.n) == (10, 8, 6)
        assert gemm.weight_values.shape == (8, 6)
        assert gemm.input_values.shape == (10, 8)
        assert out.shape == (10, 6)

    def test_gemm_consistent_with_forward(self):
        layer = Linear(5, 4, name="fc")
        x = np.random.default_rng(0).normal(size=(3, 5))
        gemms, out = layer.extract_gemms(x)
        gemm = gemms[0]
        manual = gemm.input_values @ gemm.weight_values + layer.bias
        np.testing.assert_allclose(manual, out)

    def test_pruning_mask_applied(self):
        layer = Linear(4, 4, name="fc")
        layer.pruning_mask = np.zeros_like(layer.weight, dtype=bool)
        np.testing.assert_allclose(layer(np.ones(4)), layer.bias)

    def test_num_parameters(self):
        assert Linear(4, 3).num_parameters() == 4 * 3 + 3
        assert Linear(4, 3, bias=False).num_parameters() == 12

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(3, 8, 3, padding=1, name="conv")
        out = conv(np.random.default_rng(0).normal(size=(3, 16, 16)))
        assert out.shape == (8, 16, 16)

    def test_stride_and_padding(self):
        conv = Conv2d(1, 1, 3, stride=2, padding=1)
        out = conv(np.ones((1, 8, 8)))
        assert out.shape == (1, 4, 4)

    def test_identity_kernel(self):
        conv = Conv2d(1, 1, 1, bias=False, name="id")
        conv.weight = np.ones((1, 1, 1, 1))
        x = np.random.default_rng(1).normal(size=(1, 5, 5))
        np.testing.assert_allclose(conv(x), x)

    def test_matches_explicit_convolution(self):
        rng = np.random.default_rng(2)
        conv = Conv2d(2, 3, 3, padding=0, bias=False, name="conv")
        x = rng.normal(size=(2, 6, 6))
        out = conv(x)
        # Explicit loop-based reference for one output position.
        ref = sum(
            (x[c, 1:4, 2:5] * conv.weight[1, c]).sum() for c in range(2)
        )
        assert out[1, 1, 2] == pytest.approx(ref)

    def test_too_small_input_raises(self):
        conv = Conv2d(1, 1, 5)
        with pytest.raises(ValueError):
            conv(np.ones((1, 3, 3)))

    def test_wrong_channels_raises(self):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3)(np.ones((1, 8, 8)))

    def test_extract_gemm_im2col_dims(self):
        conv = Conv2d(3, 8, 3, padding=1, name="conv")
        gemms, out = conv.extract_gemms(np.ones((3, 10, 10)))
        gemm = gemms[0]
        assert gemm.m == 100          # output pixels
        assert gemm.k == 3 * 3 * 3    # im2col patch
        assert gemm.n == 8            # output channels
        assert gemm.layer_type == "conv"
        assert out.shape == (8, 10, 10)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Conv2d(1, 1, 0)
        with pytest.raises(ValueError):
            Conv2d(1, 1, 3, stride=0)


class TestAttention:
    def test_forward_shape(self):
        attn = MultiHeadAttention(16, 4, name="attn")
        x = np.random.default_rng(0).normal(size=(6, 16))
        assert attn(x).shape == (6, 16)

    def test_requires_divisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_input_shape_check(self):
        attn = MultiHeadAttention(16, 4)
        with pytest.raises(ValueError):
            attn(np.ones((6, 8)))

    def test_extract_gemm_count(self):
        heads = 4
        attn = MultiHeadAttention(16, heads, name="attn")
        gemms, _ = attn.extract_gemms(np.random.default_rng(0).normal(size=(6, 16)))
        # 3 projections + out projection + QK^T and AV per head
        assert len(gemms) == 4 + 2 * heads

    def test_dynamic_gemms_not_weight_static(self):
        attn = MultiHeadAttention(16, 2, name="attn")
        gemms, _ = attn.extract_gemms(np.random.default_rng(0).normal(size=(5, 16)))
        dynamic = [g for g in gemms if g.layer_type == "attention"]
        assert dynamic and all(not g.weight_static for g in dynamic)
        projections = [g for g in gemms if g.layer_type == "linear"]
        assert projections and all(g.weight_static for g in projections)

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(1).normal(size=(4, 7))
        soft = MultiHeadAttention._softmax(x)
        np.testing.assert_allclose(soft.sum(axis=-1), np.ones(4))


class TestActivationsAndPooling:
    def test_relu(self):
        np.testing.assert_allclose(ReLU()(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_gelu_sign_and_magnitude(self):
        gelu = GELU()
        assert gelu(np.array([5.0]))[0] == pytest.approx(5.0, abs=1e-2)
        assert abs(gelu(np.array([-5.0]))[0]) < 1e-2

    def test_flatten(self):
        assert Flatten()(np.ones((2, 3, 4))).shape == (24,)

    def test_maxpool(self):
        x = np.arange(16.0).reshape(1, 4, 4)
        out = MaxPool2d(2)(x)
        assert out.shape == (1, 2, 2)
        assert out[0, 0, 0] == 5.0

    def test_avgpool(self):
        x = np.ones((2, 4, 4))
        np.testing.assert_allclose(AvgPool2d(2)(x), np.ones((2, 2, 2)))

    def test_batchnorm_affine(self):
        bn = BatchNorm2d(2)
        bn.scale = np.array([2.0, 1.0])
        bn.shift = np.array([0.0, 1.0])
        x = np.ones((2, 2, 2))
        out = bn(x)
        assert out[0].max() == 2.0
        assert out[1].min() == 2.0

    def test_batchnorm_channel_check(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(np.ones((2, 4, 4)))

    def test_layernorm_normalizes(self):
        ln = LayerNorm(8)
        x = np.random.default_rng(0).normal(2.0, 3.0, size=(5, 8))
        out = ln(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)


class TestSequential:
    def test_forward_composition(self):
        model = Sequential(Linear(4, 8, name="a"), ReLU(), Linear(8, 2, name="b"))
        assert model(np.ones(4)).shape == (2,)

    def test_extract_gemms_from_all_layers(self):
        model = Sequential(Linear(4, 8, name="a"), ReLU(), Linear(8, 2, name="b"))
        gemms, out = model.extract_gemms(np.ones(4))
        assert [g.name for g in gemms] == ["a", "b"]
        assert out.shape == (2,)

    def test_len_and_getitem(self):
        model = Sequential(Linear(4, 4, name="a"), ReLU())
        assert len(model) == 2
        assert model[0].name == "a"

    def test_rejects_non_modules(self):
        with pytest.raises(TypeError):
            Sequential(Linear(2, 2), "not a layer")

    def test_modules_iterates_children(self):
        model = Sequential(Linear(4, 4, name="a"), Sequential(Linear(4, 4, name="b")))
        names = [m.name for m in model.modules() if isinstance(m, Linear)]
        assert names == ["a", "b"]

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    def test_gemm_macs_match_dimensions(self, m, k, n):
        layer = Linear(k, n, name="fc")
        gemms, _ = layer.extract_gemms(np.ones((m, k)))
        assert gemms[0].num_macs == m * k * n
