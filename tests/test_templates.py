"""Tests for the template architectures (TeMPO, MZI mesh, SCATTER, LT, MRR, butterfly, PCM)."""

import pytest

from repro.arch import ArchitectureConfig, Dataflow, Role
from repro.arch.templates import (
    TEMPLATE_BUILDERS,
    build_butterfly_mesh,
    build_lightening_transformer,
    build_mrr_weight_bank,
    build_mzi_mesh,
    build_pcm_crossbar,
    build_scatter,
    build_tempo,
)


class TestAllTemplates:
    @pytest.mark.parametrize("name, builder", sorted(TEMPLATE_BUILDERS.items()))
    def test_builds_and_validates(self, name, builder):
        arch = builder()
        assert arch.total_device_count() > 0
        assert arch.critical_path_loss_db() > 0
        assert arch.macs_per_cycle() >= 1

    @pytest.mark.parametrize("name, builder", sorted(TEMPLATE_BUILDERS.items()))
    def test_has_source_and_detector(self, name, builder):
        arch = builder()
        assert arch.instances_by_role(Role.LIGHT_SOURCE)
        assert arch.instances_by_role(Role.DETECTION)
        assert arch.instances_by_role(Role.READOUT)

    @pytest.mark.parametrize("name, builder", sorted(TEMPLATE_BUILDERS.items()))
    def test_counts_scale_with_tiles(self, name, builder):
        small = builder(config=ArchitectureConfig(num_tiles=1), name=f"{name}_1")
        large = builder(config=ArchitectureConfig(num_tiles=4), name=f"{name}_4")
        assert large.total_device_count() > small.total_device_count()


class TestTempoTemplate:
    def test_default_matches_paper_validation_setting(self):
        arch = build_tempo()
        cfg = arch.config
        assert (cfg.num_tiles, cfg.cores_per_tile, cfg.core_height, cfg.core_width) == (2, 2, 4, 4)
        assert cfg.frequency_ghz == 5.0

    def test_scaling_rules(self):
        arch = build_tempo()
        counts = arch.device_counts()
        cfg = arch.config
        nodes = cfg.num_nodes
        assert counts["node"] == nodes
        assert counts["pd"] == nodes
        assert counts["dac_a"] == cfg.num_tiles * cfg.core_height * cfg.num_wavelengths
        assert counts["dac_b"] == (
            cfg.num_tiles * cfg.cores_per_tile * cfg.core_width * cfg.num_wavelengths
        )
        assert counts["adc"] == cfg.num_tiles * cfg.core_height * cfg.core_width
        assert counts["integrator"] == counts["adc"]

    def test_output_stationary_dynamic(self):
        arch = build_tempo()
        assert arch.dataflow.stationary is Dataflow.OUTPUT_STATIONARY
        assert arch.taxonomy.num_forwards == 1
        assert arch.weight_reconfig_cycles() == 0

    def test_node_netlist_is_fig6_block(self):
        arch = build_tempo()
        assert arch.node_netlist is not None
        assert len(arch.node_netlist) == 5
        assert arch.node_footprint_sum_um2() > 0

    def test_wavelength_scaling_adds_encoders(self):
        one = build_tempo(config=ArchitectureConfig(num_wavelengths=1), name="wdm1")
        four = build_tempo(config=ArchitectureConfig(num_wavelengths=4), name="wdm4")
        assert four.device_counts()["mzm_a"] == 4 * one.device_counts()["mzm_a"]
        # Readout does not scale with wavelengths (spectral summation on the PD).
        assert four.device_counts()["adc"] == one.device_counts()["adc"]


class TestMZIMeshTemplate:
    def test_clements_scaling_rule(self):
        arch = build_mzi_mesh(config=ArchitectureConfig(core_height=4, core_width=4))
        counts = arch.device_counts()
        r, c, h, w = 2, 2, 4, 4
        assert counts["mzi_u"] == r * c * h * (h - 1) // 2
        assert counts["mzi_v"] == r * c * w * (w - 1) // 2
        assert counts["mzi_sigma"] == r * c * min(h, w)

    def test_weight_stationary_with_reconfig(self):
        arch = build_mzi_mesh()
        assert arch.dataflow.stationary is Dataflow.WEIGHT_STATIONARY
        assert arch.dataflow.weight_reuse_requires_reconfig
        assert arch.weight_reconfig_cycles() > 0

    def test_non_square_mesh(self):
        arch = build_mzi_mesh(
            config=ArchitectureConfig(core_height=6, core_width=3), name="rect"
        )
        counts = arch.device_counts()
        assert counts["mzi_sigma"] == 2 * 2 * 3


class TestScatterTemplate:
    def test_phase_shifter_per_weight(self):
        arch = build_scatter()
        assert arch.device_counts()["phase_shifter"] == arch.config.num_nodes

    def test_phase_shifter_is_data_dependent(self):
        arch = build_scatter()
        ps = arch.instance("phase_shifter")
        assert ps.data_dependent
        assert ps.operand == "B"

    def test_custom_p_pi(self):
        arch = build_scatter(p_pi_mw=10.0)
        assert arch.library["phase_shifter"].nominal_power_mw() == pytest.approx(10.0)


class TestLighteningTransformer:
    def test_default_matches_fig8_setting(self):
        arch = build_lightening_transformer()
        cfg = arch.config
        assert (cfg.num_tiles, cfg.cores_per_tile) == (4, 2)
        assert (cfg.core_height, cfg.core_width) == (12, 12)
        assert cfg.num_wavelengths == 12
        assert cfg.frequency_ghz == 5.0

    def test_supports_dynamic_matmul(self):
        arch = build_lightening_transformer()
        assert arch.taxonomy.supports_dynamic_matmul()

    def test_uses_comb_source(self):
        arch = build_lightening_transformer()
        assert arch.instance("comb").device == "microcomb"


class TestOtherTaxonomyRows:
    def test_mrr_bank_two_forwards(self):
        arch = build_mrr_weight_bank()
        assert arch.forwards_per_output == 2
        assert arch.device_counts()["mrr_weight"] == arch.config.num_nodes

    def test_pcm_crossbar_four_forwards_and_reconfig(self):
        arch = build_pcm_crossbar()
        assert arch.forwards_per_output == 4
        assert arch.weight_reconfig_time_ns() >= 100.0
        assert arch.weight_reconfig_cycles() > 0

    def test_butterfly_log_depth_cell_count(self):
        arch = build_butterfly_mesh(
            config=ArchitectureConfig(num_tiles=1, cores_per_tile=1, core_height=8, core_width=8),
            name="bfly8",
        )
        # (H/2) * log2(H) = 4 * 3 = 12 cells for an 8-port butterfly.
        assert arch.device_counts()["butterfly_cell"] == 12
