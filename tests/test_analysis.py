"""The ``repro lint`` static-analysis subsystem: rules, baseline, CLI, self-lint."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    BASELINE_SCHEMA,
    LINT_SCHEMA,
    apply_baseline,
    lint_paths,
    load_baseline,
    parse_module,
    rule_ids,
    write_baseline,
)
from repro.analysis.walker import default_lint_paths
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def lint_fixture(*names, rules=None):
    return lint_paths([FIXTURES / name for name in names], rule_filter=rules)


def findings_for(*names, rules=None):
    return lint_fixture(*names, rules=rules).findings


# -- rule registry ---------------------------------------------------------------------


def test_all_five_rules_registered():
    assert rule_ids() == ("R001", "R002", "R003", "R004", "R005")


def test_unknown_rule_filter_is_actionable():
    with pytest.raises(ValueError, match="unknown rule"):
        lint_fixture("r001_good.py", rules=["R999"])


# -- R001 determinism ------------------------------------------------------------------


def test_r001_flags_global_rng_wall_clock_and_unseeded():
    findings = findings_for("r001_bad.py", rules=["R001"])
    messages = [f.message for f in findings]
    assert len(findings) == 4
    assert any("numpy.random.normal" in m for m in messages)
    assert any("random.random" in m for m in messages)
    assert any("unseeded numpy.random.default_rng" in m for m in messages)
    assert any("wall-clock read time.time" in m for m in messages)


def test_r001_clean_on_seeded_code():
    assert findings_for("r001_good.py", rules=["R001"]) == []


def test_r001_scope_excludes_non_deterministic_packages():
    assert findings_for("r001_out_of_scope.py", rules=["R001"]) == []


# -- R002 fingerprint completeness -----------------------------------------------------


def test_r002_catches_key_omitted_read():
    findings = findings_for("r002_bad.py", rules=["R002"])
    assert len(findings) == 1
    assert "reads nominal" in findings[0].message
    assert findings[0].file == "src/repro/core/engine.py"


def test_r002_clean_when_key_covers_reads():
    assert findings_for("r002_good.py", rules=["R002"]) == []


# -- R003 env-knob pinning -------------------------------------------------------------


def test_r003_catches_raw_environ_reads():
    findings = findings_for("r003_bad_read.py", rules=["R003"])
    assert len(findings) == 2
    assert any("os.environ.get" in f.message for f in findings)
    assert any("os.environ['REPRO_BETA']" in f.message for f in findings)


def test_r003_cross_checks_registry():
    findings = findings_for(
        "r003_knobs.py", "r003_bad_unregistered.py", "r003_good.py", rules=["R003"]
    )
    assert [f.message for f in findings] == [
        "unregistered knob literal REPRO_NOT_DECLARED"
    ]
    assert findings[0].file == "src/repro/onn/widths_bad.py"


def test_r003_flags_hand_maintained_snapshot():
    findings = findings_for("r003_knobs.py", "r003_bad_snapshot.py", rules=["R003"])
    assert any("hand-maintained knob literal" in f.message for f in findings)


def test_r003_clean_on_registry_routed_reads():
    assert findings_for("r003_knobs.py", "r003_good.py", rules=["R003"]) == []


# -- R004 picklability -----------------------------------------------------------------


def test_r004_flags_lambdas_locks_and_handles():
    findings = findings_for("r004_bad.py", rules=["R004"])
    messages = [f.message for f in findings]
    assert any("lambda captured" in m for m in messages)
    assert any("default_factory threading.Lock" in m for m in messages)
    assert any("threading.Lock() stored" in m for m in messages)
    assert any("open() stored" in m for m in messages)


def test_r004_clean_on_plain_data_classes():
    assert findings_for("r004_good.py", rules=["R004"]) == []


def test_r004_flags_raw_shared_memory_on_task_classes():
    findings = findings_for("r004_bad.py", "r004_bad_shm.py", rules=["R004"])
    messages = [f.message for f in findings]
    assert any(
        "raw SharedMemory segment stored" in m and "ShardedArrayContext" in m
        for m in messages
    )
    assert any(
        "raw SharedMemory field declared" in m and "SliceTaskContext" in m
        for m in messages
    )
    assert any(
        "raw SharedMemory segment stored" in m and "SliceTask" in m
        for m in messages
    )


def test_r004_clean_on_shm_handle_fields():
    assert findings_for("r004_good_shm.py", rules=["R004"]) == []


# -- R005 frozen state -----------------------------------------------------------------


def test_r005_flags_unguarded_mutations():
    findings = findings_for("r005_bad.py", rules=["R005"])
    assert len(findings) == 3
    assert {f.message.split()[2] for f in findings} == {"_CACHE", "_PENDING"}


def test_r005_clean_on_guarded_mutations():
    assert findings_for("r005_good.py", rules=["R005"]) == []


# -- walker: fixtures, suppressions ----------------------------------------------------


def test_fixture_directive_overrides_effective_path():
    module = parse_module(FIXTURES / "r002_bad.py")
    assert module.is_fixture
    assert module.effective_path == "src/repro/core/engine.py"


def test_directory_walks_skip_fixture_files():
    report = lint_paths([FIXTURES])
    assert report.modules == []
    assert report.findings == []


def test_suppression_pragma_silences_one_line(tmp_path):
    victim = tmp_path / "memo.py"
    victim.write_text(
        "# repro-lint-fixture: src/repro/core/memo.py\n"
        "_CACHE = {}\n"
        "def remember(key, value):\n"
        "    _CACHE[key] = value  # repro-lint: ignore[R005]\n"
        "def forget(key):\n"
        "    _CACHE.pop(key, None)\n"
    )
    findings = lint_paths([victim], rule_filter=["R005"]).findings
    assert len(findings) == 1
    assert findings[0].line == 6


def test_parse_failure_is_reported_not_fatal(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    report = lint_paths([broken])
    assert report.findings == []
    assert len(report.parse_failures) == 1
    assert "syntax error" in report.parse_failures[0].message


# -- baseline --------------------------------------------------------------------------


def test_baseline_round_trip_add_then_expire(tmp_path):
    findings = findings_for("r005_bad.py", rules=["R005"])
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings)

    payload = json.loads(baseline_path.read_text())
    assert payload["schema"] == BASELINE_SCHEMA

    baseline = load_baseline(baseline_path)
    new, expired = apply_baseline(findings, baseline)
    assert new == []
    assert expired == []

    # Every finding sharing one baseline key fixed: the entry expires; the
    # rest still absorb (entries match on (rule, file, message), not line).
    fixed_key = findings[0].baseline_key()
    remaining = [f for f in findings if f.baseline_key() != fixed_key]
    new, expired = apply_baseline(remaining, baseline)
    assert new == []
    assert expired == [fixed_key]

    # A brand-new finding is never absorbed.
    fresh = findings_for("r001_bad.py", rules=["R001"])
    new, _ = apply_baseline(list(findings) + fresh, baseline)
    assert sorted(f.baseline_key() for f in new) == sorted(
        f.baseline_key() for f in fresh
    )


def test_baseline_rejects_wrong_schema(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"schema": "nope/9", "entries": []}))
    with pytest.raises(ValueError, match="expected schema"):
        load_baseline(bad)


# -- CLI -------------------------------------------------------------------------------


def test_cli_lint_json_schema(capsys):
    code = main(["lint", str(FIXTURES / "r005_bad.py"), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["schema"] == LINT_SCHEMA
    assert payload["counts"] == {"R005": 3}
    assert payload["rules"] == ["R001", "R002", "R003", "R004", "R005"]
    assert all(
        set(f) == {"rule", "file", "line", "message", "suggestion"}
        for f in payload["findings"]
    )


def test_cli_lint_baseline_gates_and_updates(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    target = str(FIXTURES / "r005_bad.py")

    code = main(["lint", target, "--baseline", str(baseline), "--update-baseline"])
    capsys.readouterr()
    assert code == 0

    assert main(["lint", target, "--baseline", str(baseline)]) == 0
    capsys.readouterr()

    # Without the baseline the same findings fail the run.
    assert main(["lint", target]) == 1
    capsys.readouterr()

    # A baseline entry that no longer matches anything also fails the run.
    code = main(
        ["lint", str(FIXTURES / "r005_good.py"), "--baseline", str(baseline)]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "no longer matches" in out


def test_cli_lint_rule_filter(capsys):
    code = main(["lint", str(FIXTURES / "r001_bad.py"), "--rule", "R005"])
    out = capsys.readouterr().out
    assert code == 0
    assert "rules R005" in out


def test_cli_lint_unknown_rule_exits_2(capsys):
    assert main(["lint", "--rule", "R999"]) == 2


def test_cli_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R001", "R002", "R003", "R004", "R005"):
        assert rule_id in out


# -- the repo lints itself -------------------------------------------------------------


def test_repo_lints_clean_with_empty_baseline():
    report = lint_paths(default_lint_paths())
    assert report.parse_failures == []
    assert report.findings == []
