# repro-lint-fixture: src/repro/exec/tasks_good.py
"""R004 good fixture: plain data fields only; builtin factories are fine."""

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class ShardTaskContext:
    seed: int
    trials: Tuple[int, ...] = ()
    options: Dict[str, str] = field(default_factory=dict)


class ShardTask:
    def __init__(self, seed):
        self.seed = int(seed)
