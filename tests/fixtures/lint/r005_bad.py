# repro-lint-fixture: src/repro/core/memo_bad.py
"""R005 bad fixture: module-level cache mutated with no lock in sight."""

_CACHE = {}
_PENDING = []


def remember(key, value):
    _CACHE[key] = value


def enqueue(item):
    _PENDING.append(item)


def forget(key):
    del _CACHE[key]
