# repro-lint-fixture: src/repro/core/memo_good.py
"""R005 good fixture: lock-guarded mutations, local shadows, import-time setup."""

import threading

_CACHE = {}
_CACHE_LOCK = threading.Lock()

_CACHE["seeded-at-import"] = True  # module level: single-threaded, exempt


def remember(key, value):
    with _CACHE_LOCK:
        _CACHE[key] = value


def forget(key):
    with _CACHE_LOCK:
        _CACHE.pop(key, None)


def local_shadow():
    _CACHE = {}
    _CACHE["local"] = 1  # a plain local, not the module global
    return _CACHE
