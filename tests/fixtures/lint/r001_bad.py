# repro-lint-fixture: src/repro/variation/noise_bad.py
"""R001 bad fixture: global-RNG draws, unseeded construction, wall clock."""

import random
import time

import numpy as np


def draw():
    a = np.random.normal(0.0, 1.0)
    b = random.random()
    rng = np.random.default_rng()
    stamp = time.time()
    return a, b, rng, stamp
