# repro-lint-fixture: src/repro/exec/tasks_shm_good.py
"""R004 good fixture: shm payloads travel as ShmHandle, never raw segments."""

from dataclasses import dataclass
from typing import Optional

from repro.exec.shm import ShmHandle


@dataclass(frozen=True)
class SliceTaskContext:
    payload: Optional[ShmHandle] = None


class SliceTask:
    def __init__(self, payload):
        self.payload = payload
