# repro-lint-fixture: src/repro/scenarios/report_helper.py
"""R001 scope fixture: the same draws outside the deterministic packages."""

import numpy as np


def jitter():
    return np.random.normal(0.0, 1.0)
