# repro-lint-fixture: src/repro/exec/tasks_bad.py
"""R004 bad fixture: lambdas, locks and handles on shipped task classes."""

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ShardTaskContext:
    transform: object = field(default_factory=lambda: None)
    guard: object = field(default_factory=threading.Lock)


class ShardTask:
    def __init__(self, path):
        self.lock = threading.Lock()
        self.handle = open(path)


class ShardedArrayContext:
    def __init__(self, name):
        from multiprocessing.shared_memory import SharedMemory

        self.segment = SharedMemory(name=name)
