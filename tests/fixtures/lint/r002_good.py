# repro-lint-fixture: src/repro/core/engine.py
"""R002 good fixture: everything compute reads is in the key."""


class AccuracyPass:
    name = "accuracy"

    def run(self, ctx, cache):
        request = ctx.accuracy_request
        bits = (ctx.config.input_bits, ctx.config.weight_bits)
        nominal = ctx.snr_reports.get("arch")

        def compute():
            return simulate(request, bits, nominal)

        key = fingerprint(request.fingerprint(), bits, nominal)
        ctx.result = cache.get_or_compute(self.name, key, compute)


def simulate(request, bits, nominal):
    return (request, bits, nominal)


def fingerprint(*parts):
    return parts
