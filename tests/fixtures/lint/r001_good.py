# repro-lint-fixture: src/repro/variation/noise_good.py
"""R001 good fixture: every stream is seeded, timers are monotonic."""

import time

import numpy as np


def draw(seed: int):
    rng = np.random.default_rng(seed)
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=(0,))
    started = time.perf_counter()
    return rng.standard_normal(4), sequence, time.perf_counter() - started
