# repro-lint-fixture: src/repro/exec/shard_good.py
"""R003 good fixture: registered literals, reads through the registry."""

from repro.core.knobs import raw_value

ALPHA_ENV = "REPRO_ALPHA"


def shard_count():
    return raw_value(ALPHA_ENV) or raw_value("REPRO_BETA")
