# repro-lint-fixture: src/repro/core/engine.py
"""R002 bad fixture: the key omits ``nominal`` although compute reads it.

Models the mc_accuracy bug this PR fixed: two contexts with identical
request/bits but different SNR reports would serve each other's study.
"""


class AccuracyPass:
    name = "accuracy"

    def run(self, ctx, cache):
        request = ctx.accuracy_request
        bits = (ctx.config.input_bits, ctx.config.weight_bits)
        nominal = ctx.snr_reports.get("arch")

        def compute():
            return simulate(request, bits, nominal)

        key = fingerprint(request.fingerprint(), bits)
        ctx.result = cache.get_or_compute(self.name, key, compute)


def simulate(request, bits, nominal):
    return (request, bits, nominal)


def fingerprint(*parts):
    return parts
