# repro-lint-fixture: src/repro/core/knobs.py
"""R003 registry fixture: a miniature knobs module declaring two knobs."""


def register(name, **kwargs):
    return name


register("REPRO_ALPHA", type="int", affects_numerics=True)
register("REPRO_BETA", default="fast")
