# repro-lint-fixture: src/repro/exec/snapshot_bad.py
"""R003 bad fixture: a hand-maintained snapshot (the PR-7 bug class)."""

import os


def repro_env_snapshot():
    snapshot = {}
    for name in ("REPRO_ALPHA", "REPRO_BETA"):
        raw = os.environ.get(name)
        if raw is not None:
            snapshot[name] = raw
    return snapshot
