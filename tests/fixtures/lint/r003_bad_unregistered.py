# repro-lint-fixture: src/repro/onn/widths_bad.py
"""R003 bad fixture: an exact REPRO_* literal no register() call declares."""

WIDTH_ENV = "REPRO_NOT_DECLARED"
