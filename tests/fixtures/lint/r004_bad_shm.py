# repro-lint-fixture: src/repro/exec/tasks_shm_bad.py
"""R004 bad fixture: raw SharedMemory fields on shipped task classes."""

from dataclasses import dataclass
from multiprocessing.shared_memory import SharedMemory
from typing import Optional


@dataclass(frozen=True)
class SliceTaskContext:
    segment: Optional[SharedMemory] = None


class SliceTask:
    def __init__(self, name):
        self.segment = SharedMemory(name=name)
