# repro-lint-fixture: src/repro/exec/shard_bad.py
"""R003 bad fixture: raw environment reads of registered knobs."""

import os


def shard_count():
    raw = os.environ.get("REPRO_ALPHA")
    forced = os.environ["REPRO_BETA"]
    return raw, forced
