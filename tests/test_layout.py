"""Tests for the signal-flow-aware floorplanner and layout-aware area estimation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.templates.tempo import tempo_node_netlist
from repro.devices import DeviceLibrary
from repro.layout import SignalFlowFloorplanner, naive_footprint_sum_um2
from repro.netlist import Netlist


@pytest.fixture()
def tempo_node():
    return tempo_node_netlist()


@pytest.fixture()
def tempo_library():
    from repro.arch.templates import build_tempo

    return build_tempo().library


class TestNaiveSum:
    def test_matches_manual_sum(self, tempo_node, tempo_library):
        expected = sum(
            tempo_library.get(inst.device).area_um2
            for inst in tempo_node.instances.values()
        )
        assert naive_footprint_sum_um2(tempo_node, tempo_library) == pytest.approx(expected)

    def test_empty_netlist(self, tempo_library):
        assert naive_footprint_sum_um2(Netlist(), tempo_library) == 0.0


class TestFloorplanner:
    def test_bounding_box_exceeds_footprint_sum(self, tempo_node, tempo_library):
        planner = SignalFlowFloorplanner()
        result = planner.plan(tempo_node, tempo_library)
        assert result.area_um2 > naive_footprint_sum_um2(tempo_node, tempo_library)

    def test_fig6_gap_magnitude(self, tempo_node, tempo_library):
        """The paper's Fig. 6: the naive sum underestimates the node area ~3-4x."""
        planner = SignalFlowFloorplanner(device_spacing_um=5.0, boundary_um=10.0)
        planned = planner.area_um2(tempo_node, tempo_library)
        naive = naive_footprint_sum_um2(tempo_node, tempo_library)
        assert 2.5 <= planned / naive <= 5.0

    def test_every_instance_placed_once(self, tempo_node, tempo_library):
        result = SignalFlowFloorplanner().plan(tempo_node, tempo_library)
        placed = [p.instance for p in result.placements]
        assert sorted(placed) == sorted(tempo_node.instances)

    def test_placements_inside_bounding_box(self, tempo_node, tempo_library):
        result = SignalFlowFloorplanner().plan(tempo_node, tempo_library)
        for placement in result.placements:
            assert placement.x_um >= 0
            assert placement.y_um >= 0
            assert placement.x_um + placement.width_um <= result.width_um + 1e-9
            assert placement.y_um + placement.height_um <= result.height_um + 1e-9

    def test_no_overlaps(self, tempo_node, tempo_library):
        result = SignalFlowFloorplanner().plan(tempo_node, tempo_library)

        def overlap(a, b):
            return not (
                a.x_um + a.width_um <= b.x_um
                or b.x_um + b.width_um <= a.x_um
                or a.y_um + a.height_um <= b.y_um
                or b.y_um + b.height_um <= a.y_um
            )

        placements = result.placements
        for i, a in enumerate(placements):
            for b in placements[i + 1 :]:
                assert not overlap(a, b), f"{a.instance} overlaps {b.instance}"

    def test_topological_order_respected(self, tempo_node, tempo_library):
        """Devices earlier in the signal flow are never placed below later ones."""
        result = SignalFlowFloorplanner().plan(tempo_node, tempo_library)
        order = tempo_node.topological_order()
        rank = {name: i for i, name in enumerate(order)}
        y_positions = {p.instance: p.y_um for p in result.placements}
        for earlier, later in zip(order, order[1:]):
            assert y_positions[earlier] <= y_positions[later] + 1e-9
        assert rank  # silence unused warning

    def test_site_width_fits_longest_device(self, tempo_node, tempo_library):
        planner = SignalFlowFloorplanner(boundary_um=0.0)
        result = planner.plan(tempo_node, tempo_library)
        longest = max(
            tempo_library.get(inst.device).width_um
            for inst in tempo_node.instances.values()
        )
        assert result.width_um == pytest.approx(longest)

    def test_custom_site_width_packs_more_per_row(self, tempo_node, tempo_library):
        narrow = SignalFlowFloorplanner().plan(tempo_node, tempo_library)
        wide = SignalFlowFloorplanner(site_width_um=200.0).plan(tempo_node, tempo_library)
        assert len(wide.rows) <= len(narrow.rows)

    def test_spacing_increases_area(self, tempo_node, tempo_library):
        tight = SignalFlowFloorplanner(device_spacing_um=1.0, boundary_um=1.0)
        loose = SignalFlowFloorplanner(device_spacing_um=10.0, boundary_um=20.0)
        assert loose.area_um2(tempo_node, tempo_library) > tight.area_um2(
            tempo_node, tempo_library
        )

    def test_whitespace_fraction(self, tempo_node, tempo_library):
        result = SignalFlowFloorplanner().plan(tempo_node, tempo_library)
        assert 0.0 < result.whitespace_fraction < 1.0

    def test_empty_netlist(self, tempo_library):
        result = SignalFlowFloorplanner().plan(Netlist(), tempo_library)
        assert result.area_um2 == 0.0

    def test_placement_lookup(self, tempo_node, tempo_library):
        result = SignalFlowFloorplanner().plan(tempo_node, tempo_library)
        assert result.placement_of("i0").instance == "i0"
        with pytest.raises(KeyError):
            result.placement_of("ghost")

    def test_negative_spacing_rejected(self):
        with pytest.raises(ValueError):
            SignalFlowFloorplanner(device_spacing_um=-1.0)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=10),
        st.floats(min_value=0.0, max_value=20.0),
    )
    def test_bounding_box_always_at_least_footprint(self, chain_length, spacing):
        library = DeviceLibrary.default()
        netlist = Netlist(name="chain")
        names = []
        for i in range(chain_length):
            name = f"c{i}"
            netlist.add_instance(name, "crossing")
            names.append(name)
        if len(names) > 1:
            netlist.chain(*names)
        planner = SignalFlowFloorplanner(device_spacing_um=spacing, boundary_um=0.0)
        assert planner.area_um2(netlist, library) >= naive_footprint_sum_um2(
            netlist, library
        ) - 1e-6
