"""RNG modes, dtype modes, and the perf fast paths behind them.

Covers the ``REPRO_RNG=philox`` counter-based sampling mode and the
``REPRO_DTYPE=float32`` throughput mode: stream determinism and chunk
invariance of the fused slab, statistical equivalence to the bit-exact
SeedSequence contract, engine cache keying by both modes, the bounded
thread-safe ``trial_rng`` memo, the no-copy dtype coercion helpers, and the
aligned scratch workspace behind the fused GEMM paths.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.arch.templates import build_tempo
from repro.core.engine import EvaluationEngine
from repro.onn.layers import (
    Workspace,
    _as_float,
    _match_dtype,
    active_workspace,
    compute_dtype,
    dtype_mode,
    scratch_workspace,
)
from repro.onn.models import build_mlp
from repro.onn.quantize import quantize_uniform_batch
from repro.scenarios.bench import bench_scenarios, check_speedups
from repro.variation import (
    AccuracyRequest,
    LinkOperatingPoint,
    make_trial_rng,
    philox_fused_normals,
    philox_trial_rng,
    rng_mode,
    run_monte_carlo,
    standard_noise,
)
from repro.variation import sampler
from repro.variation.sampler import trial_rng, trial_seed_sequence


@pytest.fixture(scope="module")
def mc_model():
    return build_mlp((16, 24, 12, 6), rng=np.random.default_rng(3))


@pytest.fixture(scope="module")
def mc_inputs():
    return np.random.default_rng(9).normal(size=(32, 16))


def make_request(mc_model, mc_inputs, **kwargs):
    kwargs.setdefault("noise", standard_noise())
    kwargs.setdefault("trials", 8)
    kwargs.setdefault("seed", 7)
    return AccuracyRequest(mc_model, mc_inputs, **kwargs)


# -- mode selection ---------------------------------------------------------------------


class TestModeEnvs:
    def test_default_modes_are_the_reference_contract(self, monkeypatch):
        monkeypatch.delenv("REPRO_RNG", raising=False)
        monkeypatch.delenv("REPRO_DTYPE", raising=False)
        assert rng_mode() == "seedseq"
        assert dtype_mode() == "float64"
        assert compute_dtype() == np.dtype(np.float64)

    def test_env_selects_throughput_modes(self, monkeypatch):
        monkeypatch.setenv("REPRO_RNG", "philox")
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        assert rng_mode() == "philox"
        assert dtype_mode() == "float32"
        assert compute_dtype() == np.dtype(np.float32)

    def test_unknown_modes_fail_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_RNG", "xoshiro")
        with pytest.raises(ValueError, match="REPRO_RNG"):
            rng_mode()
        monkeypatch.setenv("REPRO_DTYPE", "float16")
        with pytest.raises(ValueError, match="REPRO_DTYPE"):
            dtype_mode()


# -- counter-based streams --------------------------------------------------------------


class TestPhiloxStreams:
    def test_fused_slab_is_deterministic(self):
        a = philox_fused_normals(42, trials=6, draws=33)
        b = philox_fused_normals(42, trials=6, draws=33)
        assert a.shape == (6, 33)
        assert np.array_equal(a, b)

    def test_rows_are_pure_functions_of_seed_trial_draws(self):
        """Any chunking of the trial axis slices the same per-trial blocks."""
        full = philox_fused_normals(42, trials=8, draws=33)
        prefix = philox_fused_normals(42, trials=3, draws=33)
        assert np.array_equal(full[:3], prefix)

    def test_seeds_give_independent_slabs(self):
        a = philox_fused_normals(1, trials=4, draws=16)
        b = philox_fused_normals(2, trials=4, draws=16)
        assert not np.array_equal(a, b)

    def test_native_float32_generation(self):
        slab = philox_fused_normals(42, trials=4, draws=16, dtype=np.float32)
        assert slab.dtype == np.float32

    def test_trial_rng_streams_are_deterministic_and_independent(self):
        assert np.array_equal(
            philox_trial_rng(5, 3).normal(size=8), philox_trial_rng(5, 3).normal(size=8)
        )
        assert not np.array_equal(
            philox_trial_rng(5, 0).normal(size=8), philox_trial_rng(5, 1).normal(size=8)
        )
        with pytest.raises(ValueError, match="non-negative"):
            philox_trial_rng(5, -1)

    def test_make_trial_rng_dispatches_by_mode(self):
        seedseq = make_trial_rng(5, 2, "seedseq").normal(size=8)
        assert np.array_equal(seedseq, trial_rng(5, 2).normal(size=8))
        philox = make_trial_rng(5, 2, "philox").normal(size=8)
        assert np.array_equal(philox, philox_trial_rng(5, 2).normal(size=8))
        with pytest.raises(ValueError, match="unknown RNG mode"):
            make_trial_rng(5, 2, "pcg")

    def test_per_trial_blocks_are_standard_normal(self):
        """Satellite: each trial's fused block passes mean/std sanity bounds."""
        slab = philox_fused_normals(2024, trials=64, draws=4096)
        means = slab.mean(axis=1)
        stds = slab.std(axis=1)
        # 1/sqrt(4096) = 0.015625 per-row standard error; 0.1 is > 6 sigma.
        assert np.all(np.abs(means) < 0.1)
        assert np.all(np.abs(stds - 1.0) < 0.1)


# -- Monte Carlo under philox -----------------------------------------------------------


class TestPhiloxMonteCarlo:
    def test_reports_are_deterministic_and_backend_invariant(
        self, mc_model, mc_inputs, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RNG", "philox")
        link = LinkOperatingPoint(
            optical_power_mw=1.2, insertion_loss_db=6.0, bandwidth_ghz=5.0
        )
        reports = {
            backend: run_monte_carlo(
                make_request(mc_model, mc_inputs, backend=backend, jobs=jobs),
                link=link,
            )
            for backend, jobs in (("serial", None), ("threads", 4), ("processes", 2))
        }
        assert reports["threads"] == reports["serial"]
        assert reports["processes"] == reports["serial"]
        repeat = run_monte_carlo(make_request(mc_model, mc_inputs), link=link)
        serial_again = run_monte_carlo(make_request(mc_model, mc_inputs), link=link)
        assert repeat.accuracies == serial_again.accuracies

    def test_trial_prefix_is_invariant_to_trial_count(
        self, mc_model, mc_inputs, monkeypatch
    ):
        """Satellite: trial i's outcome is a pure function of (seed, i).

        Growing the study must extend -- not reshuffle -- the per-trial
        results, which is what makes the fused slab's chunking irrelevant.
        """
        monkeypatch.setenv("REPRO_RNG", "philox")
        short = run_monte_carlo(make_request(mc_model, mc_inputs, trials=6))
        long = run_monte_carlo(make_request(mc_model, mc_inputs, trials=12))
        assert long.accuracies[:6] == short.accuracies

    def test_philox_is_statistically_equivalent_to_seedseq(
        self, mc_model, mc_inputs, monkeypatch
    ):
        """Different streams, same distribution: aggregate metrics agree."""
        monkeypatch.delenv("REPRO_RNG", raising=False)
        reference = run_monte_carlo(make_request(mc_model, mc_inputs, trials=24))
        monkeypatch.setenv("REPRO_RNG", "philox")
        fast = run_monte_carlo(make_request(mc_model, mc_inputs, trials=24))
        assert fast.accuracies != reference.accuracies  # genuinely different draws
        assert fast.accuracy_mean == pytest.approx(reference.accuracy_mean, abs=0.15)
        assert fast.rmse_mean == pytest.approx(reference.rmse_mean, rel=0.5, abs=0.05)

    def test_float32_mode_tracks_float64_statistics(
        self, mc_model, mc_inputs, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RNG", "philox")
        monkeypatch.delenv("REPRO_DTYPE", raising=False)
        f64 = run_monte_carlo(make_request(mc_model, mc_inputs, trials=24))
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        f32 = run_monte_carlo(make_request(mc_model, mc_inputs, trials=24))
        assert all(np.isfinite(a) for a in f32.accuracies)
        assert f32.accuracy_mean == pytest.approx(f64.accuracy_mean, abs=0.15)

    def test_seedseq_default_is_untouched_by_the_fast_path(
        self, mc_model, mc_inputs, monkeypatch
    ):
        """The bit-exact contract survives a philox run in the same process."""
        monkeypatch.delenv("REPRO_RNG", raising=False)
        before = run_monte_carlo(make_request(mc_model, mc_inputs))
        monkeypatch.setenv("REPRO_RNG", "philox")
        run_monte_carlo(make_request(mc_model, mc_inputs))
        monkeypatch.delenv("REPRO_RNG", raising=False)
        after = run_monte_carlo(make_request(mc_model, mc_inputs))
        assert after.accuracies == before.accuracies
        assert after.rmse_mean == before.rmse_mean


# -- engine cache keying ----------------------------------------------------------------


class TestEngineCacheKeying:
    def test_rng_mode_keys_the_accuracy_cache(self, mc_model, mc_inputs, monkeypatch):
        monkeypatch.delenv("REPRO_RNG", raising=False)
        engine = EvaluationEngine(build_tempo())
        request = make_request(mc_model, mc_inputs)
        reference = engine.run_accuracy(request)
        monkeypatch.setenv("REPRO_RNG", "philox")
        fast = engine.run_accuracy(request)
        assert fast is not reference
        monkeypatch.delenv("REPRO_RNG", raising=False)
        assert engine.run_accuracy(request) is reference
        monkeypatch.setenv("REPRO_RNG", "philox")
        assert engine.run_accuracy(request) is fast

    def test_dtype_mode_keys_the_accuracy_cache(self, mc_model, mc_inputs, monkeypatch):
        monkeypatch.delenv("REPRO_DTYPE", raising=False)
        engine = EvaluationEngine(build_tempo())
        request = make_request(mc_model, mc_inputs)
        reference = engine.run_accuracy(request)
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        fast = engine.run_accuracy(request)
        assert fast is not reference
        monkeypatch.delenv("REPRO_DTYPE", raising=False)
        assert engine.run_accuracy(request) is reference


# -- bounded trial_rng memo -------------------------------------------------------------


class TestTrialRngMemo:
    def _clear(self):
        with sampler._STATE_LOCK:
            sampler._STATE_CACHE.clear()

    def test_eviction_is_deterministic_fifo(self, monkeypatch):
        monkeypatch.setattr(sampler, "_STATE_CACHE_MAX", 8)
        self._clear()
        for t in range(20):
            trial_rng(1234, t)
        with sampler._STATE_LOCK:
            assert list(sampler._STATE_CACHE) == [(1234, t) for t in range(12, 20)]

    def test_concurrent_hammer_keeps_bound_and_streams(self, monkeypatch):
        """Satellite regression: many threads, overlapping keys, small bound."""
        monkeypatch.setattr(sampler, "_STATE_CACHE_MAX", 64)
        self._clear()
        start = threading.Barrier(8)
        errors = []

        def worker(offset: int) -> None:
            try:
                start.wait()
                for step in range(300):
                    trial = (step * (offset + 1)) % 150
                    rng = trial_rng(999, trial)
                    assert isinstance(rng, np.random.Generator)
                    assert len(sampler._STATE_CACHE) <= 64
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        with sampler._STATE_LOCK:
            assert len(sampler._STATE_CACHE) <= 64
        # Streams survive the hammering bit-exact: memoized state == fresh state.
        for trial in (0, 37, 149):
            expected = np.random.Generator(
                np.random.PCG64(trial_seed_sequence(999, trial))
            ).normal(size=6)
            assert np.array_equal(trial_rng(999, trial).normal(size=6), expected)


# -- no-copy dtype helpers --------------------------------------------------------------


class TestNoCopyCoercion:
    def test_as_float_passes_float_arrays_through(self):
        for dtype in (np.float64, np.float32):
            x = np.ones((4, 3), dtype=dtype)
            out = _as_float(x)
            assert out is x  # not merely a view: literally no new array
            assert np.shares_memory(out, x)

    def test_as_float_converts_integers_once(self):
        x = np.arange(6).reshape(2, 3)
        out = _as_float(x)
        assert out.dtype == np.float64
        assert not np.shares_memory(out, x)

    def test_match_dtype_is_noop_on_matching_dtype(self):
        x = np.ones(5, dtype=np.float32)
        assert _match_dtype(x, np.dtype(np.float32)) is x
        cast = _match_dtype(x, np.dtype(np.float64))
        assert cast.dtype == np.float64

    def test_quantize_batch_preserves_float32(self):
        x = np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32)
        out = quantize_uniform_batch(x, 6)
        assert out.dtype == np.float32


# -- aligned scratch workspace ----------------------------------------------------------


class TestScratchWorkspace:
    def test_take_returns_aligned_reused_buffers(self):
        ws = Workspace()
        a = ws.take("x", (7, 5), np.dtype(np.float64))
        assert a.shape == (7, 5)
        assert a.ctypes.data % 64 == 0
        b = ws.take("x", (7, 5), np.dtype(np.float64))
        assert np.shares_memory(a, b)  # same backing allocation, no realloc
        big = ws.take("x", (70, 50), np.dtype(np.float64))
        assert big.shape == (70, 50)
        assert big.ctypes.data % 64 == 0

    def test_scratch_scope_is_reentrant_and_thread_local(self):
        assert active_workspace() is None
        with scratch_workspace() as outer:
            assert active_workspace() is outer
            with scratch_workspace() as inner:
                assert inner is outer  # outermost scope wins
            assert active_workspace() is outer
        assert active_workspace() is None
        seen = {}

        def worker():
            seen["workspace"] = active_workspace()

        with scratch_workspace():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["workspace"] is None  # scope never leaks across threads


# -- scenario checks across modes -------------------------------------------------------


class TestScenarioChecksAcrossModes:
    @pytest.mark.parametrize(
        "rng, dtype",
        [("seedseq", "float64"), ("philox", "float64"), ("philox", "float32")],
    )
    def test_robustness_check_passes_in_every_mode(self, monkeypatch, rng, dtype):
        """``repro run --check`` must hold in the throughput modes too."""
        from repro.scenarios import REGISTRY

        monkeypatch.setenv("REPRO_RNG", rng)
        monkeypatch.setenv("REPRO_DTYPE", dtype)
        result = REGISTRY.run("variation_robustness", store=None, force=True)
        REGISTRY.verify("variation_robustness", result)


# -- bench mode matrix ------------------------------------------------------------------


class TestBenchModeMatrix:
    def test_non_reference_mode_records_reference_comparison(self):
        # variation_robustness has Monte Carlo stage work, so the non-default
        # modes actually diverge from the reference and the comparison is
        # meaningful (analytic-only scenarios skip it -- see below).
        payload = bench_scenarios(
            ["variation_robustness"], repeats=1, warmup=0, rng="philox",
            dtype="float32",
        )
        entry = payload["scenarios"]["variation_robustness"]
        assert entry["analytic_only"] is False
        assert entry["vectorized"]["knobs"]["REPRO_RNG"] == "philox"
        assert entry["vectorized"]["knobs"]["REPRO_DTYPE"] == "float32"
        assert entry["reference"]["knobs"]["REPRO_RNG"] == "seedseq"
        assert entry["reference"]["knobs"]["REPRO_DTYPE"] == "float64"
        assert entry["speedup_vs_reference_median"] > 0
        assert check_speedups(
            payload, {"variation_robustness": 0.0}, key="speedup_vs_reference_median"
        ) == []
        failures = check_speedups(
            payload, {"variation_robustness": 1e9}, key="speedup_vs_reference_median"
        )
        assert failures and "below" in failures[0]

    def test_analytic_scenario_skips_reference_comparison(self):
        # table1_taxonomy runs no Monte Carlo stages, so a reference-mode
        # rerun would measure pure timer jitter; the entry is flagged
        # analytic_only, no reference block or ratio is recorded, and a
        # --fail-below-ref gate on it fails deterministically.
        payload = bench_scenarios(
            ["table1_taxonomy"], repeats=1, warmup=0, rng="philox", dtype="float32"
        )
        entry = payload["scenarios"]["table1_taxonomy"]
        assert entry["analytic_only"] is True
        assert "reference" not in entry
        assert "speedup_vs_reference_median" not in entry
        failures = check_speedups(
            payload, {"table1_taxonomy": 1.0}, key="speedup_vs_reference_median"
        )
        assert len(failures) == 1 and "analytic-only" in failures[0]

    def test_reference_mode_has_no_reference_block(self):
        payload = bench_scenarios(["variation_robustness"], repeats=1, warmup=0)
        entry = payload["scenarios"]["variation_robustness"]
        assert "reference" not in entry
        failures = check_speedups(
            payload, {"variation_robustness": 1.0}, key="speedup_vs_reference_median"
        )
        assert failures == [
            "variation_robustness: no reference-mode comparison recorded"
        ]
