"""Smoke tests for the ``repro`` CLI (in-process plus one ``python -m repro`` run)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestList:
    def test_lists_every_registered_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig6_layout", "fig7_tempo_validation", "table1_taxonomy",
                     "dse_scaling"):
            assert name in out

    def test_tag_filter(self, capsys):
        assert main(["list", "--tag", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "fig6_layout" in out
        assert "fig8_lt_validation" not in out


class TestRun:
    def test_run_prints_the_benchmark_table(self, capsys):
        assert main(["run", "table1_taxonomy", "--no-store"]) == 0
        out = capsys.readouterr().out
        reference = (REPO_ROOT / "benchmarks" / "results" / "table1_taxonomy.txt").read_text()
        assert reference.rstrip("\n") in out

    def test_run_with_check_and_save_results(self, tmp_path, capsys):
        assert main([
            "run", "fig6_layout", "--no-store", "--check",
            "--save-results", str(tmp_path),
        ]) == 0
        saved = (tmp_path / "fig6_layout.txt").read_text()
        reference = (REPO_ROOT / "benchmarks" / "results" / "fig6_layout.txt").read_text()
        assert saved == reference

    def test_run_uses_and_fills_the_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", "table1_taxonomy", "--store", store]) == 0
        first = capsys.readouterr()
        assert "run in" in first.err
        assert main(["run", "table1_taxonomy", "--store", store]) == 0
        second = capsys.readouterr()
        assert "result store" in second.err
        assert first.out == second.out

    def test_run_param_override(self, tmp_path, capsys):
        assert main([
            "run", "fig11_heterogeneous", "--no-store",
            "--param", "width_multiplier=0.1",
        ]) == 0
        assert "vgg" not in capsys.readouterr().err  # no error output

    def test_unknown_scenario_is_an_actionable_error(self, capsys):
        assert main(["run", "fig6_layot", "--no-store"]) == 1
        err = capsys.readouterr().err
        assert "did you mean 'fig6_layout'" in err

    def test_unknown_param_is_an_actionable_error(self, capsys):
        assert main([
            "run", "fig6_layout", "--no-store", "--param", "nope=1",
        ]) == 1
        assert "parameter of scenario" in capsys.readouterr().err


class TestBatchAndReport:
    def test_smoke_batch_then_report(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["batch", "--smoke", "--store", store, "--check"]) == 0
        out = capsys.readouterr().out
        assert "engine passes executed:" in out
        assert "ran" in out

        assert main(["batch", "--smoke", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "store hit" in out
        assert "engine passes executed: 0" in out

        assert main(["report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "fig6_layout" in out

        assert main(["report", "fig6_layout", "--store", store]) == 0
        out = capsys.readouterr().out
        reference = (REPO_ROOT / "benchmarks" / "results" / "fig6_layout.txt").read_text()
        assert reference.rstrip("\n") in out

    def test_report_format_json(self, tmp_path, capsys):
        import json

        store = str(tmp_path / "store")
        main(["batch", "fig6_layout", "--store", store])
        capsys.readouterr()

        assert main(["report", "--store", store, "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["name"] for e in entries] == ["fig6_layout"]
        assert set(entries[0]) >= {"name", "fingerprint", "created_at",
                                   "elapsed_s", "params", "path"}

        assert main(["report", "fig6_layout", "--store", store,
                     "--format", "json"]) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert payloads[0]["name"] == "fig6_layout"
        assert payloads[0]["metrics"]["num_placements"] == 5
        assert payloads[0]["table"]

    def test_report_json_empty_store_is_valid_json(self, tmp_path, capsys):
        import json

        assert main(["report", "--store", str(tmp_path / "empty"),
                     "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_report_missing_name_errors(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["batch", "fig6_layout", "--store", store])
        capsys.readouterr()
        assert main(["report", "table1_taxonomy", "--store", store]) == 1
        assert "not in store" in capsys.readouterr().err

    def test_batch_explicit_names(self, capsys):
        assert main(["batch", "fig6_layout", "table1_taxonomy", "--no-store"]) == 0
        out = capsys.readouterr().out
        assert "fig6_layout" in out and "table1_taxonomy" in out

    def test_batch_rejects_conflicting_selectors(self):
        with pytest.raises(SystemExit, match="not a combination"):
            main(["batch", "--all", "--smoke", "--no-store"])
        with pytest.raises(SystemExit, match="not a combination"):
            main(["batch", "fig6_layout", "--smoke", "--no-store"])


def test_python_dash_m_repro_entry_point(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True, text=True, env=env, cwd=tmp_path, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "table1_taxonomy" in proc.stdout


def test_console_script_is_declared():
    tomllib = pytest.importorskip("tomllib")  # stdlib from Python 3.11

    pyproject = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    assert pyproject["project"]["scripts"]["repro"] == "repro.cli:main"
