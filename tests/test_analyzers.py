"""Tests for the latency, memory, energy and area analyzers."""

import numpy as np
import pytest

from repro.arch import ArchitectureConfig
from repro.arch.templates import build_scatter, build_tempo
from repro.core.area import AreaAnalyzer
from repro.core.config import SimulationConfig
from repro.core.energy import EnergyAnalyzer
from repro.core.latency import LatencyAnalyzer
from repro.core.link_budget import LinkBudgetAnalyzer
from repro.core.memory_analyzer import MemoryAnalyzer
from repro.core.report import (
    component_label,
    merge_breakdowns,
    render_breakdown,
    render_comparison,
    scale_breakdown,
)
from repro.dataflow.gemm import GEMMWorkload
from repro.dataflow.mapping import DataflowMapper
from repro.memory.hierarchy import MemoryLevel


@pytest.fixture()
def tempo_mapping(tempo_arch, paper_gemm):
    return DataflowMapper().map(paper_gemm, tempo_arch)


class TestLatencyAnalyzer:
    def test_total_is_sum_of_phases(self, tempo_arch, tempo_mapping):
        memory = MemoryAnalyzer().analyze([tempo_mapping], tempo_arch)
        report = LatencyAnalyzer().analyze(tempo_mapping, memory.hierarchy)
        assert report.total_cycles == (
            report.load_cycles
            + report.compute_cycles
            + report.reconfig_cycles
            + report.writeout_cycles
        )
        assert report.total_time_ns > 0
        assert report.compute_cycles == tempo_mapping.compute_cycles

    def test_latency_without_hierarchy_has_no_streaming_terms(self, tempo_mapping):
        report = LatencyAnalyzer().analyze(tempo_mapping, None)
        assert report.load_cycles == 0
        assert report.writeout_cycles == 0

    def test_latency_hiding_reduces_stalls(self, tempo_arch, tempo_mapping):
        memory = MemoryAnalyzer().analyze([tempo_mapping], tempo_arch)
        baseline = LatencyAnalyzer().analyze(tempo_mapping, memory.hierarchy)
        hidden = LatencyAnalyzer(overlap_memory_with_compute=True).analyze(
            tempo_mapping, memory.hierarchy
        )
        assert hidden.total_cycles <= baseline.total_cycles

    def test_effective_tops_positive(self, tempo_arch, tempo_mapping):
        report = LatencyAnalyzer().analyze(tempo_mapping)
        assert report.effective_tops > 0
        assert 0 < report.compute_bound_fraction <= 1.0


class TestMemoryAnalyzer:
    def test_glb_bandwidth_meets_demand(self, tempo_arch, tempo_mapping):
        report = MemoryAnalyzer().analyze([tempo_mapping], tempo_arch)
        assert report.bandwidth_satisfied
        assert report.glb_blocks >= 1

    def test_higher_frequency_needs_more_blocks(self, paper_gemm):
        slow_arch = build_tempo(config=ArchitectureConfig(frequency_ghz=1.0), name="slow")
        fast_arch = build_tempo(config=ArchitectureConfig(frequency_ghz=10.0), name="fast")
        analyzer = MemoryAnalyzer()
        slow = analyzer.analyze([DataflowMapper().map(paper_gemm, slow_arch)], slow_arch)
        fast = analyzer.analyze([DataflowMapper().map(paper_gemm, fast_arch)], fast_arch)
        assert fast.glb_blocks >= slow.glb_blocks

    def test_traffic_and_energy_consistency(self, tempo_arch, tempo_mapping):
        report = MemoryAnalyzer().analyze([tempo_mapping], tempo_arch)
        for level in MemoryLevel:
            expected = report.hierarchy.access_energy_pj(level, report.traffic_bits[level])
            assert report.energy_pj[level] == pytest.approx(expected)
        assert report.total_energy_pj == pytest.approx(sum(report.energy_pj.values()))

    def test_empty_mapping_list_gets_default_hierarchy(self, tempo_arch):
        report = MemoryAnalyzer().analyze([], tempo_arch)
        assert report.glb_blocks == 1
        assert report.total_energy_pj == 0.0

    def test_glb_sized_for_largest_layer(self, tempo_arch):
        big = DataflowMapper().map(GEMMWorkload("big", m=512, k=512, n=512), tempo_arch)
        report = MemoryAnalyzer().analyze([big], tempo_arch)
        assert report.hierarchy.glb.capacity_bytes >= big.workload.total_bytes


class TestEnergyAnalyzer:
    def test_breakdown_components_present(self, tempo_arch, tempo_mapping):
        link = LinkBudgetAnalyzer().analyze(tempo_arch)
        report = EnergyAnalyzer().analyze(
            tempo_arch, tempo_mapping, link_budget=link, memory_energy_pj=1000.0
        )
        for label in ("DAC", "ADC", "MZM", "Laser", "PD", "Integrator", "DM"):
            assert label in report.breakdown_pj, label
        assert report.total_pj > 0
        assert report.compute_pj < report.total_pj

    def test_average_power_consistent(self, tempo_arch, tempo_mapping):
        report = EnergyAnalyzer().analyze(tempo_arch, tempo_mapping)
        assert report.total_power_mw * report.total_time_ns == pytest.approx(report.total_pj)

    def test_data_aware_saves_energy_for_weight_static_ptc(self, paper_gemm):
        arch = build_scatter()
        rng = np.random.default_rng(0)
        workload = GEMMWorkload(
            "w", m=64, k=16, n=16,
            weight_values=rng.normal(0, 0.2, size=(16, 16)),
        )
        mapping = DataflowMapper().map(workload, arch)
        analyzer = EnergyAnalyzer()
        unaware = analyzer.analyze(arch, mapping, data_aware=False)
        aware = analyzer.analyze(arch, mapping, data_aware=True)
        assert aware.component("PS") < unaware.component("PS")

    def test_pruning_gates_weight_encoders(self, tempo_arch):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(28, 280))
        mask = rng.random((28, 280)) > 0.5
        dense = GEMMWorkload("dense", m=280, k=28, n=280, weight_values=weights)
        sparse = GEMMWorkload(
            "sparse", m=280, k=28, n=280, weight_values=weights, pruning_mask=mask
        )
        analyzer = EnergyAnalyzer()
        mapper = DataflowMapper()
        e_dense = analyzer.analyze(tempo_arch, mapper.map(dense, tempo_arch))
        e_sparse = analyzer.analyze(tempo_arch, mapper.map(sparse, tempo_arch))
        assert e_sparse.total_pj < e_dense.total_pj

    def test_memory_energy_lands_in_dm(self, tempo_arch, tempo_mapping):
        report = EnergyAnalyzer().analyze(
            tempo_arch, tempo_mapping, memory_energy_pj=12345.0
        )
        assert report.component("DM") >= 12345.0

    def test_static_memory_power_accumulates_over_time(self, tempo_arch, tempo_mapping):
        without = EnergyAnalyzer().analyze(tempo_arch, tempo_mapping)
        with_leakage = EnergyAnalyzer().analyze(
            tempo_arch, tempo_mapping, memory_static_power_mw=10.0
        )
        expected_extra = 10.0 * tempo_mapping.compute_time_ns
        assert with_leakage.component("DM") - without.component("DM") == pytest.approx(
            expected_extra
        )

    def test_laser_energy_uses_link_budget(self, tempo_arch, tempo_mapping):
        link = LinkBudgetAnalyzer().analyze(tempo_arch)
        report = EnergyAnalyzer().analyze(tempo_arch, tempo_mapping, link_budget=link)
        expected = link.total_laser_electrical_power_mw * tempo_mapping.total_time_ns
        assert report.component("Laser") == pytest.approx(expected)

    def test_no_link_budget_falls_back_to_device_power(self, tempo_arch, tempo_mapping):
        report = EnergyAnalyzer().analyze(tempo_arch, tempo_mapping, link_budget=None)
        assert report.component("Laser") > 0


class TestAreaAnalyzer:
    def test_layout_aware_larger_than_unaware(self, tempo_arch):
        analyzer = AreaAnalyzer()
        aware = analyzer.analyze(tempo_arch, layout_aware=True)
        unaware = analyzer.analyze(tempo_arch, layout_aware=False)
        assert aware.total_area_mm2 > unaware.total_area_mm2
        assert aware.node_area_um2 > unaware.node_area_um2
        assert aware.node_area_naive_um2 == unaware.node_area_um2

    def test_breakdown_labels(self, tempo_arch):
        report = AreaAnalyzer().analyze(tempo_arch)
        for label in ("ADC", "DAC", "Node", "MZM", "Y Branch", "Crossing"):
            assert label in report.breakdown_um2, label

    def test_memory_area_included_when_reported(self, tempo_arch, tempo_mapping):
        memory = MemoryAnalyzer().analyze([tempo_mapping], tempo_arch)
        with_mem = AreaAnalyzer().analyze(tempo_arch, memory_report=memory)
        without = AreaAnalyzer().analyze(tempo_arch)
        assert with_mem.total_area_mm2 > without.total_area_mm2
        assert "Mem" in with_mem.breakdown_mm2

    def test_off_chip_laser_excluded(self, tempo_arch):
        report = AreaAnalyzer().analyze(tempo_arch)
        assert "Laser" not in report.breakdown_um2

    def test_config_switch_controls_default(self, tempo_arch):
        aware = AreaAnalyzer(SimulationConfig(use_layout_aware_area=True)).analyze(tempo_arch)
        unaware = AreaAnalyzer(SimulationConfig(use_layout_aware_area=False)).analyze(tempo_arch)
        assert aware.layout_aware and not unaware.layout_aware

    def test_floorplan_gap_ratio(self, tempo_arch):
        assert AreaAnalyzer.node_floorplan_gap(tempo_arch) > 2.0


class TestReportHelpers:
    def test_component_label_for_composite(self, tempo_arch):
        assert component_label(tempo_arch.instance("node")) == "Node"
        assert component_label(tempo_arch.instance("dac_a")) == "DAC"

    def test_merge_and_scale(self):
        merged = merge_breakdowns([{"a": 1.0, "b": 2.0}, {"b": 3.0}])
        assert merged == {"a": 1.0, "b": 5.0}
        assert scale_breakdown(merged, 2.0)["b"] == 10.0

    def test_render_functions_produce_text(self):
        text = render_breakdown({"a": 1.0, "b": 3.0}, unit="pJ")
        assert "TOTAL" in text
        comparison = render_comparison("sim", {"a": 1.0}, "ref", {"a": 2.0})
        assert "ratio" in comparison
