"""Tests for the GEMM workload record."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dataflow.gemm import GEMMWorkload


class TestConstruction:
    def test_basic_quantities(self):
        gemm = GEMMWorkload("g", m=4, n=6, k=5)
        assert gemm.num_macs == 120
        assert gemm.num_ops == 240
        assert gemm.input_bytes == 4 * 5
        assert gemm.weight_bytes == 5 * 6
        assert gemm.output_bytes == 4 * 6
        assert gemm.total_bytes == 20 + 30 + 24

    def test_bit_scaling_of_bytes(self):
        gemm = GEMMWorkload("g", m=4, n=4, k=4, input_bits=4)
        assert gemm.input_bytes == 4 * 4 * 0.5

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GEMMWorkload("g", m=0, n=1, k=1)
        with pytest.raises(ValueError):
            GEMMWorkload("g", m=1, n=-2, k=1)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            GEMMWorkload("g", m=1, n=1, k=1, input_bits=0)

    def test_weight_shape_checked(self):
        with pytest.raises(ValueError):
            GEMMWorkload("g", m=2, n=3, k=4, weight_values=np.zeros((3, 4)))

    def test_input_shape_checked(self):
        with pytest.raises(ValueError):
            GEMMWorkload("g", m=2, n=3, k=4, input_values=np.zeros((4, 2)))

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            GEMMWorkload(
                "g", m=2, n=3, k=4,
                weight_values=np.zeros((4, 3)),
                pruning_mask=np.ones((3, 4), dtype=bool),
            )


class TestDataAwareness:
    def test_sparsity_from_mask(self):
        mask = np.array([[True, False], [False, False]])
        gemm = GEMMWorkload("g", m=1, n=2, k=2,
                            weight_values=np.ones((2, 2)), pruning_mask=mask)
        assert gemm.sparsity == pytest.approx(0.75)

    def test_sparsity_from_zero_weights(self):
        weights = np.array([[0.0, 1.0], [0.0, 2.0]])
        gemm = GEMMWorkload("g", m=1, n=2, k=2, weight_values=weights)
        assert gemm.sparsity == pytest.approx(0.5)

    def test_sparsity_without_values(self):
        assert GEMMWorkload("g", m=1, n=1, k=1).sparsity == 0.0

    def test_effective_weights_apply_mask(self):
        weights = np.ones((2, 2))
        mask = np.array([[True, False], [True, True]])
        gemm = GEMMWorkload("g", m=1, n=2, k=2, weight_values=weights, pruning_mask=mask)
        assert gemm.effective_weights()[0, 1] == 0.0

    def test_normalized_weights_range(self):
        weights = np.array([[2.0, -4.0], [1.0, 0.5]])
        gemm = GEMMWorkload("g", m=1, n=2, k=2, weight_values=weights)
        normalized = gemm.normalized_weights()
        assert np.max(np.abs(normalized)) == pytest.approx(1.0)

    def test_normalized_weights_all_zero(self):
        gemm = GEMMWorkload("g", m=1, n=2, k=2, weight_values=np.zeros((2, 2)))
        np.testing.assert_allclose(gemm.normalized_weights(), 0.0)

    def test_normalized_none_when_absent(self):
        gemm = GEMMWorkload("g", m=1, n=1, k=1)
        assert gemm.normalized_weights() is None
        assert gemm.normalized_inputs() is None

    def test_normalized_inputs(self):
        gemm = GEMMWorkload("g", m=2, n=1, k=2, input_values=np.array([[1.0, -2.0], [0.5, 0.0]]))
        assert np.max(np.abs(gemm.normalized_inputs())) == pytest.approx(1.0)


class TestTransforms:
    def test_with_bits(self):
        gemm = GEMMWorkload("g", m=2, n=2, k=2)
        requantized = gemm.with_bits(4, 4)
        assert requantized.input_bits == 4
        assert requantized.output_bits == 4
        assert gemm.input_bits == 8  # original untouched

    def test_with_bits_preserves_values(self):
        weights = np.ones((2, 2))
        gemm = GEMMWorkload("g", m=2, n=2, k=2, weight_values=weights)
        assert gemm.with_bits(4, 4).weight_values is weights

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
    )
    def test_macs_property(self, m, n, k):
        assert GEMMWorkload("g", m=m, n=n, k=k).num_macs == m * n * k
