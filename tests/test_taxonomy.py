"""Tests for the PTC taxonomy (Table I)."""

import pytest

from repro.arch.taxonomy import (
    OperandRange,
    PTCTaxonomyEntry,
    ReconfigSpeed,
    TABLE_I,
    forwards_required,
)


class TestForwardsRequired:
    def test_full_range_operands_need_one_pass(self):
        assert forwards_required(OperandRange.FULL_REAL, OperandRange.FULL_REAL) == 1

    def test_one_positive_operand_doubles(self):
        assert forwards_required(OperandRange.POSITIVE_REAL, OperandRange.FULL_REAL) == 2

    def test_two_positive_operands_quadruple(self):
        assert forwards_required(OperandRange.POSITIVE_REAL, OperandRange.POSITIVE_REAL) == 4

    def test_complex_operand_does_not_multiply(self):
        assert forwards_required(OperandRange.FULL_REAL, OperandRange.COMPLEX) == 1


class TestTableI:
    def test_all_paper_rows_present(self):
        assert set(TABLE_I) == {
            "mzi_array",
            "butterfly_mesh",
            "mrr_array",
            "pcm_crossbar",
            "tempo",
        }

    @pytest.mark.parametrize(
        "key, forwards",
        [
            ("mzi_array", 1),
            ("butterfly_mesh", 1),
            ("mrr_array", 2),
            ("pcm_crossbar", 4),
            ("tempo", 1),
        ],
    )
    def test_forward_counts_match_paper(self, key, forwards):
        assert TABLE_I[key].num_forwards == forwards

    def test_tempo_is_fully_dynamic(self):
        assert TABLE_I["tempo"].is_fully_dynamic
        assert TABLE_I["tempo"].supports_dynamic_matmul()

    def test_mzi_array_is_weight_static(self):
        entry = TABLE_I["mzi_array"]
        assert entry.is_weight_static
        assert not entry.supports_dynamic_matmul()

    def test_butterfly_is_subspace(self):
        assert not TABLE_I["butterfly_mesh"].universal

    def test_mrr_array_is_fully_dynamic_but_range_restricted(self):
        entry = TABLE_I["mrr_array"]
        assert entry.is_fully_dynamic
        assert entry.num_forwards == 2


class TestEntryValidation:
    def test_forwards_derived_when_omitted(self):
        entry = PTCTaxonomyEntry(
            name="custom",
            operand_a_range=OperandRange.POSITIVE_REAL,
            operand_a_reconfig=ReconfigSpeed.DYNAMIC,
            operand_b_range=OperandRange.POSITIVE_REAL,
            operand_b_reconfig=ReconfigSpeed.STATIC,
        )
        assert entry.num_forwards == 4

    def test_explicit_forwards_kept(self):
        entry = PTCTaxonomyEntry(
            name="custom",
            operand_a_range=OperandRange.FULL_REAL,
            operand_a_reconfig=ReconfigSpeed.DYNAMIC,
            operand_b_range=OperandRange.COMPLEX,
            operand_b_reconfig=ReconfigSpeed.STATIC,
            num_forwards=2,
        )
        assert entry.num_forwards == 2

    def test_invalid_forwards_rejected(self):
        with pytest.raises(ValueError):
            PTCTaxonomyEntry(
                name="bad",
                operand_a_range=OperandRange.FULL_REAL,
                operand_a_reconfig=ReconfigSpeed.DYNAMIC,
                operand_b_range=OperandRange.FULL_REAL,
                operand_b_reconfig=ReconfigSpeed.DYNAMIC,
                num_forwards=-1,
            )
