"""Tests for unit conversions and formatting helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    db_to_linear,
    dbm_to_mw,
    format_si,
    format_table,
    linear_to_db,
    mw_to_dbm,
)
from repro.utils.format import format_breakdown
from repro.utils.units import cycles_to_ns, ns_to_cycles


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_three_db_doubles(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-3)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_linear_to_db_roundtrip(self):
        assert linear_to_db(db_to_linear(7.3)) == pytest.approx(7.3)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    @given(st.floats(min_value=-60.0, max_value=60.0))
    def test_roundtrip_property(self, db):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)


class TestDbmConversions:
    def test_zero_dbm_is_one_mw(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_ten_dbm_is_ten_mw(self):
        assert dbm_to_mw(10.0) == pytest.approx(10.0)

    def test_negative_dbm(self):
        assert dbm_to_mw(-30.0) == pytest.approx(0.001)

    def test_mw_to_dbm_roundtrip(self):
        assert mw_to_dbm(dbm_to_mw(-12.5)) == pytest.approx(-12.5)

    def test_mw_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mw_to_dbm(0.0)


class TestCycleConversions:
    def test_cycles_to_ns(self):
        assert cycles_to_ns(10, 5.0) == pytest.approx(2.0)

    def test_ns_to_cycles(self):
        assert ns_to_cycles(2.0, 5.0) == pytest.approx(10.0)

    def test_roundtrip(self):
        assert ns_to_cycles(cycles_to_ns(123, 3.2), 3.2) == pytest.approx(123)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            cycles_to_ns(1, 0.0)
        with pytest.raises(ValueError):
            ns_to_cycles(1.0, -1.0)


class TestFormatting:
    def test_format_si_zero(self):
        assert format_si(0, "J") == "0 J"

    def test_format_si_micro(self):
        assert format_si(2.3e-6, "J") == "2.3 uJ"

    def test_format_si_giga(self):
        assert "G" in format_si(5.1e9, "Hz")

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [3, 4.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        # All rows have the same rendered width.
        assert len({len(line) for line in lines}) == 1

    def test_format_breakdown_total(self):
        text = format_breakdown({"x": 1.0, "y": 3.0}, unit="pJ")
        assert "TOTAL" in text
        assert "75" in text  # y share is 75%

    def test_format_breakdown_empty_total_is_zero_share(self):
        text = format_breakdown({"x": 0.0})
        assert "0.0%" in text
