"""Tests for the dataflow mapper: blocking, hierarchical accumulation, penalties, traffic."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import ArchitectureConfig
from repro.arch.templates import build_mzi_mesh, build_pcm_crossbar, build_tempo
from repro.dataflow.gemm import GEMMWorkload
from repro.dataflow.mapping import DataflowMapper
from repro.memory.hierarchy import MemoryLevel


@pytest.fixture()
def mapper():
    return DataflowMapper()


class TestBlocking:
    def test_iteration_counts(self, mapper, tempo_arch):
        workload = GEMMWorkload("g", m=280, k=28, n=280)
        mapping = mapper.map(workload, tempo_arch)
        assert mapping.m_iters == math.ceil(280 / mapping.m_parallel)
        assert mapping.n_iters == math.ceil(280 / mapping.n_parallel)
        assert mapping.k_iters == math.ceil(28 / mapping.k_parallel)
        assert mapping.compute_cycles_per_forward == (
            mapping.m_iters * mapping.n_iters * mapping.k_iters
        )

    def test_parallel_dims_match_arch(self, mapper, tempo_arch):
        mapping = mapper.map(GEMMWorkload("g", m=8, k=8, n=8), tempo_arch)
        cfg = tempo_arch.config
        assert mapping.m_parallel == cfg.num_tiles * cfg.core_height
        assert mapping.n_parallel == cfg.core_width
        assert mapping.k_parallel == cfg.cores_per_tile * cfg.num_wavelengths

    def test_small_gemm_single_iteration(self, mapper, small_tempo_arch):
        mapping = mapper.map(GEMMWorkload("g", m=1, k=1, n=1), small_tempo_arch)
        assert mapping.compute_cycles_per_forward == 1
        assert mapping.utilization < 1.0

    def test_perfect_fit_full_utilization(self, mapper, small_tempo_arch):
        dims = small_tempo_arch.dataflow.parallel_dims(small_tempo_arch.params)
        workload = GEMMWorkload("g", m=dims["M"] * 3, k=dims["K"] * 2, n=dims["N"] * 4)
        mapping = mapper.map(workload, small_tempo_arch)
        assert mapping.utilization == pytest.approx(1.0)

    def test_utilization_never_exceeds_one(self, mapper, tempo_arch):
        mapping = mapper.map(GEMMWorkload("g", m=13, k=7, n=9), tempo_arch)
        assert 0.0 < mapping.utilization <= 1.0


class TestHierarchicalAccumulation:
    def test_temporal_accumulation_bounded_by_k_iters(self, mapper, tempo_arch):
        mapping = mapper.map(GEMMWorkload("g", m=64, k=8, n=64), tempo_arch)
        assert mapping.temporal_accumulation <= mapping.k_iters

    def test_temporal_accumulation_bounded_by_integrator(self, tempo_arch):
        mapper = DataflowMapper(max_integration_cycles=4)
        mapping = mapper.map(GEMMWorkload("g", m=280, k=280, n=280), tempo_arch)
        assert mapping.temporal_accumulation == 4

    def test_no_integrator_means_no_accumulation(self, mzi_arch):
        mapper = DataflowMapper()
        mapping = mapper.map(GEMMWorkload("g", m=64, k=64, n=64), mzi_arch)
        assert mapping.temporal_accumulation == 1

    def test_output_samples_reduced_by_integration(self, mapper, tempo_arch):
        mapping = mapper.map(GEMMWorkload("g", m=280, k=280, n=280), tempo_arch)
        without_integration = mapping.forwards * mapping.m_iters * mapping.n_iters * mapping.k_iters
        assert mapping.output_samples < without_integration

    def test_params_overlay_carries_t_acc(self, mapper, tempo_arch):
        mapping = mapper.map(GEMMWorkload("g", m=280, k=280, n=280), tempo_arch)
        assert mapping.params_overlay()["T_ACC"] == mapping.temporal_accumulation


class TestLatencyPenalties:
    def test_range_restricted_ptc_pays_forwards(self, mapper):
        arch = build_pcm_crossbar()
        mapping = mapper.map(GEMMWorkload("g", m=32, k=32, n=32), arch)
        assert mapping.forwards == 4
        assert mapping.compute_cycles == 4 * mapping.compute_cycles_per_forward

    def test_dynamic_ptc_single_forward(self, mapper, tempo_arch):
        mapping = mapper.map(GEMMWorkload("g", m=32, k=32, n=32), tempo_arch)
        assert mapping.forwards == 1

    def test_weight_stationary_reconfig_penalty(self, mapper, mzi_arch):
        workload = GEMMWorkload("g", m=64, k=64, n=64)
        mapping = mapper.map(workload, mzi_arch)
        assert mapping.reconfig_events > 0
        assert mapping.reconfig_cycles_per_event == mzi_arch.weight_reconfig_cycles()
        assert mapping.reconfig_cycles > 0
        assert mapping.total_cycles == mapping.compute_cycles + mapping.reconfig_cycles

    def test_dynamic_ptc_no_reconfig(self, mapper, tempo_arch):
        mapping = mapper.map(GEMMWorkload("g", m=64, k=64, n=64), tempo_arch)
        assert mapping.reconfig_events == 0
        assert mapping.reconfig_cycles == 0

    def test_thermo_optic_reconfig_dominates_small_layers(self, mapper, mzi_arch):
        mapping = mapper.map(GEMMWorkload("g", m=8, k=8, n=8), mzi_arch)
        assert mapping.reconfig_cycles > mapping.compute_cycles

    def test_reconfig_cycles_match_paper_example(self):
        # 100 ns reconfiguration at 5 GHz -> 500 cycles per switch (paper Sec. III-C2).
        arch = build_mzi_mesh()
        arch.library.register(
            arch.library.get("mzi").scaled(reconfig_time_ns=100.0)
        )
        assert arch.weight_reconfig_cycles() == 500


class TestTimingAndTraffic:
    def test_total_time(self, mapper, tempo_arch):
        mapping = mapper.map(GEMMWorkload("g", m=64, k=32, n=64), tempo_arch)
        assert mapping.total_time_ns == pytest.approx(
            mapping.total_cycles / tempo_arch.frequency_ghz
        )

    def test_traffic_covers_all_levels(self, mapper, tempo_arch):
        mapping = mapper.map(GEMMWorkload("g", m=64, k=32, n=64), tempo_arch)
        assert set(mapping.traffic_bits) == set(MemoryLevel)
        assert all(bits >= 0 for bits in mapping.traffic_bits.values())

    def test_rf_traffic_largest_onchip(self, mapper, tempo_arch):
        mapping = mapper.map(GEMMWorkload("g", m=280, k=28, n=280), tempo_arch)
        assert mapping.traffic_bits[MemoryLevel.RF] >= mapping.traffic_bits[MemoryLevel.LB]
        assert mapping.traffic_bits[MemoryLevel.RF] >= mapping.traffic_bits[MemoryLevel.GLB]

    def test_hbm_traffic_is_weights_only(self, mapper, tempo_arch):
        workload = GEMMWorkload("g", m=64, k=32, n=16)
        mapping = mapper.map(workload, tempo_arch)
        assert mapping.traffic_bits[MemoryLevel.HBM] == pytest.approx(
            workload.weight_bytes * 8
        )

    def test_bytes_per_cycle_positive(self, mapper, tempo_arch):
        mapping = mapper.map(GEMMWorkload("g", m=64, k=32, n=64), tempo_arch)
        assert mapping.bytes_per_cycle["total"] > 0
        assert mapping.bytes_per_cycle["total"] == pytest.approx(
            mapping.bytes_per_cycle["input"]
            + mapping.bytes_per_cycle["weight"]
            + mapping.bytes_per_cycle["output"]
        )

    def test_forwards_multiply_traffic(self, mapper):
        workload = GEMMWorkload("g", m=32, k=32, n=32)
        tempo = build_tempo(config=ArchitectureConfig(), name="t")
        pcm = build_pcm_crossbar()
        tempo_map = mapper.map(workload, tempo)
        pcm_map = mapper.map(workload, pcm)
        assert (
            pcm_map.traffic_bits[MemoryLevel.GLB] > tempo_map.traffic_bits[MemoryLevel.GLB]
        )

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=300),
    )
    def test_compute_cycles_cover_all_macs(self, m, k, n):
        arch = build_tempo()
        mapping = DataflowMapper().map(GEMMWorkload("g", m=m, k=k, n=n), arch)
        provisioned = (
            mapping.compute_cycles_per_forward
            * mapping.m_parallel
            * mapping.n_parallel
            * mapping.k_parallel
        )
        assert provisioned >= m * n * k
