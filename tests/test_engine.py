"""Tests for the staged EvaluationEngine, its cache and the Simulator facade."""

import dataclasses

import numpy as np
import pytest

from repro import SimulationConfig, Simulator
from repro.arch import ArchitectureConfig
from repro.arch.templates import build_scatter, build_tempo
from repro.core.cache import (
    CacheStats,
    EvaluationCache,
    canonical_value,
    fingerprint,
    workload_fingerprint,
)
from repro.core.engine import (
    AggregatePass,
    EvaluationEngine,
    LayerAnalysisPass,
    LinkBudgetPass,
    MapPass,
    MemoryPass,
    RoutePass,
    rebind_architecture,
    resolve_architecture,
)
from repro.dataflow.gemm import GEMMWorkload
from repro.explore import DesignSpace, DesignSpaceExplorer


def paper_like_workload(seed: int = 0) -> GEMMWorkload:
    rng = np.random.default_rng(seed)
    return GEMMWorkload(
        "w", m=64, k=16, n=32,
        weight_values=rng.normal(0, 0.25, size=(16, 32)),
        input_values=rng.normal(0, 0.5, size=(64, 16)),
    )


def result_signature(result):
    """Value-exact signature of a simulation result for equality checks."""
    return (
        tuple(sorted(result.energy_breakdown_pj.items())),
        tuple(sorted(result.area_breakdown_mm2.items())),
        result.total_cycles,
        result.total_time_ns,
        {name: lb.total_laser_electrical_power_mw for name, lb in result.link_budgets.items()},
    )


class TestEvaluationCache:
    def test_hit_miss_accounting(self):
        cache = EvaluationCache()
        calls = []
        assert cache.get_or_compute("s", "k", lambda: calls.append(1) or 41) == 41
        assert cache.get_or_compute("s", "k", lambda: calls.append(1) or 99) == 41
        assert len(calls) == 1
        assert cache.stats["s"].hits == 1
        assert cache.stats["s"].misses == 1
        assert cache.stats["s"].hit_rate == 0.5

    def test_disabled_cache_always_recomputes(self):
        cache = EvaluationCache(enabled=False)
        values = iter([1, 2])
        assert cache.get_or_compute("s", "k", lambda: next(values)) == 1
        assert cache.get_or_compute("s", "k", lambda: next(values)) == 2
        assert len(cache) == 0
        assert cache.stats["s"].misses == 2

    def test_clear_resets(self):
        cache = EvaluationCache()
        cache.get_or_compute("s", "k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats == {}

    def test_max_entries_evicts_oldest(self):
        cache = EvaluationCache(max_entries=2)
        cache.get_or_compute("s", 1, lambda: "a")
        cache.get_or_compute("s", 2, lambda: "b")
        cache.get_or_compute("s", 3, lambda: "c")
        assert len(cache) == 2
        # Key 1 was evicted: recomputing counts a miss.
        cache.get_or_compute("s", 1, lambda: "a2")
        assert cache.stats["s"].misses == 4

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            EvaluationCache(max_entries=0)

    def test_lru_hit_promotes_entry(self):
        cache = EvaluationCache(max_entries=2)
        cache.get_or_compute("s", 1, lambda: "a")
        cache.get_or_compute("s", 2, lambda: "b")
        # Touch key 1: it becomes most-recent, so inserting key 3 drops key 2.
        cache.get_or_compute("s", 1, lambda: "a-stale")
        cache.get_or_compute("s", 3, lambda: "c")
        calls = []
        assert cache.get_or_compute("s", 1, lambda: calls.append(1) or "a2") == "a"
        assert calls == []
        assert cache.get_or_compute("s", 2, lambda: "b2") == "b2"

    def test_evictions_counted_against_evicted_stage(self):
        cache = EvaluationCache(max_entries=1)
        cache.get_or_compute("alpha", 1, lambda: "a")
        cache.get_or_compute("beta", 1, lambda: "b")
        assert cache.stats["alpha"].evictions == 1
        assert cache.stats["beta"].evictions == 0

    def test_max_entries_defaults_from_knob(self):
        from repro.core.knobs import forced_env

        with forced_env("REPRO_CACHE_MAX_ENTRIES", "3"):
            cache = EvaluationCache()
        assert cache.max_entries == 3
        for key in range(5):
            cache.get_or_compute("s", key, lambda: key)
        assert len(cache) == 3
        assert cache.stats["s"].evictions == 2


class TestCanonicalHashing:
    def test_scalars_pass_through(self):
        assert canonical_value(3) == 3
        assert canonical_value("x") == "x"
        assert canonical_value(2.5) == 2.5

    def test_dict_order_independent(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_ndarray_value_exact(self):
        a = np.arange(6, dtype=float)
        b = np.arange(6, dtype=float)
        assert fingerprint(a) == fingerprint(b)
        b[3] += 1e-12
        assert fingerprint(a) != fingerprint(b)

    def test_dataclass_fields_hashed(self):
        c1 = ArchitectureConfig(core_height=4)
        c2 = ArchitectureConfig(core_height=4)
        c3 = ArchitectureConfig(core_height=8)
        assert fingerprint(c1) == fingerprint(c2)
        assert fingerprint(c1) != fingerprint(c3)

    def test_workload_fingerprint_covers_values(self):
        w1 = paper_like_workload(0)
        w2 = paper_like_workload(0)
        w3 = paper_like_workload(1)
        assert workload_fingerprint(w1) == workload_fingerprint(w2)
        assert workload_fingerprint(w1) != workload_fingerprint(w3)
        # memoized on the object after first computation
        assert getattr(w1, "_repro_fingerprint") == workload_fingerprint(w1)


class TestEngineFacadeEquivalence:
    def test_facade_matches_cached_engine(self, tempo_arch):
        workload = paper_like_workload()
        facade = Simulator(tempo_arch).run(workload)
        engine = EvaluationEngine(tempo_arch, cache=EvaluationCache())
        cached = engine.run(workload)
        assert result_signature(facade) == result_signature(cached)
        # A second run through the same engine is served from cache, identically.
        again = engine.run(workload)
        assert result_signature(again) == result_signature(cached)

    def test_heterogeneous_run_through_engine(self):
        from repro.arch.architecture import HeterogeneousArchitecture
        from repro.arch.templates import build_mzi_mesh

        system = HeterogeneousArchitecture(name="hybrid")
        system.add("scatter", build_scatter())
        system.add("mzi_mesh", build_mzi_mesh())
        workloads = [
            GEMMWorkload("conv1", m=64, k=27, n=16, layer_type="conv"),
            GEMMWorkload("fc1", m=1, k=64, n=10, layer_type="linear"),
        ]
        engine = EvaluationEngine(
            system, type_rules={"conv": "scatter", "linear": "mzi_mesh"}
        )
        result = engine.run(workloads)
        assert result.layer("conv1").arch_name == "scatter"
        assert result.layer("fc1").arch_name == "mzi_mesh"

    def test_custom_pipeline_without_aggregate(self, tempo_arch):
        engine = EvaluationEngine(
            tempo_arch,
            cache=EvaluationCache(),
            passes=(RoutePass, MapPass, MemoryPass, LinkBudgetPass),
        )
        with pytest.raises(RuntimeError):
            engine.run(paper_like_workload())
        ctx = engine.run_context(paper_like_workload())
        assert ctx.mappings and ctx.memory_report is not None
        assert ctx.link_budgets and not ctx.area_reports

    def test_empty_workloads_rejected(self, tempo_arch):
        with pytest.raises(ValueError):
            EvaluationEngine(tempo_arch).run([])


class TestRebind:
    def test_rebound_arch_matches_fresh_build(self):
        base = build_tempo(config=ArchitectureConfig(num_tiles=2, cores_per_tile=2))
        target = ArchitectureConfig(
            num_tiles=2, cores_per_tile=2, core_height=8, core_width=2
        )
        rebound = rebind_architecture(base, target, "tempo")
        fresh = build_tempo(config=target, name="tempo")
        workload = paper_like_workload()
        r1 = Simulator(rebound).run(workload)
        r2 = Simulator(fresh).run(workload)
        assert result_signature(r1) == result_signature(r2)

    def test_rebind_rejects_structural_change(self):
        base = build_tempo()
        target = dataclasses.replace(base.config, num_wavelengths=4)
        with pytest.raises(ValueError, match="num_wavelengths"):
            rebind_architecture(base, target)

    def test_resolve_architecture_reuses_structural_build(self):
        cache = EvaluationCache()
        c1 = ArchitectureConfig(core_height=2)
        c2 = ArchitectureConfig(core_height=8)
        a1 = resolve_architecture(build_tempo, c1, cache=cache)
        a2 = resolve_architecture(build_tempo, c2, cache=cache)
        assert cache.stats["build"].misses == 1
        assert cache.stats["build"].hits == 1
        assert a1.library is a2.library
        assert a2.config.core_height == 8

    def test_resolve_without_cache_builds_directly(self):
        arch = resolve_architecture(build_tempo, ArchitectureConfig(), cache=None)
        assert arch.config == ArchitectureConfig()

    def test_same_qualname_builders_do_not_collide(self):
        from repro.arch.templates import build_mzi_mesh

        def wrap(builder):
            return lambda **kwargs: builder(**kwargs)  # identical __qualname__

        cache = EvaluationCache()
        config = ArchitectureConfig()
        tempo = resolve_architecture(wrap(build_tempo), config, cache=cache)
        mesh = resolve_architecture(wrap(build_mzi_mesh), config, cache=cache)
        assert tempo.taxonomy is not mesh.taxonomy
        assert cache.stats["build"].misses == 2
        assert cache.stats["build"].hits == 0


class TestCriticalPathMemo:
    def test_chain_fast_path_matches_dag(self, tempo_arch):
        engine = EvaluationEngine(tempo_arch, cache=EvaluationCache())
        fast = engine._critical_path_for(tempo_arch)
        reference = tempo_arch.critical_path()
        assert fast.instances == reference.instances
        assert fast.insertion_loss_db == reference.insertion_loss_db

    def test_link_report_matches_seed_analyzer(self, tempo_arch):
        engine = EvaluationEngine(tempo_arch, cache=EvaluationCache())
        cached = engine.link_budget_for(tempo_arch)
        reference = engine.link_budget_analyzer.analyze(tempo_arch)
        assert cached.insertion_loss_db == reference.insertion_loss_db
        assert cached.total_laser_electrical_power_mw == reference.total_laser_electrical_power_mw
        assert cached.pd_sensitivity_dbm == reference.pd_sensitivity_dbm
        assert cached.extinction_ratio_db == reference.extinction_ratio_db
        assert cached.num_sources == reference.num_sources


class TestSweepCaching:
    """Cache hit/miss accounting across sweeps (the tentpole's contract)."""

    def make_explorer(self, **kwargs):
        return DesignSpaceExplorer(
            build_tempo,
            [paper_like_workload()],
            base_config=ArchitectureConfig(num_tiles=1, cores_per_tile=1),
            **kwargs,
        )

    def test_single_field_sweep_reuses_invariant_passes(self):
        explorer = self.make_explorer()
        space = DesignSpace({"core_height": [2, 4, 8, 16]})
        result = explorer.explore(space)
        stats = result.cache_stats
        # One structural template build; every other point rebinds it.
        assert stats["build"].misses == 1
        assert stats["build"].hits == 3
        # The node floorplan never changes across the sweep.
        assert stats["floorplan"].misses == 1
        assert stats["floorplan"].hits == 3
        # Workload sparsity is computed once for the whole sweep.
        assert stats["sparsity"].misses == 1
        # Every point is a distinct design, so the point stage only misses.
        assert stats["design_point"].misses == 4
        assert stats["design_point"].hits == 0
        # core_height changes the broadcast losses: critical path re-runs per point.
        assert stats["critical_path"].misses == 4

    def test_wavelength_sweep_shares_critical_path(self):
        explorer = self.make_explorer()
        result = explorer.explore(DesignSpace({"num_wavelengths": [1, 2, 4]}))
        stats = result.cache_stats
        # TeMPO's optical losses do not depend on the wavelength count...
        assert stats["critical_path"].misses == 1
        assert stats["critical_path"].hits == 2
        # ...but the device library does, so each point is a structural build.
        assert stats["build"].misses == 3

    def test_revisit_is_a_point_level_hit(self):
        explorer = self.make_explorer()
        explorer.evaluate({"core_height": 4})
        explorer.evaluate({"core_height": 4})
        assert explorer.cache.stats["design_point"].hits == 1
        assert explorer.cache.stats["design_point"].misses == 1

    def test_simulation_config_change_invalidates(self):
        shared = EvaluationCache()
        kwargs = dict(cache=shared)
        with_mem = DesignSpaceExplorer(
            build_tempo, [paper_like_workload()],
            sim_config=SimulationConfig(include_memory=True), **kwargs,
        )
        without_mem = DesignSpaceExplorer(
            build_tempo, [paper_like_workload()],
            sim_config=SimulationConfig(include_memory=False), **kwargs,
        )
        p1 = with_mem.evaluate({"core_height": 4})
        p2 = without_mem.evaluate({"core_height": 4})
        # Same design point, different simulation config: both sides computed.
        assert shared.stats["design_point"].misses == 2
        assert shared.stats["design_point"].hits == 0
        assert p1.energy_uj > p2.energy_uj  # memory energy included vs not

    def test_workload_change_invalidates(self):
        shared = EvaluationCache()
        e1 = DesignSpaceExplorer(build_tempo, [paper_like_workload(0)], cache=shared)
        e2 = DesignSpaceExplorer(build_tempo, [paper_like_workload(1)], cache=shared)
        e1.evaluate({"core_height": 4})
        e2.evaluate({"core_height": 4})
        assert shared.stats["design_point"].misses == 2


class TestDeterminism:
    SPACE = DesignSpace(
        {"core_height": [2, 4, 8], "core_width": [2, 4, 8], "num_wavelengths": [1, 4]}
    )

    def make_explorer(self, **kwargs):
        return DesignSpaceExplorer(
            build_tempo,
            [paper_like_workload()],
            base_config=ArchitectureConfig(num_tiles=2, cores_per_tile=2),
            **kwargs,
        )

    def test_cache_on_off_bit_identical(self):
        r_off = self.make_explorer(cache=False).explore(self.SPACE)
        r_on = self.make_explorer(cache=True).explore(self.SPACE)
        assert r_on.points == r_off.points

    def test_serial_parallel_bit_identical(self):
        serial = self.make_explorer(cache=True).explore(self.SPACE)
        parallel = self.make_explorer(cache=True, max_workers=4).explore(self.SPACE)
        assert serial.points == parallel.points

    def test_parallel_with_shared_cold_cache_matches(self):
        parallel = self.make_explorer(cache=True).explore(self.SPACE, max_workers=8)
        reference = self.make_explorer(cache=False).explore(self.SPACE)
        assert parallel.points == reference.points


class TestCachedAggregates:
    """SimulationResult aggregate views are merged once (functools.cached_property)."""

    def test_energy_breakdown_cached_and_identical(self, tempo_arch):
        sim = Simulator(tempo_arch)
        workloads = [GEMMWorkload(f"g{i}", m=32, k=16, n=32) for i in range(3)]
        result = sim.run(workloads)
        first = result.energy_breakdown_pj
        assert result.energy_breakdown_pj is first  # cached, not re-merged
        fresh = sim.run(workloads)
        assert fresh.energy_breakdown_pj == first
        assert result.total_energy_pj == sum(first.values())
        assert result.total_power_w == pytest.approx(
            sum(result.average_power_mw.values()) / 1e3
        )

    def test_area_breakdown_cached(self, tempo_arch):
        result = Simulator(tempo_arch).run_gemm(m=16, k=16, n=16)
        assert result.area_breakdown_mm2 is result.area_breakdown_mm2
        assert result.total_area_mm2 == sum(result.area_breakdown_mm2.values())
