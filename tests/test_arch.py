"""Tests for ArchitectureConfig, ArchInstance, DataflowSpec and Architecture."""

import pytest

from repro.arch import (
    Activity,
    ArchInstance,
    Architecture,
    ArchitectureConfig,
    Dataflow,
    DataflowSpec,
    Role,
)
from repro.arch.architecture import HeterogeneousArchitecture
from repro.arch.templates import build_scatter, build_tempo
from repro.devices import DeviceLibrary
from repro.netlist import Netlist


class TestArchitectureConfig:
    def test_derived_counts(self):
        config = ArchitectureConfig(num_tiles=2, cores_per_tile=3, core_height=4, core_width=5)
        assert config.num_cores == 6
        assert config.num_nodes == 120

    def test_cycle_time(self):
        config = ArchitectureConfig(frequency_ghz=5.0)
        assert config.cycle_time_ns == pytest.approx(0.2)

    def test_scaling_params_keys(self):
        params = ArchitectureConfig().scaling_params()
        assert {"R", "C", "H", "W", "LAMBDA", "T_ACC", "B_IN", "B_W", "B_OUT", "FREQ"} <= set(params)

    @pytest.mark.parametrize("field, value", [
        ("num_tiles", 0),
        ("cores_per_tile", -1),
        ("core_height", 0),
        ("core_width", 0),
        ("num_wavelengths", 0),
        ("frequency_ghz", 0.0),
        ("input_bits", 0),
        ("temporal_accumulation", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            ArchitectureConfig(**{field: value})


class TestArchInstance:
    def test_count_evaluates_rule(self):
        inst = ArchInstance("x", "dac", Role.INPUT_ENCODER, count="R*H")
        assert inst.instance_count({"R": 2, "H": 4}) == 8

    def test_duty_clamped(self):
        inst = ArchInstance("x", "adc", Role.READOUT, duty="2")
        assert inst.duty_factor({}) == 1.0
        inst2 = ArchInstance("x", "adc", Role.READOUT, duty="1/T_ACC")
        assert inst2.duty_factor({"T_ACC": 4}) == pytest.approx(0.25)

    def test_loss_multiplicity_non_negative(self):
        inst = ArchInstance("x", "y_branch", Role.DISTRIBUTION, loss_multiplier="W-1")
        assert inst.loss_multiplicity({"W": 1}) == 0.0

    def test_invalid_operand_rejected(self):
        with pytest.raises(ValueError):
            ArchInstance("x", "dac", Role.INPUT_ENCODER, operand="C")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ArchInstance("", "dac", Role.INPUT_ENCODER)


class TestDataflowSpec:
    def test_parallel_dims(self):
        spec = DataflowSpec(m_parallel="R*H", n_parallel="W", k_parallel="C*LAMBDA")
        dims = spec.parallel_dims({"R": 2, "H": 4, "W": 4, "C": 2, "LAMBDA": 3})
        assert dims == {"M": 8, "N": 4, "K": 6}

    def test_macs_per_cycle(self):
        spec = DataflowSpec(m_parallel="2", n_parallel="3", k_parallel="4")
        assert spec.macs_per_cycle({}) == 24

    def test_invalid_temporal_accumulation(self):
        with pytest.raises(ValueError):
            DataflowSpec(temporal_accumulation=0)

    def test_stationarity_enum(self):
        assert DataflowSpec(stationary=Dataflow.WEIGHT_STATIONARY).stationary is Dataflow.WEIGHT_STATIONARY


class TestArchitecture:
    def test_duplicate_instance_names_rejected(self, default_library):
        link = Netlist(name="link")
        link.add_instance("laser", "laser")
        instances = [
            ArchInstance("laser", "laser", Role.LIGHT_SOURCE),
            ArchInstance("laser", "laser", Role.LIGHT_SOURCE),
        ]
        with pytest.raises(ValueError):
            Architecture("dup", ArchitectureConfig(), default_library, instances, link)

    def test_unknown_device_rejected(self, default_library):
        link = Netlist(name="link")
        link.add_instance("laser", "laser")
        instances = [ArchInstance("x", "warp_drive", Role.COMPUTE)]
        with pytest.raises(KeyError):
            Architecture("bad", ArchitectureConfig(), default_library, instances, link)

    def test_empty_instances_rejected(self, default_library):
        with pytest.raises(ValueError):
            Architecture("none", ArchitectureConfig(), default_library, [], Netlist())

    def test_instance_lookup(self, tempo_arch):
        assert tempo_arch.instance("dac_a").device == "dac"
        with pytest.raises(KeyError):
            tempo_arch.instance("nonexistent")

    def test_instances_by_role(self, tempo_arch):
        encoders = tempo_arch.instances_by_role(Role.INPUT_ENCODER)
        assert {inst.name for inst in encoders} == {"dac_a", "mzm_a"}

    def test_macs_per_cycle_equals_nodes_times_wavelengths(self, tempo_arch):
        cfg = tempo_arch.config
        assert tempo_arch.macs_per_cycle() == cfg.num_nodes * cfg.num_wavelengths

    def test_peak_ops(self, tempo_arch):
        expected = tempo_arch.macs_per_cycle() * tempo_arch.config.frequency_ghz * 1e9
        assert tempo_arch.peak_ops_per_second() == pytest.approx(expected)

    def test_footprint_breakdown_positive(self, tempo_arch):
        breakdown = tempo_arch.footprint_breakdown_um2()
        assert all(area >= 0 for area in breakdown.values())
        assert breakdown["adc"] > 0
        assert "laser" not in breakdown  # off-chip, excluded from area

    def test_weight_reconfig_cycles_zero_for_dynamic(self, tempo_arch):
        assert tempo_arch.weight_reconfig_cycles() == 0

    def test_weight_reconfig_cycles_positive_for_static(self, mzi_arch):
        assert mzi_arch.weight_reconfig_cycles() > 0

    def test_critical_path_reported(self, tempo_arch):
        path = tempo_arch.critical_path()
        assert path.insertion_loss_db > 0
        assert path.instances[0] == "laser"
        assert path.instances[-1] == "pd"

    def test_loss_grows_with_core_width(self):
        small = build_tempo(config=ArchitectureConfig(core_width=2), name="small")
        large = build_tempo(config=ArchitectureConfig(core_width=16), name="large")
        assert large.critical_path_loss_db() > small.critical_path_loss_db()


class TestHeterogeneousArchitecture:
    def test_add_and_get(self, tempo_arch, scatter_arch):
        system = HeterogeneousArchitecture(name="hybrid")
        system.add("tempo", tempo_arch)
        system.add("scatter", scatter_arch)
        assert len(system) == 2
        assert system.get("tempo") is tempo_arch
        assert "scatter" in system

    def test_duplicate_key_rejected(self, tempo_arch):
        system = HeterogeneousArchitecture(name="hybrid")
        system.add("tempo", tempo_arch)
        with pytest.raises(KeyError):
            system.add("tempo", tempo_arch)

    def test_unknown_key(self):
        system = HeterogeneousArchitecture(name="hybrid")
        with pytest.raises(KeyError):
            system.get("missing")

    def test_iteration(self, tempo_arch):
        system = HeterogeneousArchitecture(name="hybrid")
        system.add("tempo", tempo_arch)
        assert dict(system)["tempo"] is tempo_arch
