"""Tests for the evaluation models, conversion, quantization, pruning and workload extraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.onn import (
    ONNConversionConfig,
    apply_pruning,
    convert_to_onn,
    extract_workloads,
    magnitude_prune_mask,
    quantization_error,
    quantize_uniform,
)
from repro.onn.convert import ptc_assignment_of
from repro.onn.layers import Conv2d, Linear
from repro.onn.models import build_bert_base_image, build_mlp, build_vgg8_cifar10
from repro.onn.models.transformer import TransformerEncoder
from repro.onn.prune import sparsity
from repro.onn.quantize import quantize_with_scale
from repro.onn.workload import max_layer_bytes, total_macs


class TestQuantization:
    def test_quantized_values_on_grid(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=100)
        quantized = quantize_uniform(values, bits=4)
        peak = np.max(np.abs(values))
        scale = peak / 7
        codes = quantized / scale
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-9)

    def test_higher_bits_lower_error(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=500)
        assert quantization_error(values, 8) < quantization_error(values, 3)

    def test_error_zero_for_high_precision(self):
        values = np.array([0.5, -0.25, 0.125])
        assert quantization_error(values, 16) < 1e-4

    def test_zero_input(self):
        np.testing.assert_allclose(quantize_uniform(np.zeros(5), 8), np.zeros(5))

    def test_asymmetric_mode(self):
        values = np.array([0.0, 1.0, 2.0])
        quantized = quantize_uniform(values, 2, symmetric=False)
        assert quantized.min() >= 0.0
        assert quantized.max() <= 2.0

    def test_empty_array(self):
        assert quantize_uniform(np.array([]), 8).size == 0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_uniform(np.ones(3), 0)

    def test_quantize_with_scale_roundtrip(self):
        values = np.array([0.5, -1.0, 0.25])
        codes, scale = quantize_with_scale(values, 8)
        np.testing.assert_allclose(codes * scale, values, atol=scale)

    @given(st.integers(min_value=2, max_value=10))
    def test_error_bounded_by_half_lsb(self, bits):
        rng = np.random.default_rng(42)
        values = rng.uniform(-1, 1, size=200)
        quantized = quantize_uniform(values, bits)
        lsb = np.max(np.abs(values)) / (2 ** (bits - 1) - 1)
        assert np.max(np.abs(values - quantized)) <= lsb / 2 + 1e-12


class TestPruning:
    def test_prune_ratio_respected(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(20, 20))
        mask = magnitude_prune_mask(weights, 0.5)
        assert mask.mean() == pytest.approx(0.5, abs=0.05)

    def test_keeps_largest_magnitudes(self):
        weights = np.array([0.01, 5.0, -4.0, 0.02])
        mask = magnitude_prune_mask(weights, 0.5)
        assert mask[1] and mask[2]
        assert not mask[0] and not mask[3]

    def test_zero_and_full_ratio(self):
        weights = np.ones((3, 3))
        assert magnitude_prune_mask(weights, 0.0).all()
        assert not magnitude_prune_mask(weights, 1.0).any()

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            magnitude_prune_mask(np.ones(4), 1.5)

    def test_apply_pruning_to_layer(self):
        layer = Linear(10, 10, name="fc")
        mask = apply_pruning(layer, 0.3)
        assert layer.pruning_mask is mask
        assert sparsity(mask) == pytest.approx(0.3, abs=0.05)

    def test_apply_pruning_requires_weights(self):
        with pytest.raises(TypeError):
            apply_pruning(object(), 0.5)

    def test_sparsity_of_weights(self):
        assert sparsity(np.array([0.0, 1.0, 0.0, 2.0])) == pytest.approx(0.5)
        assert sparsity(np.array([])) == 0.0


class TestConversion:
    def test_sets_bits_and_ptc(self):
        model = build_mlp((16, 8, 4))
        convert_to_onn(model, ONNConversionConfig(weight_bits=6, default_ptc="tempo"))
        fc1 = model[0]
        assert fc1.weight_bits == 6
        assert fc1.ptc_type == "tempo"

    def test_type_rules_route_layers(self):
        model = build_vgg8_cifar10(width_multiplier=0.05, input_size=16)
        config = ONNConversionConfig(
            ptc_assignment={"conv": "scatter", "linear": "mzi_mesh"}
        )
        convert_to_onn(model, config)
        assignment = ptc_assignment_of(model)
        assert assignment["conv1"] == "scatter"
        assert assignment["fc1"] == "mzi_mesh"

    def test_pruning_applied_during_conversion(self):
        model = build_mlp((32, 16, 8))
        convert_to_onn(model, ONNConversionConfig(prune_ratio=0.5))
        assert model[0].pruning_mask is not None
        assert sparsity(model[0].pruning_mask) > 0.3

    def test_quantization_applied(self):
        model = build_mlp((16, 8))
        original = model[0].weight.copy()
        convert_to_onn(model, ONNConversionConfig(weight_bits=2))
        assert not np.allclose(model[0].weight, original)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ONNConversionConfig(weight_bits=0)
        with pytest.raises(ValueError):
            ONNConversionConfig(prune_ratio=1.0)

    def test_attention_projections_tagged_attention(self):
        model = build_bert_base_image(image_size=32, num_layers=1, num_classes=10)
        config = ONNConversionConfig(
            ptc_assignment={"attention": "lightening_transformer", "linear": "mzi_mesh"}
        )
        convert_to_onn(model, config)
        assignment = ptc_assignment_of(model)
        assert assignment[model.blocks[0].attention.w_q.name] == "lightening_transformer"
        assert assignment[model.head.name] == "mzi_mesh"


class TestModels:
    def test_mlp_forward(self):
        model = build_mlp((12, 6, 3))
        assert model(np.ones(12)).shape == (3,)

    def test_mlp_needs_two_sizes(self):
        with pytest.raises(ValueError):
            build_mlp((4,))

    def test_vgg8_has_eight_weight_layers(self):
        model = build_vgg8_cifar10(width_multiplier=0.1)
        weighted = [m for m in model.modules() if isinstance(m, (Conv2d, Linear))]
        assert len(weighted) == 8

    def test_vgg8_forward_shape(self):
        model = build_vgg8_cifar10(width_multiplier=0.1)
        logits = model(np.random.default_rng(0).normal(size=(3, 32, 32)))
        assert logits.shape == (10,)

    def test_vgg8_input_size_check(self):
        with pytest.raises(ValueError):
            build_vgg8_cifar10(input_size=30)

    def test_transformer_token_count(self):
        model = TransformerEncoder(image_size=32, patch_size=16, num_layers=1,
                                   embed_dim=32, num_heads=4, mlp_dim=64, num_classes=5)
        assert model.num_tokens == (32 // 16) ** 2 + 1

    def test_transformer_forward(self):
        model = TransformerEncoder(image_size=32, patch_size=16, num_layers=2,
                                   embed_dim=32, num_heads=4, mlp_dim=64, num_classes=5)
        logits = model(np.random.default_rng(0).normal(size=(3, 32, 32)))
        assert logits.shape == (5,)

    def test_transformer_patchify_shape_check(self):
        model = TransformerEncoder(image_size=32, patch_size=16, num_layers=1,
                                   embed_dim=16, num_heads=2, mlp_dim=32)
        with pytest.raises(ValueError):
            model.patchify(np.ones((3, 16, 16)))

    def test_bert_base_parameter_count_scale(self):
        model = build_bert_base_image(image_size=32, num_layers=1, num_classes=10)
        # One BERT-Base block is ~7M parameters (attention 4*768^2 + MLP 2*768*3072).
        assert 6e6 < model.blocks[0].num_parameters() < 8.5e6


class TestWorkloadExtraction:
    def test_mlp_workloads(self):
        model = build_mlp((16, 8, 4))
        workloads = extract_workloads(model, np.ones(16))
        assert [w.layer_name for w in workloads] == ["fc1", "fc2"]
        assert total_macs(workloads) == 16 * 8 + 8 * 4

    def test_vgg8_workload_count_and_types(self):
        model = build_vgg8_cifar10(width_multiplier=0.05, input_size=16)
        workloads = extract_workloads(model, np.random.default_rng(0).normal(size=(3, 16, 16)))
        assert len(workloads) == 8
        assert sum(w.layer_type == "conv" for w in workloads) == 6
        assert sum(w.layer_type == "linear" for w in workloads) == 2

    def test_ptc_assignment_propagates(self):
        model = build_vgg8_cifar10(width_multiplier=0.05, input_size=16)
        convert_to_onn(model, ONNConversionConfig(
            ptc_assignment={"conv": "scatter", "linear": "mzi_mesh"}))
        workloads = extract_workloads(model, np.zeros((3, 16, 16)))
        conv_ptcs = {w.ptc_type for w in workloads if w.layer_type == "conv"}
        linear_ptcs = {w.ptc_type for w in workloads if w.layer_type == "linear"}
        assert conv_ptcs == {"scatter"}
        assert linear_ptcs == {"mzi_mesh"}

    def test_attention_workloads_tagged(self):
        model = TransformerEncoder(image_size=32, patch_size=16, num_layers=1,
                                   embed_dim=32, num_heads=2, mlp_dim=64, num_classes=4)
        convert_to_onn(model, ONNConversionConfig(
            ptc_assignment={"attention": "tempo", "linear": "mzi_mesh"}))
        workloads = extract_workloads(model, np.zeros((3, 32, 32)))
        dynamic = [w for w in workloads if w.layer_type == "attention"]
        assert dynamic
        assert all(w.ptc_type == "tempo" for w in dynamic)

    def test_max_layer_bytes(self):
        model = build_mlp((64, 32, 8))
        workloads = extract_workloads(model, np.ones(64))
        assert max_layer_bytes(workloads) == max(w.gemm.total_bytes for w in workloads)
        assert max_layer_bytes([]) == 0.0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=16), st.integers(min_value=2, max_value=16))
    def test_total_macs_matches_manual_count(self, hidden, out):
        model = build_mlp((8, hidden, out))
        workloads = extract_workloads(model, np.ones(8))
        assert total_macs(workloads) == 8 * hidden + hidden * out
