"""Shared fixtures for the SimPhony reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.architecture import ArchitectureConfig
from repro.arch.templates import (
    build_lightening_transformer,
    build_mzi_mesh,
    build_scatter,
    build_tempo,
)
from repro.core.config import SimulationConfig
from repro.dataflow.gemm import GEMMWorkload
from repro.devices.library import DeviceLibrary


@pytest.fixture(scope="session")
def default_library() -> DeviceLibrary:
    return DeviceLibrary.default()


@pytest.fixture()
def tempo_arch():
    """The paper's Fig. 7 TeMPO configuration: 4x4 cores, 2 tiles x 2 cores, 5 GHz."""
    return build_tempo()


@pytest.fixture()
def small_tempo_arch():
    """A tiny TeMPO instance for fast mapping/energy tests."""
    config = ArchitectureConfig(
        num_tiles=1,
        cores_per_tile=1,
        core_height=2,
        core_width=2,
        num_wavelengths=1,
        frequency_ghz=5.0,
        name="tempo_small",
    )
    return build_tempo(config=config, name="tempo_small")


@pytest.fixture()
def mzi_arch():
    return build_mzi_mesh()


@pytest.fixture()
def scatter_arch():
    return build_scatter()


@pytest.fixture()
def lt_arch():
    """A reduced Lightening-Transformer (small cores) to keep tests fast."""
    config = ArchitectureConfig(
        num_tiles=2,
        cores_per_tile=2,
        core_height=4,
        core_width=4,
        num_wavelengths=4,
        frequency_ghz=5.0,
        name="lt_small",
    )
    return build_lightening_transformer(config=config, name="lt_small")


@pytest.fixture()
def gemm_workload() -> GEMMWorkload:
    rng = np.random.default_rng(3)
    m, k, n = 64, 32, 48
    return GEMMWorkload(
        name="test_gemm",
        m=m,
        k=k,
        n=n,
        weight_values=rng.normal(0, 0.3, size=(k, n)),
        input_values=rng.normal(0, 0.5, size=(m, k)),
    )


@pytest.fixture()
def paper_gemm() -> GEMMWorkload:
    """The (280x28) x (28x280) GEMM used throughout the paper's evaluation."""
    return GEMMWorkload(name="paper_gemm", m=280, k=28, n=280)


@pytest.fixture()
def sim_config() -> SimulationConfig:
    return SimulationConfig()
