"""Tests for the device library registry."""

import pytest

from repro.devices import DeviceLibrary, MachZehnderModulator, YBranch
from repro.devices.base import DeviceCategory


class TestDefaultLibrary:
    REQUIRED_DEVICES = [
        "laser",
        "microcomb",
        "coupler",
        "dac",
        "adc",
        "tia",
        "integrator",
        "digital_control",
        "mzm",
        "mzi",
        "phase_shifter",
        "mrr",
        "mrm",
        "pd",
        "y_branch",
        "directional_coupler",
        "mmi",
        "crossing",
        "pcm",
        "wdm_mux",
    ]

    def test_contains_all_canonical_devices(self, default_library):
        for name in self.REQUIRED_DEVICES:
            assert name in default_library

    def test_len_matches_names(self, default_library):
        assert len(default_library) == len(list(default_library.names()))

    def test_get_unknown_raises_with_listing(self, default_library):
        with pytest.raises(KeyError) as err:
            default_library.get("flux_capacitor")
        assert "mzm" in str(err.value)

    def test_getitem(self, default_library):
        assert default_library["dac"].name == "dac"

    def test_converter_sizing_follows_arguments(self):
        lib = DeviceLibrary.default(adc_bits=4, dac_bits=4, frequency_ghz=2.0)
        assert lib["adc"].bits == 4
        assert lib["dac"].sampling_rate_ghz == 2.0

    def test_category_partition(self, default_library):
        photonic = default_library.photonic_devices()
        electrical = default_library.electrical_devices()
        assert set(photonic) | set(electrical) == set(default_library.names())
        assert not set(photonic) & set(electrical)
        assert all(d.category is DeviceCategory.PHOTONIC for d in photonic.values())


class TestLibraryMutation:
    def test_register_overwrite(self):
        lib = DeviceLibrary.default()
        custom = MachZehnderModulator(insertion_loss_db=2.5, name="mzm")
        lib.register(custom)
        assert lib["mzm"].insertion_loss_db == 2.5

    def test_register_no_overwrite_raises(self):
        lib = DeviceLibrary.default()
        with pytest.raises(KeyError):
            lib.register(YBranch(name="mzm"), overwrite=False)

    def test_override_returns_new_library(self):
        lib = DeviceLibrary.default()
        new = lib.override("mzm", insertion_loss_db=9.9)
        assert new["mzm"].insertion_loss_db == 9.9
        assert lib["mzm"].insertion_loss_db != 9.9

    def test_copy_is_independent(self):
        lib = DeviceLibrary.default()
        clone = lib.copy(name="clone")
        clone.register(YBranch(name="extra"))
        assert "extra" in clone
        assert "extra" not in lib

    def test_custom_library_from_devices(self):
        lib = DeviceLibrary([YBranch(name="yb")], name="mini")
        assert len(lib) == 1
        assert lib.name == "mini"
