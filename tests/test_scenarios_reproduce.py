"""Acceptance: every registered scenario reproduces its checked-in benchmark table.

Runs all eleven figure/table experiments through the registry (one shared
evaluation cache, exactly like ``python -m repro batch --all``) and compares the
rendered tables byte-for-byte against ``benchmarks/results/*.txt``.  Scenarios
registered with ``deterministic=False`` (wall-clock timing tables) are checked
structurally instead.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.scenarios import REGISTRY, BatchRunner

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"

ALL_SCENARIOS = REGISTRY.names()
DETERMINISTIC = [n for n in ALL_SCENARIOS if REGISTRY.get(n).spec.deterministic]


@pytest.fixture(scope="module")
def batch_report():
    """One shared-cache batch over every registered scenario (no store)."""
    report = BatchRunner(store=None).run(ALL_SCENARIOS)
    assert report.ok, [item.error for item in report.items if not item.ok]
    return report


def test_every_result_file_has_a_scenario_and_vice_versa():
    stems = {p.stem for p in RESULTS_DIR.glob("*.txt")}
    assert stems == set(ALL_SCENARIOS)


@pytest.mark.parametrize("name", DETERMINISTIC)
def test_scenario_reproduces_checked_in_table(batch_report, name):
    result = batch_report.item(name).result
    reference = (RESULTS_DIR / f"{name}.txt").read_text()
    assert result.table + "\n" == reference, (
        f"{name} no longer reproduces benchmarks/results/{name}.txt byte-for-byte"
    )


@pytest.mark.parametrize("name", DETERMINISTIC)
def test_scenario_passes_its_shape_checks(batch_report, name):
    REGISTRY.verify(name, batch_report.item(name).result)


def test_timing_scenarios_render_the_same_structure(batch_report):
    """Non-deterministic tables must match the reference line-for-line in shape."""
    for name in set(ALL_SCENARIOS) - set(DETERMINISTIC):
        result = batch_report.item(name).result
        reference = (RESULTS_DIR / f"{name}.txt").read_text().rstrip("\n")
        ours = result.table.splitlines()
        theirs = reference.splitlines()
        assert len(ours) == len(theirs), name
        # Same first column (labels) everywhere; only measured numbers (and the
        # column widths that depend on them) may move.
        for our_line, their_line in zip(ours, theirs):
            if set(our_line) <= set("-+ "):  # table rule, width tracks the numbers
                assert set(their_line) <= set("-+ "), name
                continue
            assert our_line.split("|")[0].rstrip() == their_line.split("|")[0].rstrip(), name
