"""Property-based invariants of the end-to-end simulator.

These tests pin relationships that must hold for *any* workload and architecture
configuration: conservation between breakdowns and totals, monotonicity of latency
in the workload size, and the direction of every co-design knob (wavelengths,
bitwidth, parallel hardware, pruning).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import GEMMWorkload, SimulationConfig, Simulator
from repro.arch import ArchitectureConfig
from repro.arch.templates import build_scatter, build_tempo
from repro.dataflow.mapping import DataflowMapper

dims = st.integers(min_value=1, max_value=200)
small_hw = st.integers(min_value=1, max_value=6)


@settings(max_examples=15, deadline=None)
@given(dims, dims, dims)
def test_energy_and_cycles_positive_for_any_gemm(m, k, n):
    arch = build_tempo(
        config=ArchitectureConfig(num_tiles=1, cores_per_tile=1, core_height=2, core_width=2),
        name="tiny",
    )
    result = Simulator(arch).run(GEMMWorkload("g", m=m, k=k, n=n))
    assert result.total_cycles > 0
    assert result.total_energy_pj > 0
    assert result.total_area_mm2 > 0
    # breakdown totals are conserved
    assert result.total_energy_pj == pytest.approx(sum(result.energy_breakdown_pj.values()))
    layer = result.layers[0]
    assert layer.energy.total_pj == pytest.approx(result.total_energy_pj)


@settings(max_examples=15, deadline=None)
@given(dims, dims, dims)
def test_mapping_cycles_monotone_in_workload(m, k, n):
    arch = build_tempo()
    mapper = DataflowMapper()
    small = mapper.map(GEMMWorkload("s", m=m, k=k, n=n), arch)
    large = mapper.map(GEMMWorkload("l", m=m + 8, k=k + 8, n=n + 8), arch)
    assert large.compute_cycles >= small.compute_cycles
    assert large.total_cycles >= small.total_cycles


@settings(max_examples=10, deadline=None)
@given(small_hw, small_hw)
def test_more_parallel_hardware_never_slower(height, width):
    workload = GEMMWorkload("g", m=64, k=32, n=64)
    mapper = DataflowMapper()
    base = build_tempo(
        config=ArchitectureConfig(core_height=height, core_width=width), name="base"
    )
    doubled = build_tempo(
        config=ArchitectureConfig(core_height=2 * height, core_width=2 * width),
        name="doubled",
    )
    assert (
        mapper.map(workload, doubled).compute_cycles
        <= mapper.map(workload, base).compute_cycles
    )


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=6))
def test_wavelengths_never_increase_compute_cycles(wavelengths):
    workload = GEMMWorkload("g", m=128, k=64, n=128)
    mapper = DataflowMapper()
    single = build_tempo(config=ArchitectureConfig(num_wavelengths=1), name="w1")
    multi = build_tempo(
        config=ArchitectureConfig(num_wavelengths=wavelengths), name=f"w{wavelengths}"
    )
    assert (
        mapper.map(workload, multi).compute_cycles
        <= mapper.map(workload, single).compute_cycles
    )


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=2, max_value=8))
def test_bitwidth_monotone_energy(bits):
    """Energy at `bits` is never more than at `bits + 1` (same workload shape)."""
    def run(b):
        arch = build_tempo(
            config=ArchitectureConfig(input_bits=b, weight_bits=b, output_bits=b),
            name=f"b{b}",
        )
        return Simulator(arch).run(
            GEMMWorkload("g", m=64, k=16, n=64, input_bits=b, weight_bits=b, output_bits=b)
        ).total_energy_pj

    assert run(bits) <= run(bits + 1) * 1.0001


@settings(max_examples=8, deadline=None)
@given(st.floats(min_value=0.0, max_value=0.9))
def test_pruning_never_increases_energy(prune_ratio):
    rng = np.random.default_rng(0)
    weights = rng.normal(0, 0.25, size=(16, 16))
    keep = np.abs(weights) > np.quantile(np.abs(weights), prune_ratio)
    arch = build_scatter()
    sim = Simulator(arch, SimulationConfig(data_aware=True))
    dense = sim.run(GEMMWorkload("dense", m=128, k=16, n=16, weight_values=weights))
    sparse = sim.run(
        GEMMWorkload("sparse", m=128, k=16, n=16, weight_values=weights, pruning_mask=keep)
    )
    assert sparse.total_energy_pj <= dense.total_energy_pj * 1.0001


@settings(max_examples=10, deadline=None)
@given(dims, dims, dims)
def test_utilization_and_power_bounds(m, k, n):
    arch = build_tempo()
    result = Simulator(arch).run(GEMMWorkload("g", m=m, k=k, n=n))
    mapping = result.layers[0].mapping
    assert 0.0 < mapping.utilization <= 1.0
    # Average power must be below the sum of every device's worst-case power plus
    # memory and laser budgets -- sanity bound of a few hundred watts for this arch.
    assert result.total_power_w < 500.0


@settings(max_examples=10, deadline=None)
@given(dims, dims)
def test_area_independent_of_workload(m, n):
    """Chip area depends on the architecture, not on the workload mapped to it."""
    arch = build_tempo()
    sim = Simulator(arch, SimulationConfig(include_memory=False))
    a = sim.run(GEMMWorkload("a", m=m, k=16, n=n)).total_area_mm2
    b = sim.run(GEMMWorkload("b", m=n, k=32, n=m)).total_area_mm2
    assert a == pytest.approx(b)
