"""Integration tests: the qualitative trends of the paper's evaluation section.

These tests pin the *shape* of every experiment (who wins, what grows, where the
gaps are) rather than absolute numbers, mirroring the reproduction contract of
EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro import Simulator, SimulationConfig
from repro.arch import ArchitectureConfig
from repro.arch.architecture import HeterogeneousArchitecture
from repro.arch.templates import (
    build_lightening_transformer,
    build_mzi_mesh,
    build_scatter,
    build_tempo,
)
from repro.arch.templates.tempo import tempo_node_netlist
from repro.core.area import AreaAnalyzer
from repro.dataflow.gemm import GEMMWorkload
from repro.layout import SignalFlowFloorplanner, naive_footprint_sum_um2
from repro.onn import ONNConversionConfig, convert_to_onn, extract_workloads
from repro.onn.models import build_vgg8_cifar10


def paper_gemm_workload(bits: int = 8) -> GEMMWorkload:
    rng = np.random.default_rng(0)
    return GEMMWorkload(
        "paper_gemm",
        m=280,
        k=28,
        n=280,
        input_bits=bits,
        weight_bits=bits,
        output_bits=bits,
        weight_values=rng.normal(0, 0.25, size=(28, 280)),
        input_values=rng.normal(0, 0.5, size=(280, 28)),
    )


class TestFig6LayoutGap:
    def test_floorplan_tracks_real_layout_not_footprint_sum(self):
        """Fig. 6: naive sum 1270.5 um^2 vs real 4416 um^2; floorplan lands near real."""
        arch = build_tempo()
        node = tempo_node_netlist()
        naive = naive_footprint_sum_um2(node, arch.library)
        planned = SignalFlowFloorplanner(
            device_spacing_um=arch.node_device_spacing_um,
            boundary_um=arch.node_boundary_um,
        ).area_um2(node, arch.library)
        real_layout_um2 = 4416.0
        # The floorplan estimate should be within ~25% of the real layout, while the
        # naive sum underestimates it by >2x.
        assert abs(planned - real_layout_um2) / real_layout_um2 < 0.25
        assert real_layout_um2 / naive > 2.0


class TestFig7TempoValidation:
    def test_area_and_energy_scale(self):
        """Fig. 7: TeMPO, (280x28)x(28x280) GEMM -- photonic core area near 0.84 mm^2."""
        arch = build_tempo()
        sim = Simulator(arch, SimulationConfig(include_memory=False))
        result = sim.run(paper_gemm_workload())
        area = result.area_reports["tempo"].photonic_core_area_mm2
        assert 0.4 < area < 1.7           # reference: 0.84 mm^2
        assert 1.0 < result.total_energy_uj < 20.0
        # Converters dominate the energy budget in the reference breakdown.
        breakdown = result.energy_breakdown_pj
        assert breakdown["DAC"] + breakdown["ADC"] > 0.3 * result.total_energy_pj

    def test_breakdown_has_reference_components(self):
        arch = build_tempo()
        result = Simulator(arch).run(paper_gemm_workload())
        for label in ("Laser", "PS", "PD", "MZM", "ADC", "DAC", "Integrator"):
            assert label in result.energy_breakdown_pj


class TestFig8LighteningTransformer:
    def test_attention_scale_area_and_power(self):
        """Fig. 8 (reduced): LT-class architecture on transformer-shaped GEMMs.

        The full BERT-Base run is exercised by the benchmark harness; here a slice
        (one encoder block's GEMMs at the real hidden sizes) checks that the area is
        in the tens of mm^2 and power in the watts range, matching the reference
        order of magnitude (59.83 mm^2 / 20.77 W vs. 60.30 mm^2 / 14.75 W).
        """
        arch = build_lightening_transformer()
        workloads = [
            GEMMWorkload("qkv", m=197, k=768, n=2304, layer_type="attention"),
            GEMMWorkload("mlp1", m=197, k=768, n=3072, layer_type="linear"),
        ]
        result = Simulator(arch).run(workloads)
        assert 10.0 < result.total_area_mm2 < 200.0
        assert 1.0 < result.total_power_w < 100.0

    def test_dynamic_matmul_has_no_reconfig_penalty(self):
        arch = build_lightening_transformer()
        result = Simulator(arch).run(
            GEMMWorkload("qk", m=197, k=64, n=197, layer_type="attention")
        )
        assert result.layers[0].mapping.reconfig_cycles == 0


class TestFig9Sweeps:
    def test_wavelength_parallelism_reduces_energy(self):
        """Fig. 9(a): more wavelengths -> fewer cycles and lower total energy."""
        totals = []
        times = []
        for wavelengths in (1, 2, 4, 6):
            arch = build_tempo(
                config=ArchitectureConfig(num_wavelengths=wavelengths),
                name=f"tempo_w{wavelengths}",
            )
            result = Simulator(arch).run(paper_gemm_workload())
            totals.append(result.total_energy_pj)
            times.append(result.total_time_ns)
        assert times[0] > times[-1]
        assert totals[0] > totals[-1]

    def test_mzm_energy_flat_across_wavelengths(self):
        """Fig. 9(a): MZM count scales with wavelengths, so its energy stays ~flat."""
        energies = []
        for wavelengths in (1, 4):
            arch = build_tempo(
                config=ArchitectureConfig(num_wavelengths=wavelengths),
                name=f"tempo_w{wavelengths}",
            )
            result = Simulator(arch).run(paper_gemm_workload())
            energies.append(result.energy_breakdown_pj["MZM"])
        ratio = energies[1] / energies[0]
        assert 0.5 < ratio < 2.0

    def test_bitwidth_sweep_increases_energy(self):
        """Fig. 9(b): energy grows monotonically with converter bitwidth."""
        totals = []
        for bits in (2, 4, 6, 8):
            arch = build_tempo(
                config=ArchitectureConfig(input_bits=bits, weight_bits=bits, output_bits=bits),
                name=f"tempo_b{bits}",
            )
            result = Simulator(arch).run(paper_gemm_workload(bits=bits))
            totals.append(result.total_energy_pj)
        assert all(b > a for a, b in zip(totals, totals[1:]))
        # Converter power is exponential in bits, so 8-bit is much more than 2-bit.
        assert totals[-1] / totals[0] > 2.0


class TestFig10LayoutAndDataAwareness:
    def test_layout_unaware_underestimates_area(self):
        """Fig. 10(a): layout-unaware area is a significant underestimate (0.63 vs 0.84)."""
        arch = build_tempo()
        analyzer = AreaAnalyzer(SimulationConfig(include_memory=False))
        aware = analyzer.analyze(arch, layout_aware=True).photonic_core_area_mm2
        unaware = analyzer.analyze(arch, layout_aware=False).photonic_core_area_mm2
        assert 0.55 < unaware / aware < 0.92

    def test_data_awareness_roughly_halves_ps_energy(self):
        """Fig. 10(b): data-aware PS energy drops to roughly half of data-unaware."""
        arch = build_scatter()
        rng = np.random.default_rng(2)
        workload = GEMMWorkload(
            "scatter_layer", m=256, k=16, n=16,
            weight_values=rng.normal(0, 0.25, size=(16, 16)),
        )
        aware = Simulator(arch, SimulationConfig(data_aware=True)).run(workload)
        unaware = Simulator(arch, SimulationConfig(data_aware=False)).run(workload)
        ratio = unaware.energy_breakdown_pj["PS"] / aware.energy_breakdown_pj["PS"]
        assert 1.4 < ratio < 3.5      # reference: 0.0537 uJ -> 0.0215 uJ (~2.5x)


class TestFig11HeterogeneousMapping:
    def test_vgg8_heterogeneous_layer_breakdown(self):
        """Fig. 11: convs on SCATTER, linears on the MZI mesh, per-layer energies."""
        model = build_vgg8_cifar10(width_multiplier=0.125, input_size=32)
        convert_to_onn(
            model,
            ONNConversionConfig(ptc_assignment={"conv": "scatter", "linear": "mzi_mesh"}),
        )
        workloads = extract_workloads(
            model, np.random.default_rng(0).normal(size=(3, 32, 32))
        )
        system = HeterogeneousArchitecture(name="hybrid")
        system.add("scatter", build_scatter())
        system.add("mzi_mesh", build_mzi_mesh())
        sim = Simulator(system, type_rules={"conv": "scatter", "linear": "mzi_mesh"})
        result = sim.run(workloads)
        assert len(result.layers) == 8
        conv_layers = result.layers_on("scatter")
        linear_layers = result.layers_on("mzi_mesh")
        assert len(conv_layers) == 6
        assert len(linear_layers) == 2
        # Convolutions dominate the compute and hence the energy of VGG-8.
        assert sum(l.total_energy_pj for l in conv_layers) > sum(
            l.total_energy_pj for l in linear_layers
        )
