"""Tests for the end-to-end Simulator and SimulationResult."""

import numpy as np
import pytest

from repro import Simulator, SimulationConfig
from repro.arch import ArchitectureConfig
from repro.arch.architecture import HeterogeneousArchitecture
from repro.arch.templates import build_mzi_mesh, build_scatter, build_tempo
from repro.dataflow.gemm import GEMMWorkload
from repro.onn import ONNConversionConfig, convert_to_onn, extract_workloads
from repro.onn.models import build_mlp


class TestSingleArchSimulation:
    def test_run_gemm_produces_complete_result(self, tempo_arch):
        sim = Simulator(tempo_arch)
        result = sim.run_gemm(m=280, k=28, n=280, name="paper_gemm")
        assert len(result.layers) == 1
        assert result.total_cycles > 0
        assert result.total_energy_pj > 0
        assert result.total_area_mm2 > 0
        assert result.total_macs == 280 * 28 * 280
        assert result.memory is not None
        assert "tempo" in result.link_budgets

    def test_workload_bits_default_to_arch(self, tempo_arch):
        sim = Simulator(tempo_arch)
        result = sim.run_gemm(m=8, k=8, n=8)
        assert result.layers[0].workload.input_bits == tempo_arch.config.input_bits

    def test_list_of_workloads(self, tempo_arch):
        sim = Simulator(tempo_arch)
        workloads = [GEMMWorkload(f"g{i}", m=32, k=16, n=32) for i in range(3)]
        result = sim.run(workloads)
        assert len(result.layers) == 3
        assert result.total_cycles == sum(l.total_cycles for l in result.layers)

    def test_empty_workload_list_rejected(self, tempo_arch):
        with pytest.raises(ValueError):
            Simulator(tempo_arch).run([])

    def test_energy_breakdown_merges_layers(self, tempo_arch):
        sim = Simulator(tempo_arch)
        result = sim.run([GEMMWorkload("a", m=32, k=16, n=32), GEMMWorkload("b", m=16, k=16, n=16)])
        merged_total = sum(result.energy_breakdown_pj.values())
        assert merged_total == pytest.approx(
            sum(l.total_energy_pj for l in result.layers)
        )

    def test_layer_lookup(self, tempo_arch):
        result = Simulator(tempo_arch).run(GEMMWorkload("abc", m=8, k=8, n=8))
        assert result.layer("abc").name == "abc"
        with pytest.raises(KeyError):
            result.layer("missing")

    def test_summary_renders(self, tempo_arch):
        result = Simulator(tempo_arch).run_gemm(m=16, k=16, n=16)
        text = result.summary()
        assert "energy breakdown" in text
        assert "area breakdown" in text

    def test_energy_per_mac_in_reasonable_range(self, tempo_arch):
        result = Simulator(tempo_arch).run_gemm(m=280, k=28, n=280)
        # Photonic accelerators land in the 0.1 - 50 pJ/MAC range at system level.
        assert 0.1 < result.energy_per_mac_pj < 50.0

    def test_config_controls_data_awareness(self, scatter_arch):
        rng = np.random.default_rng(0)
        workload = GEMMWorkload(
            "w", m=64, k=16, n=16, weight_values=rng.normal(0, 0.2, size=(16, 16))
        )
        aware = Simulator(scatter_arch, SimulationConfig(data_aware=True)).run(workload)
        unaware = Simulator(scatter_arch, SimulationConfig(data_aware=False)).run(workload)
        assert aware.energy_breakdown_pj["PS"] < unaware.energy_breakdown_pj["PS"]

    def test_layout_awareness_increases_area(self, tempo_arch):
        aware = Simulator(tempo_arch, SimulationConfig(use_layout_aware_area=True)).run_gemm(
            m=16, k=16, n=16
        )
        unaware = Simulator(tempo_arch, SimulationConfig(use_layout_aware_area=False)).run_gemm(
            m=16, k=16, n=16
        )
        assert aware.total_area_mm2 > unaware.total_area_mm2

    def test_excluding_memory(self, tempo_arch):
        with_mem = Simulator(tempo_arch, SimulationConfig(include_memory=True)).run_gemm(
            m=32, k=32, n=32
        )
        without_mem = Simulator(tempo_arch, SimulationConfig(include_memory=False)).run_gemm(
            m=32, k=32, n=32
        )
        assert "Mem" in with_mem.area_breakdown_mm2
        assert "Mem" not in without_mem.area_breakdown_mm2
        assert without_mem.energy_breakdown_pj.get("DM", 0.0) < with_mem.energy_breakdown_pj["DM"]


class TestHeterogeneousSimulation:
    @pytest.fixture()
    def hybrid_simulator(self):
        system = HeterogeneousArchitecture(name="hybrid")
        system.add("scatter", build_scatter())
        system.add("mzi_mesh", build_mzi_mesh())
        return Simulator(
            system,
            type_rules={"conv": "scatter", "linear": "mzi_mesh"},
            default_subarch="scatter",
        )

    def test_layers_routed_by_type(self, hybrid_simulator):
        workloads = [
            GEMMWorkload("conv1", m=64, k=27, n=16, layer_type="conv"),
            GEMMWorkload("fc1", m=1, k=64, n=10, layer_type="linear"),
        ]
        result = hybrid_simulator.run(workloads)
        assert result.layer("conv1").arch_name == "scatter"
        assert result.layer("fc1").arch_name == "mzi_mesh"

    def test_energy_by_arch_partitions_total(self, hybrid_simulator):
        workloads = [
            GEMMWorkload("conv1", m=64, k=27, n=16, layer_type="conv"),
            GEMMWorkload("fc1", m=1, k=64, n=10, layer_type="linear"),
        ]
        result = hybrid_simulator.run(workloads)
        by_arch = result.energy_by_arch()
        assert set(by_arch) == {"scatter", "mzi_mesh"}
        assert sum(by_arch.values()) == pytest.approx(result.total_energy_pj)

    def test_shared_memory_counted_once_in_area(self, hybrid_simulator):
        workloads = [
            GEMMWorkload("conv1", m=64, k=27, n=16, layer_type="conv"),
            GEMMWorkload("fc1", m=1, k=64, n=10, layer_type="linear"),
        ]
        result = hybrid_simulator.run(workloads)
        assert len(result.area_reports) == 2
        breakdown = result.area_breakdown_mm2
        assert breakdown["Mem"] == result.memory.onchip_area_mm2

    def test_layers_on_filter(self, hybrid_simulator):
        workloads = [
            GEMMWorkload("conv1", m=64, k=27, n=16, layer_type="conv"),
            GEMMWorkload("conv2", m=64, k=27, n=16, layer_type="conv"),
            GEMMWorkload("fc1", m=1, k=64, n=10, layer_type="linear"),
        ]
        result = hybrid_simulator.run(workloads)
        assert len(result.layers_on("scatter")) == 2
        assert len(result.layers_on("mzi_mesh")) == 1

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            Simulator(HeterogeneousArchitecture(name="empty"))


class TestModelToSimulationPipeline:
    def test_mlp_end_to_end(self, tempo_arch):
        model = build_mlp((64, 32, 10))
        convert_to_onn(model, ONNConversionConfig(default_ptc="tempo"))
        workloads = extract_workloads(model, np.random.default_rng(0).normal(size=64))
        result = Simulator(tempo_arch).run(workloads)
        assert len(result.layers) == 2
        assert result.total_macs == 64 * 32 + 32 * 10
        assert result.total_energy_pj > 0

    def test_layer_workloads_carry_values_into_energy(self, scatter_arch):
        model = build_mlp((32, 16, 4))
        convert_to_onn(model, ONNConversionConfig(default_ptc="scatter"))
        workloads = extract_workloads(model, np.random.default_rng(1).normal(size=32))
        aware = Simulator(scatter_arch, SimulationConfig(data_aware=True)).run(workloads)
        unaware = Simulator(scatter_arch, SimulationConfig(data_aware=False)).run(workloads)
        assert aware.total_energy_pj < unaware.total_energy_pj
