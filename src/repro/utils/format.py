"""Plain-text formatting helpers for reports and benchmark harnesses."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

_SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
]


def format_si(value: float, unit: str = "", precision: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(2.3e-6, 'J') == '2.3 uJ'``."""
    if value == 0:
        return f"0 {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            return f"{value / scale:.{precision}g} {prefix}{unit}".rstrip()
    scale, prefix = _SI_PREFIXES[-1]
    return f"{value / scale:.{precision}g} {prefix}{unit}".rstrip()


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as an aligned plain-text table.

    Numbers are formatted with ``float_format``; everything else with ``str``.
    """
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, bool):
                rendered.append(str(cell))
            elif isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt_row(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_breakdown(breakdown: Mapping[str, float], unit: str = "") -> str:
    """Render a component->value breakdown sorted by descending value."""
    total = sum(breakdown.values())
    rows = []
    for name, value in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        share = (value / total * 100.0) if total else 0.0
        rows.append((name, format_si(value, unit), f"{share:.1f}%"))
    rows.append(("TOTAL", format_si(total, unit), "100.0%"))
    return format_table(["component", "value", "share"], rows)
