"""Physical unit conversion constants and helpers.

The simulator works internally with a small set of canonical units chosen to keep
magnitudes near unity for typical photonic accelerators:

- time        : nanoseconds (ns)
- frequency   : gigahertz (GHz)
- length      : micrometers (um)
- area        : square micrometers (um^2)
- power       : milliwatts (mW)
- energy      : picojoules (pJ)
- optical loss: decibels (dB)

The constants below convert *from* the named unit *to* the canonical unit, so
``5 * GHZ`` is a frequency in canonical units and ``latency_ns * US`` is wrong --
multiply values expressed in the named unit by the constant to canonicalize them.
"""

from __future__ import annotations

import math

# --- frequency (canonical: GHz) -------------------------------------------------
GHZ = 1.0
MHZ = 1e-3
KHZ = 1e-6
HZ = 1e-9

# --- time (canonical: ns) --------------------------------------------------------
NS = 1.0
PS = 1e-3
US = 1e3
MS = 1e6
S = 1e9

# --- length (canonical: um) ------------------------------------------------------
UM = 1.0
MM = 1e3
CM = 1e4
NM = 1e-3

# --- power (canonical: mW) -------------------------------------------------------
MW = 1.0
UW = 1e-3
NW = 1e-6
W = 1e3

# --- energy (canonical: pJ) ------------------------------------------------------
PJ = 1.0
FJ = 1e-3
NJ = 1e3
UJ = 1e6
MJ = 1e9  # millijoule

# --- data sizes -------------------------------------------------------------------
BYTE = 8  # bits
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def db_to_linear(db: float) -> float:
    """Convert a dB quantity to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Raises :class:`ValueError` for non-positive ratios, which have no dB
    representation.
    """
    if ratio <= 0:
        raise ValueError(f"cannot convert non-positive ratio {ratio!r} to dB")
    return 10.0 * math.log10(ratio)


def dbm_to_mw(dbm: float) -> float:
    """Convert optical/electrical power from dBm to mW."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert power from mW to dBm."""
    if mw <= 0:
        raise ValueError(f"cannot convert non-positive power {mw!r} mW to dBm")
    return 10.0 * math.log10(mw)


def cycles_to_ns(cycles: float, frequency_ghz: float) -> float:
    """Convert a cycle count at ``frequency_ghz`` to nanoseconds."""
    if frequency_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz!r} GHz")
    return cycles / frequency_ghz


def ns_to_cycles(time_ns: float, frequency_ghz: float) -> float:
    """Convert a duration in ns to (fractional) cycles at ``frequency_ghz``."""
    if frequency_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz!r} GHz")
    return time_ns * frequency_ghz
