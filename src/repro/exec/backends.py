"""Pluggable execution backends: serial, thread-pool and process-pool.

One interface serves both orchestration layers -- design-point evaluation
batches in :class:`~repro.explore.dse.DesignSpaceExplorer` and batch scenario
runs in :class:`~repro.scenarios.runner.BatchRunner` -- instead of each
hand-rolling its own ``ThreadPoolExecutor`` plumbing:

- :class:`SerialBackend` runs tasks inline (the reference ordering);
- :class:`ThreadBackend` spreads tasks over a thread pool -- cheap to start and
  able to share live objects (caches, engines), but every pure-Python engine
  pass still contends for one GIL;
- :class:`ProcessBackend` sidesteps the GIL with a process pool.  Tasks and the
  shared context must be picklable (live engines stay home; consumers encode
  specs/overrides/workload data instead), scheduling is chunked so per-task IPC
  amortizes, and results always come back in task order, so a process run is
  byte-identical to a serial one.

All backends implement ``map_tasks(fn, tasks, shared=None)`` calling
``fn(shared, task)`` for every task and returning the results in task order.
``fn`` runs once per task; under :class:`ProcessBackend` it must be a
module-level (picklable) function and ``shared`` is pickled once per chunk,
which is where consumers put the bulky, task-invariant payload.
"""

from __future__ import annotations

import contextlib
import math
import os
import pickle
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.core.knobs import REPRO_ENV_PREFIX, repro_env_snapshot

TaskFn = Callable[[Any, Any], Any]


def available_cpus() -> int:
    """CPUs this process may actually run on.

    Prefers the scheduler affinity mask over ``os.cpu_count()`` so
    cpuset-restricted containers (docker ``--cpuset-cpus``, K8s, taskset) size
    their pools -- and gate their wall-clock expectations -- on effective
    cores, not the host's.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def default_jobs() -> int:
    """Worker count when none is given: every core this process may use."""
    return available_cpus()


def _validate_jobs(jobs: Optional[int]) -> Optional[int]:
    if jobs is not None and (not isinstance(jobs, int) or jobs < 1):
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
    return jobs


def partition_indices(count: int, parts: int) -> List[List[int]]:
    """Split ``range(count)`` into at most ``parts`` contiguous, near-equal chunks.

    A pure function of ``(count, parts)`` -- no backend or scheduling state --
    so every execution backend shards identically-seeded work the same way
    (the trial-batched Monte Carlo path relies on this for deterministic
    worker assignment).  Leading chunks take the remainder: sizes differ by at
    most one and concatenating the chunks restores ``range(count)``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if parts < 1:
        raise ValueError(f"parts must be positive, got {parts}")
    if count == 0:
        return []
    parts = min(parts, count)
    base, extra = divmod(count, parts)
    chunks: List[List[int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


def steal_partition(
    count: int,
    workers: int,
    min_chunk: int = 1,
    cap: Optional[int] = None,
    factor: int = 4,
) -> List[List[int]]:
    """Size-tiered contiguous chunks for completion-driven (work-stealing) pools.

    Guided self-scheduling: each chunk takes ``ceil(remaining / (workers *
    factor))`` indices, so early chunks are large (amortizing per-chunk
    dispatch cost) and the tail degrades to ``min_chunk``-sized pieces -- a
    straggler can strand at most one small chunk's worth of work, instead of
    the ``count / workers`` a static one-chunk-per-worker split risks.  Like
    :func:`partition_indices` this is a pure function of its arguments and the
    chunks concatenate to ``range(count)``, so reassembling results by chunk
    position is byte-identical to serial no matter which worker pulled which
    chunk.  ``cap`` bounds chunk length (e.g. a trial-batch working-set cap).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if min_chunk < 1:
        raise ValueError(f"min_chunk must be positive, got {min_chunk}")
    if cap is not None and cap < 1:
        raise ValueError(f"cap must be positive when given, got {cap}")
    if factor < 1:
        raise ValueError(f"factor must be positive, got {factor}")
    if count == 0:
        return []
    if workers == 1:
        # Stealing needs at least two consumers; with one, minimizing dispatch
        # round-trips wins, so emit the coarsest chunks the cap allows.
        size = count if cap is None else cap
        return [
            list(range(start, min(start + size, count)))
            for start in range(0, count, size)
        ]
    chunks: List[List[int]] = []
    start = 0
    remaining = count
    while remaining:
        size = max(min_chunk, math.ceil(remaining / (workers * factor)))
        if cap is not None:
            size = min(size, cap)
        size = min(size, remaining)
        chunks.append(list(range(start, start + size)))
        start += size
        remaining -= size
    return chunks


# REPRO_ENV_PREFIX and repro_env_snapshot are owned by the knob registry
# (repro.core.knobs) and re-exported above: the snapshot derives from the
# declared knobs, so a newly registered numerics knob can never be forgotten
# from what task-shipping backends pin into encodings.


@contextlib.contextmanager
def applied_env_snapshot(snapshot: Optional[Dict[str, str]]):
    """Run with the ``REPRO_*`` environment replaced by ``snapshot``.

    ``None`` applies nothing (a pre-snapshot task encoding).  The worker's own
    ``REPRO_*`` variables are removed for the duration -- the snapshot is the
    *whole* mode state, so a knob unset in the parent must read as unset on
    the worker even if the worker's shell exported it.
    """
    if snapshot is None:
        yield
        return
    saved = {
        key: value
        for key, value in os.environ.items()
        if key.startswith(REPRO_ENV_PREFIX)
    }
    for key in saved:
        if key not in snapshot:
            del os.environ[key]
    os.environ.update(snapshot)
    try:
        yield
    finally:
        for key in list(os.environ):
            if key.startswith(REPRO_ENV_PREFIX) and key not in saved:
                del os.environ[key]
        os.environ.update(saved)


class ExecutionBackend:
    """Maps a task function over a task list with deterministic result order."""

    name = "backend"

    #: True for backends whose workers live in other processes (or hosts) and
    #: therefore receive *encoded* tasks: consumers route such backends through
    #: their picklable task path (module-level function + encoded context)
    #: instead of sharing live objects.  The cluster backend sets this too --
    #: one flag replaces scattered ``isinstance(backend, ProcessBackend)``
    #: checks.
    ships_tasks = False

    def __init__(self) -> None:
        self._pool: Optional[Executor] = None
        self._session_depth = 0
        self._session_lock = threading.Lock()

    @property
    def jobs(self) -> int:
        return 1

    def _make_pool(self) -> Optional[Executor]:
        """The pool a session keeps alive (None for inline backends)."""
        return None

    def _acquire_session_pool(self) -> Optional[Executor]:
        """Hook: the executor an opening session binds (None = run inline).

        The default builds a private pool via :meth:`_make_pool`; backends
        with external pool lifecycles (the process backend's warm pools)
        override the acquire/release pair instead of ``session`` itself.
        """
        return self._make_pool()

    def _release_session_pool(self, pool: Executor) -> None:
        """Hook: hand the session's executor back (default: tear it down)."""
        pool.shutdown(wait=True)

    @contextlib.contextmanager
    def session(self):
        """Scope within which pools -- and per-worker state -- persist.

        Callers issuing several ``map_tasks`` rounds (e.g. feedback-driven
        search strategies) wrap them in one session so thread/process pools
        are created once: worker processes then keep their memoized state
        (per-worker caches, architecture builds) across rounds instead of
        paying startup and re-pickling per batch.  Sessions nest; the
        outermost one owns the pool.  Without a session every ``map_tasks``
        call builds and tears down its own pool (or, under ``REPRO_POOL=warm``
        on the process backend, leases the shared warm pool per call).
        """
        with self._session_lock:
            self._session_depth += 1
            if self._session_depth == 1:
                self._pool = self._acquire_session_pool()
        try:
            yield self
        finally:
            with self._session_lock:
                self._session_depth -= 1
                if self._session_depth == 0 and self._pool is not None:
                    pool, self._pool = self._pool, None
                    self._release_session_pool(pool)

    def map_tasks(
        self, fn: TaskFn, tasks: Sequence[Any], shared: Any = None
    ) -> List[Any]:
        """Run ``fn(shared, task)`` for every task; results keep task order.

        A task that raises propagates its exception to the caller (consumers
        that want per-task error capture catch inside ``fn``).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialBackend(ExecutionBackend):
    """Inline execution -- the reference behaviour every other backend must match."""

    name = "serial"

    def map_tasks(
        self, fn: TaskFn, tasks: Sequence[Any], shared: Any = None
    ) -> List[Any]:
        return [fn(shared, task) for task in tasks]


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution: shared memory, shared caches, shared GIL."""

    name = "threads"

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__()
        self._jobs = _validate_jobs(jobs) or default_jobs()

    @property
    def jobs(self) -> int:
        return self._jobs

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self._jobs)

    def map_tasks(
        self, fn: TaskFn, tasks: Sequence[Any], shared: Any = None
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        if self._pool is not None:
            # Executor.map preserves task order regardless of completion order.
            return list(self._pool.map(lambda task: fn(shared, task), tasks))
        workers = min(self._jobs, len(tasks))
        if workers == 1:
            return [fn(shared, task) for task in tasks]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(lambda task: fn(shared, task), tasks))


def _run_chunk(
    fn: TaskFn, shared: Any, chunk: List[Any], collect_stages: bool = False
) -> "Tuple[List[Any], Optional[Dict[str, float]]]":
    """Worker-side loop: one unpickle of (fn, shared) serves the whole chunk.

    Returns ``(results, stage_totals)``.  When the parent has stage observers
    registered it asks for ``collect_stages``: the worker accumulates its own
    :func:`repro.variation.stages.stage` blocks and ships the totals home, so
    stage attribution survives the process boundary (the bug that left cluster
    bench records with only the parent-side ``rng`` stage).
    """
    if not collect_stages:
        return [fn(shared, task) for task in chunk], None
    from repro.variation.stages import StageAccumulator, observe_stages

    accumulator = StageAccumulator()
    with observe_stages(accumulator):
        results = [fn(shared, task) for task in chunk]
    return results, (accumulator.totals() or None)


class ProcessBackend(ExecutionBackend):
    """Process-pool execution with chunked scheduling and ordered results.

    ``chunksize`` bounds scheduling granularity: tasks are shipped in contiguous
    chunks (default: enough chunks for ~4 rounds per worker) so the per-chunk
    pickling of the shared context amortizes over many tasks while load still
    balances.  Results are reassembled in submission order, so the output is
    positionally identical to :class:`SerialBackend`.
    """

    name = "processes"
    ships_tasks = True

    def __init__(
        self, jobs: Optional[int] = None, chunksize: Optional[int] = None
    ) -> None:
        super().__init__()
        self._jobs = _validate_jobs(jobs) or default_jobs()
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be a positive integer, got {chunksize!r}")
        self.chunksize = chunksize
        self._warm_release: Optional[Callable[[], None]] = None

    @property
    def jobs(self) -> int:
        return self._jobs

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self._jobs)

    def _lease_pool(
        self, limit: Optional[int] = None
    ) -> "Tuple[Executor, Callable[[], None]]":
        """``(executor, release)`` honouring the ``REPRO_POOL`` lifecycle knob.

        ``warm`` leases the process-wide persistent pool (created on first
        use, revalidated against the ``REPRO_*`` snapshot, reaped when idle;
        always sized ``jobs`` so every lease shares one pool); ``cold`` keeps
        the historical build-per-scope executor, sized down to ``limit`` when
        fewer chunks than workers exist.
        """
        from repro.exec import pool as warm_pools

        if warm_pools.pool_mode() == "warm":
            return warm_pools.checkout(self._jobs)
        workers = self._jobs if limit is None else max(1, min(self._jobs, limit))
        executor = ProcessPoolExecutor(max_workers=workers)
        return executor, lambda: executor.shutdown(wait=True)

    def _acquire_session_pool(self) -> Executor:
        executor, release = self._lease_pool()
        self._warm_release = release
        return executor

    def _release_session_pool(self, pool: Executor) -> None:
        release, self._warm_release = self._warm_release, None
        if release is not None:
            release()
        else:  # pragma: no cover - defensive: session opened pre-refactor pool
            pool.shutdown(wait=True)

    def _chunks(self, tasks: List[Any]) -> List[List[Any]]:
        if self.chunksize is not None:
            size = self.chunksize
            return [tasks[i : i + size] for i in range(0, len(tasks), size)]
        # Size-tiered chunks: workers pull the next pending chunk as they
        # finish (ProcessPoolExecutor scheduling is completion-driven), so the
        # decaying sizes bound how much work a straggler can strand while the
        # leading chunks keep per-chunk shipping amortized.
        return [
            tasks[bounds[0] : bounds[-1] + 1]
            for bounds in steal_partition(len(tasks), self._jobs)
        ]

    @staticmethod
    def check_picklable(fn: TaskFn, shared: Any, tasks: Sequence[Any]) -> None:
        """Fail fast with an actionable error instead of a mid-pool crash.

        Probes ``fn``, ``shared`` and the *first* task only -- task lists are
        homogeneous encodings (names, override dicts), so one probe catches
        the realistic failures without re-serializing a potentially large
        shared payload's worth of tasks twice per dispatch.
        """
        try:
            pickle.dumps((fn, shared, tasks[0] if tasks else None))
        except Exception as exc:
            raise ValueError(
                "the process backend needs picklable tasks: encode specs, "
                "overrides and workload data instead of live engine objects, "
                "and use module-level functions (not lambdas or closures) "
                f"[{type(exc).__name__}: {exc}]"
            ) from exc

    def map_tasks(
        self, fn: TaskFn, tasks: Sequence[Any], shared: Any = None
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        self.check_picklable(fn, shared, tasks)
        chunks = self._chunks(tasks)
        if self._pool is not None:
            return self._collect(self._pool, fn, shared, chunks)
        pool, release = self._lease_pool(limit=len(chunks))
        try:
            return self._collect(pool, fn, shared, chunks)
        finally:
            release()

    @staticmethod
    def _collect(
        pool: Executor, fn: TaskFn, shared: Any, chunks: List[List[Any]]
    ) -> List[Any]:
        from repro.variation.stages import emit_totals, stages_active

        collect = stages_active()
        futures = [
            pool.submit(_run_chunk, fn, shared, chunk, collect) for chunk in chunks
        ]
        results: List[Any] = []
        totals: Dict[str, float] = {}
        for future in futures:  # submission order == task order
            chunk_results, chunk_stages = future.result()
            results.extend(chunk_results)
            if chunk_stages:
                for name, seconds in chunk_stages.items():
                    totals[name] = totals.get(name, 0.0) + seconds
        if totals:
            emit_totals(totals)
        return results


#: Backends constructible by name (the CLI's ``--backend`` values).
BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}

BackendLike = Union[str, ExecutionBackend, None]


def resolve_backend(
    backend: BackendLike = None, jobs: Optional[int] = None
) -> ExecutionBackend:
    """Accept a backend instance, a registered name, or None.

    ``None`` keeps the historical default: serial unless ``jobs`` asks for
    parallelism, in which case a thread pool (the pre-backend behaviour of both
    the batch runner and the explorer).
    """
    _validate_jobs(jobs)
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        if jobs is not None and jobs > 1:
            return ThreadBackend(jobs)
        return SerialBackend()
    if isinstance(backend, str):
        if backend not in BACKENDS:
            import difflib

            close = difflib.get_close_matches(backend, sorted(BACKENDS), n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise KeyError(
                f"unknown execution backend {backend!r}{hint}; "
                f"known: {', '.join(sorted(BACKENDS))}"
            )
        cls = BACKENDS[backend]
        if cls is SerialBackend:
            return SerialBackend()
        return cls(jobs)
    raise TypeError(
        "backend must be an ExecutionBackend, a name "
        f"({', '.join(sorted(BACKENDS))}) or None, got {type(backend).__name__}"
    )
