"""Pluggable process-parallel execution layer.

``repro.exec`` is the one place that knows how to fan work out: the batch
scenario runner and the design-space explorer both consume
:class:`ExecutionBackend` instead of hand-rolled executor code, so ``--backend
{serial,threads,processes,cluster} --jobs N`` means the same thing everywhere.
The :mod:`~repro.exec.telemetry` helpers keep the accounting (engine passes,
per-pass wall-clock, cache hit/miss counters) mergeable across process -- and,
with :mod:`~repro.exec.cluster`, host -- boundaries, so reports look identical
no matter which backend ran the work.
"""

from repro.exec.backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    applied_env_snapshot,
    available_cpus,
    default_jobs,
    partition_indices,
    repro_env_snapshot,
    resolve_backend,
    steal_partition,
)
from repro.exec.pool import pool_mode, pool_status, stop_pools
from repro.exec.shm import (
    ShmHandle,
    active_segments,
    as_array,
    as_object,
    publish_array,
    publish_object,
    resolve_array,
    resolve_object,
    set_fetch_hook,
    shm_enabled,
    unlink_all,
)
from repro.exec.cluster import (
    ClusterBackend,
    ClusterCoordinator,
    ClusterTaskError,
    coordinator_for,
    parse_address,
    run_worker,
    shutdown_coordinators,
    spawn_local_workers,
)
from repro.exec.telemetry import (
    scoped_pass_observer,
    PassTiming,
    WorkerTelemetry,
    cache_stats_delta,
    cache_stats_snapshot,
    merge_cache_stats,
    merge_pass_timings,
    render_pass_timings,
)

__all__ = [
    "BACKENDS",
    "ClusterBackend",
    "ClusterCoordinator",
    "ClusterTaskError",
    "ExecutionBackend",
    "PassTiming",
    "ProcessBackend",
    "SerialBackend",
    "ShmHandle",
    "ThreadBackend",
    "WorkerTelemetry",
    "active_segments",
    "applied_env_snapshot",
    "as_array",
    "as_object",
    "available_cpus",
    "partition_indices",
    "cache_stats_delta",
    "cache_stats_snapshot",
    "coordinator_for",
    "default_jobs",
    "merge_cache_stats",
    "merge_pass_timings",
    "parse_address",
    "pool_mode",
    "pool_status",
    "publish_array",
    "publish_object",
    "render_pass_timings",
    "repro_env_snapshot",
    "resolve_array",
    "resolve_backend",
    "resolve_object",
    "run_worker",
    "set_fetch_hook",
    "shm_enabled",
    "shutdown_coordinators",
    "spawn_local_workers",
    "steal_partition",
    "stop_pools",
    "unlink_all",
]
