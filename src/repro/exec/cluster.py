"""Multi-host sharded execution: a socket-based coordinator/worker backend.

The in-process backends stop at one machine; :class:`ClusterBackend` ships the
*same* picklable task encodings the :class:`~repro.exec.backends.ProcessBackend`
already uses over TCP instead of a fork, so DSE design grids, Monte Carlo trial
chunks and whole batch scenarios shard across hosts with zero changes to the
consumers.  Determinism is preserved by construction: tasks are dispatched in
contiguous chunks whose results are reassembled in submission order, and the
per-trial SeedSequence/Philox contracts derive every trial's randomness from
``(seed, trial index)`` alone -- a cluster run is byte-identical to a serial
one no matter which worker computed which chunk.

Topology
--------

- The **coordinator** is embedded in the backend: the first
  :class:`ClusterBackend` bound to ``(host, port)`` starts a process-wide
  :class:`ClusterCoordinator` (shared by every later backend instance in the
  process, so one `repro run` with many Monte Carlo studies reuses one worker
  fleet) that listens for workers and schedules rounds.
- **Workers** are separate processes -- on this host or any other that can
  reach the coordinator -- started with ``repro worker --connect HOST:PORT``.
  A worker that arrives before the coordinator retries its connection; a
  worker that outlives a coordinator session (the coordinator drains on
  process exit) loops back to reconnect for the next one.

Protocol (version-checked at handshake)
---------------------------------------

Frames are ``8-byte big-endian length + pickle``.  The worker opens with
``("hello", info)``; a coordinator speaking a different protocol replies
``("reject", reason)`` and closes, otherwise ``("welcome", options)``.  Each
``map_tasks`` round ships its pickled ``(fn, shared)`` payload once per worker
(``"context"``), then ``("task", round, chunk_id, tasks, want_stages)``
messages; workers answer ``("result", round, chunk_id, results, stage_totals)``
-- ``stage_totals`` carries the worker-side
:class:`~repro.variation.stages.StageAccumulator` snapshot when the
coordinator asked for it, so stage attribution survives the host boundary --
or ``("error", ...)`` with the remote traceback.  A worker resolving a
:class:`~repro.exec.shm.ShmHandle` it cannot see locally (a cross-host
segment) sends ``("fetch", digest)`` and the coordinator answers ``("blob",
digest, bytes)``; fetched payloads are cached per worker by digest, so each
handle crosses the wire once.  Workers emit unsolicited ``("heartbeat",)``
frames on the cadence the welcome message names.

Fault tolerance
---------------

A worker is declared dead when its socket closes (a killed process) or when
its heartbeats stop for ``dead_after_s`` (a hung one).  Its in-flight chunks
are reassigned to surviving workers -- results are pure functions of the task
encoding, so a re-run is bit-identical -- up to ``max_attempts`` assignments
per chunk, after which the round fails loudly.  Task exceptions are *not*
retried (they are deterministic); they re-raise in the caller as
:class:`ClusterTaskError` carrying the remote traceback.  On shutdown the
coordinator drains gracefully: every connected worker receives ``("drain",)``
and goes back to its reconnect loop instead of dying mid-write.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
import traceback
from collections import Counter, OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core import knobs
from repro.exec.backends import (
    BACKENDS,
    ExecutionBackend,
    TaskFn,
    _validate_jobs,
    steal_partition,
)

#: Protocol identifier exchanged at handshake; workers and coordinators with
#: different values refuse each other instead of mis-parsing frames.
#: ``/2`` added worker-side stage totals in result frames and the
#: ``fetch``/``blob`` shared-memory fallback transfer.
PROTOCOL = "repro-cluster/3"

#: Entries in the per-connection context cache (coordinator mirror and worker
#: store use the same capacity and LRU policy, so they never disagree about
#: which digests the worker still holds).
CONTEXT_CACHE_SIZE = 32

#: Environment knobs the backend resolves its defaults from, so
#: ``--backend cluster`` / ``REPRO_MC_BACKEND=cluster`` need no code changes.
CLUSTER_HOST_ENV = "REPRO_CLUSTER_HOST"
CLUSTER_PORT_ENV = "REPRO_CLUSTER_PORT"
CLUSTER_WORKERS_ENV = "REPRO_CLUSTER_WORKERS"
CLUSTER_WAIT_ENV = "REPRO_CLUSTER_WAIT_S"

DEFAULT_CLUSTER_HOST = "127.0.0.1"
DEFAULT_CLUSTER_PORT = 7621
DEFAULT_WAIT_S = 60.0
DEFAULT_HEARTBEAT_S = 1.0
DEFAULT_DEAD_AFTER_S = 6.0
DEFAULT_MAX_ATTEMPTS = 3

_HEADER = struct.Struct(">Q")
#: Sanity cap on frame payloads: large enough for any realistic task encoding,
#: small enough that a corrupted length prefix fails loudly instead of
#: attempting a multi-terabyte allocation.
_MAX_FRAME_BYTES = 1 << 33


class ClusterProtocolError(RuntimeError):
    """Handshake or framing violation -- the peer speaks a different protocol."""


class ClusterTaskError(RuntimeError):
    """A task raised on a worker; carries the remote traceback verbatim."""


# -- framing ---------------------------------------------------------------------------


def _enable_nodelay(sock: socket.socket) -> None:
    """Disable Nagle on a cluster socket.

    The protocol is strict request/response with many small frames (task
    handles, fetch requests, heartbeats); leaving Nagle on lets small writes
    queue behind the peer's delayed ACK, adding ~40 ms to every round-trip --
    which dwarfs the work being dispatched once shm handles replace inline
    arrays.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - non-TCP transports (tests, AF_UNIX)
        pass


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``ConnectionError`` on EOF."""
    parts: List[bytes] = []
    remaining = count
    while remaining:
        block = sock.recv(min(remaining, 1 << 20))
        if not block:
            raise ConnectionError("cluster connection closed mid-frame")
        parts.append(block)
        remaining -= len(block)
    return b"".join(parts)


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Pickle ``obj`` and write it as one length-prefixed frame."""
    send_frame_raw(sock, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def send_frame_raw(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Any:
    """Read one length-prefixed frame and unpickle it.

    Raises ``ConnectionError`` on a cleanly closed peer and
    :class:`ClusterProtocolError` on a length prefix no sane frame would carry
    (a corrupted stream or a non-cluster peer).
    """
    header = sock.recv(_HEADER.size)
    if not header:
        raise ConnectionError("cluster connection closed")
    if len(header) < _HEADER.size:
        header += _recv_exact(sock, _HEADER.size - len(header))
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"frame of {length} bytes exceeds the {_MAX_FRAME_BYTES}-byte cap; "
            "is the peer speaking the repro cluster protocol?"
        )
    return pickle.loads(_recv_exact(sock, int(length)))


def parse_address(text: str) -> Tuple[str, int]:
    """``HOST:PORT`` -> ``(host, port)`` with an actionable error on garbage."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"port must be an integer, got {port_text!r}") from None
    if not 0 < port < 65536:
        raise ValueError(f"port must be in [1, 65535], got {port}")
    return host, port


# -- coordinator -----------------------------------------------------------------------


class _WorkerConn:
    """Coordinator-side state of one connected worker."""

    _ids = itertools.count(1)

    def __init__(self, sock: socket.socket, addr: Tuple[str, int], info: Dict[str, Any]):
        self.wid = next(_WorkerConn._ids)
        self.sock = sock
        self.addr = addr
        self.info = dict(info)
        self.name = f"{addr[0]}:{addr[1]}#pid{info.get('pid', '?')}"
        self.send_lock = threading.Lock()
        self.last_recv = time.monotonic()
        self.alive = True
        #: The chunk id this worker is currently computing (None = idle).
        self.current: Optional[int] = None
        #: Round ids whose (fn, shared) context payload was already shipped.
        self.contexts_sent: set = set()
        #: LRU mirror of the worker's content-addressed context store: the
        #: digests whose unpickled (fn, shared) the worker still caches.  The
        #: coordinator updates it exactly when it sends a context (full or
        #: ref) and the worker updates its store exactly when it receives one,
        #: so over the ordered TCP stream the two views never diverge.
        self.context_cache: "OrderedDict[str, None]" = OrderedDict()

    def send(self, obj: Any = None, raw_parts: Optional[Sequence[Any]] = None) -> None:
        if raw_parts is not None:
            # Coalesce every part into one sendall: a dispatch is typically a
            # context frame plus a task frame, and tiny back-to-back writes
            # otherwise become separate TCP segments (and syscalls).
            chunks: List[bytes] = []
            for part_obj, part_raw in raw_parts:
                payload = (
                    part_raw
                    if part_raw is not None
                    else pickle.dumps(part_obj, protocol=pickle.HIGHEST_PROTOCOL)
                )
                chunks.append(_HEADER.pack(len(payload)))
                chunks.append(payload)
            blob = b"".join(chunks)
            with self.send_lock:
                self.sock.sendall(blob)
        else:
            with self.send_lock:
                send_frame(self.sock, obj)


class _Round:
    """One ``map_tasks`` dispatch: chunked tasks, their owners, their results."""

    def __init__(
        self, round_id: int, payload: bytes, chunks: List[List[Any]], max_attempts: int
    ) -> None:
        self.round_id = round_id
        #: ``pickle.dumps(("context", round_id, digest, pickle.dumps((fn,
        #: shared))))`` -- the expensive shared payload is pickled once and the
        #: whole context frame reused byte-for-byte for every worker.
        self.payload = payload
        #: sha1 of the pickled (fn, shared) blob -- the content address under
        #: which workers cache the unpickled context across rounds.
        self.context_digest = ""
        #: Tiny ``("context_ref", round_id, digest)`` frame sent instead of
        #: :attr:`payload` to workers that already hold the digest.
        self.payload_ref = b""
        self.chunks = chunks
        self.pending: Deque[int] = deque(range(len(chunks)))
        self.inflight: Dict[int, _WorkerConn] = {}
        self.results: Dict[int, List[Any]] = {}
        self.attempts: Counter = Counter()
        self.error: Optional[BaseException] = None
        self.max_attempts = max_attempts
        self.context_workers: set = set()
        #: Whether workers should ship their StageAccumulator snapshots back
        #: (set when the dispatching parent has stage observers registered).
        self.want_stages = False
        #: Worker-side stage totals, folded across chunks as results land --
        #: only the *first* result of a reassigned chunk counts, so totals
        #: stay attribution-exact under fault-tolerant re-execution.
        self.stage_totals: Dict[str, float] = {}

    @property
    def finished(self) -> bool:
        return self.error is not None or len(self.results) == len(self.chunks)


class ClusterCoordinator:
    """Accepts workers, schedules task chunks, survives worker loss.

    One coordinator serves arbitrarily many sequential ``map_tasks`` rounds
    (concurrent rounds are serialized on an internal lock); workers persist
    across rounds, keeping their per-process memoized state -- the cluster
    analogue of a backend session's warm process pool.
    """

    def __init__(
        self,
        host: str = DEFAULT_CLUSTER_HOST,
        port: int = 0,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        dead_after_s: float = DEFAULT_DEAD_AFTER_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        if heartbeat_s <= 0 or dead_after_s <= 0:
            raise ValueError("heartbeat_s and dead_after_s must be positive")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        self.heartbeat_s = float(heartbeat_s)
        self.dead_after_s = float(dead_after_s)
        self.max_attempts = int(max_attempts)
        self._listener = socket.create_server((host, port), backlog=64)
        self._listener.settimeout(0.2)
        self.host = host
        self.port = int(self._listener.getsockname()[1])
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._workers: Dict[int, _WorkerConn] = {}
        self._round: Optional[_Round] = None
        self._round_ids = itertools.count(1)
        self._alive = True
        self._map_lock = threading.Lock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"cluster-accept:{self.port}", daemon=True
        )
        self._accept_thread.start()

    # -- connection handling -----------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def _accept_loop(self) -> None:
        while self._alive:
            try:
                sock, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_connection,
                args=(sock, addr),
                name=f"cluster-worker:{addr[0]}:{addr[1]}",
                daemon=True,
            ).start()

    def _serve_connection(self, sock: socket.socket, addr: Tuple[str, int]) -> None:
        try:
            _enable_nodelay(sock)
            sock.settimeout(10.0)
            frame = recv_frame(sock)
            if not (isinstance(frame, tuple) and len(frame) == 2 and frame[0] == "hello"):
                send_frame(sock, ("reject", "expected a hello frame"))
                sock.close()
                return
            info = dict(frame[1])
            if info.get("protocol") != PROTOCOL:
                send_frame(
                    sock,
                    (
                        "reject",
                        f"protocol mismatch: coordinator speaks {PROTOCOL}, "
                        f"worker speaks {info.get('protocol')!r} -- upgrade the "
                        "older side",
                    ),
                )
                sock.close()
                return
            send_frame(
                sock, ("welcome", {"protocol": PROTOCOL, "heartbeat_s": self.heartbeat_s})
            )
        except (OSError, ConnectionError, ClusterProtocolError, pickle.UnpicklingError,
                EOFError):
            try:
                sock.close()
            except OSError:
                pass
            return
        worker = _WorkerConn(sock, addr, info)
        sock.settimeout(0.5)
        with self._cond:
            if not self._alive:
                self._cond.notify_all()
                try:
                    send_frame(sock, ("drain",))
                    sock.close()
                except OSError:
                    pass
                return
            self._workers[worker.wid] = worker
            self._cond.notify_all()
        self._reader_loop(worker)

    def _reader_loop(self, worker: _WorkerConn) -> None:
        reason = "connection closed"
        try:
            while self._alive and worker.alive:
                try:
                    frame = recv_frame(worker.sock)
                except socket.timeout:
                    continue
                if frame[0] == "fetch":
                    # Serve a shared-memory payload a remote worker cannot map
                    # locally.  Handled outside the condition lock: the send
                    # only needs the worker's own send lock, and a slow blob
                    # write must not stall scheduling.
                    from repro.exec import shm as shm_transport

                    digest = frame[1]
                    try:
                        worker.send(("blob", digest, shm_transport.published_bytes(digest)))
                    except (OSError, socket.timeout) as exc:
                        reason = f"blob send failed: {exc}"
                        return
                    with self._cond:
                        worker.last_recv = time.monotonic()
                    continue
                with self._cond:
                    worker.last_recv = time.monotonic()
                    kind = frame[0]
                    if kind == "heartbeat":
                        continue
                    if kind == "result":
                        _, round_id, chunk_id, results, stage_totals = frame
                        rnd = self._round
                        if (
                            rnd is not None
                            and rnd.round_id == round_id
                            and chunk_id not in rnd.results
                        ):
                            rnd.results[chunk_id] = results
                            rnd.inflight.pop(chunk_id, None)
                            if stage_totals:
                                for sname, seconds in stage_totals.items():
                                    rnd.stage_totals[sname] = (
                                        rnd.stage_totals.get(sname, 0.0) + seconds
                                    )
                        if worker.current == chunk_id:
                            worker.current = None
                        self._cond.notify_all()
                    elif kind == "error":
                        _, round_id, chunk_id, message = frame
                        rnd = self._round
                        if rnd is not None and rnd.round_id == round_id:
                            rnd.inflight.pop(chunk_id, None)
                            rnd.error = ClusterTaskError(
                                f"task chunk {chunk_id} raised on worker "
                                f"{worker.name}:\n{message}"
                            )
                        if worker.current == chunk_id:
                            worker.current = None
                        self._cond.notify_all()
                    else:
                        reason = f"unexpected frame kind {kind!r}"
                        return
        except (OSError, ConnectionError, EOFError, pickle.UnpicklingError,
                ClusterProtocolError) as exc:
            reason = f"{type(exc).__name__}: {exc}"
        finally:
            self._drop_worker(worker, reason)

    def _drop_worker(self, worker: _WorkerConn, reason: str) -> None:
        """Remove a worker and requeue its in-flight chunk for survivors."""
        with self._cond:
            if self._workers.pop(worker.wid, None) is None and not worker.alive:
                # Already dropped (or drained by close()); the reader thread
                # still owns closing the socket.
                try:
                    worker.sock.close()
                except OSError:
                    pass
                return
            worker.alive = False
            rnd = self._round
            if rnd is not None:
                lost = [cid for cid, w in rnd.inflight.items() if w is worker]
                for cid in lost:
                    del rnd.inflight[cid]
                    if cid in rnd.results:
                        continue
                    if rnd.attempts[cid] >= rnd.max_attempts and rnd.error is None:
                        rnd.error = RuntimeError(
                            f"task chunk {cid} was assigned {rnd.attempts[cid]} "
                            f"times and every owner died (last: {worker.name}, "
                            f"{reason}); giving up after max_attempts="
                            f"{rnd.max_attempts}"
                        )
                    else:
                        # Front of the queue: a requeued chunk is older work
                        # than anything still pending.
                        rnd.pending.appendleft(cid)
            self._cond.notify_all()
        try:
            worker.sock.close()
        except OSError:
            pass

    # -- scheduling --------------------------------------------------------------------

    def wait_for_workers(self, count: int, timeout_s: float) -> None:
        """Block until ``count`` workers are connected; actionable error on timeout."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while len(self._workers) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"cluster backend needs {count} worker(s) connected to "
                        f"{self.host}:{self.port} but only {len(self._workers)} "
                        f"arrived within {timeout_s:.0f}s; start workers with: "
                        f"repro worker --connect {self.host}:{self.port}"
                    )
                self._cond.wait(min(remaining, 0.2))

    def _stale_workers_locked(self) -> List[_WorkerConn]:
        now = time.monotonic()
        return [
            worker
            for worker in self._workers.values()
            if worker.current is not None and now - worker.last_recv > self.dead_after_s
        ]

    def _assign_locked(self, rnd: _Round) -> List[Tuple[_WorkerConn, int]]:
        assignments: List[Tuple[_WorkerConn, int]] = []
        for worker in self._workers.values():
            if not rnd.pending:
                break
            if not worker.alive or worker.current is not None:
                continue
            cid = rnd.pending.popleft()
            rnd.inflight[cid] = worker
            rnd.attempts[cid] += 1
            worker.current = cid
            rnd.context_workers.add(worker)
            assignments.append((worker, cid))
        return assignments

    def map_tasks_chunked(
        self,
        fn: TaskFn,
        shared: Any,
        chunks: List[List[Any]],
        worker_wait_s: float,
        context_payload: Optional[bytes] = None,
    ) -> List[List[Any]]:
        """Run every chunk somewhere and return per-chunk results in chunk order.

        The scheduling is completion-driven (fast workers take more chunks),
        but the *output* is positionally deterministic: chunk ``i``'s results
        always land in slot ``i``.  ``context_payload`` is an optional
        pre-pickled ``(fn, shared)`` blob -- callers that already serialized
        the context (e.g. for a picklability probe) pass it to avoid paying
        for the same pickle twice per round.
        """
        from repro.variation.stages import emit_totals, stages_active

        with self._map_lock:
            if not self._alive:
                raise RuntimeError("cluster coordinator is shut down")
            context = (
                context_payload
                if context_payload is not None
                else pickle.dumps((fn, shared), protocol=pickle.HIGHEST_PROTOCOL)
            )
            with self._cond:
                rnd = _Round(next(self._round_ids), b"", chunks, self.max_attempts)
                rnd.want_stages = stages_active()
                rnd.context_digest = hashlib.sha1(context).hexdigest()
                rnd.payload = pickle.dumps(
                    ("context", rnd.round_id, rnd.context_digest, context),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                rnd.payload_ref = pickle.dumps(
                    ("context_ref", rnd.round_id, rnd.context_digest),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                self._round = rnd
            no_worker_since: Optional[float] = None
            try:
                while True:
                    with self._cond:
                        if rnd.error is not None:
                            raise rnd.error
                        if rnd.finished:
                            break
                        stale = self._stale_workers_locked()
                        assignments = [] if stale else self._assign_locked(rnd)
                        if self._workers:
                            no_worker_since = None
                        elif rnd.pending or rnd.inflight:
                            now = time.monotonic()
                            if no_worker_since is None:
                                no_worker_since = now
                            elif now - no_worker_since > worker_wait_s:
                                raise RuntimeError(
                                    "every cluster worker disconnected and none "
                                    f"returned within {worker_wait_s:.0f}s; "
                                    f"{len(rnd.results)}/{len(rnd.chunks)} chunks "
                                    "completed.  Restart workers with: repro "
                                    f"worker --connect {self.host}:{self.port}"
                                )
                    for worker in stale:
                        self._drop_worker(
                            worker,
                            f"no heartbeat for {self.dead_after_s:.1f}s "
                            "(worker hung or unreachable)",
                        )
                    for worker, cid in assignments:
                        self._dispatch(worker, rnd, cid)
                    if not assignments and not stale:
                        with self._cond:
                            if not rnd.finished:
                                self._cond.wait(0.2)
            finally:
                with self._cond:
                    self._round = None
                # No explicit "forget" frame: rounds are serialised by
                # ``_map_lock``, so the next context a worker receives
                # supersedes this one and the worker drops stale contexts
                # itself.  Skipping the frame saves one send + worker wakeup
                # per round, which is measurable on chatty localhost rounds.
                for worker in list(rnd.context_workers):
                    worker.contexts_sent.discard(rnd.round_id)
            # Re-emit the workers' stage totals where the observers live: the
            # dispatching parent.  This is what keeps cluster bench records
            # from collapsing to the parent-side ``rng`` stage alone.
            if rnd.stage_totals:
                emit_totals(rnd.stage_totals)
            return [rnd.results[i] for i in range(len(chunks))]

    def _dispatch(self, worker: _WorkerConn, rnd: _Round, cid: int) -> None:
        try:
            parts: List[Tuple[Any, Optional[bytes]]] = []
            if rnd.round_id not in worker.contexts_sent:
                cache = worker.context_cache
                if rnd.context_digest in cache:
                    # The worker still holds this exact (fn, shared): ship a
                    # ~60-byte ref instead of the full pickled context.
                    cache.move_to_end(rnd.context_digest)
                    parts.append((None, rnd.payload_ref))
                else:
                    cache[rnd.context_digest] = None
                    if len(cache) > CONTEXT_CACHE_SIZE:
                        cache.popitem(last=False)
                    parts.append((None, rnd.payload))
                worker.contexts_sent.add(rnd.round_id)
            parts.append(
                (("task", rnd.round_id, cid, rnd.chunks[cid], rnd.want_stages), None)
            )
            worker.send(raw_parts=parts)
        except (OSError, socket.timeout) as exc:
            self._drop_worker(worker, f"send failed: {exc}")

    # -- shutdown ----------------------------------------------------------------------

    def close(self, kind: str = "drain") -> None:
        """Stop accepting, send ``kind`` (``drain``/``shutdown``) to every worker."""
        with self._cond:
            if not self._alive:
                return
            self._alive = False
            workers = list(self._workers.values())
            self._workers.clear()
            self._cond.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        for worker in workers:
            worker.alive = False
            try:
                worker.send((kind,))
            except OSError:
                pass
            try:
                # FIN, not close: an immediate close() with an unread inbound
                # heartbeat in the kernel buffer turns into a RST that can
                # discard the just-sent drain frame before the worker reads
                # it.  The worker (or this coordinator's reader thread, via
                # _drop_worker) closes the socket after draining.
                worker.sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
        _forget_coordinator(self)


#: Process-wide coordinators keyed by (host, port): every ClusterBackend bound
#: to the same endpoint shares one worker fleet, so sequential Monte Carlo
#: studies (each resolving its own backend instance) reuse connected workers.
_COORDINATORS: Dict[Tuple[str, int], ClusterCoordinator] = {}
_COORDINATORS_LOCK = threading.Lock()


def coordinator_for(host: str, port: int, **options: Any) -> ClusterCoordinator:
    """The shared coordinator bound to ``(host, port)``, started on first use.

    ``port=0`` always starts a fresh coordinator on an ephemeral port (the
    chosen port is on the returned instance).  ``options`` apply only when the
    call actually creates the coordinator.
    """
    with _COORDINATORS_LOCK:
        if port != 0:
            existing = _COORDINATORS.get((host, port))
            if existing is not None and existing.alive:
                return existing
        coordinator = ClusterCoordinator(host=host, port=port, **options)
        _COORDINATORS[(host, coordinator.port)] = coordinator
        return coordinator


def _forget_coordinator(coordinator: ClusterCoordinator) -> None:
    with _COORDINATORS_LOCK:
        key = (coordinator.host, coordinator.port)
        if _COORDINATORS.get(key) is coordinator:
            del _COORDINATORS[key]


def shutdown_coordinators(kind: str = "drain") -> None:
    """Close every process-wide coordinator (atexit: drain workers gracefully)."""
    with _COORDINATORS_LOCK:
        coordinators = list(_COORDINATORS.values())
    for coordinator in coordinators:
        coordinator.close(kind)


atexit.register(shutdown_coordinators)


# -- the backend -----------------------------------------------------------------------


class ClusterBackend(ExecutionBackend):
    """Coordinator-embedded execution over TCP-connected worker processes.

    ``jobs`` is the number of workers the backend *waits for* before
    dispatching (``$REPRO_CLUSTER_WORKERS``, default 1); late joiners are used
    as soon as they connect.  ``host``/``port`` default to
    ``$REPRO_CLUSTER_HOST`` / ``$REPRO_CLUSTER_PORT`` (127.0.0.1:7621), and
    ``port=0`` binds an ephemeral port (useful for tests; read it back from
    :attr:`port` after the coordinator starts).  Like the process backend,
    tasks and the shared context must be picklable, and results keep task
    order -- a cluster run is byte-identical to a serial one.
    """

    name = "cluster"
    ships_tasks = True

    def __init__(
        self,
        jobs: Optional[int] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        wait_s: Optional[float] = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        dead_after_s: float = DEFAULT_DEAD_AFTER_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        super().__init__()
        env_workers = knobs.raw_value(CLUSTER_WORKERS_ENV)
        self._min_workers = _validate_jobs(jobs) or _validate_jobs(
            int(env_workers) if env_workers else None
        ) or 1
        self._host = host if host is not None else (
            knobs.raw_value(CLUSTER_HOST_ENV) or DEFAULT_CLUSTER_HOST
        )
        if port is None:
            env_port = knobs.raw_value(CLUSTER_PORT_ENV)
            port = int(env_port) if env_port else DEFAULT_CLUSTER_PORT
        self._port = int(port)
        if wait_s is None:
            env_wait = knobs.raw_value(CLUSTER_WAIT_ENV)
            wait_s = float(env_wait) if env_wait else DEFAULT_WAIT_S
        self._wait_s = float(wait_s)
        self._coordinator_options = {
            "heartbeat_s": heartbeat_s,
            "dead_after_s": dead_after_s,
            "max_attempts": max_attempts,
        }
        self._coordinator: Optional[ClusterCoordinator] = None

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    @property
    def jobs(self) -> int:
        """Connected workers (at least the configured minimum).

        Consumers size their sharding on this -- e.g. the Monte Carlo trial
        partition -- so before the coordinator starts it reports the configured
        minimum, and afterwards the live fleet size.
        """
        coordinator = self._coordinator
        if coordinator is not None and coordinator.alive:
            return max(self._min_workers, coordinator.worker_count)
        return self._min_workers

    def _ensure_coordinator(self) -> ClusterCoordinator:
        coordinator = self._coordinator
        if coordinator is None or not coordinator.alive:
            coordinator = coordinator_for(
                self._host, self._port, **self._coordinator_options
            )
            self._coordinator = coordinator
            self._port = coordinator.port  # resolves port=0 to the bound port
        return coordinator

    def map_tasks(
        self, fn: TaskFn, tasks: Sequence[Any], shared: Any = None
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        # The picklability probe doubles as the round's context payload, so
        # the (fn, shared) blob -- the expensive part when shared carries
        # arrays -- is serialized exactly once per round.
        try:
            context_payload = pickle.dumps(
                (fn, shared), protocol=pickle.HIGHEST_PROTOCOL
            )
            pickle.dumps(tasks[0])
        except Exception as exc:
            raise ValueError(
                "the cluster backend needs picklable tasks: encode specs, "
                "overrides and workload data instead of live engine objects, "
                "and use module-level functions (not lambdas or closures) "
                f"[{type(exc).__name__}: {exc}]"
            ) from exc
        coordinator = self._ensure_coordinator()
        coordinator.wait_for_workers(self._min_workers, self._wait_s)
        workers = max(coordinator.worker_count, 1)
        # Same policy as the process backend: size-tiered chunks feed the
        # completion-driven assignment loop, so fast workers pull more chunks
        # and a straggler (or a death-requeued chunk) strands at most one
        # small tail chunk's worth of work.
        chunks = [
            tasks[bounds[0] : bounds[-1] + 1]
            for bounds in steal_partition(len(tasks), workers)
        ]
        nested = coordinator.map_tasks_chunked(
            fn, shared, chunks,
            worker_wait_s=self._wait_s,
            context_payload=context_payload,
        )
        return [result for chunk in nested for result in chunk]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterBackend(jobs={self._min_workers}, "
            f"endpoint={self._host}:{self._port})"
        )


BACKENDS[ClusterBackend.name] = ClusterBackend


# -- the worker ------------------------------------------------------------------------


def _log(quiet: bool, message: str) -> None:
    if not quiet:
        print(f"[repro-worker pid={os.getpid()}] {message}", file=sys.stderr)


def _serve_session(sock: socket.socket, quiet: bool) -> str:
    """One coordinator session: handshake, then execute tasks until told to stop.

    Returns ``"drain"`` / ``"shutdown"`` (coordinator said so), ``"lost"``
    (socket died mid-session -- the coordinator process is gone), or
    ``"lost-handshake"`` (the connection dropped before the handshake
    completed, so no session was ever established).  Raises
    :class:`ClusterProtocolError` when the coordinator rejects the handshake.
    """
    send_lock = threading.Lock()
    sock.settimeout(10.0)
    try:
        send_frame(
            sock,
            (
                "hello",
                {
                    "protocol": PROTOCOL,
                    "python": sys.version.split()[0],
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                },
            ),
        )
        reply = recv_frame(sock)
    except (OSError, ConnectionError, EOFError):
        # The coordinator vanished (or reset the connection) mid-handshake;
        # this never became a real session.
        try:
            sock.close()
        except OSError:
            pass
        return "lost-handshake"
    if isinstance(reply, tuple) and reply and reply[0] == "reject":
        raise ClusterProtocolError(f"coordinator rejected this worker: {reply[1]}")
    if not (
        isinstance(reply, tuple)
        and len(reply) == 2
        and reply[0] == "welcome"
        and reply[1].get("protocol") == PROTOCOL
    ):
        raise ClusterProtocolError(f"unexpected handshake reply: {reply!r}")
    heartbeat_s = float(reply[1].get("heartbeat_s", DEFAULT_HEARTBEAT_S))
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                with send_lock:
                    send_frame(sock, ("heartbeat",))
            except OSError:
                return

    threading.Thread(target=beat, name="cluster-heartbeat", daemon=True).start()
    from repro.exec import shm as shm_transport
    from repro.variation.stages import StageAccumulator, observe_stages

    contexts: Dict[int, Tuple[TaskFn, Any]] = {}
    #: Content-addressed store of unpickled (fn, shared) contexts, so rounds
    #: that re-ship a context this worker already decoded (sweep repeats,
    #: benchmark loops) cost a ~60-byte ref frame instead of an unpickle.
    #: Contexts are read-only by contract (the same object may serve many
    #: rounds), and the LRU policy mirrors the coordinator's per-connection
    #: bookkeeping exactly -- see ``_WorkerConn.context_cache``.
    context_store: "OrderedDict[str, Tuple[TaskFn, Any]]" = OrderedDict()

    def store_context(round_id: int, digest: str, value: Tuple[TaskFn, Any]) -> None:
        context_store[digest] = value
        context_store.move_to_end(digest)
        while len(context_store) > CONTEXT_CACHE_SIZE:
            context_store.popitem(last=False)
        # Rounds are serialised on the coordinator, so a fresh context
        # supersedes everything stored before it; dropping stale round ids
        # here replaces the old per-round "forget" frame.
        for stale_id in [rid for rid in contexts if rid != round_id]:
            del contexts[stale_id]
        contexts[round_id] = value
    #: Frames that arrived while a blob fetch was waiting for its reply; the
    #: main loop drains them before reading the socket again.
    deferred: Deque[Any] = deque()

    def fetch_blob(digest: str) -> Optional[bytes]:
        """Pull a shared-memory payload the coordinator published.

        Runs inside task execution (the recv loop's own thread), so reading
        the socket here is safe -- only the heartbeat thread sends
        concurrently, and it never reads.  Non-blob frames that interleave
        (e.g. an early ``forget``) are deferred, not dropped.
        """
        with send_lock:
            send_frame(sock, ("fetch", digest))
        while True:
            frame = recv_frame(sock)
            if frame[0] == "blob" and frame[1] == digest:
                return frame[2]
            deferred.append(frame)

    shm_transport.set_fetch_hook(fetch_blob)
    sock.settimeout(None)
    try:
        while True:
            frame = deferred.popleft() if deferred else recv_frame(sock)
            kind = frame[0]
            if kind == "context":
                _, round_id, digest, blob = frame
                cached = context_store.get(digest)
                store_context(
                    round_id, digest, cached if cached is not None else pickle.loads(blob)
                )
            elif kind == "context_ref":
                _, round_id, digest = frame
                # Present by construction: the coordinator only sends a ref
                # for digests its LRU mirror says this worker still holds.
                store_context(round_id, digest, context_store[digest])
            elif kind == "forget":
                contexts.pop(frame[1], None)
            elif kind == "task":
                _, round_id, chunk_id, chunk, want_stages = frame
                try:
                    fn, shared = contexts[round_id]
                    stage_totals: Optional[Dict[str, float]] = None
                    if want_stages:
                        accumulator = StageAccumulator()
                        with observe_stages(accumulator):
                            results = [fn(shared, task) for task in chunk]
                        stage_totals = accumulator.totals() or None
                    else:
                        results = [fn(shared, task) for task in chunk]
                    payload = pickle.dumps(
                        ("result", round_id, chunk_id, results, stage_totals),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                except BaseException:  # noqa: BLE001 - shipped back verbatim
                    payload = pickle.dumps(
                        ("error", round_id, chunk_id, traceback.format_exc()),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                with send_lock:
                    send_frame_raw(sock, payload)
            elif kind in ("drain", "shutdown"):
                return kind
            else:
                raise ClusterProtocolError(f"unexpected frame kind {kind!r}")
    except (OSError, ConnectionError, EOFError):
        return "lost"
    finally:
        shm_transport.set_fetch_hook(None)
        stop.set()
        try:
            sock.close()
        except OSError:
            pass


def run_worker(
    host: str,
    port: int,
    once: bool = False,
    retry_s: float = 0.2,
    connect_timeout_s: float = 30.0,
    quiet: bool = False,
) -> int:
    """The ``repro worker`` main loop: connect, serve, reconnect.

    The worker retries its connection for up to ``connect_timeout_s`` (so it
    may be started before any coordinator exists), serves one coordinator
    session, and -- unless told ``shutdown`` or started with ``once`` -- loops
    back to reconnect for the next coordinator (each gets a fresh retry
    budget).  Exit status: 0 after a graceful stop or after having served at
    least one session, 1 when no coordinator ever appeared or the handshake
    was rejected.
    """
    sessions = 0
    while True:
        sock: Optional[socket.socket] = None
        deadline = time.monotonic() + connect_timeout_s
        while True:
            try:
                sock = socket.create_connection((host, port), timeout=2.0)
                _enable_nodelay(sock)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    break
                time.sleep(retry_s)
        if sock is None:
            _log(
                quiet,
                f"no coordinator at {host}:{port} within {connect_timeout_s:.0f}s; "
                "exiting",
            )
            return 0 if sessions else 1
        try:
            _log(quiet, f"connected to {host}:{port}")
            outcome = _serve_session(sock, quiet)
        except ClusterProtocolError as exc:
            _log(False, str(exc))
            return 1
        if outcome != "lost-handshake":
            sessions += 1
        _log(quiet, f"session ended ({outcome})")
        if outcome == "shutdown" or (once and outcome != "lost-handshake"):
            return 0


def spawn_local_workers(
    count: int,
    host: str,
    port: int,
    env: Optional[Dict[str, str]] = None,
    extra_args: Sequence[str] = (),
) -> List[subprocess.Popen]:
    """Start ``count`` localhost worker processes (tests, benchmarks, demos).

    Each runs ``python -m repro worker --connect host:port`` with ``repro``'s
    source root prepended to ``PYTHONPATH`` so uninstalled checkouts work; the
    caller owns the returned processes (terminate them when done).
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    merged = dict(os.environ)
    if env:
        merged.update(env)
    merged["PYTHONPATH"] = src_root + os.pathsep + merged.get("PYTHONPATH", "")
    command = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--connect",
        f"{host}:{port}",
        *extra_args,
    ]
    return [subprocess.Popen(command, env=merged) for _ in range(count)]
