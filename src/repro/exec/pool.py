"""Persistent warm process pools shared across dispatches.

A cold :class:`~concurrent.futures.ProcessPoolExecutor` pays fork + interpreter
start + module import for every ``BatchRunner`` / ``DesignSpaceExplorer``
invocation, and its workers die with their memoized state (per-worker caches,
unpickled shm objects, architecture builds).  With ``REPRO_POOL=warm`` the
process backend leases its executor from this module instead: one pool per
worker count stays alive across dispatches, so the second batch starts with
imported modules and warm caches -- the prerequisite for the planned
``repro serve`` daemon.

Correctness guards:

- **env-snapshot revalidation** -- a pool remembers the ``REPRO_*`` snapshot it
  was forked under; a checkout under a different snapshot restarts the pool
  (forked workers inherit the environment of their fork, and not every task
  encoding pins every knob), so a warm pool can never serve stale modes.  If
  the mismatch shows up while another lease is active, the checkout gets a
  private single-use executor instead -- cold semantics, never a stale pool.
- **idle reaping** -- a released pool schedules its own shutdown after
  ``REPRO_POOL_IDLE_S`` seconds without a lease, bounding resident workers.
- **explicit stop** -- ``repro pool stop`` (and ``atexit``) tears everything
  down; a fork-inherited registry is pid-guarded so worker children never
  shut down the parent's pools.

``REPRO_POOL=cold`` (the default) bypasses this module entirely: the process
backend keeps its historical build-per-dispatch behaviour, which is also the
right mode for tests that assert cold-start pass counts.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import knobs
from repro.core.knobs import repro_env_snapshot

POOL_ENV = "REPRO_POOL"
POOL_IDLE_ENV = "REPRO_POOL_IDLE_S"


def pool_mode() -> str:
    """The effective ``REPRO_POOL`` value (``warm`` or ``cold``)."""
    return knobs.value(POOL_ENV)


def _idle_seconds() -> float:
    return float(knobs.value(POOL_IDLE_ENV))


class _WarmPool:
    """One persistent executor plus the bookkeeping that keeps it honest."""

    def __init__(self, jobs: int) -> None:
        self.jobs = jobs
        self.env = repro_env_snapshot()
        self.executor = ProcessPoolExecutor(max_workers=jobs)
        self.leases = 0
        self.created_at = time.monotonic()
        self.last_released = time.monotonic()
        self.dispatches = 0
        self.restarts = 0
        self.reaper: Optional[threading.Timer] = None

    def cancel_reaper(self) -> None:
        if self.reaper is not None:
            self.reaper.cancel()
            self.reaper = None


_POOLS: Dict[int, _WarmPool] = {}
_LOCK = threading.Lock()
_OWNER_PID = os.getpid()


def checkout(jobs: int) -> Tuple[ProcessPoolExecutor, Callable[[], None]]:
    """Lease the warm pool for ``jobs`` workers: ``(executor, release)``.

    The caller must invoke ``release()`` exactly once when its dispatch scope
    ends; the executor itself must *not* be shut down by the caller.  Leases
    are re-entrant across threads (the executor is thread-safe), and the pool
    is created -- or restarted, when the ``REPRO_*`` snapshot moved -- on
    demand.
    """
    snapshot = repro_env_snapshot()
    with _LOCK:
        pool = _POOLS.get(jobs)
        if pool is not None and pool.env != snapshot:
            if pool.leases == 0:
                pool.cancel_reaper()
                _shutdown_pool(pool, wait=False)
                _POOLS.pop(jobs, None)
                pool = None
                restarted = True
            else:
                # Another lease is mid-flight under the old snapshot; serve
                # this caller a private cold executor rather than restarting
                # a pool that is actively executing.
                private = ProcessPoolExecutor(max_workers=jobs)
                return private, lambda: private.shutdown(wait=True)
        else:
            restarted = False
        if pool is None:
            pool = _WarmPool(jobs)
            if restarted:
                pool.restarts += 1
            _POOLS[jobs] = pool
        pool.cancel_reaper()
        pool.leases += 1
        pool.dispatches += 1
        executor = pool.executor

    released = threading.Event()

    def release() -> None:
        if released.is_set():
            return
        released.set()
        with _LOCK:
            if _POOLS.get(jobs) is not pool:
                return
            pool.leases -= 1
            pool.last_released = time.monotonic()
            if pool.leases == 0:
                _schedule_reap_locked(pool)

    return executor, release


def _schedule_reap_locked(pool: _WarmPool) -> None:
    idle_s = _idle_seconds()
    if idle_s <= 0:
        return
    pool.cancel_reaper()
    timer = threading.Timer(idle_s, _reap, args=(pool,))
    timer.daemon = True
    pool.reaper = timer
    timer.start()


def _reap(pool: _WarmPool) -> None:
    with _LOCK:
        if _POOLS.get(pool.jobs) is not pool or pool.leases > 0:
            return
        _POOLS.pop(pool.jobs, None)
    _shutdown_pool(pool, wait=False)


def _shutdown_pool(pool: _WarmPool, wait: bool) -> None:
    try:
        pool.executor.shutdown(wait=wait)
    except Exception:  # pragma: no cover - interpreter-teardown races
        pass


def stop_pools(wait: bool = True) -> int:
    """Shut down every warm pool this process owns; returns how many stopped."""
    if os.getpid() != _OWNER_PID:
        return 0  # fork-inherited registry: the parent owns these executors
    with _LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.cancel_reaper()
        _shutdown_pool(pool, wait=wait)
    return len(pools)


def pool_status() -> List[Dict[str, object]]:
    """One record per live warm pool (the ``repro pool status`` payload)."""
    now = time.monotonic()
    with _LOCK:
        return [
            {
                "jobs": pool.jobs,
                "leases": pool.leases,
                "dispatches": pool.dispatches,
                "restarts": pool.restarts,
                "age_s": round(now - pool.created_at, 3),
                "idle_s": round(now - pool.last_released, 3) if pool.leases == 0 else 0.0,
            }
            for _jobs, pool in sorted(_POOLS.items())
        ]


atexit.register(stop_pools, wait=False)
