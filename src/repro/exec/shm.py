"""Content-addressed shared-memory transport for bulky task payloads.

Task-shipping backends (:class:`~repro.exec.backends.ProcessBackend`,
:class:`~repro.exec.cluster.ClusterBackend`) historically pickled the whole
shared context -- model weights, input tensors, Philox slabs -- into every
chunk's dispatch.  This module is the zero-copy alternative: a payload is
*published* once per host into a ``multiprocessing.shared_memory`` segment and
the task encoding carries a small :class:`ShmHandle` (digest + segment name +
shape/dtype) instead of megabytes of pickled array bytes.  Consumers resolve
handles back to arrays (or unpickled objects) on the worker; resolution is
content-addressed, so a handle republished by a later study with identical
bytes maps onto the worker's existing attachment -- and, for object payloads,
onto the *already unpickled* object, which is what makes warm pools start
warm.

Three resolution tiers, tried in order:

1. **publisher / fork child** -- the digest is in this process's registry (the
   publishing process, or a worker forked after publication): return the
   existing zero-copy view;
2. **same-host attach** -- open the named segment read-only.  Python 3.11's
   ``SharedMemory`` has no ``track=False``, and an attach registers the
   segment with the attaching process's ``resource_tracker``, which would
   *unlink it for everyone* when the worker exits; the attach path therefore
   unregisters the segment immediately (the publisher owns the unlink);
3. **framed fetch** -- a cross-host cluster worker cannot see the publisher's
   ``/dev/shm``; a registered fetch hook (the cluster worker installs one
   speaking ``("fetch", digest)`` / ``("blob", ...)`` frames) pulls the bytes
   once and caches them under the same digest for every later handle.

Handles degrade gracefully: payloads below :data:`INLINE_MAX_BYTES`, publishes
under ``REPRO_SHM=off``, and platforms without shared memory all fall back to
carrying the bytes inline in the handle -- resolution is identical either way,
so consumers never branch on the transport.

Publishing is idempotent per digest and the publisher owns segment lifetime:
:func:`unlink_all` (registered ``atexit``) closes and unlinks everything this
process created.  Forked children inherit the registry but not ownership --
a pid guard keeps a child's cleanup from destroying the parent's segments.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core import knobs

#: Payloads at or below this many bytes ship inline in the handle: a pickle of
#: this size costs less than a segment create + attach round-trip.
INLINE_MAX_BYTES = 1 << 16


def shm_enabled() -> bool:
    """Whether publishes may create shared-memory segments (``REPRO_SHM``)."""
    return knobs.value("REPRO_SHM") == "on"


@dataclass(frozen=True)
class ShmHandle:
    """The blessed picklable reference to a published payload.

    This is the *only* shared-memory object allowed inside task encodings
    (lint rule R004 flags raw ``SharedMemory`` objects in ``*Context`` /
    ``*Task`` classes): it carries no live OS resource, pickles to ~100 bytes,
    and resolves on any host -- via the named segment when visible, the
    per-worker fetch cache otherwise, or the ``inline`` bytes it was published
    with.
    """

    digest: str
    kind: str  # "array" | "object"
    shape: Tuple[int, ...]
    dtype: str
    segment: Optional[str] = None
    inline: Optional[bytes] = None

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@dataclass
class _Registry:
    """Process-local shm state; ``owner_pid`` guards fork-inherited copies."""

    owner_pid: int = field(default_factory=os.getpid)
    #: digest -> (SharedMemory, handle, read-only view) for segments this
    #: process created (or inherited mappings of, after a fork).
    published: Dict[str, Tuple[Any, ShmHandle, np.ndarray]] = field(default_factory=dict)
    #: digest -> (SharedMemory, read-only view) for same-host attachments.
    attached: Dict[str, Tuple[Any, np.ndarray]] = field(default_factory=dict)
    #: digest -> raw bytes pulled through the fetch hook (cross-host workers).
    fetched: Dict[str, bytes] = field(default_factory=dict)
    #: digest -> unpickled object (one unpickle per worker per digest).
    objects: Dict[str, Any] = field(default_factory=dict)
    lock: threading.Lock = field(default_factory=threading.Lock)


_REGISTRY = _Registry()
_FETCH_HOOK: Optional[Callable[[str], Optional[bytes]]] = None

#: Segments whose mapping could not be closed because live numpy views still
#: export the buffer.  Holding them here keeps ``SharedMemory.__del__`` from
#: re-raising (and printing) the same ``BufferError`` at garbage collection;
#: the segment *name* is already unlinked, so nothing leaks in ``/dev/shm``.
_RETIRED: List[Any] = []
_RETIRED_LOCK = threading.Lock()


def _close_quietly(segment: Any) -> None:
    try:
        segment.close()
    except BufferError:
        with _RETIRED_LOCK:
            _RETIRED.append(segment)
    except OSError:
        pass


def _digest_of(data: bytes, shape: Tuple[int, ...], dtype: str, kind: str) -> str:
    hasher = hashlib.sha1()
    hasher.update(f"{kind}|{dtype}|{shape}|".encode("utf-8"))
    hasher.update(data)
    return hasher.hexdigest()


def _segment_name(digest: str) -> str:
    # The publisher pid namespaces the name so two concurrent processes
    # publishing the same content never race on one segment; the digest tail
    # makes leaks attributable (`ls /dev/shm/repro-*`).
    return f"repro-{_REGISTRY.owner_pid}-{digest[:16]}"


def _view(buffer, shape: Tuple[int, ...], dtype: str, nbytes: int) -> np.ndarray:
    array = np.frombuffer(buffer, dtype=np.dtype(dtype), count=-1, offset=0)
    array = array[: nbytes // np.dtype(dtype).itemsize].reshape(shape)
    array.flags.writeable = False
    return array


def _attach_untracked(name: str):
    """Open an existing segment without adopting its lifetime.

    Attaching registers the segment with this process's ``resource_tracker``
    (Python < 3.13 has no opt-out), which would unlink it when *this* process
    exits even though the publisher still serves it to other workers -- so the
    registration is reverted immediately after the attach.
    """
    from multiprocessing import resource_tracker, shared_memory

    segment = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
    except Exception:  # pragma: no cover - tracker variations across versions
        pass
    return segment


# -- publishing ------------------------------------------------------------------------


def publish_array(array: np.ndarray) -> ShmHandle:
    """Publish an array once and return its content-addressed handle.

    Idempotent per content: republishing identical bytes returns the existing
    handle.  Small arrays, ``REPRO_SHM=off`` and shm-less platforms fall back
    to an inline handle (same digest, same resolution path).
    """
    array = np.ascontiguousarray(array)
    data = array.tobytes()
    return _publish(data, tuple(array.shape), str(array.dtype), "array")


def publish_object(obj: Any) -> ShmHandle:
    """Pickle ``obj`` and publish the bytes (``kind="object"``).

    The digest addresses the pickle bytes, so workers that already resolved an
    identical payload reuse their cached *unpickled* object -- repeated studies
    on a warm pool skip both the transfer and the unpickle.
    """
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _publish(data, (len(data),), "uint8", "object")


def _publish(data: bytes, shape: Tuple[int, ...], dtype: str, kind: str) -> ShmHandle:
    digest = _digest_of(data, shape, dtype, kind)
    with _REGISTRY.lock:
        entry = _REGISTRY.published.get(digest)
        if entry is not None:
            return entry[1]
    if len(data) <= INLINE_MAX_BYTES or not shm_enabled():
        return ShmHandle(
            digest=digest, kind=kind, shape=shape, dtype=dtype, inline=data
        )
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(
            create=True, size=len(data), name=_segment_name(digest)
        )
    except FileExistsError:
        # Same digest re-published after the registry was cleared mid-process:
        # adopt the existing segment (contents are by construction identical).
        segment = _attach_untracked(_segment_name(digest))
    except (OSError, ImportError, ValueError):  # pragma: no cover - no shm
        return ShmHandle(
            digest=digest, kind=kind, shape=shape, dtype=dtype, inline=data
        )
    segment.buf[: len(data)] = data
    handle = ShmHandle(
        digest=digest, kind=kind, shape=shape, dtype=dtype, segment=segment.name
    )
    view = _view(segment.buf, shape, dtype, len(data))
    with _REGISTRY.lock:
        raced = _REGISTRY.published.get(digest)
        if raced is not None:
            # Lost a publish race within this process; keep the first segment.
            _close_quietly(segment)
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass
            return raced[1]
        _REGISTRY.published[digest] = (segment, handle, view)
    return handle


# -- resolution ------------------------------------------------------------------------


def set_fetch_hook(hook: Optional[Callable[[str], Optional[bytes]]]) -> None:
    """Install the cross-host fallback: ``hook(digest) -> bytes`` or ``None``.

    Cluster workers install a hook that asks the coordinator for the payload
    over the task socket; fetched bytes are cached per digest so each worker
    pays the transfer once no matter how many rounds reference the handle.
    """
    global _FETCH_HOOK
    _FETCH_HOOK = hook


def resolve_array(handle: ShmHandle) -> np.ndarray:
    """The published array for ``handle`` (read-only; zero-copy when local)."""
    if handle.inline is not None:
        return _view(handle.inline, handle.shape, handle.dtype, len(handle.inline))
    with _REGISTRY.lock:
        entry = _REGISTRY.published.get(handle.digest)
        if entry is not None:
            return entry[2]
        attached = _REGISTRY.attached.get(handle.digest)
        if attached is not None:
            return attached[1]
        data = _REGISTRY.fetched.get(handle.digest)
    if data is not None:
        return _view(data, handle.shape, handle.dtype, len(data))
    if handle.segment is not None:
        try:
            segment = _attach_untracked(handle.segment)
        except (FileNotFoundError, OSError):
            segment = None
        if segment is not None:
            view = _view(segment.buf, handle.shape, handle.dtype, handle.nbytes)
            with _REGISTRY.lock:
                raced = _REGISTRY.attached.get(handle.digest)
                if raced is not None:
                    segment.close()
                    return raced[1]
                _REGISTRY.attached[handle.digest] = (segment, view)
            return view
    hook = _FETCH_HOOK
    if hook is not None:
        data = hook(handle.digest)
        if data is not None:
            with _REGISTRY.lock:
                _REGISTRY.fetched.setdefault(handle.digest, data)
            return _view(data, handle.shape, handle.dtype, len(data))
    raise RuntimeError(
        f"cannot resolve shm handle {handle.digest[:12]} (segment "
        f"{handle.segment!r}): the publishing process is gone or unreachable "
        "and no fetch hook is installed"
    )


def resolve_object(handle: ShmHandle) -> Any:
    """Unpickle an object payload once per process and return the cached object."""
    with _REGISTRY.lock:
        if handle.digest in _REGISTRY.objects:
            return _REGISTRY.objects[handle.digest]
    data = resolve_array(handle)
    obj = pickle.loads(data.tobytes())
    with _REGISTRY.lock:
        return _REGISTRY.objects.setdefault(handle.digest, obj)


def as_array(value: Any) -> Any:
    """``value`` with :class:`ShmHandle` instances resolved to arrays."""
    return resolve_array(value) if isinstance(value, ShmHandle) else value


def as_object(value: Any) -> Any:
    """``value`` with :class:`ShmHandle` instances resolved to objects."""
    return resolve_object(value) if isinstance(value, ShmHandle) else value


def published_bytes(digest: str) -> Optional[bytes]:
    """The raw bytes behind a digest this process can serve (fetch-hook server)."""
    with _REGISTRY.lock:
        entry = _REGISTRY.published.get(digest)
        if entry is not None:
            return entry[2].tobytes()
        data = _REGISTRY.fetched.get(digest)
        if data is not None:
            return data
        attached = _REGISTRY.attached.get(digest)
        if attached is not None:
            return attached[1].tobytes()
    return None


# -- lifecycle -------------------------------------------------------------------------


def active_segments() -> List[str]:
    """Names of the segments this process currently holds open (leak checks)."""
    with _REGISTRY.lock:
        names = [entry[0].name for entry in _REGISTRY.published.values()]
        names += [segment.name for segment, _ in _REGISTRY.attached.values()]
    return sorted(names)


def unlink_all() -> None:
    """Close every mapping and unlink the segments this process *created*.

    Safe after a fork: a child inherits the registry but not ownership, so it
    only closes its mappings -- unlinking is the creator's job (the pid guard
    is what keeps a worker's exit from destroying the parent's segments).
    """
    with _REGISTRY.lock:
        published = list(_REGISTRY.published.values())
        attached = list(_REGISTRY.attached.values())
        _REGISTRY.published.clear()
        _REGISTRY.attached.clear()
        _REGISTRY.fetched.clear()
        _REGISTRY.objects.clear()
    owner = _REGISTRY.owner_pid == os.getpid()
    for segment, _handle, _data in published:
        _close_quietly(segment)
        if owner:
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass
    for segment, _data in attached:
        _close_quietly(segment)


atexit.register(unlink_all)
