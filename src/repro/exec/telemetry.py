"""Mergeable execution telemetry shared by every backend consumer.

Both orchestration layers (:class:`~repro.scenarios.runner.BatchRunner` and
:class:`~repro.explore.dse.DesignSpaceExplorer`) report how much engine work an
execution actually performed: per-pass wall-clock (:class:`PassTiming`) and the
evaluation cache's hit/miss counters.  Under the in-process backends these are
observed directly; under :class:`~repro.exec.backends.ProcessBackend` each
worker measures its own share and ships a picklable snapshot back, which the
parent folds together with :func:`merge_pass_timings` /
:func:`merge_cache_stats` so the report looks the same regardless of backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from repro.core.cache import CacheStats, EvaluationCache


@dataclass
class PassTiming:
    """Accumulated wall-clock of one engine pass (stage) across an execution."""

    count: int = 0
    total_s: float = 0.0

    def add(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s

    @property
    def mean_ms(self) -> float:
        return self.total_s * 1e3 / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PassTiming(count={self.count}, total_s={self.total_s:.4f})"


def merge_pass_timings(
    parts: Iterable[Mapping[str, PassTiming]],
) -> Dict[str, PassTiming]:
    """Fold per-worker pass-timing maps into one ``{stage: PassTiming}``."""
    merged: Dict[str, PassTiming] = {}
    for timings in parts:
        for stage, timing in timings.items():
            into = merged.setdefault(stage, PassTiming())
            into.count += timing.count
            into.total_s += timing.total_s
    return merged


def merge_cache_stats(
    parts: Iterable[Mapping[str, CacheStats]],
) -> Dict[str, CacheStats]:
    """Fold per-worker cache hit/miss maps into one ``{stage: CacheStats}``."""
    merged: Dict[str, CacheStats] = {}
    for stats in parts:
        for stage, stat in stats.items():
            into = merged.setdefault(stage, CacheStats())
            into.hits += stat.hits
            into.misses += stat.misses
            into.evictions += stat.evictions
    return merged


def scoped_pass_observer(cache: EvaluationCache, telemetry: "WorkerTelemetry", lock=None):
    """An ``observe_passes`` callback counting only engines bound to ``cache``.

    Cache identity is the scoping rule everywhere (batch runner, explorer,
    process workers): it attributes engine passes to the orchestration layer
    that owns the cache, so concurrent runners/explorers -- or an enclosing
    observed test -- never cross-contaminate each other's counts.  Pass a
    ``lock`` when engines may run on multiple threads; worker processes run
    tasks sequentially and can skip it.
    """

    def record(stage: str, elapsed_s: float) -> None:
        telemetry.engine_passes += 1
        telemetry.pass_timings.setdefault(stage, PassTiming()).add(elapsed_s)

    def observe(stage: str, engine: object, elapsed_s: float) -> None:
        if getattr(engine, "cache", None) is not cache:
            return
        if lock is not None:
            with lock:
                record(stage, elapsed_s)
        else:
            record(stage, elapsed_s)

    return observe


def cache_stats_snapshot(cache: EvaluationCache) -> Dict[str, Tuple[int, int, int]]:
    """Cheap ``{stage: (hits, misses, evictions)}`` snapshot for delta computation."""
    return {stage: (s.hits, s.misses, s.evictions) for stage, s in cache.stats.items()}


def cache_stats_delta(
    cache: EvaluationCache, before: Mapping[str, Tuple[int, ...]]
) -> Dict[str, CacheStats]:
    """Hit/miss/eviction growth since ``before`` -- one task's telemetry share.

    Workers share one cache across the tasks they execute, so returning deltas
    (instead of cumulative totals) keeps the parent's merge double-count-free.
    """
    delta: Dict[str, CacheStats] = {}
    for stage, stats in cache.stats.items():
        base = tuple(before.get(stage, ())) + (0, 0, 0)
        hits = stats.hits - base[0]
        misses = stats.misses - base[1]
        evictions = stats.evictions - base[2]
        if hits or misses or evictions:
            delta[stage] = CacheStats(hits=hits, misses=misses, evictions=evictions)
    return delta


def render_pass_timings(timings: Mapping[str, PassTiming]) -> str:
    """One line per stage: ``stage: N passes, total ms (mean ms)``."""
    lines = [
        f"  {stage:16s} {t.count:4d} passes  {t.total_s * 1e3:9.2f} ms total"
        f"  ({t.mean_ms:.3f} ms/pass)"
        for stage, t in sorted(timings.items())
    ]
    return "\n".join(lines)


@dataclass
class WorkerTelemetry:
    """Picklable telemetry snapshot one process-backend worker returns.

    ``engine_passes`` counts executed pipeline stages; ``pass_timings`` and
    ``cache_stats`` are the *deltas* attributable to the tasks the worker ran
    (not cumulative totals, so merging never double-counts).
    """

    engine_passes: int = 0
    pass_timings: Dict[str, PassTiming] = field(default_factory=dict)
    cache_stats: Dict[str, CacheStats] = field(default_factory=dict)

    def merge_into(self, other: "WorkerTelemetry") -> None:
        other.engine_passes += self.engine_passes
        other.pass_timings = merge_pass_timings([other.pass_timings, self.pass_timings])
        other.cache_stats = merge_cache_stats([other.cache_stats, self.cache_stats])
