"""``python -m repro`` -> the scenario CLI (:mod:`repro.cli`)."""

from repro.cli import main

raise SystemExit(main())
