"""GEMM workload description extracted from neural-network layers.

Every computation-intensive layer (convolution, linear, attention) is lowered to one
or more general matrix multiplications ``C[M, N] = A[M, K] @ B[K, N]``.  Besides the
shape, the workload record carries everything the data-aware analyses need: operand
bitwidths, the *actual* operand values (weights and, optionally, activations), the
pruning mask / sparsity, and the layer identity used for heterogeneous mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class GEMMWorkload:
    """One GEMM ``C[M, N] = A[M, K] @ B[K, N]`` with data-awareness metadata.

    Conventionally operand B holds the *weights* (the operand that may be held
    stationary on a PTC) and operand A holds the *activations*.
    """

    name: str
    m: int
    n: int
    k: int
    input_bits: int = 8
    weight_bits: int = 8
    output_bits: int = 8
    layer_type: str = "gemm"
    weight_values: Optional[np.ndarray] = field(default=None, repr=False)
    input_values: Optional[np.ndarray] = field(default=None, repr=False)
    pruning_mask: Optional[np.ndarray] = field(default=None, repr=False)
    weight_static: bool = False

    def __post_init__(self) -> None:
        for label, dim in (("M", self.m), ("N", self.n), ("K", self.k)):
            if not isinstance(dim, (int, np.integer)) or dim < 1:
                raise ValueError(f"GEMM dimension {label} must be a positive int, got {dim!r}")
        self.m, self.n, self.k = int(self.m), int(self.n), int(self.k)
        for label, bits in (
            ("input_bits", self.input_bits),
            ("weight_bits", self.weight_bits),
            ("output_bits", self.output_bits),
        ):
            if bits < 1:
                raise ValueError(f"{label} must be >= 1, got {bits}")
        if self.weight_values is not None:
            self.weight_values = np.asarray(self.weight_values, dtype=float)
            if self.weight_values.shape != (self.k, self.n):
                raise ValueError(
                    f"weight_values shape {self.weight_values.shape} does not match "
                    f"(K, N) = ({self.k}, {self.n})"
                )
        if self.input_values is not None:
            self.input_values = np.asarray(self.input_values, dtype=float)
            if self.input_values.shape != (self.m, self.k):
                raise ValueError(
                    f"input_values shape {self.input_values.shape} does not match "
                    f"(M, K) = ({self.m}, {self.k})"
                )
        if self.pruning_mask is not None:
            self.pruning_mask = np.asarray(self.pruning_mask, dtype=bool)
            if self.weight_values is not None and self.pruning_mask.shape != self.weight_values.shape:
                raise ValueError("pruning_mask must have the same shape as weight_values")

    # -- basic quantities ------------------------------------------------------------
    @property
    def num_macs(self) -> int:
        """Multiply-accumulate operations in this GEMM."""
        return self.m * self.n * self.k

    @property
    def num_ops(self) -> int:
        """Arithmetic operations (2 per MAC)."""
        return 2 * self.num_macs

    @property
    def input_bytes(self) -> float:
        return self.m * self.k * self.input_bits / 8.0

    @property
    def weight_bytes(self) -> float:
        return self.k * self.n * self.weight_bits / 8.0

    @property
    def output_bytes(self) -> float:
        return self.m * self.n * self.output_bits / 8.0

    @property
    def total_bytes(self) -> float:
        return self.input_bytes + self.weight_bytes + self.output_bytes

    # -- data-awareness -----------------------------------------------------------------
    @property
    def sparsity(self) -> float:
        """Fraction of weight elements pruned to exactly zero."""
        if self.pruning_mask is not None:
            return float(1.0 - self.pruning_mask.mean())
        if self.weight_values is not None:
            return float(np.mean(self.weight_values == 0.0))
        return 0.0

    def effective_weights(self) -> Optional[np.ndarray]:
        """Weight values with the pruning mask applied (None when values are absent)."""
        if self.weight_values is None:
            return None
        if self.pruning_mask is None:
            return self.weight_values
        return np.where(self.pruning_mask, self.weight_values, 0.0)

    def normalized_weights(self) -> Optional[np.ndarray]:
        """Weights scaled to [-1, 1], the native encoding range of analog devices.

        Memoized on the workload (workloads handed to the evaluation machinery
        are immutable -- mutate a copy between runs); the cached array is
        marked read-only so a repeated engine pass can never corrupt it.
        """
        if self.weight_values is None:
            return None
        cached = getattr(self, "_repro_normalized_weights", None)
        if cached is None:
            weights = self.effective_weights()
            peak = float(np.max(np.abs(weights)))
            cached = np.zeros_like(weights) if peak == 0.0 else weights / peak
            cached.setflags(write=False)
            self._repro_normalized_weights = cached
        return cached

    def normalized_inputs(self) -> Optional[np.ndarray]:
        """Activations scaled to [-1, 1]; memoized like :meth:`normalized_weights`."""
        if self.input_values is None:
            return None
        cached = getattr(self, "_repro_normalized_inputs", None)
        if cached is None:
            peak = float(np.max(np.abs(self.input_values)))
            cached = (
                np.zeros_like(self.input_values)
                if peak == 0.0
                else self.input_values / peak
            )
            cached.setflags(write=False)
            self._repro_normalized_inputs = cached
        return cached

    # -- transformations ------------------------------------------------------------------
    def with_bits(self, input_bits: int, weight_bits: int, output_bits: Optional[int] = None) -> "GEMMWorkload":
        """Return a copy with different operand bitwidths (for precision sweeps)."""
        return GEMMWorkload(
            name=self.name,
            m=self.m,
            n=self.n,
            k=self.k,
            input_bits=input_bits,
            weight_bits=weight_bits,
            output_bits=output_bits if output_bits is not None else max(input_bits, weight_bits),
            layer_type=self.layer_type,
            weight_values=self.weight_values,
            input_values=self.input_values,
            pruning_mask=self.pruning_mask,
            weight_static=self.weight_static,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GEMMWorkload({self.name!r}, M={self.m}, N={self.n}, K={self.k}, "
            f"type={self.layer_type}, macs={self.num_macs})"
        )
