"""Mapping GEMM workloads onto photonic tensor cores.

The mapper partitions a GEMM across the architecture's parallel dimensions (spatial
rows/columns, cores, tiles, wavelengths) and time, producing a :class:`Mapping` that
records:

- the blocking factors and iteration counts of the nested loop (Fig. 4);
- the hierarchical accumulation plan (spectral and photocurrent parallel reduction,
  analog temporal integration, digital sequential accumulation);
- the range-restriction multiplier ``I`` and the reconfiguration penalty for
  weight-stationary PTCs (Section III-C2);
- per-cycle operand bandwidth demand and per-level memory traffic, which feed the
  bandwidth-adaptive memory analysis and the data-movement energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch.architecture import Architecture
from repro.arch.dataflow_spec import Dataflow
from repro.dataflow.gemm import GEMMWorkload
from repro.devices.electrical import Integrator
from repro.memory.hierarchy import MemoryLevel


@dataclass
class Mapping:
    """The result of mapping one GEMM workload onto one architecture."""

    workload: GEMMWorkload
    arch_name: str
    m_parallel: int
    n_parallel: int
    k_parallel: int
    m_iters: int
    n_iters: int
    k_iters: int
    forwards: int
    temporal_accumulation: int
    compute_cycles_per_forward: int
    reconfig_events: int
    reconfig_cycles_per_event: int
    frequency_ghz: float
    bytes_per_cycle: Dict[str, float] = field(default_factory=dict)
    traffic_bits: Dict[MemoryLevel, float] = field(default_factory=dict)

    # -- cycle accounting -----------------------------------------------------------
    @property
    def compute_cycles(self) -> int:
        """Compute cycles including the range-restriction forwards multiplier."""
        return self.forwards * self.compute_cycles_per_forward

    @property
    def reconfig_cycles(self) -> int:
        """Total stall cycles spent reprogramming the stationary operand."""
        return self.forwards * self.reconfig_events * self.reconfig_cycles_per_event

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.reconfig_cycles

    @property
    def compute_time_ns(self) -> float:
        return self.compute_cycles / self.frequency_ghz

    @property
    def total_time_ns(self) -> float:
        return self.total_cycles / self.frequency_ghz

    @property
    def output_samples(self) -> int:
        """Number of A/D conversions (per readout lane) over the whole GEMM."""
        return self.forwards * self.m_iters * self.n_iters * max(
            1, math.ceil(self.k_iters / self.temporal_accumulation)
        )

    # -- efficiency metrics ------------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Average spatial utilization of the PTC's parallel MAC lanes."""
        used = self.workload.num_macs
        provisioned = (
            self.m_iters * self.n_iters * self.k_iters
            * self.m_parallel * self.n_parallel * self.k_parallel
        )
        return used / provisioned if provisioned else 0.0

    @property
    def macs_per_cycle_effective(self) -> float:
        return self.workload.num_macs * self.forwards / max(self.total_cycles, 1)

    def params_overlay(self) -> Dict[str, float]:
        """Architecture-parameter overrides implied by this mapping (e.g. T_ACC)."""
        return {"T_ACC": float(self.temporal_accumulation)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Mapping({self.workload.name!r} -> {self.arch_name!r}, "
            f"cycles={self.total_cycles}, util={self.utilization:.2f})"
        )


class DataflowMapper:
    """Maps GEMM workloads onto architectures following their dataflow specs.

    ``cache`` (an :class:`~repro.core.cache.EvaluationCache`) optionally memoizes
    whole mappings on the *resolved* mapping inputs -- the workload digest, the
    evaluated parallel dimensions, the forwards multiplier, the integration limit
    and the reconfiguration model -- so two architecture configurations that
    resolve to the same dataflow share one mapping record.
    """

    def __init__(
        self,
        max_integration_cycles: Optional[int] = None,
        cache: Optional["EvaluationCache"] = None,
    ) -> None:
        self.max_integration_cycles = max_integration_cycles
        self.cache = cache

    # -- helpers -----------------------------------------------------------------------
    def _integration_limit(self, arch: Architecture) -> int:
        """Longest analog integration window the architecture supports."""
        if self.max_integration_cycles is not None:
            return max(1, self.max_integration_cycles)
        for inst in arch.instances:
            if inst.is_composite:
                continue
            device = arch.library.get(inst.device)
            if isinstance(device, Integrator):
                return max(1, device.max_integration_cycles)
        return 1

    def _reconfig_events(self, arch: Architecture, m_iters: int, n_iters: int, k_iters: int,
                         workload: GEMMWorkload) -> int:
        """Number of stationary-operand reloads over the GEMM."""
        if arch.dataflow.stationary is not Dataflow.WEIGHT_STATIONARY:
            return 0
        if not arch.dataflow.weight_reuse_requires_reconfig:
            return 0
        # One reload per distinct weight block (K x N tiling); the block is reused
        # across the M iterations.
        return n_iters * k_iters

    # -- main entry point ------------------------------------------------------------------
    def map(self, workload: GEMMWorkload, arch: Architecture) -> Mapping:
        """Map ``workload`` onto ``arch`` and return the mapping record."""
        if self.cache is not None and self.cache.enabled:
            from repro.core.cache import workload_fingerprint
            from repro.core.engine import structure_token

            # Integration limit and reconfig time scan device models only, so
            # they are constant per shared architecture structure.
            token = structure_token(arch)
            limits = self.cache.get_or_compute(
                "mapper_limits",
                (token, self.max_integration_cycles),
                lambda: (self._integration_limit(arch), arch.weight_reconfig_cycles()),
            )
            dims = arch.dataflow.parallel_dims(arch.params)
            key = (
                workload_fingerprint(workload),
                arch.name,
                dims["M"],
                dims["N"],
                dims["K"],
                arch.forwards_per_output,
                limits,
                arch.dataflow.stationary.value,
                arch.dataflow.weight_reuse_requires_reconfig,
                arch.frequency_ghz,
            )
            return self.cache.get_or_compute(
                "map", key, lambda: self._map_impl(workload, arch, dims)
            )
        return self._map_impl(workload, arch)

    def _map_impl(
        self,
        workload: GEMMWorkload,
        arch: Architecture,
        dims: Optional[Dict[str, int]] = None,
    ) -> Mapping:
        if dims is None:
            dims = arch.dataflow.parallel_dims(arch.params)
        m_par, n_par, k_par = dims["M"], dims["N"], dims["K"]

        m_iters = math.ceil(workload.m / m_par)
        n_iters = math.ceil(workload.n / n_par)
        k_iters = math.ceil(workload.k / k_par)
        compute_cycles = m_iters * n_iters * k_iters

        integration_limit = self._integration_limit(arch)
        temporal_accumulation = max(1, min(integration_limit, k_iters))

        reconfig_events = self._reconfig_events(arch, m_iters, n_iters, k_iters, workload)
        reconfig_cycles_per_event = arch.weight_reconfig_cycles() if reconfig_events else 0

        forwards = arch.forwards_per_output

        bytes_per_cycle = self._bytes_per_cycle(workload, m_par, n_par, k_par,
                                                temporal_accumulation)
        traffic = self._memory_traffic(
            workload, m_par, n_par, k_par, m_iters, n_iters, k_iters,
            temporal_accumulation, forwards,
        )

        return Mapping(
            workload=workload,
            arch_name=arch.name,
            m_parallel=m_par,
            n_parallel=n_par,
            k_parallel=k_par,
            m_iters=m_iters,
            n_iters=n_iters,
            k_iters=k_iters,
            forwards=forwards,
            temporal_accumulation=temporal_accumulation,
            compute_cycles_per_forward=compute_cycles,
            reconfig_events=reconfig_events,
            reconfig_cycles_per_event=reconfig_cycles_per_event,
            frequency_ghz=arch.frequency_ghz,
            bytes_per_cycle=bytes_per_cycle,
            traffic_bits=traffic,
        )

    # -- demand / traffic models ------------------------------------------------------------
    def _bytes_per_cycle(
        self,
        workload: GEMMWorkload,
        m_par: int,
        n_par: int,
        k_par: int,
        temporal_accumulation: int,
    ) -> Dict[str, float]:
        """Operand bytes the PTC consumes/produces per clock cycle."""
        input_bytes = m_par * k_par * workload.input_bits / 8.0
        weight_bytes = k_par * n_par * workload.weight_bits / 8.0
        output_bytes = m_par * n_par * workload.output_bits / 8.0 / temporal_accumulation
        return {
            "input": input_bytes,
            "weight": weight_bytes,
            "output": output_bytes,
            "total": input_bytes + weight_bytes + output_bytes,
        }

    def _memory_traffic(
        self,
        workload: GEMMWorkload,
        m_par: int,
        n_par: int,
        k_par: int,
        m_iters: int,
        n_iters: int,
        k_iters: int,
        temporal_accumulation: int,
        forwards: int,
    ) -> Dict[MemoryLevel, float]:
        """Bits moved at each memory level over the whole GEMM.

        Reuse model: weights stream from HBM once per layer (activations and outputs
        stay on chip between layers for single-sample inference); the GLB holds a
        full layer and serves each operand once per forward pass; the local buffer
        is filled once per forward and additionally spills/reloads the digital
        partial sums once per analog integration window; the register file feeds the
        PTC its per-cycle operands.
        """
        input_bits = workload.m * workload.k * workload.input_bits
        weight_bits = workload.k * workload.n * workload.weight_bits
        output_bits = workload.m * workload.n * workload.output_bits

        hbm_bits = weight_bits
        glb_bits = forwards * (input_bits + weight_bits) + output_bits

        # LB: operand fill once per forward, plus partial-sum write/read traffic for
        # the digital sequential accumulation across integration windows.
        partial_sum_passes = max(1, math.ceil(k_iters / temporal_accumulation))
        lb_bits = forwards * (input_bits + weight_bits)
        lb_bits += 2.0 * output_bits * partial_sum_passes

        cycles = forwards * m_iters * n_iters * k_iters
        rf_bits = cycles * (
            m_par * k_par * workload.input_bits + k_par * n_par * workload.weight_bits
        )
        rf_bits += (
            forwards
            * m_iters
            * n_iters
            * max(1, math.ceil(k_iters / temporal_accumulation))
            * m_par
            * n_par
            * workload.output_bits
        )

        return {
            MemoryLevel.HBM: float(hbm_bits),
            MemoryLevel.GLB: float(glb_bits),
            MemoryLevel.LB: float(lb_bits),
            MemoryLevel.RF: float(rf_bits),
        }
