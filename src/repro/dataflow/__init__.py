"""Photonics-specific dataflow: GEMM workloads, loop-nest mapping, heterogeneous scheduling."""

from repro.dataflow.gemm import GEMMWorkload
from repro.dataflow.mapping import DataflowMapper, Mapping
from repro.dataflow.scheduler import HeterogeneousMapper, LayerAssignment

__all__ = [
    "GEMMWorkload",
    "DataflowMapper",
    "Mapping",
    "HeterogeneousMapper",
    "LayerAssignment",
]
