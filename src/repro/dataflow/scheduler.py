"""Heterogeneous layer-to-sub-architecture mapping.

The paper's Fig. 11 use case: different layer types run on different photonic
sub-architectures sharing one memory hierarchy (convolutions on SCATTER, linear
layers on an MZI mesh, attention matmuls on a dynamic PTC).  The mapper routes each
extracted layer workload to a sub-architecture using, in priority order,

1. the PTC assignment recorded on the layer during ONN conversion,
2. an explicit ``layer_type -> subarch`` rule table,
3. a default sub-architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.arch.architecture import Architecture, HeterogeneousArchitecture
from repro.onn.workload import LayerWorkload


@dataclass
class LayerAssignment:
    """A layer workload routed to a named sub-architecture."""

    workload: LayerWorkload
    subarch_key: str
    arch: Architecture

    @property
    def layer_name(self) -> str:
        return self.workload.layer_name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LayerAssignment({self.layer_name!r} -> {self.subarch_key!r})"


class HeterogeneousMapper:
    """Routes layer workloads to the sub-architectures of a heterogeneous system."""

    def __init__(
        self,
        system: HeterogeneousArchitecture,
        type_rules: Optional[Dict[str, str]] = None,
        default_subarch: Optional[str] = None,
    ) -> None:
        if len(system) == 0:
            raise ValueError("heterogeneous system has no sub-architectures")
        self.system = system
        self.type_rules = dict(type_rules or {})
        if default_subarch is None:
            default_subarch = next(iter(system.subarchs))
        if default_subarch not in system:
            raise KeyError(f"default sub-architecture {default_subarch!r} not in system")
        self.default_subarch = default_subarch
        for layer_type, key in self.type_rules.items():
            if key not in system:
                raise KeyError(
                    f"rule {layer_type!r} -> {key!r} references unknown sub-architecture"
                )

    def _resolve(self, workload: LayerWorkload) -> str:
        if workload.ptc_type and workload.ptc_type in self.system:
            return workload.ptc_type
        if workload.layer_type in self.type_rules:
            return self.type_rules[workload.layer_type]
        return self.default_subarch

    def assign(self, workloads: Iterable[LayerWorkload]) -> List[LayerAssignment]:
        """Assign every workload to a sub-architecture."""
        assignments: List[LayerAssignment] = []
        for workload in workloads:
            key = self._resolve(workload)
            assignments.append(
                LayerAssignment(workload=workload, subarch_key=key, arch=self.system.get(key))
            )
        return assignments

    def partition(self, workloads: Iterable[LayerWorkload]) -> Dict[str, List[LayerWorkload]]:
        """Group workloads by the sub-architecture they were routed to."""
        groups: Dict[str, List[LayerWorkload]] = {key: [] for key in self.system.subarchs}
        for assignment in self.assign(workloads):
            groups[assignment.subarch_key].append(assignment.workload)
        return groups
