"""Layout-aware area estimation: signal-flow-aware floorplanning of photonic circuits."""

from repro.layout.floorplan import (
    FloorplanResult,
    Placement,
    SignalFlowFloorplanner,
    naive_footprint_sum_um2,
)

__all__ = [
    "FloorplanResult",
    "Placement",
    "SignalFlowFloorplanner",
    "naive_footprint_sum_um2",
]
