"""Signal-flow-aware row-based floorplanning (Fig. 6 of the paper).

Prior photonic area estimators simply sum device footprints, which badly
underestimates real layouts: waveguide routing, device spacing and the minimum-bend
rule force devices into rows along the optical signal flow.  The floorplanner here
follows the paper's recipe:

- the placement *site width* is set to fit the longest device (plus boundary);
- devices are placed in netlist topological order (so signal flows down the rows
  and bends are minimized), packed left-to-right into rows of the site width with a
  user-defined device spacing;
- row heights are the tallest device in the row; rows stack vertically with the same
  spacing, and a node-boundary margin surrounds the block.

The resulting bounding box tracks real layout area far better than the footprint
sum, which is exactly the gap shown in Fig. 6 / Fig. 10(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.devices.library import DeviceLibrary
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class Placement:
    """Placed location (lower-left corner) and size of one device instance."""

    instance: str
    device: str
    x_um: float
    y_um: float
    width_um: float
    height_um: float

    @property
    def area_um2(self) -> float:
        return self.width_um * self.height_um


@dataclass
class FloorplanResult:
    """Bounding box and per-instance placements of a floorplanned circuit."""

    width_um: float
    height_um: float
    placements: List[Placement] = field(default_factory=list)
    rows: List[List[str]] = field(default_factory=list)

    @property
    def area_um2(self) -> float:
        return self.width_um * self.height_um

    @property
    def device_area_um2(self) -> float:
        """Total placed device footprint (excludes routing/spacing whitespace)."""
        return sum(p.area_um2 for p in self.placements)

    @property
    def whitespace_fraction(self) -> float:
        """Fraction of the bounding box not covered by device footprints."""
        if self.area_um2 == 0:
            return 0.0
        return max(0.0, 1.0 - self.device_area_um2 / self.area_um2)

    def placement_of(self, instance: str) -> Placement:
        for placement in self.placements:
            if placement.instance == instance:
                return placement
        raise KeyError(f"instance {instance!r} was not placed")


def naive_footprint_sum_um2(netlist: Netlist, library: DeviceLibrary) -> float:
    """The layout-unaware baseline: the plain sum of device footprints."""
    return sum(
        library.get(inst.device).area_um2 for inst in netlist.instances.values()
    )


class SignalFlowFloorplanner:
    """Row-based floorplanner following the optical signal flow."""

    def __init__(
        self,
        device_spacing_um: float = 5.0,
        boundary_um: float = 10.0,
        site_width_um: float = 0.0,
    ) -> None:
        if device_spacing_um < 0 or boundary_um < 0 or site_width_um < 0:
            raise ValueError("spacings must be non-negative")
        self.device_spacing_um = device_spacing_um
        self.boundary_um = boundary_um
        self.site_width_um = site_width_um  # 0 means "fit the longest device"

    # -- internals -----------------------------------------------------------------
    def _device_dims(self, netlist: Netlist, library: DeviceLibrary) -> Dict[str, Tuple[float, float]]:
        dims: Dict[str, Tuple[float, float]] = {}
        for name, inst in netlist.instances.items():
            device = library.get(inst.device)
            dims[name] = (device.width_um, device.height_um)
        return dims

    def plan(self, netlist: Netlist, library: DeviceLibrary) -> FloorplanResult:
        """Floorplan the netlist and return the bounding box and placements."""
        if len(netlist) == 0:
            return FloorplanResult(width_um=0.0, height_um=0.0)
        netlist.validate(device_names=library.names())
        dims = self._device_dims(netlist, library)
        order = netlist.topological_order()

        site_width = self.site_width_um or max(width for width, _ in dims.values())

        rows: List[List[str]] = []
        current_row: List[str] = []
        current_width = 0.0
        for name in order:
            width, _ = dims[name]
            needed = width if not current_row else current_width + self.device_spacing_um + width
            if current_row and needed > site_width:
                rows.append(current_row)
                current_row = [name]
                current_width = width
            else:
                current_row.append(name)
                current_width = needed
        if current_row:
            rows.append(current_row)

        placements: List[Placement] = []
        y_cursor = self.boundary_um
        for row in rows:
            row_height = max(dims[name][1] for name in row)
            x_cursor = self.boundary_um
            for name in row:
                width, height = dims[name]
                placements.append(
                    Placement(
                        instance=name,
                        device=netlist.device_of(name),
                        x_um=x_cursor,
                        y_um=y_cursor,
                        width_um=width,
                        height_um=height,
                    )
                )
                x_cursor += width + self.device_spacing_um
            y_cursor += row_height + self.device_spacing_um
        # Remove the trailing inter-row spacing, close with the boundary margin.
        total_height = y_cursor - self.device_spacing_um + self.boundary_um
        total_width = site_width + 2 * self.boundary_um

        return FloorplanResult(
            width_um=total_width,
            height_um=total_height,
            placements=placements,
            rows=rows,
        )

    def area_um2(self, netlist: Netlist, library: DeviceLibrary) -> float:
        """Convenience: floorplan and return only the bounding-box area."""
        return self.plan(netlist, library).area_um2
