"""Pluggable search strategies for design-space exploration.

A :class:`SearchStrategy` decides *which* design points to evaluate; the
:class:`~repro.explore.dse.DesignSpaceExplorer` decides *how* (shared evaluation
cache, serial or parallel executor, progress streaming, early-stop budget).  The
protocol is batch-oriented so parallel executors get full batches to spread over
workers while feedback-driven strategies still observe every completed evaluation:

1. the explorer calls :meth:`SearchStrategy.reset` once per exploration;
2. it then repeatedly calls :meth:`SearchStrategy.propose` with the design space
   and the history of evaluated :class:`~repro.explore.dse.DesignPoint` records
   (in evaluation order, including repeats), evaluating each returned batch;
3. an empty batch ends the exploration.

Strategies are stateful across ``propose`` calls and single-use per exploration
(``reset`` re-arms them).  All objectives are minimized.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.explore.dse import DesignPoint, DesignSpace

Overrides = Dict[str, object]


class SearchStrategy:
    """Decides which design points to evaluate next, given the history so far."""

    name = "strategy"

    def reset(self) -> None:
        """Re-arm the strategy for a fresh exploration (called by the explorer)."""

    def propose(self, space: "DesignSpace", history: Sequence["DesignPoint"]) -> List[Overrides]:
        """Next batch of candidate overrides; an empty list ends the exploration."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class GridSearch(SearchStrategy):
    """Exhaustive sweep over the full design-space grid.

    ``batch_size`` splits the grid into smaller batches so progress streaming and
    early-stop budgets take effect between them (default: the whole grid at once,
    which maximizes parallel executor utilization).
    """

    name = "grid"

    def __init__(self, batch_size: Optional[int] = None) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive when given")
        self.batch_size = batch_size
        self._grid: Optional[object] = None
        self._done = False

    def reset(self) -> None:
        self._grid = None
        self._done = False

    def propose(self, space: "DesignSpace", history: Sequence["DesignPoint"]) -> List[Overrides]:
        if self._done:
            return []
        if self._grid is None:
            self._grid = space.grid()
        if self.batch_size is None:
            self._done = True
            return list(self._grid)
        batch = list(itertools.islice(self._grid, self.batch_size))
        if not batch:
            self._done = True
        return batch


class RandomSearch(SearchStrategy):
    """Uniform random sampling of the grid (with replacement), seeded and deterministic.

    With the shared evaluation cache, duplicate samples cost one dictionary
    lookup, so sampling with replacement keeps the implementation unbiased
    without an explicit dedup pass.
    """

    name = "random"

    def __init__(
        self,
        num_samples: Optional[int] = None,
        seed: int = 0,
        batch_size: Optional[int] = None,
    ) -> None:
        if num_samples is not None and num_samples < 1:
            raise ValueError("num_samples must be positive")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive when given")
        #: sample count; None (the construct-by-name default) draws as many
        #: samples as the design space has grid points.
        self.num_samples = num_samples
        self.seed = seed
        self.batch_size = batch_size
        self._remaining = num_samples
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._remaining = self.num_samples
        self._rng = np.random.default_rng(self.seed)

    def propose(self, space: "DesignSpace", history: Sequence["DesignPoint"]) -> List[Overrides]:
        if self._remaining is None:
            self._remaining = space.size()
        if self._remaining <= 0:
            return []
        count = self._remaining if self.batch_size is None else min(
            self.batch_size, self._remaining
        )
        self._remaining -= count
        names = sorted(space.parameters)
        batch: List[Overrides] = []
        for _ in range(count):
            batch.append(
                {
                    name: space.parameters[name][
                        int(self._rng.integers(len(space.parameters[name])))
                    ]
                    for name in names
                }
            )
        return batch


class CoordinateDescent(SearchStrategy):
    """Greedy line search along one parameter at a time.

    Starting from ``start`` (default: the first candidate value of every swept
    parameter), each step proposes every candidate value along one coordinate
    with the others held at the incumbent best, adopts the best point under
    ``objective``, and moves to the next coordinate.  The search stops after a
    full round over all coordinates without improvement, or after
    ``max_rounds``.  Line batches evaluate in parallel under a parallel
    executor, and revisited points are free through the shared cache.
    """

    name = "coordinate_descent"

    def __init__(
        self,
        objective: str = "energy_uj",
        start: Optional[Overrides] = None,
        max_rounds: int = 8,
    ) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be positive")
        self.objective = objective
        self.start = dict(start) if start else None
        self.max_rounds = max_rounds
        self.reset()

    def reset(self) -> None:
        self._best_params: Optional[Overrides] = None
        self._best_value = float("inf")
        self._round = 0
        self._coord_idx = 0
        self._improved_this_round = False
        self._history_seen = 0

    def _absorb(self, history: Sequence["DesignPoint"]) -> None:
        """Fold newly observed evaluations into the incumbent best."""
        had_best = self._best_params is not None
        for point in history[self._history_seen:]:
            value = point.objective(self.objective)
            if value < self._best_value:
                self._best_value = value
                self._best_params = dict(point.parameters)
                self._improved_this_round = True
        self._history_seen = len(history)
        if not had_best:
            # Adopting the start point is not a line-move improvement; counting
            # it would force a redundant second round over all coordinates.
            self._improved_this_round = False

    def propose(self, space: "DesignSpace", history: Sequence["DesignPoint"]) -> List[Overrides]:
        names = sorted(space.parameters)
        if self._best_params is None and self._history_seen == 0 and not history:
            start = self.start or {name: space.parameters[name][0] for name in names}
            missing = set(names) - set(start)
            if missing:
                raise KeyError(f"start point missing swept parameters: {sorted(missing)}")
            self._improved_this_round = False
            return [dict(start)]
        self._absorb(history)
        if self._best_params is None:
            return []
        while True:
            if self._coord_idx >= len(names):
                self._round += 1
                if not self._improved_this_round or self._round >= self.max_rounds:
                    return []
                self._coord_idx = 0
                self._improved_this_round = False
            coord = names[self._coord_idx]
            self._coord_idx += 1
            line = [
                {**self._best_params, coord: value}
                for value in space.parameters[coord]
                if value != self._best_params.get(coord)
            ]
            if line:
                return line


#: Strategies constructible by name via ``DesignSpaceExplorer.explore(strategy=...)``.
STRATEGIES = {
    GridSearch.name: GridSearch,
    RandomSearch.name: RandomSearch,
    CoordinateDescent.name: CoordinateDescent,
}


def resolve_strategy(strategy) -> SearchStrategy:
    """Accept a strategy instance, a registered name, or None (grid search)."""
    if strategy is None:
        return GridSearch()
    if isinstance(strategy, SearchStrategy):
        return strategy
    if isinstance(strategy, str):
        try:
            return STRATEGIES[strategy]()
        except KeyError:
            known = ", ".join(sorted(STRATEGIES))
            raise KeyError(f"unknown search strategy {strategy!r}; known: {known}") from None
    raise TypeError(f"strategy must be a SearchStrategy, name or None, got {type(strategy).__name__}")
