"""Grid-based design-space exploration over PTC architecture parameters.

The paper positions SimPhony as the evaluation engine for architecture exploration
and names automated design-space exploration as a future extension; this module
provides that loop:

1. :class:`DesignSpace` declares the swept `ArchitectureConfig` fields and their
   candidate values;
2. :class:`DesignSpaceExplorer` instantiates a template architecture at every grid
   point, simulates the workload set, and records energy / latency / area /
   laser-power metrics as :class:`DesignPoint` records;
3. :func:`pareto_front` extracts the non-dominated points over any subset of the
   (minimize-all) objectives.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.arch.architecture import Architecture, ArchitectureConfig
from repro.core.config import SimulationConfig
from repro.core.simulator import Simulator
from repro.dataflow.gemm import GEMMWorkload
from repro.onn.workload import LayerWorkload

ArchBuilder = Callable[..., Architecture]
WorkloadSet = Sequence[object]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design: its configuration values and the measured objectives."""

    parameters: Mapping[str, object]
    energy_uj: float
    latency_ns: float
    area_mm2: float
    power_w: float
    laser_power_mw: float
    energy_per_mac_pj: float

    def objective(self, name: str) -> float:
        """Look up an objective by name (all objectives are minimized)."""
        try:
            return float(getattr(self, name))
        except AttributeError:
            raise KeyError(f"unknown objective {name!r}") from None

    def dominates(self, other: "DesignPoint", objectives: Sequence[str]) -> bool:
        """Pareto dominance: no worse in every objective, strictly better in one."""
        no_worse = all(self.objective(o) <= other.objective(o) for o in objectives)
        strictly_better = any(self.objective(o) < other.objective(o) for o in objectives)
        return no_worse and strictly_better


@dataclass
class DesignSpace:
    """The grid of `ArchitectureConfig` fields to sweep."""

    parameters: Dict[str, Sequence[object]] = field(default_factory=dict)

    _CONFIG_FIELDS = {f.name for f in dataclasses.fields(ArchitectureConfig)}

    def __post_init__(self) -> None:
        if not self.parameters:
            raise ValueError("design space must sweep at least one parameter")
        for name, values in self.parameters.items():
            if name not in self._CONFIG_FIELDS:
                known = ", ".join(sorted(self._CONFIG_FIELDS))
                raise KeyError(f"unknown ArchitectureConfig field {name!r}; known: {known}")
            if not list(values):
                raise ValueError(f"parameter {name!r} has no candidate values")

    def grid(self) -> Iterable[Dict[str, object]]:
        """Iterate over every combination of candidate values."""
        names = sorted(self.parameters)
        for combo in itertools.product(*(self.parameters[name] for name in names)):
            yield dict(zip(names, combo))

    def size(self) -> int:
        total = 1
        for values in self.parameters.values():
            total *= len(list(values))
        return total


@dataclass
class ExplorationResult:
    """All evaluated design points plus convenience queries."""

    points: List[DesignPoint] = field(default_factory=list)
    objectives: Sequence[str] = ("energy_uj", "latency_ns", "area_mm2")

    def __len__(self) -> int:
        return len(self.points)

    def best(self, objective: str) -> DesignPoint:
        if not self.points:
            raise ValueError("no design points evaluated")
        return min(self.points, key=lambda p: p.objective(objective))

    def pareto_front(self, objectives: Optional[Sequence[str]] = None) -> List[DesignPoint]:
        return pareto_front(self.points, objectives or self.objectives)

    def as_rows(self) -> List[Sequence[object]]:
        """Rows suitable for :func:`repro.utils.format.format_table`."""
        rows = []
        for point in self.points:
            params = ", ".join(f"{k}={v}" for k, v in sorted(point.parameters.items()))
            rows.append(
                (
                    params,
                    point.energy_uj,
                    point.latency_ns,
                    point.area_mm2,
                    point.power_w,
                    point.energy_per_mac_pj,
                )
            )
        return rows


def pareto_front(points: Sequence[DesignPoint], objectives: Sequence[str]) -> List[DesignPoint]:
    """Non-dominated subset of ``points`` under minimize-all ``objectives``."""
    if not objectives:
        raise ValueError("need at least one objective")
    front: List[DesignPoint] = []
    for candidate in points:
        if not any(other.dominates(candidate, objectives) for other in points):
            front.append(candidate)
    return front


class DesignSpaceExplorer:
    """Sweeps a template architecture over a design space for a fixed workload set."""

    def __init__(
        self,
        builder: ArchBuilder,
        workloads: WorkloadSet,
        base_config: Optional[ArchitectureConfig] = None,
        sim_config: Optional[SimulationConfig] = None,
    ) -> None:
        workloads = list(workloads)
        if not workloads:
            raise ValueError("need at least one workload to explore against")
        for workload in workloads:
            if not isinstance(workload, (GEMMWorkload, LayerWorkload)):
                raise TypeError(
                    "workloads must be GEMMWorkload or LayerWorkload instances, "
                    f"got {type(workload).__name__}"
                )
        self.builder = builder
        self.workloads = workloads
        self.base_config = base_config or ArchitectureConfig()
        self.sim_config = sim_config or SimulationConfig()

    def _config_for(self, overrides: Mapping[str, object]) -> ArchitectureConfig:
        return dataclasses.replace(self.base_config, **overrides)

    def evaluate(self, overrides: Mapping[str, object]) -> DesignPoint:
        """Simulate a single design point and return its objective record."""
        config = self._config_for(overrides)
        arch = self.builder(config=config, name=f"{config.name}_dse")
        simulator = Simulator(arch, self.sim_config)
        result = simulator.run(self.workloads)
        link = next(iter(result.link_budgets.values()))
        return DesignPoint(
            parameters=dict(overrides),
            energy_uj=result.total_energy_uj,
            latency_ns=result.total_time_ns,
            area_mm2=result.total_area_mm2,
            power_w=result.total_power_w,
            laser_power_mw=link.total_laser_electrical_power_mw,
            energy_per_mac_pj=result.energy_per_mac_pj,
        )

    def explore(self, space: DesignSpace) -> ExplorationResult:
        """Evaluate every point in the design space grid."""
        points = [self.evaluate(overrides) for overrides in space.grid()]
        return ExplorationResult(points=points)
