"""Strategy-driven design-space exploration over PTC architecture parameters.

The paper positions SimPhony as the evaluation engine for architecture exploration
and names automated design-space exploration as a future extension; this module
provides that loop on top of the staged :class:`~repro.core.engine.EvaluationEngine`:

1. :class:`DesignSpace` declares the swept `ArchitectureConfig` fields and their
   candidate values;
2. :class:`DesignSpaceExplorer` resolves a template architecture at every proposed
   point (rebinding the symbolic structure instead of rebuilding it where the
   engine's cache allows), simulates the workload set through the shared memoized
   pass pipeline, and records energy / latency / area / laser-power metrics as
   :class:`DesignPoint` records;
3. search strategies (:mod:`repro.explore.search`) decide which points to visit:
   exhaustive :class:`~repro.explore.search.GridSearch`, sampled
   :class:`~repro.explore.search.RandomSearch` or feedback-driven
   :class:`~repro.explore.search.CoordinateDescent`; *how* each strategy batch
   runs is delegated to a pluggable execution backend (:mod:`repro.exec`):
   inline, thread pool, or a GIL-free process pool -- all with deterministic
   result ordering, so every backend records identical values;
4. :func:`pareto_front` extracts the non-dominated points over any subset of the
   (minimize-all) objectives with an incremental sweep instead of the seed's
   all-pairs scan.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import pickle
import threading
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.arch.architecture import Architecture, ArchitectureConfig
from repro.core.cache import (
    CacheStats,
    EvaluationCache,
    config_fingerprint,
    digest,
    fingerprint,
    workload_fingerprint,
)
from repro.core.config import SimulationConfig
from repro.core.engine import (
    EvaluationEngine,
    builder_key,
    observe_passes,
    resolve_architecture,
)
from repro.dataflow.gemm import GEMMWorkload
from repro.exec import (
    ExecutionBackend,
    PassTiming,
    ShmHandle,
    WorkerTelemetry,
    applied_env_snapshot,
    as_object,
    cache_stats_delta,
    cache_stats_snapshot,
    merge_cache_stats,
    publish_object,
    repro_env_snapshot,
    resolve_backend,
    scoped_pass_observer,
    shm_enabled,
)
from repro.explore.search import SearchStrategy, resolve_strategy
from repro.onn.workload import LayerWorkload
from repro.variation.montecarlo import AccuracyRequest

ArchBuilder = Callable[..., Architecture]
WorkloadSet = Sequence[object]
ProgressCallback = Callable[["DesignPoint", int, int], None]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design: its configuration values and the measured objectives.

    ``accuracy`` / ``error_rate`` are populated only when the explorer carries
    an :class:`~repro.variation.montecarlo.AccuracyRequest`; they default to
    ``None`` (not NaN -- ``None`` keeps record equality exact and makes a
    missing evaluation fail loudly instead of corrupting a Pareto sweep).
    ``error_rate`` is the minimize-me complement of the mean Monte Carlo
    accuracy, so it composes with the other (minimized) objectives.
    """

    parameters: Mapping[str, object]
    energy_uj: float
    latency_ns: float
    area_mm2: float
    power_w: float
    laser_power_mw: float
    energy_per_mac_pj: float
    accuracy: Optional[float] = None
    error_rate: Optional[float] = None

    def objective(self, name: str) -> float:
        """Look up an objective by name (all objectives are minimized)."""
        try:
            value = getattr(self, name)
        except AttributeError:
            raise KeyError(f"unknown objective {name!r}") from None
        if value is None:
            raise ValueError(
                f"objective {name!r} was not evaluated for this design point; "
                "pass accuracy=AccuracyRequest(...) to the explorer to enable "
                "variation-aware accuracy objectives"
            )
        return float(value)

    def dominates(self, other: "DesignPoint", objectives: Sequence[str]) -> bool:
        """Pareto dominance: no worse in every objective, strictly better in one."""
        no_worse = all(self.objective(o) <= other.objective(o) for o in objectives)
        strictly_better = any(self.objective(o) < other.objective(o) for o in objectives)
        return no_worse and strictly_better


def validate_sweep_axes(parameters: Mapping[str, object]) -> Dict[str, tuple]:
    """Validate a mapping of swept ``ArchitectureConfig`` fields to value lists.

    Returns the normalized ``{field: tuple(values)}`` mapping.  Raises with an
    actionable message (including a did-you-mean suggestion for typos) on an
    unknown field name or a malformed axis -- a scalar instead of a sequence, a
    string, or an empty value list.
    """
    import difflib

    known_fields = {f.name for f in dataclasses.fields(ArchitectureConfig)}
    if not parameters:
        raise ValueError("design space must sweep at least one parameter")
    normalized: Dict[str, tuple] = {}
    for name, values in parameters.items():
        if name not in known_fields:
            close = difflib.get_close_matches(str(name), sorted(known_fields), n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            known = ", ".join(sorted(known_fields))
            raise KeyError(
                f"unknown ArchitectureConfig field {name!r}{hint}; known fields: {known}"
            )
        if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
            raise TypeError(
                f"sweep axis {name!r} must be a sequence of candidate values, "
                f"got {type(values).__name__}: {values!r}"
            )
        values = tuple(values)
        if not values:
            raise ValueError(f"sweep axis {name!r} has no candidate values")
        normalized[name] = values
    return normalized


@dataclass
class DesignSpace:
    """The grid of `ArchitectureConfig` fields to sweep."""

    parameters: Dict[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.parameters = dict(validate_sweep_axes(self.parameters))

    @classmethod
    def from_axes(cls, axes: Mapping[str, Sequence[object]]) -> "DesignSpace":
        """Build a design space from declarative sweep axes (e.g. a ScenarioSpec's)."""
        return cls(dict(axes))

    def grid(self) -> Iterable[Dict[str, object]]:
        """Iterate over every combination of candidate values."""
        names = sorted(self.parameters)
        for combo in itertools.product(*(self.parameters[name] for name in names)):
            yield dict(zip(names, combo))

    def size(self) -> int:
        total = 1
        for values in self.parameters.values():
            total *= len(list(values))
        return total


@dataclass
class ExplorationResult:
    """All evaluated design points plus convenience queries.

    ``points`` holds each distinct visited design once, in first-visit order;
    ``evaluations`` counts every evaluation a strategy requested (revisits
    included -- they are cache hits); ``cache_stats`` snapshots the shared
    engine cache's per-pass hit/miss counters at the end of the exploration.
    """

    points: List[DesignPoint] = field(default_factory=list)
    objectives: Sequence[str] = ("energy_uj", "latency_ns", "area_mm2")
    evaluations: int = 0
    strategy: str = "grid"
    cache_stats: Dict[str, CacheStats] = field(default_factory=dict)
    backend: str = "serial"
    #: Wall-clock spent in each engine pass during this exploration (merged
    #: across workers under the process backend), so backend speedups are
    #: attributable pass by pass.
    pass_timings: Dict[str, PassTiming] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.points)

    def best(self, objective: str) -> DesignPoint:
        if not self.points:
            raise ValueError("no design points evaluated")
        return min(self.points, key=lambda p: p.objective(objective))

    def pareto_front(self, objectives: Optional[Sequence[str]] = None) -> List[DesignPoint]:
        return pareto_front(self.points, objectives or self.objectives)

    def as_rows(self) -> List[Sequence[object]]:
        """Rows suitable for :func:`repro.utils.format.format_table`."""
        rows = []
        for point in self.points:
            params = ", ".join(f"{k}={v}" for k, v in sorted(point.parameters.items()))
            rows.append(
                (
                    params,
                    point.energy_uj,
                    point.latency_ns,
                    point.area_mm2,
                    point.power_w,
                    point.energy_per_mac_pj,
                )
            )
        return rows


def pareto_front(points: Sequence[DesignPoint], objectives: Sequence[str]) -> List[DesignPoint]:
    """Non-dominated subset of ``points`` under minimize-all ``objectives``.

    Processes candidates in lexicographic objective order and tests each only
    against the incumbent non-dominated set: any dominator of a point sorts
    strictly before it (all objectives <=, one <, so its objective tuple is
    lexicographically smaller), and by transitivity a dominated point is always
    dominated by some *maximal* point, which is already in the front when the
    candidate arrives.  That replaces the seed's all-pairs scan (every candidate
    against all n points, dominated ones included) with an
    ``O(n log n + n * |front|)`` sweep.  Output preserves input order, ties and
    duplicates exactly like the brute-force version.
    """
    if not objectives:
        raise ValueError("need at least one objective")
    tuples: List[Tuple[float, ...]] = []
    for index, point in enumerate(points):
        values = tuple(point.objective(o) for o in objectives)
        if any(math.isnan(v) for v in values):
            # A NaN compares false against everything, so it would neither sort
            # nor dominate consistently and silently corrupt the sweep's
            # dominance invariant -- reject it loudly instead.
            bad = {o: v for o, v in zip(objectives, values) if math.isnan(v)}
            params = ", ".join(f"{k}={v}" for k, v in sorted(point.parameters.items()))
            raise ValueError(
                f"design point {index} ({params or 'no swept parameters'}) has "
                f"NaN objective(s) {sorted(bad)}; NaN cannot be ordered for "
                "Pareto dominance -- fix the degenerate evaluation (e.g. a "
                "zero-denominator link budget) or drop the point before "
                "calling pareto_front"
            )
        tuples.append(values)
    keyed = sorted(range(len(points)), key=tuples.__getitem__)
    front_indices: List[int] = []
    for index in keyed:
        candidate = points[index]
        if not any(points[j].dominates(candidate, objectives) for j in front_indices):
            front_indices.append(index)
    return [points[i] for i in sorted(front_indices)]


# -- process-backend worker protocol ---------------------------------------------------


@dataclass(frozen=True)
class _DesignTaskContext:
    """Picklable, task-invariant payload for process-backend design evaluation.

    Carries specs and data (builder *reference*, config dataclasses, workload
    records) -- never live engines or caches.  ``key`` is a parent-computed
    content address the workers memoize their per-process explorer on, so one
    worker evaluates a whole chunk against a single architecture/engine setup.
    """

    key: str
    builder: ArchBuilder
    base_config: ArchitectureConfig
    sim_config: SimulationConfig
    #: Either the workload tuple itself or a :class:`ShmHandle` naming a
    #: shared-memory segment holding its pickle (zero-copy fan-out: N workers
    #: attach one segment instead of receiving N pickled operand copies).
    workloads: Union[Tuple[object, ...], ShmHandle]
    cache_enabled: bool
    cache_max_entries: Optional[int]
    accuracy: Optional[AccuracyRequest] = None
    #: Parent ``REPRO_*`` environment at encoding time, applied around every
    #: task so cluster workers on other hosts evaluate under the parent's
    #: forward/RNG/dtype modes, not their own shell's.
    env: Optional[Dict[str, str]] = None


@dataclass
class _DesignTaskOutcome:
    """Picklable per-point return: the design point plus the worker's telemetry."""

    point: "DesignPoint"
    telemetry: WorkerTelemetry


#: Per-process explorer instances, keyed by :attr:`_DesignTaskContext.key`;
#: each holds its own per-worker :class:`EvaluationCache` whose hit/miss
#: deltas travel back to the parent with every task outcome.  Lock-guarded:
#: the thread backend calls :func:`_worker_explorer` concurrently, and an
#: unguarded check-then-insert would let two threads build rival explorers
#: for one key (splitting the shared cache and dropping telemetry deltas).
_WORKER_EXPLORERS: Dict[str, "DesignSpaceExplorer"] = {}
_WORKER_EXPLORERS_LOCK = threading.Lock()


def _worker_explorer(shared: _DesignTaskContext) -> "DesignSpaceExplorer":
    with _WORKER_EXPLORERS_LOCK:
        explorer = _WORKER_EXPLORERS.get(shared.key)
        if explorer is None:
            explorer = DesignSpaceExplorer(
                shared.builder,
                list(as_object(shared.workloads)),
                base_config=shared.base_config,
                sim_config=shared.sim_config,
                cache=EvaluationCache(
                    enabled=shared.cache_enabled, max_entries=shared.cache_max_entries
                ),
                accuracy=shared.accuracy,
            )
            _WORKER_EXPLORERS[shared.key] = explorer
    return explorer


def _evaluate_design_task(
    shared: _DesignTaskContext, overrides: Mapping[str, object]
) -> _DesignTaskOutcome:
    """Evaluate one design point inside a worker process.

    Tasks within one worker run sequentially, so plain counters suffice; cache
    stats are returned as per-task deltas so the parent's merge never
    double-counts the worker cache shared across a chunk.
    """
    explorer = _worker_explorer(shared)
    cache = explorer.cache
    stats_before = cache_stats_snapshot(cache)
    telemetry = WorkerTelemetry()
    with applied_env_snapshot(shared.env), observe_passes(
        scoped_pass_observer(cache, telemetry)
    ):
        point = explorer.evaluate(dict(overrides))
    telemetry.cache_stats = cache_stats_delta(cache, stats_before)
    return _DesignTaskOutcome(point=point, telemetry=telemetry)


class DesignSpaceExplorer:
    """Sweeps a template architecture over a design space for a fixed workload set.

    All design points share one :class:`~repro.core.cache.EvaluationCache`: the
    engine's staged passes memoize on canonical input fingerprints, so a sweep
    that varies one parameter only re-runs the passes that parameter invalidates
    (``cache=False`` restores the seed's build-everything-per-point behaviour).
    The default cache retains every visited point's pass results; for very large
    sweeps bound its footprint with ``cache_max_entries`` (oldest entries are
    evicted first) or pass a pre-configured ``EvaluationCache`` instance.

    ``backend`` selects how strategy batches execute (:mod:`repro.exec`): an
    :class:`~repro.exec.ExecutionBackend` instance, a name (``serial`` /
    ``threads`` / ``processes``) or None.  ``max_workers`` > 1 without an
    explicit backend keeps the historical thread-pool behaviour.  Every backend
    collects results in task order, so point ordering -- and therefore every
    recorded value -- is identical to a serial run.  The process backend ships
    (config, overrides, workload) encodings to per-worker explorers and merges
    their pass counts and cache hit/miss telemetry back into the
    :class:`ExplorationResult`; it requires a picklable, module-level
    ``builder`` (every template builder in :mod:`repro.arch.templates`
    qualifies).
    """

    def __init__(
        self,
        builder: ArchBuilder,
        workloads: WorkloadSet,
        base_config: Optional[ArchitectureConfig] = None,
        sim_config: Optional[SimulationConfig] = None,
        cache: object = True,
        max_workers: Optional[int] = None,
        cache_max_entries: Optional[int] = None,
        backend: object = None,
        accuracy: Optional[AccuracyRequest] = None,
    ) -> None:
        workloads = list(workloads)
        if not workloads:
            raise ValueError("need at least one workload to explore against")
        for workload in workloads:
            if not isinstance(workload, (GEMMWorkload, LayerWorkload)):
                raise TypeError(
                    "workloads must be GEMMWorkload or LayerWorkload instances, "
                    f"got {type(workload).__name__}"
                )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive when given")
        self.builder = builder
        self.workloads = workloads
        self.base_config = base_config or ArchitectureConfig()
        self.sim_config = sim_config or SimulationConfig()
        if isinstance(cache, EvaluationCache):
            if cache_max_entries is not None:
                raise ValueError("pass cache_max_entries or a pre-built cache, not both")
            self.cache = cache
        else:
            self.cache = EvaluationCache(
                enabled=bool(cache), max_entries=cache_max_entries
            )
        if accuracy is not None and not isinstance(accuracy, AccuracyRequest):
            raise TypeError(
                "accuracy must be an AccuracyRequest (repro.variation), "
                f"got {type(accuracy).__name__}"
            )
        self.accuracy = accuracy
        self.max_workers = max_workers
        self._backend_spec = backend
        self._workloads_key = None
        self._engine: Optional[EvaluationEngine] = None
        self._builder_key = builder_key(builder)

    def _config_for(self, overrides: Mapping[str, object]) -> ArchitectureConfig:
        return dataclasses.replace(self.base_config, **overrides)

    def _workload_set_key(self) -> tuple:
        if self._workloads_key is None:
            self._workloads_key = tuple(workload_fingerprint(w) for w in self.workloads)
        return self._workloads_key

    # -- single-point evaluation -----------------------------------------------------
    def evaluate(self, overrides: Mapping[str, object]) -> DesignPoint:
        """Simulate a single design point and return its objective record.

        The whole point is memoized on (builder, config, workloads, sim config),
        so strategies may propose the same point repeatedly for free.
        """
        if not self.cache.enabled:
            return self._evaluate_config(self._config_for(overrides), overrides)
        # Key on (base config, overrides) directly: on a hit the ArchitectureConfig
        # is never even constructed.
        key = fingerprint(
            "design_point",
            self._builder_key,
            config_fingerprint(self.base_config),
            tuple(sorted(overrides.items())),
            self._workload_set_key(),
            config_fingerprint(self.sim_config),
            self.accuracy.fingerprint() if self.accuracy is not None else None,
        )
        return self.cache.get_or_compute(
            "design_point",
            key,
            lambda: self._evaluate_config(self._config_for(overrides), overrides),
        )

    def _evaluate_config(
        self, config: ArchitectureConfig, overrides: Mapping[str, object]
    ) -> DesignPoint:
        arch = resolve_architecture(
            self.builder, config, name=f"{config.name}_dse", cache=self.cache
        )
        engine = self._engine
        if engine is None:
            # One engine serves every design point (analyzers are stateless and
            # the cache is thread-safe); a benign race may build two, one wins.
            engine = EvaluationEngine(arch, self.sim_config, cache=self.cache)
            self._engine = engine
        result = engine.run_for(arch, self.workloads)
        link = next(iter(result.link_budgets.values()))
        accuracy: Optional[float] = None
        error_rate: Optional[float] = None
        if self.accuracy is not None:
            report = engine.run_accuracy(self.accuracy, arch=arch)
            accuracy = report.accuracy_mean
            error_rate = report.error_rate
        return DesignPoint(
            parameters=dict(overrides),
            energy_uj=result.total_energy_uj,
            latency_ns=result.total_time_ns,
            area_mm2=result.total_area_mm2,
            power_w=result.total_power_w,
            laser_power_mw=link.total_laser_electrical_power_mw,
            energy_per_mac_pj=result.energy_per_mac_pj,
            accuracy=accuracy,
            error_rate=error_rate,
        )

    # -- process-backend task encoding -------------------------------------------------
    def _process_context(self) -> _DesignTaskContext:
        """The picklable, task-invariant payload shipped to worker processes."""
        try:
            pickle.dumps(self.builder)
        except Exception as exc:
            raise ValueError(
                "the process backend requires a picklable architecture builder "
                "(a module-level function such as repro.arch.templates."
                "build_tempo, not a lambda or closure): "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        key = digest(
            "dse-exec-context",
            getattr(self.builder, "__module__", "?"),
            getattr(self.builder, "__qualname__", repr(self.builder)),
            config_fingerprint(self.base_config),
            config_fingerprint(self.sim_config),
            self._workload_set_key(),
            self.cache.enabled,
            self.cache.max_entries,
            self.accuracy.fingerprint() if self.accuracy is not None else None,
        )
        # Monte Carlo trials run inline inside each worker: a design point is
        # already one process-pool task, so a nested trial pool would only
        # oversubscribe (results are backend-invariant either way).
        accuracy = (
            dataclasses.replace(self.accuracy, backend=None, jobs=None)
            if self.accuracy is not None
            else None
        )
        workloads: Union[Tuple[object, ...], ShmHandle] = tuple(self.workloads)
        if shm_enabled():
            # Operand tensors dominate the context payload; publish them once
            # so every worker task ships a digest instead of the pickle.
            workloads = publish_object(workloads)
        return _DesignTaskContext(
            key=key,
            builder=self.builder,
            base_config=self.base_config,
            sim_config=self.sim_config,
            workloads=workloads,
            cache_enabled=self.cache.enabled,
            cache_max_entries=self.cache.max_entries,
            accuracy=accuracy,
            env=repro_env_snapshot(),
        )

    # -- exploration loop ------------------------------------------------------------
    def explore(
        self,
        space: DesignSpace,
        strategy: object = None,
        progress: Optional[ProgressCallback] = None,
        max_evaluations: Optional[int] = None,
        max_workers: Optional[int] = None,
        backend: object = None,
    ) -> ExplorationResult:
        """Evaluate the design points a strategy proposes (default: the full grid).

        ``progress(point, num_evaluated, space_size)`` streams every completed
        evaluation in deterministic order; ``max_evaluations`` is an early-stop
        budget on strategy-requested evaluations; ``max_workers`` and
        ``backend`` override the explorer-level settings for this call.
        """
        if max_evaluations is not None and max_evaluations < 1:
            raise ValueError("max_evaluations must be positive when given")
        search: SearchStrategy = resolve_strategy(strategy)
        search.reset()
        workers = max_workers if max_workers is not None else self.max_workers
        spec = backend if backend is not None else self._backend_spec
        exec_backend: ExecutionBackend = resolve_backend(spec, workers)
        use_processes = exec_backend.ships_tasks
        context = self._process_context() if use_processes else None
        space_size = space.size()

        history: List[DesignPoint] = []
        points: List[DesignPoint] = []
        seen_params: set = set()
        evaluations = 0
        telemetry = WorkerTelemetry()
        # Count only this explorer's engines (scoped by cache identity), so
        # concurrent explorers or an enclosing batch runner stay unaffected.
        observe = scoped_pass_observer(self.cache, telemetry, lock=threading.Lock())

        def record_batch(batch_points: List[DesignPoint]) -> None:
            for point in batch_points:
                history.append(point)
                params_key = tuple(sorted((k, repr(v)) for k, v in point.parameters.items()))
                if params_key not in seen_params:
                    seen_params.add(params_key)
                    points.append(point)
                if progress is not None:
                    progress(point, len(history), space_size)

        # One backend session for the whole exploration: pools (and the process
        # workers' memoized explorers/caches) persist across strategy rounds,
        # so feedback-driven strategies don't pay pool startup per batch.
        with observe_passes(observe), exec_backend.session():
            while True:
                batch = search.propose(space, history)
                if not batch:
                    break
                if max_evaluations is not None:
                    remaining = max_evaluations - evaluations
                    batch = batch[:remaining]
                    if not batch:
                        break
                if use_processes:
                    outcomes = exec_backend.map_tasks(
                        _evaluate_design_task, batch, shared=context
                    )
                    batch_points = [outcome.point for outcome in outcomes]
                    for outcome in outcomes:
                        outcome.telemetry.merge_into(telemetry)
                else:
                    batch_points = exec_backend.map_tasks(
                        lambda _shared, overrides: self.evaluate(overrides), batch
                    )
                evaluations += len(batch)
                record_batch(batch_points)
                if max_evaluations is not None and evaluations >= max_evaluations:
                    break

        own_stats = {
            stage: CacheStats(
                hits=stats.hits, misses=stats.misses, evictions=stats.evictions
            )
            for stage, stats in self.cache.stats.items()
        }
        return ExplorationResult(
            points=points,
            evaluations=evaluations,
            strategy=search.name,
            cache_stats=merge_cache_stats([own_stats, telemetry.cache_stats]),
            backend=exec_backend.name,
            pass_timings=telemetry.pass_timings,
        )
