"""Strategy-driven design-space exploration over PTC architecture parameters.

The paper positions SimPhony as the evaluation engine for architecture exploration
and names automated design-space exploration as a future extension; this module
provides that loop on top of the staged :class:`~repro.core.engine.EvaluationEngine`:

1. :class:`DesignSpace` declares the swept `ArchitectureConfig` fields and their
   candidate values;
2. :class:`DesignSpaceExplorer` resolves a template architecture at every proposed
   point (rebinding the symbolic structure instead of rebuilding it where the
   engine's cache allows), simulates the workload set through the shared memoized
   pass pipeline, and records energy / latency / area / laser-power metrics as
   :class:`DesignPoint` records;
3. search strategies (:mod:`repro.explore.search`) decide which points to visit:
   exhaustive :class:`~repro.explore.search.GridSearch`, sampled
   :class:`~repro.explore.search.RandomSearch` or feedback-driven
   :class:`~repro.explore.search.CoordinateDescent`, all sharing one evaluation
   cache and an optional ``concurrent.futures`` thread pool with deterministic
   result ordering;
4. :func:`pareto_front` extracts the non-dominated points over any subset of the
   (minimize-all) objectives with an incremental sweep instead of the seed's
   all-pairs scan.
"""

from __future__ import annotations

import dataclasses
import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.arch.architecture import Architecture, ArchitectureConfig
from repro.core.cache import (
    CacheStats,
    EvaluationCache,
    config_fingerprint,
    fingerprint,
    workload_fingerprint,
)
from repro.core.config import SimulationConfig
from repro.core.engine import EvaluationEngine, builder_key, resolve_architecture
from repro.dataflow.gemm import GEMMWorkload
from repro.explore.search import SearchStrategy, resolve_strategy
from repro.onn.workload import LayerWorkload

ArchBuilder = Callable[..., Architecture]
WorkloadSet = Sequence[object]
ProgressCallback = Callable[["DesignPoint", int, int], None]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design: its configuration values and the measured objectives."""

    parameters: Mapping[str, object]
    energy_uj: float
    latency_ns: float
    area_mm2: float
    power_w: float
    laser_power_mw: float
    energy_per_mac_pj: float

    def objective(self, name: str) -> float:
        """Look up an objective by name (all objectives are minimized)."""
        try:
            return float(getattr(self, name))
        except AttributeError:
            raise KeyError(f"unknown objective {name!r}") from None

    def dominates(self, other: "DesignPoint", objectives: Sequence[str]) -> bool:
        """Pareto dominance: no worse in every objective, strictly better in one."""
        no_worse = all(self.objective(o) <= other.objective(o) for o in objectives)
        strictly_better = any(self.objective(o) < other.objective(o) for o in objectives)
        return no_worse and strictly_better


def validate_sweep_axes(parameters: Mapping[str, object]) -> Dict[str, tuple]:
    """Validate a mapping of swept ``ArchitectureConfig`` fields to value lists.

    Returns the normalized ``{field: tuple(values)}`` mapping.  Raises with an
    actionable message (including a did-you-mean suggestion for typos) on an
    unknown field name or a malformed axis -- a scalar instead of a sequence, a
    string, or an empty value list.
    """
    import difflib

    known_fields = {f.name for f in dataclasses.fields(ArchitectureConfig)}
    if not parameters:
        raise ValueError("design space must sweep at least one parameter")
    normalized: Dict[str, tuple] = {}
    for name, values in parameters.items():
        if name not in known_fields:
            close = difflib.get_close_matches(str(name), sorted(known_fields), n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            known = ", ".join(sorted(known_fields))
            raise KeyError(
                f"unknown ArchitectureConfig field {name!r}{hint}; known fields: {known}"
            )
        if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
            raise TypeError(
                f"sweep axis {name!r} must be a sequence of candidate values, "
                f"got {type(values).__name__}: {values!r}"
            )
        values = tuple(values)
        if not values:
            raise ValueError(f"sweep axis {name!r} has no candidate values")
        normalized[name] = values
    return normalized


@dataclass
class DesignSpace:
    """The grid of `ArchitectureConfig` fields to sweep."""

    parameters: Dict[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.parameters = dict(validate_sweep_axes(self.parameters))

    @classmethod
    def from_axes(cls, axes: Mapping[str, Sequence[object]]) -> "DesignSpace":
        """Build a design space from declarative sweep axes (e.g. a ScenarioSpec's)."""
        return cls(dict(axes))

    def grid(self) -> Iterable[Dict[str, object]]:
        """Iterate over every combination of candidate values."""
        names = sorted(self.parameters)
        for combo in itertools.product(*(self.parameters[name] for name in names)):
            yield dict(zip(names, combo))

    def size(self) -> int:
        total = 1
        for values in self.parameters.values():
            total *= len(list(values))
        return total


@dataclass
class ExplorationResult:
    """All evaluated design points plus convenience queries.

    ``points`` holds each distinct visited design once, in first-visit order;
    ``evaluations`` counts every evaluation a strategy requested (revisits
    included -- they are cache hits); ``cache_stats`` snapshots the shared
    engine cache's per-pass hit/miss counters at the end of the exploration.
    """

    points: List[DesignPoint] = field(default_factory=list)
    objectives: Sequence[str] = ("energy_uj", "latency_ns", "area_mm2")
    evaluations: int = 0
    strategy: str = "grid"
    cache_stats: Dict[str, CacheStats] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.points)

    def best(self, objective: str) -> DesignPoint:
        if not self.points:
            raise ValueError("no design points evaluated")
        return min(self.points, key=lambda p: p.objective(objective))

    def pareto_front(self, objectives: Optional[Sequence[str]] = None) -> List[DesignPoint]:
        return pareto_front(self.points, objectives or self.objectives)

    def as_rows(self) -> List[Sequence[object]]:
        """Rows suitable for :func:`repro.utils.format.format_table`."""
        rows = []
        for point in self.points:
            params = ", ".join(f"{k}={v}" for k, v in sorted(point.parameters.items()))
            rows.append(
                (
                    params,
                    point.energy_uj,
                    point.latency_ns,
                    point.area_mm2,
                    point.power_w,
                    point.energy_per_mac_pj,
                )
            )
        return rows


def pareto_front(points: Sequence[DesignPoint], objectives: Sequence[str]) -> List[DesignPoint]:
    """Non-dominated subset of ``points`` under minimize-all ``objectives``.

    Processes candidates in lexicographic objective order and tests each only
    against the incumbent non-dominated set: any dominator of a point sorts
    strictly before it (all objectives <=, one <, so its objective tuple is
    lexicographically smaller), and by transitivity a dominated point is always
    dominated by some *maximal* point, which is already in the front when the
    candidate arrives.  That replaces the seed's all-pairs scan (every candidate
    against all n points, dominated ones included) with an
    ``O(n log n + n * |front|)`` sweep.  Output preserves input order, ties and
    duplicates exactly like the brute-force version.
    """
    if not objectives:
        raise ValueError("need at least one objective")
    keyed = sorted(
        range(len(points)),
        key=lambda i: tuple(points[i].objective(o) for o in objectives),
    )
    front_indices: List[int] = []
    for index in keyed:
        candidate = points[index]
        if not any(points[j].dominates(candidate, objectives) for j in front_indices):
            front_indices.append(index)
    return [points[i] for i in sorted(front_indices)]


class DesignSpaceExplorer:
    """Sweeps a template architecture over a design space for a fixed workload set.

    All design points share one :class:`~repro.core.cache.EvaluationCache`: the
    engine's staged passes memoize on canonical input fingerprints, so a sweep
    that varies one parameter only re-runs the passes that parameter invalidates
    (``cache=False`` restores the seed's build-everything-per-point behaviour).
    The default cache retains every visited point's pass results; for very large
    sweeps bound its footprint with ``cache_max_entries`` (oldest entries are
    evicted first) or pass a pre-configured ``EvaluationCache`` instance.
    ``max_workers`` > 1 evaluates each strategy batch on a
    ``concurrent.futures`` thread pool; results are collected with
    ``Executor.map``, so point ordering -- and therefore every recorded value --
    is identical to a serial run.
    """

    def __init__(
        self,
        builder: ArchBuilder,
        workloads: WorkloadSet,
        base_config: Optional[ArchitectureConfig] = None,
        sim_config: Optional[SimulationConfig] = None,
        cache: object = True,
        max_workers: Optional[int] = None,
        cache_max_entries: Optional[int] = None,
    ) -> None:
        workloads = list(workloads)
        if not workloads:
            raise ValueError("need at least one workload to explore against")
        for workload in workloads:
            if not isinstance(workload, (GEMMWorkload, LayerWorkload)):
                raise TypeError(
                    "workloads must be GEMMWorkload or LayerWorkload instances, "
                    f"got {type(workload).__name__}"
                )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive when given")
        self.builder = builder
        self.workloads = workloads
        self.base_config = base_config or ArchitectureConfig()
        self.sim_config = sim_config or SimulationConfig()
        if isinstance(cache, EvaluationCache):
            if cache_max_entries is not None:
                raise ValueError("pass cache_max_entries or a pre-built cache, not both")
            self.cache = cache
        else:
            self.cache = EvaluationCache(
                enabled=bool(cache), max_entries=cache_max_entries
            )
        self.max_workers = max_workers
        self._workloads_key = None
        self._engine: Optional[EvaluationEngine] = None
        self._builder_key = builder_key(builder)

    def _config_for(self, overrides: Mapping[str, object]) -> ArchitectureConfig:
        return dataclasses.replace(self.base_config, **overrides)

    def _workload_set_key(self) -> tuple:
        if self._workloads_key is None:
            self._workloads_key = tuple(workload_fingerprint(w) for w in self.workloads)
        return self._workloads_key

    # -- single-point evaluation -----------------------------------------------------
    def evaluate(self, overrides: Mapping[str, object]) -> DesignPoint:
        """Simulate a single design point and return its objective record.

        The whole point is memoized on (builder, config, workloads, sim config),
        so strategies may propose the same point repeatedly for free.
        """
        if not self.cache.enabled:
            return self._evaluate_config(self._config_for(overrides), overrides)
        # Key on (base config, overrides) directly: on a hit the ArchitectureConfig
        # is never even constructed.
        key = fingerprint(
            "design_point",
            self._builder_key,
            config_fingerprint(self.base_config),
            tuple(sorted(overrides.items())),
            self._workload_set_key(),
            config_fingerprint(self.sim_config),
        )
        return self.cache.get_or_compute(
            "design_point",
            key,
            lambda: self._evaluate_config(self._config_for(overrides), overrides),
        )

    def _evaluate_config(
        self, config: ArchitectureConfig, overrides: Mapping[str, object]
    ) -> DesignPoint:
        arch = resolve_architecture(
            self.builder, config, name=f"{config.name}_dse", cache=self.cache
        )
        engine = self._engine
        if engine is None:
            # One engine serves every design point (analyzers are stateless and
            # the cache is thread-safe); a benign race may build two, one wins.
            engine = EvaluationEngine(arch, self.sim_config, cache=self.cache)
            self._engine = engine
        result = engine.run_for(arch, self.workloads)
        link = next(iter(result.link_budgets.values()))
        return DesignPoint(
            parameters=dict(overrides),
            energy_uj=result.total_energy_uj,
            latency_ns=result.total_time_ns,
            area_mm2=result.total_area_mm2,
            power_w=result.total_power_w,
            laser_power_mw=link.total_laser_electrical_power_mw,
            energy_per_mac_pj=result.energy_per_mac_pj,
        )

    # -- exploration loop ------------------------------------------------------------
    def explore(
        self,
        space: DesignSpace,
        strategy: object = None,
        progress: Optional[ProgressCallback] = None,
        max_evaluations: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> ExplorationResult:
        """Evaluate the design points a strategy proposes (default: the full grid).

        ``progress(point, num_evaluated, space_size)`` streams every completed
        evaluation in deterministic order; ``max_evaluations`` is an early-stop
        budget on strategy-requested evaluations; ``max_workers`` overrides the
        explorer-level setting for this call.
        """
        if max_evaluations is not None and max_evaluations < 1:
            raise ValueError("max_evaluations must be positive when given")
        search: SearchStrategy = resolve_strategy(strategy)
        search.reset()
        workers = max_workers if max_workers is not None else self.max_workers
        space_size = space.size()

        history: List[DesignPoint] = []
        points: List[DesignPoint] = []
        seen_params: set = set()
        evaluations = 0

        def record_batch(batch_points: List[DesignPoint]) -> None:
            for point in batch_points:
                history.append(point)
                params_key = tuple(sorted((k, repr(v)) for k, v in point.parameters.items()))
                if params_key not in seen_params:
                    seen_params.add(params_key)
                    points.append(point)
                if progress is not None:
                    progress(point, len(history), space_size)

        executor = (
            ThreadPoolExecutor(max_workers=workers) if workers is not None and workers > 1
            else None
        )
        try:
            while True:
                batch = search.propose(space, history)
                if not batch:
                    break
                if max_evaluations is not None:
                    remaining = max_evaluations - evaluations
                    batch = batch[:remaining]
                    if not batch:
                        break
                if executor is not None:
                    batch_points = list(executor.map(self.evaluate, batch))
                else:
                    batch_points = [self.evaluate(overrides) for overrides in batch]
                evaluations += len(batch)
                record_batch(batch_points)
                if max_evaluations is not None and evaluations >= max_evaluations:
                    break
        finally:
            if executor is not None:
                executor.shutdown(wait=True)

        return ExplorationResult(
            points=points,
            evaluations=evaluations,
            strategy=search.name,
            cache_stats={
                stage: CacheStats(hits=stats.hits, misses=stats.misses)
                for stage, stats in self.cache.stats.items()
            },
        )
