"""Automated design-space exploration (the paper's stated future extension).

Sweeps architecture parameters (tiles, cores, core size, wavelengths, bitwidths,
clock) with pluggable search strategies (grid / random / coordinate descent),
evaluates every design point through the shared memoized
:class:`~repro.core.engine.EvaluationEngine` -- optionally in parallel with
deterministic result ordering -- and extracts the Pareto frontier over the
energy / latency / area objectives.
"""

from repro.explore.dse import (
    DesignPoint,
    DesignSpace,
    DesignSpaceExplorer,
    ExplorationResult,
    pareto_front,
)
from repro.explore.search import (
    CoordinateDescent,
    GridSearch,
    RandomSearch,
    SearchStrategy,
    STRATEGIES,
)

__all__ = [
    "CoordinateDescent",
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "GridSearch",
    "RandomSearch",
    "STRATEGIES",
    "SearchStrategy",
    "pareto_front",
]
