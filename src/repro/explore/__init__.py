"""Automated design-space exploration (the paper's stated future extension).

Sweeps architecture parameters (tiles, cores, core size, wavelengths, bitwidths,
clock) over a grid, simulates a workload set at every design point, and extracts the
Pareto frontier over the energy / latency / area objectives.
"""

from repro.explore.dse import (
    DesignPoint,
    DesignSpace,
    DesignSpaceExplorer,
    ExplorationResult,
    pareto_front,
)

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "pareto_front",
]
