"""``repro lint``: repo-aware static analysis of the reproducibility contracts.

The simulator's correctness story rests on three implicit contracts that
ordinary tests exercise only pointwise:

- **determinism** -- every random draw and every timestamp that reaches a
  computed number must be derived from an explicit seed (R001);
- **fingerprint completeness** -- a memoized engine pass must key its cache
  entry on *everything* its compute closure reads (R002);
- **env-knob pinning** -- every ``REPRO_*`` environment variable is declared
  once in :mod:`repro.core.knobs` and read only through it, so task-shipping
  backends can pin the coordinator's knobs into worker task encodings (R003).

Two supporting hygiene rules keep the execution layer honest: task-context
classes stay picklable (R004) and module-level mutable state is only mutated
under a named lock (R005).

This package walks the source tree once (:mod:`repro.analysis.walker`), runs
every registered :class:`~repro.analysis.base.Rule` over the parsed modules,
and reports :class:`~repro.analysis.findings.Finding` records -- the
``repro lint`` CLI subcommand renders them as text or JSON and gates CI.
"""

from repro.analysis.base import Rule, all_rules, register_rule, rule_ids
from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import LINT_SCHEMA, Finding
from repro.analysis.runner import lint_paths
from repro.analysis.walker import ModuleInfo, collect_modules, parse_module

__all__ = [
    "BASELINE_SCHEMA",
    "Finding",
    "LINT_SCHEMA",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "apply_baseline",
    "collect_modules",
    "lint_paths",
    "load_baseline",
    "parse_module",
    "register_rule",
    "rule_ids",
    "write_baseline",
]
