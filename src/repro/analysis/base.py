"""Rule protocol and the process-wide rule registry."""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple, Type

from repro.analysis.findings import Finding
from repro.analysis.walker import ModuleInfo


class Rule:
    """One static check.  Subclass, set ``rule_id``/``title``, override hooks.

    ``check_module`` sees one parsed module at a time; ``finalize`` runs once
    after every module has been visited, for cross-module checks (e.g. R003's
    registry cross-reference).  Both return findings; the runner handles
    suppression pragmas and ordering.
    """

    rule_id: str = ""
    title: str = ""

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        return []

    def finalize(self, modules: Sequence[ModuleInfo]) -> List[Finding]:
        return []

    def finding(
        self,
        module: ModuleInfo,
        line: int,
        message: str,
        suggestion: str = "",
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            file=module.effective_path,
            line=line,
            message=message,
            suggestion=suggestion,
        )


# Guarded: rule modules register at import time, and nothing stops an embedder
# from importing them from multiple threads -- the registry itself must honour
# the R005 contract it enforces.
_RULES_LOCK = threading.Lock()
_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator declaring a rule.  Idempotent per (id, class)."""
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} must set rule_id")
    with _RULES_LOCK:
        existing = _RULES.get(cls.rule_id)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"rule id {cls.rule_id} already registered by {existing.__name__}"
            )
        _RULES[cls.rule_id] = cls
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Fresh instances of every registered rule, ordered by rule id."""
    import repro.analysis.rules  # noqa: F401  (registers the built-in rules)

    with _RULES_LOCK:
        classes = [_RULES[rule_id] for rule_id in sorted(_RULES)]
    return tuple(cls() for cls in classes)


def rule_ids() -> Tuple[str, ...]:
    import repro.analysis.rules  # noqa: F401

    with _RULES_LOCK:
        return tuple(sorted(_RULES))
