"""One-call lint driver shared by the CLI subcommand and the test suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.base import all_rules
from repro.analysis.findings import Finding
from repro.analysis.walker import ModuleInfo, ParseFailure, collect_modules

#: Rule id carried by parse failures (not a registered rule: a file the
#: walker cannot parse defeats every rule at once).
PARSE_RULE_ID = "E001"


@dataclass
class LintReport:
    findings: List[Finding] = field(default_factory=list)
    parse_failures: List[ParseFailure] = field(default_factory=list)
    modules: List[ModuleInfo] = field(default_factory=list)
    rules_run: Tuple[str, ...] = ()

    @property
    def counts(self) -> Dict[str, int]:
        table: Dict[str, int] = {}
        for finding in self.findings:
            table[finding.rule_id] = table.get(finding.rule_id, 0) + 1
        return table


def lint_paths(
    paths: Sequence[Path],
    rule_filter: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Parse once, run every (selected) rule, return suppressed-filtered findings."""
    modules, failures = collect_modules(paths, root=root)
    wanted = set(rule_filter) if rule_filter else None
    rules = [r for r in all_rules() if wanted is None or r.rule_id in wanted]
    if wanted:
        known = {r.rule_id for r in all_rules()}
        unknown = sorted(wanted - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )

    by_path: Dict[str, ModuleInfo] = {m.effective_path: m for m in modules}
    findings: List[Finding] = []
    for rule in rules:
        for module in modules:
            findings.extend(rule.check_module(module))
        findings.extend(rule.finalize(modules))

    def visible(finding: Finding) -> bool:
        module = by_path.get(finding.file)
        return module is None or not module.suppressed(finding.rule_id, finding.line)

    findings = sorted(
        {f for f in findings if visible(f)}, key=lambda f: f.sort_key()
    )
    return LintReport(
        findings=findings,
        parse_failures=failures,
        modules=modules,
        rules_run=tuple(r.rule_id for r in rules),
    )
