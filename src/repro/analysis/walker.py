"""Parse the source tree once into rule-ready module records.

Two comment directives shape the walk:

``# repro-lint-fixture: <repo-relative-path>``
    Declares the file to be a lint *fixture*: its effective path -- the one
    path-scoped rules and findings see -- is the declared one, and directory
    walks skip the file entirely (it is test input for the linter, not repo
    code).  Passing a fixture file to the linter explicitly still lints it.

``# repro-lint: ignore[R001]`` / ``ignore[R001,R005]``
    Suppresses the listed rules on that source line.  Suppressions are
    deliberately line+rule scoped: blanket file-level opt-outs would let the
    contracts rot silently.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

_FIXTURE_RE = re.compile(r"#\s*repro-lint-fixture:\s*(\S+)")
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")

#: Directive must appear in the first N lines to mark a fixture.
_FIXTURE_HEAD_LINES = 10


@dataclass(frozen=True)
class ParseFailure:
    """A file the walker could not parse (reported as an E001 finding)."""

    path: str
    line: int
    message: str


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module plus the metadata rules need."""

    path: Path
    effective_path: str
    source: str
    tree: ast.Module
    is_fixture: bool = False
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return bool(rules) and rule_id in rules

    def repro_relative(self) -> Optional[str]:
        """The path from the ``repro`` package root (``repro/core/engine.py``),
        or ``None`` for files outside the package (tests, scripts)."""
        posix = self.effective_path
        if posix.startswith("repro/"):
            return posix
        index = posix.find("/repro/")
        return posix[index + 1 :] if index >= 0 else None

    def in_package_dirs(self, dirs: Sequence[str]) -> bool:
        relative = self.repro_relative()
        if relative is None:
            return False
        return any(relative.startswith(f"repro/{d}/") for d in dirs)


def _detect_repo_root(path: Path) -> Path:
    for candidate in [path.parent, *path.parent.parents]:
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return path.parent


def _fixture_path(source: str) -> Optional[str]:
    head = source.splitlines()[:_FIXTURE_HEAD_LINES]
    for line in head:
        match = _FIXTURE_RE.search(line)
        if match:
            return match.group(1)
    return None


def _suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    table: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if rules:
                table[lineno] = rules
    return table


def parse_module(path: Path, root: Optional[Path] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises ``SyntaxError``)."""
    path = Path(path)
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    fixture = _fixture_path(source)
    if fixture is not None:
        effective = fixture
    else:
        base = root if root is not None else _detect_repo_root(path)
        try:
            effective = path.resolve().relative_to(Path(base).resolve()).as_posix()
        except ValueError:
            effective = path.name
    return ModuleInfo(
        path=path,
        effective_path=effective,
        source=source,
        tree=tree,
        is_fixture=fixture is not None,
        suppressions=_suppressions(source),
    )


def _iter_files(target: Path) -> Tuple[List[Path], bool]:
    """(python files under target, whether target was a directory walk)."""
    if target.is_dir():
        return sorted(p for p in target.rglob("*.py")), True
    return [target], False


def collect_modules(
    paths: Sequence[Path], root: Optional[Path] = None
) -> Tuple[List[ModuleInfo], List[ParseFailure]]:
    """Parse every python file under ``paths`` once.

    Directory walks skip fixture-directive files; explicitly listed files are
    always included.  Returns the parsed modules (stable path order, no
    duplicates) and the parse failures.
    """
    modules: List[ModuleInfo] = []
    failures: List[ParseFailure] = []
    seen = set()
    for target in paths:
        files, walked = _iter_files(Path(target))
        for file_path in files:
            resolved = file_path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                module = parse_module(file_path, root=root)
            except SyntaxError as exc:
                failures.append(
                    ParseFailure(
                        path=str(file_path),
                        line=int(exc.lineno or 1),
                        message=f"syntax error: {exc.msg}",
                    )
                )
                continue
            except OSError as exc:
                failures.append(
                    ParseFailure(path=str(file_path), line=1, message=str(exc))
                )
                continue
            if walked and module.is_fixture:
                continue
            modules.append(module)
    return modules, failures


def default_lint_paths() -> List[Path]:
    """What ``repro lint`` analyses with no path arguments: the installed
    ``repro`` package tree, plus the repo's ``tests/`` tree when present."""
    import repro

    package_root = Path(repro.__file__).parent
    paths = [package_root]
    repo_root = _detect_repo_root(package_root / "__init__.py")
    tests = repo_root / "tests"
    if tests.is_dir():
        paths.append(tests)
    return paths
