"""The finding record every lint rule emits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

#: Schema tag of the ``repro lint --format json`` payload; bumped on
#: incompatible layout changes so CI consumers can assert what they parse.
LINT_SCHEMA = "repro-lint/1"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``file`` is the module's *effective* path (repo-relative posix), which for
    test fixtures may be overridden by a ``# repro-lint-fixture:`` directive so
    path-scoped rules treat the fixture as if it lived at the declared
    location.  Baseline matching deliberately ignores ``line`` -- line numbers
    drift with unrelated edits, while (rule, file, message) stays stable.
    """

    rule_id: str
    file: str
    line: int
    message: str
    suggestion: str = ""

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.file, self.line, self.rule_id, self.message)

    def baseline_key(self) -> Tuple[str, str, str]:
        return (self.rule_id, self.file, self.message)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "suggestion": self.suggestion,
        }

    def render(self) -> str:
        text = f"{self.file}:{self.line}: {self.rule_id} {self.message}"
        if self.suggestion:
            text += f" [{self.suggestion}]"
        return text
