"""Baseline files: adopt existing findings without letting new ones in.

A baseline is a JSON list of (rule, file, message) triples.  ``repro lint
--baseline FILE`` subtracts matching findings from the report; anything not in
the baseline is *new* and fails the build, and any baseline entry that no
longer matches a finding is *expired* and also fails the build -- the fix must
land together with its baseline removal, so the file ratchets monotonically
toward empty instead of accumulating dead entries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

BASELINE_SCHEMA = "repro-lint-baseline/1"

BaselineKey = Tuple[str, str, str]


def load_baseline(path: Path) -> List[BaselineKey]:
    """The baseline's (rule, file, message) keys, in file order."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BASELINE_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    entries = payload.get("entries", [])
    keys: List[BaselineKey] = []
    for entry in entries:
        try:
            keys.append((entry["rule"], entry["file"], entry["message"]))
        except (TypeError, KeyError):
            raise ValueError(f"{path}: malformed baseline entry {entry!r}") from None
    return keys


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Rewrite the baseline to exactly the given findings (sorted, deduped)."""
    keys = sorted({f.baseline_key() for f in findings})
    payload = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {"rule": rule, "file": file, "message": message}
            for rule, file, message in keys
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Sequence[BaselineKey]
) -> Tuple[List[Finding], List[BaselineKey]]:
    """(new findings, expired baseline entries).

    A baseline entry absorbs every finding with its key (duplicate findings on
    different lines of one file collapse into one entry); an entry matching
    nothing is expired.
    """
    baseline_set = set(baseline)
    new = [f for f in findings if f.baseline_key() not in baseline_set]
    matched: Dict[BaselineKey, bool] = {key: False for key in baseline_set}
    for finding in findings:
        key = finding.baseline_key()
        if key in matched:
            matched[key] = True
    expired = sorted(key for key, hit in matched.items() if not hit)
    return new, expired
