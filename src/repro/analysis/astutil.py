"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def attribute_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The chain as a tuple (``("a", "b", "c")``), else ``None``."""
    name = dotted_name(node)
    return tuple(name.split(".")) if name else None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local binding -> imported dotted path, for whole-module imports.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from os import
    environ`` yields ``{"environ": "os.environ"}``.  Only module-level import
    statements are considered -- enough to canonicalise the idioms the rules
    match on.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                target = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def resolve_dotted(name: str, aliases: Dict[str, str]) -> str:
    """Canonicalise the chain's first segment through the import aliases."""
    head, _, rest = name.partition(".")
    target = aliases.get(head)
    if target is None:
        return name
    return f"{target}.{rest}" if rest else target


def call_name(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """The resolved dotted name a call dispatches to, else ``None``."""
    name = dotted_name(node.func)
    return resolve_dotted(name, aliases) if name else None


def string_arg(node: ast.Call, index: int = 0) -> Optional[str]:
    """The call's ``index``-th positional argument when it is a string literal."""
    if len(node.args) > index:
        arg = node.args[index]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def docstring_constants(tree: ast.Module) -> set:
    """Line numbers of module/class/function docstring expressions."""
    lines = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                start = body[0].value.lineno
                end = getattr(body[0].value, "end_lineno", start) or start
                lines.update(range(start, end + 1))
    return lines


def walk_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every (possibly nested) function/lambda definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node
