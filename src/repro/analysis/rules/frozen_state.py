"""R005: module-level mutable state is only mutated under a named lock.

Scope: the whole package.  The repo's concurrency story allows module-level
caches and registries (they make memoization and worker reuse cheap), but the
thread backend means any of them can be hit concurrently -- so every mutation
site of a module-level dict/list/set/deque must be lexically inside a ``with
<lock>:`` block over a module-level ``threading.Lock``/``RLock``.

Deliberate outs: module import time is single-threaded (top-level statements
are exempt); ``threading.local()`` state is per-thread by construction;
immutable-snapshot globals (tuples swapped under a lock) are not containers
and are not tracked; and a function-local name that shadows a tracked global
is just a local.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis import astutil
from repro.analysis.base import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.walker import ModuleInfo

#: Constructors of mutable containers worth tracking at module level.
_MUTABLE_CALLS = {
    "dict",
    "list",
    "set",
    "collections.OrderedDict",
    "collections.defaultdict",
    "collections.deque",
    "collections.Counter",
}

_LOCK_CALLS = {"threading.Lock", "threading.RLock"}

#: Method calls that mutate dicts/lists/sets/deques in place.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "extendleft",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}


def _mutable_value(node: ast.AST, aliases: Dict[str, str]) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = astutil.call_name(node, aliases)
        return name in _MUTABLE_CALLS
    return False


@register_rule
class FrozenStateRule(Rule):
    rule_id = "R005"
    title = "module-level mutable state mutated without its lock"

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        if module.repro_relative() is None:
            return []
        aliases = astutil.import_aliases(module.tree)
        tracked: Set[str] = set()
        locks: Set[str] = set()
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if _mutable_value(stmt.value, aliases):
                    tracked.add(target.id)
                elif (
                    isinstance(stmt.value, ast.Call)
                    and astutil.call_name(stmt.value, aliases) in _LOCK_CALLS
                ):
                    locks.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name) and _mutable_value(
                    stmt.value, aliases
                ):
                    tracked.add(stmt.target.id)
        if not tracked:
            return []

        findings: List[Finding] = []
        for node in module.tree.body:
            self._visit_statement(module, node, tracked, locks, findings, held=False)
        return findings

    # -- traversal ---------------------------------------------------------------------

    def _visit_statement(
        self,
        module: ModuleInfo,
        node: ast.AST,
        tracked: Set[str],
        locks: Set[str],
        findings: List[Finding],
        held: bool,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visible = tracked - self._shadowed_locals(node)
            if visible:
                # A fresh function scope: import-time exemption ends here.
                for stmt in node.body:
                    self._visit_function_stmt(
                        module, stmt, visible, locks, findings, held=False
                    )
            return
        for child in ast.iter_child_nodes(node):
            self._visit_statement(module, child, tracked, locks, findings, held)

    def _visit_function_stmt(
        self,
        module: ModuleInfo,
        node: ast.AST,
        tracked: Set[str],
        locks: Set[str],
        findings: List[Finding],
        held: bool,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visible = tracked - self._shadowed_locals(node)
            for stmt in node.body:
                # Nested defs may run later, outside the enclosing with-block.
                self._visit_function_stmt(
                    module, stmt, visible, locks, findings, held=False
                )
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquires = any(
                isinstance(item.context_expr, ast.Name)
                and item.context_expr.id in locks
                for item in node.items
            )
            for stmt in node.body:
                self._visit_function_stmt(
                    module, stmt, tracked, locks, findings, held or acquires
                )
            return
        if not held:
            name = self._mutation_target(node, tracked)
            if name is not None:
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        f"module-level mutable {name} mutated outside its lock",
                        "wrap the mutation in `with <lock>:` (declare a "
                        "module-level threading.Lock)",
                    )
                )
        for child in ast.iter_child_nodes(node):
            self._visit_function_stmt(module, child, tracked, locks, findings, held)

    # -- classification ----------------------------------------------------------------

    @staticmethod
    def _shadowed_locals(fn: ast.AST) -> Set[str]:
        """Names that are plain locals of ``fn`` (assigned without ``global``)."""
        declared_global: Set[str] = set()
        assigned: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigned.add(target.id)
        args = getattr(fn, "args", None)
        params = (
            {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
            if args
            else set()
        )
        return (assigned | params) - declared_global

    @staticmethod
    def _mutation_target(node: ast.AST, tracked: Set[str]) -> Optional[str]:
        def subscript_root(target: ast.AST) -> Optional[str]:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                return target.value.id
            return None

        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                root = subscript_root(target)
                if root in tracked:
                    return root
                if isinstance(target, ast.Name) and target.id in tracked:
                    # Rebinding a tracked global (requires a `global` decl to
                    # be a mutation rather than a shadow; shadows were removed
                    # from the visible set already).
                    return target.id
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                root = subscript_root(target)
                if root in tracked:
                    return root
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            func = node.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in tracked
            ):
                return func.value.id
        return None
