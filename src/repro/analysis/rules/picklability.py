"""R004: task-context classes must stay picklable.

Scope: classes whose instances cross process boundaries through the
``ships_tasks`` backends -- identified by the repo's naming convention
(``*Context`` / ``*Task`` / ``*Outcome``).  ``ProcessBackend.check_picklable``
catches violations at run time, but only on the code path that actually
ships; this rule catches them at lint time: captured lambdas, lock/handle
attributes, and lambda/lock ``default_factory`` fields all raise
``PicklingError`` the first time a study runs on the process or cluster
backend.  Raw ``multiprocessing.shared_memory.SharedMemory`` objects are
flagged too -- a pickled segment re-attaches with no refcount, cleanup or
content addressing, so task classes must carry
:class:`repro.exec.shm.ShmHandle` instead.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis import astutil
from repro.analysis.base import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.walker import ModuleInfo

_NAME_SUFFIXES = ("Context", "Task", "Outcome")

#: Constructors whose instances cannot pickle (or must not implicitly cross
#: process boundaries: an open handle "pickling" would not share the fd).
_UNPICKLABLE_CALLS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.local",
    "open",
}

#: Raw shared-memory segments must not ride on shipped task state: pickling a
#: ``SharedMemory`` re-attaches (or fails) on the other side with no refcount,
#: no cleanup and no content addressing.  ``repro.exec.shm.ShmHandle`` is the
#: blessed carrier -- it ships the digest + segment name and resolves
#: per-host, so task classes should hold handles, never segments.
_RAW_SHM_NAMES = {
    "SharedMemory",
    "shared_memory.SharedMemory",
    "multiprocessing.shared_memory.SharedMemory",
}


def _is_task_class(node: ast.ClassDef) -> bool:
    return node.name.endswith(_NAME_SUFFIXES)


@register_rule
class PicklabilityRule(Rule):
    rule_id = "R004"
    title = "task-context class captures an unpicklable value"

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        if module.repro_relative() is None:
            return []
        aliases = astutil.import_aliases(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_task_class(node):
                findings.extend(self._check_class(module, node, aliases))
        return findings

    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef, aliases: dict
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(cls):
            if isinstance(node, ast.Lambda):
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        f"lambda captured in task class {cls.name} "
                        "(lambdas do not pickle)",
                        "use a module-level function or functools.partial",
                    )
                )
            elif isinstance(node, ast.keyword) and node.arg == "default_factory":
                factory = astutil.dotted_name(node.value)
                factory = astutil.resolve_dotted(factory, aliases) if factory else None
                if factory in _UNPICKLABLE_CALLS:
                    findings.append(
                        self.finding(
                            module,
                            node.value.lineno,
                            f"unpicklable default_factory {factory} on task "
                            f"class {cls.name}",
                            "keep locks/handles out of shipped task state",
                        )
                    )
            elif isinstance(node, ast.Call):
                name = astutil.call_name(node, aliases)
                if name in _UNPICKLABLE_CALLS and self._reaches_instance(node, cls):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"unpicklable {name}() stored on task class "
                            f"{cls.name}",
                            "keep locks/handles out of shipped task state "
                            "(recreate them worker-side)",
                        )
                    )
                elif name in _RAW_SHM_NAMES and self._reaches_instance(node, cls):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"raw SharedMemory segment stored on task class "
                            f"{cls.name}",
                            "ship a repro.exec.shm.ShmHandle instead: handles "
                            "are content-addressed, pickle-safe and resolved "
                            "per host",
                        )
                    )
            elif isinstance(node, ast.AnnAssign) and node.annotation is not None:
                shm_name = self._annotated_shm(node.annotation, aliases)
                if shm_name is not None:
                    findings.append(
                        self.finding(
                            module,
                            node.annotation.lineno,
                            f"raw SharedMemory field declared on task class "
                            f"{cls.name}",
                            "declare the field as repro.exec.shm.ShmHandle "
                            "and resolve the segment worker-side",
                        )
                    )
        return findings

    @staticmethod
    def _annotated_shm(annotation: ast.expr, aliases: dict) -> str | None:
        """The raw-SharedMemory name inside ``annotation``, if any.

        Walks the whole annotation expression so wrapped spellings
        (``Optional[SharedMemory]``, ``Tuple[SharedMemory, ...]``) are caught
        alongside bare ones.
        """
        for node in ast.walk(annotation):
            if isinstance(node, (ast.Name, ast.Attribute)):
                dotted = astutil.dotted_name(node)
                resolved = astutil.resolve_dotted(dotted, aliases) if dotted else None
                for candidate in (resolved, dotted):
                    if candidate in _RAW_SHM_NAMES:
                        return candidate
        return None

    @staticmethod
    def _reaches_instance(call: ast.Call, cls: ast.ClassDef) -> bool:
        """Whether the constructor's value lands on instances: a ``self.x = ...``
        / class-attribute assignment, or a dataclass ``default_factory``."""
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                values = [node.value] if node.value is not None else []
                if any(call in ast.walk(v) for v in values):
                    for target in targets:
                        if isinstance(target, ast.Name) or (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            return True
            elif isinstance(node, ast.keyword) and node.arg == "default_factory":
                if call in ast.walk(node.value):
                    return True
        return False
