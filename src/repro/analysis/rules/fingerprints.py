"""R002: memoized engine passes must key on everything their compute reads.

Scope: ``repro/core/engine.py`` -- the only module that calls
``cache.get_or_compute``.  For each call site the rule compares two sets:

- the **key surface**: every name/attribute chain reachable from the key
  expression, with one level of local-assignment expansion (``bits = (arch
  .config.input_bits, ...)`` contributes the ``arch.config.*`` chains when
  ``bits`` appears in the key);
- the **read surface**: every enclosing-scope variable the compute closure
  (lambda or nested ``def``) actually reads.

A read is covered when some key chain is a prefix of it (or vice versa) --
``link`` in the key covers ``link.analyzer`` in the body -- with two
deliberate outs: chains rooted at ``self``/``cls``/``engine`` are structural
(the pass object, not per-evaluation data) unless they reach through
``.config.``, and chains traversing ``.config.`` match by leaf-attribute name
(the config value, not its access path, is what the key must pin).  Anything
left uncovered is a stale-cache hazard: two evaluation contexts differing
only in that value would serve each other's memoized result.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import astutil
from repro.analysis.base import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.walker import ModuleInfo

Chain = Tuple[str, ...]

_STRUCTURAL_ROOTS = {"self", "cls", "engine"}


def _chains(node: ast.AST) -> Set[Chain]:
    """Top-level Name/Attribute chains inside ``node``.

    Strict: ``ctx.snr_reports`` contributes only ``("ctx", "snr_reports")``,
    never the bare ``("ctx",)`` -- a key that pins one attribute of an object
    must not silently cover every other attribute of it.
    """
    found: Set[Chain] = set()

    class Collector(ast.NodeVisitor):
        def visit_Attribute(self, sub: ast.Attribute) -> None:
            chain = astutil.attribute_chain(sub)
            if chain:
                found.add(chain)
            else:
                # e.g. call(...).attr: no usable root, keep walking inside.
                self.generic_visit(sub)

        def visit_Name(self, sub: ast.Name) -> None:
            found.add((sub.id,))

    Collector().visit(node)
    return found


def _assigned_names(node: ast.AST) -> Set[str]:
    """Every name bound anywhere inside ``node`` (assignments, loops,
    comprehensions, ``with`` targets, exception handlers, function params)."""
    bound: Set[str] = set()

    def bind_target(target: ast.AST) -> None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                bound.add(sub.id)

    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            for target in targets:
                bind_target(target)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            bind_target(sub.target)
        elif isinstance(sub, ast.comprehension):
            bind_target(sub.target)
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    bind_target(item.optional_vars)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            bound.add(sub.name)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(sub.name)
            args = sub.args
            for arg in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ):
                bound.add(arg.arg)
        elif isinstance(sub, ast.Lambda):
            args = sub.args
            for arg in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ):
                bound.add(arg.arg)
    return bound


def _function_params(node: ast.AST) -> Set[str]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return set()
    args = node.args
    names = {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _local_assignments(fn: ast.AST) -> Dict[str, ast.AST]:
    """name -> assigned expression for simple assignments in ``fn``'s own body
    (nested function bodies excluded -- those are the compute closures)."""
    assigns: Dict[str, ast.AST] = {}

    def visit(statements: Sequence[ast.stmt]) -> None:
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    assigns[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    assigns[stmt.target.id] = stmt.value
            for child_body in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, child_body, None)
                if nested:
                    visit(nested)

    visit(fn.body)
    return assigns


def _prefix_covered(read: Chain, keys: Set[Chain]) -> bool:
    for key in keys:
        shorter = min(len(read), len(key))
        if read[:shorter] == key[:shorter]:
            return True
    return False


@register_rule
class FingerprintRule(Rule):
    rule_id = "R002"
    title = "memoized pass key omits a value its compute reads"

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        if module.repro_relative() != "repro/core/engine.py":
            return []
        findings: List[Finding] = []
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for call in ast.walk(fn):
                if not isinstance(call, ast.Call):
                    continue
                if not (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "get_or_compute"
                ):
                    continue
                if len(call.args) < 3:
                    continue
                findings.extend(self._check_site(module, fn, call))
        return findings

    def _check_site(
        self, module: ModuleInfo, fn: ast.AST, call: ast.Call
    ) -> List[Finding]:
        key_expr, compute_arg = call.args[1], call.args[2]
        compute = self._resolve_compute(fn, compute_arg)
        if compute is None:
            return []
        local_assigns = _local_assignments(fn)
        enclosing_data = set(local_assigns) | _function_params(fn)

        # Key surface: expand bare local names through their assignments to a
        # fixpoint, so `key = (h(netlist), items)` with `netlist = arch.x`
        # credits the key with the `arch` chains it actually derives from.
        key_chains = _chains(key_expr)
        expanded: Set[str] = set()
        while True:
            pending = {
                c[0]
                for c in key_chains
                if len(c) == 1 and c[0] in local_assigns and c[0] not in expanded
            }
            if not pending:
                break
            for name in pending:
                expanded.add(name)
                key_chains |= _chains(local_assigns[name])

        body = compute.body if isinstance(compute, ast.Lambda) else compute
        compute_locals = _assigned_names(body) | _function_params(compute)

        def structural(chain: Chain) -> bool:
            return chain[0] in _STRUCTURAL_ROOTS and "config" not in chain

        def covered(chain: Chain) -> bool:
            if structural(chain) or _prefix_covered(chain, key_chains):
                return True
            if "config" in chain and self._leaf_covered(chain, key_chains):
                return True
            # A read through a derived local (`analyzer = self.analyzer`) is
            # covered when everything the local derives from is.
            assigned = local_assigns.get(chain[0])
            if assigned is not None:
                source_chains = {
                    c for c in _chains(assigned) if c[0] in enclosing_data
                }
                if source_chains and all(
                    structural(c) or _prefix_covered(c, key_chains)
                    for c in source_chains
                ):
                    return True
            return False

        findings: List[Finding] = []
        for chain in sorted(_chains(body)):
            root = chain[0]
            if root in compute_locals or root not in enclosing_data:
                continue
            if covered(chain):
                continue
            # Anchored at the call site (not the read): that is where the key
            # lives, and where a deliberate-exclusion pragma belongs.
            findings.append(
                self.finding(
                    module,
                    call.lineno,
                    f"compute for stage {self._stage_label(call)} reads "
                    f"{'.'.join(chain)} but the cache key does not include it",
                    "add the value to the fingerprint key (stale-cache hazard)",
                )
            )
        return findings

    @staticmethod
    def _leaf_covered(read: Chain, keys: Set[Chain]) -> bool:
        return any(key[-1] == read[-1] for key in keys if len(key) > 1)

    @staticmethod
    def _resolve_compute(fn: ast.AST, compute_arg: ast.AST) -> Optional[ast.AST]:
        if isinstance(compute_arg, ast.Lambda):
            return compute_arg
        if isinstance(compute_arg, ast.Name):
            for sub in ast.walk(fn):
                if (
                    isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and sub.name == compute_arg.id
                ):
                    return sub
        return None

    @staticmethod
    def _stage_label(call: ast.Call) -> str:
        stage = call.args[0]
        if isinstance(stage, ast.Constant) and isinstance(stage.value, str):
            return repr(stage.value)
        name = astutil.dotted_name(stage)
        return name or "<dynamic>"
