"""R003: every ``REPRO_*`` environment knob is declared and read via the registry.

Three checks:

- **raw reads** -- ``os.environ.get("REPRO_X")`` / ``os.environ["REPRO_X"]`` /
  ``os.getenv("REPRO_X")`` anywhere outside :mod:`repro.core.knobs` bypasses
  the registry (and therefore the task-encoding snapshot that pins knobs into
  shipped workers);
- **registry cross-check** (project-level) -- an exact ``REPRO_*`` string
  literal in package code that no ``register(...)`` call in ``knobs.py``
  declares is a registry gap: the knob would be snapshotted only by the
  prefix safety net, untyped and undocumented;
- **hand-maintained snapshots** -- ``REPRO_*`` literals inside any function
  named ``repro_env_snapshot`` mean the snapshot drifted back to a hand list
  (the PR-7 bug class) instead of deriving from the registry.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Sequence, Set

from repro.analysis import astutil
from repro.analysis.base import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.walker import ModuleInfo

KNOBS_MODULE = "repro/core/knobs.py"

#: An exact knob name: the prefix plus at least one identifier character.
_KNOB_NAME_RE = re.compile(r"REPRO_[A-Z0-9_]+\Z")

_RAW_READ_CALLS = {
    "os.environ.get",
    "os.environ.pop",
    "os.environ.setdefault",
    "os.getenv",
}


def _knob_literal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if _KNOB_NAME_RE.match(node.value):
            return node.value
    return None


def _registered_names(knobs_module: ModuleInfo) -> Set[str]:
    """Knob names declared by ``register("REPRO_X", ...)`` calls, statically."""
    names: Set[str] = set()
    for node in ast.walk(knobs_module.tree):
        if isinstance(node, ast.Call):
            callee = astutil.dotted_name(node.func) or ""
            if callee.split(".")[-1] == "register":
                name = astutil.string_arg(node)
                if name and _KNOB_NAME_RE.match(name):
                    names.add(name)
    return names


@register_rule
class EnvKnobRule(Rule):
    rule_id = "R003"
    title = "REPRO_* knob bypasses the repro.core.knobs registry"

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        if module.repro_relative() == KNOBS_MODULE:
            return []
        aliases = astutil.import_aliases(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = astutil.call_name(node, aliases)
                if name in _RAW_READ_CALLS:
                    knob = _knob_literal(node.args[0]) if node.args else None
                    if knob:
                        findings.append(
                            self.finding(
                                module,
                                node.lineno,
                                f"raw environment read of {knob} via {name}",
                                "read knobs through repro.core.knobs "
                                "(raw_value/value)",
                            )
                        )
            elif isinstance(node, ast.Subscript):
                target = astutil.dotted_name(node.value)
                if target and astutil.resolve_dotted(target, aliases) == "os.environ":
                    knob = _knob_literal(node.slice)
                    if knob:
                        findings.append(
                            self.finding(
                                module,
                                node.lineno,
                                f"raw environment access os.environ[{knob!r}]",
                                "read knobs through repro.core.knobs; pin them "
                                "with knobs.forced_env",
                            )
                        )
        findings.extend(self._hand_maintained_snapshot(module))
        return findings

    def _hand_maintained_snapshot(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "repro_env_snapshot"
            ):
                doc_lines = astutil.docstring_constants(module.tree)
                for sub in ast.walk(node):
                    knob = _knob_literal(sub)
                    if knob and sub.lineno not in doc_lines:
                        findings.append(
                            self.finding(
                                module,
                                sub.lineno,
                                f"hand-maintained knob literal {knob} inside "
                                "repro_env_snapshot",
                                "derive the snapshot from the registry "
                                "(knobs.all_knobs)",
                            )
                        )
        return findings

    def finalize(self, modules: Sequence[ModuleInfo]) -> List[Finding]:
        knobs_module = next(
            (m for m in modules if m.repro_relative() == KNOBS_MODULE), None
        )
        if knobs_module is None:
            return []
        registered = _registered_names(knobs_module)
        findings: List[Finding] = []
        for module in modules:
            relative = module.repro_relative()
            if relative is None or relative == KNOBS_MODULE:
                continue
            doc_lines = astutil.docstring_constants(module.tree)
            seen: Set[str] = set()
            for node in ast.walk(module.tree):
                knob = _knob_literal(node)
                if (
                    knob
                    and knob not in registered
                    and knob not in seen
                    and node.lineno not in doc_lines
                    and not module.suppressed(self.rule_id, node.lineno)
                ):
                    seen.add(knob)
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"unregistered knob literal {knob}",
                            "declare it with register(...) in "
                            "repro/core/knobs.py",
                        )
                    )
        return findings
