"""R001: no unseeded randomness or wall-clock reads in numerics code.

Scope: the packages whose outputs are contractually bit-reproducible
(``core``, ``variation``, ``onn``, ``dataflow``).  Seeded construction
(``np.random.default_rng(seed)``, ``SeedSequence``, ``PCG64``, ``Philox``,
``random.Random(seed)``) is fine; drawing from process-global RNG state or
reading the wall clock is not -- both make results a function of *when* and
*where* the code ran instead of the task encoding.  Monotonic timers
(``perf_counter``/``monotonic``/``process_time``) are exempt: they feed
telemetry, not numerics.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis import astutil
from repro.analysis.base import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.walker import ModuleInfo

_SCOPE_DIRS = ("core", "variation", "onn", "dataflow")

#: Global-state draws on numpy's legacy module-level RNG.
_NUMPY_GLOBAL = {
    f"numpy.random.{fn}"
    for fn in (
        "seed",
        "rand",
        "randn",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "standard_normal",
        "normal",
        "uniform",
        "randint",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "poisson",
        "binomial",
        "exponential",
        "lognormal",
        "get_state",
        "set_state",
    )
}

#: Module-level draws on the stdlib's process-global Mersenne Twister.
_STDLIB_GLOBAL = {
    f"random.{fn}"
    for fn in (
        "seed",
        "random",
        "uniform",
        "triangular",
        "randint",
        "randrange",
        "getrandbits",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
    )
}

#: Wall-clock reads (zero-arg or otherwise): results must not depend on these.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Inherently nondeterministic identifiers.
_NONDETERMINISTIC = {"uuid.uuid1", "uuid.uuid4"}

#: Constructors that are fine when given entropy, unseeded otherwise.
_NEEDS_SEED = {"numpy.random.default_rng", "random.Random"}


@register_rule
class DeterminismRule(Rule):
    rule_id = "R001"
    title = "unseeded randomness / wall-clock in numerics code"

    def check_module(self, module: ModuleInfo) -> List[Finding]:
        if not module.in_package_dirs(_SCOPE_DIRS):
            return []
        aliases = astutil.import_aliases(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = astutil.call_name(node, aliases)
            if name is None:
                continue
            if name in _NUMPY_GLOBAL or name in _STDLIB_GLOBAL:
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        f"global-RNG draw {name}() in deterministic code",
                        "derive a generator from an explicit seed "
                        "(repro.variation.sampler)",
                    )
                )
            elif name in _WALL_CLOCK:
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        f"wall-clock read {name}() in deterministic code",
                        "pass timestamps in explicitly; perf_counter/monotonic "
                        "are fine for telemetry",
                    )
                )
            elif name in _NONDETERMINISTIC:
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        f"nondeterministic identifier {name}()",
                        "derive identifiers from the task fingerprint",
                    )
                )
            elif name in _NEEDS_SEED and not node.args and not node.keywords:
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        f"unseeded {name}() (OS-entropy seeded)",
                        "pass an explicit seed or SeedSequence",
                    )
                )
        return findings
