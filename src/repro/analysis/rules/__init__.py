"""Built-in lint rules.  Importing this package registers R001-R005."""

from repro.analysis.rules import (  # noqa: F401
    determinism,
    env_knobs,
    fingerprints,
    frozen_state,
    picklability,
)
