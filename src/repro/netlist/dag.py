"""Weighted DAG lowering of a netlist and critical (longest) path extraction.

Following the paper, every directed net ``u -> v`` is weighted with the insertion
loss of its *incident* (destination) vertex ``v``, optionally multiplied by a
per-instance loss multiplicity (e.g. the broadcast path through ``CW - 1`` crossings
stores ``(CW - 1) x`` the crossing loss on that edge).  The total insertion loss of a
path from a light source to a detector is then the source device's own loss plus the
sum of edge weights along the path, and the link-budget critical path is the longest
such weighted path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import networkx as nx

from repro.devices.library import DeviceLibrary
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class CriticalPath:
    """The highest-insertion-loss source-to-sink path of a circuit DAG."""

    instances: Tuple[str, ...]
    insertion_loss_db: float

    def __len__(self) -> int:
        return len(self.instances)


class CircuitDAG:
    """Weighted DAG view of a :class:`~repro.netlist.netlist.Netlist`.

    ``loss_multipliers`` maps instance name -> multiplier applied to that instance's
    insertion loss on every edge pointing at it; this is how parametric broadcast /
    sharing losses enter the link budget without materializing the flattened circuit.
    """

    def __init__(
        self,
        netlist: Netlist,
        library: DeviceLibrary,
        loss_multipliers: Optional[Mapping[str, float]] = None,
    ) -> None:
        netlist.validate(device_names=library.names())
        self.netlist = netlist
        self.library = library
        self.loss_multipliers: Dict[str, float] = dict(loss_multipliers or {})
        for name, multiplier in self.loss_multipliers.items():
            if name not in netlist:
                raise KeyError(f"loss multiplier given for unknown instance {name!r}")
            if multiplier < 0:
                raise ValueError(
                    f"loss multiplier for {name!r} must be non-negative, got {multiplier}"
                )
        self.graph = self._build_graph()

    # -- graph construction --------------------------------------------------------
    def _instance_loss_db(self, name: str) -> float:
        device = self.library.get(self.netlist.device_of(name))
        multiplier = self.loss_multipliers.get(name, 1.0)
        return device.insertion_loss_db * multiplier

    def _build_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        for name, inst in self.netlist.instances.items():
            graph.add_node(name, device=inst.device, role=inst.role)
        for src, dst in self.netlist.edge_list():
            # The tiny epsilon breaks ties in favour of longer paths so the critical
            # path always extends through lossless devices down to the detector.
            graph.add_edge(src, dst, loss_db=self._instance_loss_db(dst) + 1e-9)
        return graph

    # -- analyses -------------------------------------------------------------------
    def path_insertion_loss_db(self, path: List[str]) -> float:
        """Total insertion loss along an explicit instance path."""
        if not path:
            return 0.0
        total = self._instance_loss_db(path[0])
        for src, dst in zip(path, path[1:]):
            if not self.graph.has_edge(src, dst):
                raise ValueError(f"path step {src!r} -> {dst!r} is not a net")
            total += self.graph.edges[src, dst]["loss_db"]
        return total

    def critical_path(self) -> CriticalPath:
        """Longest (highest-loss) source-to-sink path.

        Uses the weighted longest-path algorithm on the DAG; the source instance's
        own insertion loss is added on top of the edge weights.
        """
        if self.graph.number_of_nodes() == 0:
            return CriticalPath(instances=(), insertion_loss_db=0.0)
        if self.graph.number_of_edges() == 0:
            # Degenerate single-instance circuits: the worst device alone.
            worst = max(self.graph.nodes, key=self._instance_loss_db)
            return CriticalPath(
                instances=(worst,), insertion_loss_db=self._instance_loss_db(worst)
            )
        path = nx.dag_longest_path(self.graph, weight="loss_db")
        loss = nx.dag_longest_path_length(self.graph, weight="loss_db")
        loss += self._instance_loss_db(path[0])
        return CriticalPath(instances=tuple(path), insertion_loss_db=float(loss))

    def total_insertion_loss_db(self) -> float:
        """Convenience accessor for the critical-path loss."""
        return self.critical_path().insertion_loss_db

    def level_of(self, name: str) -> int:
        """Topological (ASAP) level of an instance; level 0 holds the sources."""
        levels = self.netlist.topological_levels()
        for idx, group in enumerate(levels):
            if name in group:
                return idx
        raise KeyError(f"unknown instance {name!r}")

    def longest_path_from(self, source: str) -> CriticalPath:
        """Longest-loss path starting at a specific source instance."""
        if source not in self.netlist:
            raise KeyError(f"unknown instance {source!r}")
        best_path: List[str] = [source]
        best_loss = self._instance_loss_db(source)
        for sink in self.netlist.sinks():
            if sink == source:
                continue
            for path in nx.all_simple_paths(self.graph, source, sink):
                loss = self.path_insertion_loss_db(path)
                if loss > best_loss:
                    best_loss = loss
                    best_path = list(path)
        return CriticalPath(instances=tuple(best_path), insertion_loss_db=best_loss)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitDAG(netlist={self.netlist.name!r}, "
            f"nodes={self.graph.number_of_nodes()}, edges={self.graph.number_of_edges()})"
        )
