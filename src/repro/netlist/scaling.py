"""Symbolic scaling rules for parametric architecture construction.

The paper expresses hardware sharing as "customizable symbolic expressions in circuit
description files", e.g. the TeMPO input encoders are scaled by ``R*H`` while the
dot-product nodes are scaled by ``R*C*H*W`` and an MZI mesh's unitary nodes by
``R*C*H*(H-1)/2``.  :class:`ScalingRule` evaluates such expressions against the
architecture parameters (``R``, ``C``, ``H``, ``W``, ``LAMBDA`` for wavelengths, ...)
using a restricted arithmetic evaluator -- no arbitrary code execution.
"""

from __future__ import annotations

import ast
import math
import operator
import threading
from typing import Mapping, Union

#: Shared parse-tree memo: scaling expressions come from a small fixed template
#: vocabulary, so repeated architecture builds (every design point of a sweep
#: with caching off) reuse one parse.  The lock matters beyond speed:
#: ``ast.parse`` is not thread-safe on CPython <= 3.11 (the AST constructor's
#: recursion-depth counter is per-interpreter, not per-thread), so concurrent
#: template builds on a thread backend intermittently died with ``SystemError:
#: AST constructor recursion depth mismatch`` until parsing was serialized.
_PARSE_LOCK = threading.Lock()
_PARSE_MEMO: dict = {}
_PARSE_MEMO_MAX = 4096


def _parse_expression(expression: str) -> ast.Expression:
    tree = _PARSE_MEMO.get(expression)
    if tree is None:
        with _PARSE_LOCK:
            tree = _PARSE_MEMO.get(expression)
            if tree is None:
                if len(_PARSE_MEMO) >= _PARSE_MEMO_MAX:  # bound pathological use
                    _PARSE_MEMO.clear()
                tree = ast.parse(expression, mode="eval")
                _PARSE_MEMO[expression] = tree
    return tree

_ALLOWED_BINOPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Pow: operator.pow,
    ast.Mod: operator.mod,
}

_ALLOWED_UNARYOPS = {
    ast.UAdd: operator.pos,
    ast.USub: operator.neg,
}

_ALLOWED_FUNCS = {
    "min": min,
    "max": max,
    "ceil": math.ceil,
    "floor": math.floor,
    "abs": abs,
    "log2": math.log2,
    "sqrt": math.sqrt,
}


class ScalingRule:
    """A symbolic expression over architecture parameters evaluating to a count.

    Examples::

        ScalingRule("R*C*H*W")          # one per dot-product node
        ScalingRule("R*H*LAMBDA")       # input encoders, per wavelength
        ScalingRule("R*C*H*(H-1)/2")    # Clements mesh unitary MZIs
        ScalingRule(4)                  # a fixed count
    """

    def __init__(self, expression: Union[str, int, float]) -> None:
        if isinstance(expression, (int, float)):
            self.expression = str(expression)
        elif isinstance(expression, str):
            if not expression.strip():
                raise ValueError("scaling expression must not be empty")
            self.expression = expression
        else:
            raise TypeError(
                f"expression must be str or number, got {type(expression).__name__}"
            )
        # Parse eagerly so malformed expressions fail at definition time.  The
        # returned tree is shared and treated as read-only (validation and
        # evaluation only walk it).
        self._tree = _parse_expression(self.expression)
        self._validate(self._tree.body)
        variables: set = set()
        self._collect_variables(self._tree.body, variables)
        self._variables = tuple(sorted(variables))
        # Memo of evaluate() results keyed by the referenced parameter values --
        # rules are evaluated with the same handful of parameter combinations
        # over and over during analysis sweeps.
        self._eval_memo: dict = {}

    # -- validation ------------------------------------------------------------
    def _validate(self, node: ast.AST) -> None:
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, (int, float)):
                raise ValueError(
                    f"only numeric constants allowed, got {node.value!r}"
                )
        elif isinstance(node, ast.Name):
            return
        elif isinstance(node, ast.BinOp):
            if type(node.op) not in _ALLOWED_BINOPS:
                raise ValueError(
                    f"operator {type(node.op).__name__} not allowed in scaling rule"
                )
            self._validate(node.left)
            self._validate(node.right)
        elif isinstance(node, ast.UnaryOp):
            if type(node.op) not in _ALLOWED_UNARYOPS:
                raise ValueError(
                    f"operator {type(node.op).__name__} not allowed in scaling rule"
                )
            self._validate(node.operand)
        elif isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name) or node.func.id not in _ALLOWED_FUNCS:
                raise ValueError(
                    "only min/max/ceil/floor/abs/log2/sqrt calls allowed in scaling rules"
                )
            if node.keywords:
                raise ValueError("keyword arguments not allowed in scaling rules")
            for arg in node.args:
                self._validate(arg)
        else:
            raise ValueError(
                f"unsupported syntax {type(node).__name__!r} in scaling rule "
                f"{self.expression!r}"
            )

    def _collect_variables(self, node: ast.AST, out: set) -> None:
        """Names referenced as parameters (call targets like ``max`` excluded)."""
        if isinstance(node, ast.Name):
            out.add(node.id)
        elif isinstance(node, ast.BinOp):
            self._collect_variables(node.left, out)
            self._collect_variables(node.right, out)
        elif isinstance(node, ast.UnaryOp):
            self._collect_variables(node.operand, out)
        elif isinstance(node, ast.Call):
            for arg in node.args:
                self._collect_variables(arg, out)

    @property
    def variables(self) -> tuple:
        """Sorted parameter names this expression depends on."""
        return self._variables

    # -- evaluation ------------------------------------------------------------
    def _eval(self, node: ast.AST, params: Mapping[str, float]) -> float:
        if isinstance(node, ast.Constant):
            return float(node.value)
        if isinstance(node, ast.Name):
            try:
                return float(params[node.id])
            except KeyError:
                known = ", ".join(sorted(params))
                raise KeyError(
                    f"scaling rule {self.expression!r} references unknown parameter "
                    f"{node.id!r}; available: {known}"
                ) from None
        if isinstance(node, ast.BinOp):
            return _ALLOWED_BINOPS[type(node.op)](
                self._eval(node.left, params), self._eval(node.right, params)
            )
        if isinstance(node, ast.UnaryOp):
            return _ALLOWED_UNARYOPS[type(node.op)](self._eval(node.operand, params))
        if isinstance(node, ast.Call):
            func = _ALLOWED_FUNCS[node.func.id]  # type: ignore[union-attr]
            return float(func(*(self._eval(arg, params) for arg in node.args)))
        raise AssertionError(f"unvalidated node {node!r}")  # pragma: no cover

    def evaluate(self, params: Mapping[str, float]) -> float:
        """Evaluate the expression with the given architecture parameters.

        Results are memoized per referenced-parameter values: analyses evaluate
        the same rule with the same handful of parameter combinations many times
        per run (and design-space sweeps many times per sweep).
        """
        try:
            key = tuple(params[name] for name in self._variables)
        except KeyError:
            # Missing parameter: fall through for the detailed _eval error.
            return self._eval(self._tree.body, params)
        cached = self._eval_memo.get(key)
        if cached is None:
            if len(self._eval_memo) >= 4096:  # bound pathological sweeps
                self._eval_memo.clear()
            cached = self._eval_memo[key] = self._eval(self._tree.body, params)
        return cached

    def count(self, params: Mapping[str, float]) -> int:
        """Evaluate and round up to an integer instance count (never negative)."""
        value = self.evaluate(params)
        if value < 0:
            raise ValueError(
                f"scaling rule {self.expression!r} evaluated to negative count {value}"
            )
        return int(math.ceil(value - 1e-9))

    # -- conveniences -----------------------------------------------------------
    def __mul__(self, other: Union["ScalingRule", str, int, float]) -> "ScalingRule":
        other_expr = other.expression if isinstance(other, ScalingRule) else str(other)
        return ScalingRule(f"({self.expression})*({other_expr})")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ScalingRule) and self.expression == other.expression

    def __hash__(self) -> int:
        return hash(self.expression)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScalingRule({self.expression!r})"


ONE = ScalingRule(1)
