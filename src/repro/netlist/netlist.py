"""Directed 2-pin netlist for photonic circuit topologies.

Unlike electrical netlists with undirected multi-pin nets, photonic circuits need
*directed* 2-pin nets that capture the direction of optical signal flow from the
laser toward the photodetectors.  A :class:`Netlist` holds named :class:`Instance`
records (each referring to a device-library entry by name) and the directed nets
between them; it validates acyclicity and provides topological ordering, which both
the link-budget analyzer and the floorplanner rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Instance:
    """A device instance in a circuit netlist.

    ``device`` names an entry in the :class:`~repro.devices.library.DeviceLibrary`;
    ``role`` is a free-form tag (``"input_encoder"``, ``"detector"``, ...) used by
    analyzers to decide activity and data dependence.
    """

    name: str
    device: str
    role: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("instance name must not be empty")
        if not self.device:
            raise ValueError(f"instance {self.name!r} must reference a device")


@dataclass(frozen=True)
class Net:
    """A directed 2-pin net: optical (or electrical) signal flows ``src`` -> ``dst``."""

    src: str
    dst: str

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"net may not connect instance {self.src!r} to itself")


@dataclass
class Netlist:
    """A named collection of instances and directed 2-pin nets."""

    name: str = "netlist"
    _instances: Dict[str, Instance] = field(default_factory=dict)
    _nets: List[Net] = field(default_factory=list)

    # -- construction -----------------------------------------------------------
    def add_instance(self, name: str, device: str, role: str = "") -> Instance:
        """Add a device instance; raises if the name is already used."""
        if name in self._instances:
            raise ValueError(f"instance {name!r} already present in netlist {self.name!r}")
        inst = Instance(name=name, device=device, role=role)
        self._instances[name] = inst
        return inst

    def connect(self, src: str, dst: str) -> Net:
        """Add a directed 2-pin net from ``src`` to ``dst`` (both must exist)."""
        for endpoint in (src, dst):
            if endpoint not in self._instances:
                raise KeyError(
                    f"net endpoint {endpoint!r} is not an instance of netlist {self.name!r}"
                )
        net = Net(src=src, dst=dst)
        self._nets.append(net)
        return net

    def chain(self, *names: str) -> None:
        """Convenience: connect the given instances in a linear chain."""
        if len(names) < 2:
            raise ValueError("chain needs at least two instance names")
        for src, dst in zip(names, names[1:]):
            self.connect(src, dst)

    # -- access -----------------------------------------------------------------
    @property
    def instances(self) -> Dict[str, Instance]:
        return dict(self._instances)

    @property
    def nets(self) -> List[Net]:
        return list(self._nets)

    def instance(self, name: str) -> Instance:
        try:
            return self._instances[name]
        except KeyError:
            raise KeyError(
                f"unknown instance {name!r} in netlist {self.name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._instances

    def __len__(self) -> int:
        return len(self._instances)

    def device_of(self, name: str) -> str:
        return self.instance(name).device

    # -- graph structure ----------------------------------------------------------
    def successors(self, name: str) -> List[str]:
        return [net.dst for net in self._nets if net.src == name]

    def predecessors(self, name: str) -> List[str]:
        return [net.src for net in self._nets if net.dst == name]

    def sources(self) -> List[str]:
        """Instances with no incoming net (light sources / inputs)."""
        targets = {net.dst for net in self._nets}
        return [name for name in self._instances if name not in targets]

    def sinks(self) -> List[str]:
        """Instances with no outgoing net (detectors / outputs)."""
        origins = {net.src for net in self._nets}
        return [name for name in self._instances if name not in origins]

    def topological_order(self) -> List[str]:
        """Kahn topological sort; raises :class:`ValueError` if the netlist has a cycle.

        The relative order of instances added earlier is preserved among ties so the
        floorplanner output is deterministic.
        """
        in_degree = {name: 0 for name in self._instances}
        for net in self._nets:
            in_degree[net.dst] += 1
        insertion_rank = {name: i for i, name in enumerate(self._instances)}
        ready = sorted(
            (name for name, deg in in_degree.items() if deg == 0),
            key=insertion_rank.__getitem__,
        )
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            newly_ready = []
            for net in self._nets:
                if net.src == current:
                    in_degree[net.dst] -= 1
                    if in_degree[net.dst] == 0:
                        newly_ready.append(net.dst)
            ready.extend(sorted(set(newly_ready), key=insertion_rank.__getitem__))
            ready.sort(key=insertion_rank.__getitem__)
        if len(order) != len(self._instances):
            unplaced = sorted(set(self._instances) - set(order))
            raise ValueError(
                f"netlist {self.name!r} contains a cycle involving {unplaced}"
            )
        return order

    def topological_levels(self) -> List[List[str]]:
        """Group instances by longest distance from any source (ASAP levels).

        Level 0 holds the sources; an instance's level is one more than the maximum
        level of its predecessors.  Used by the signal-flow-aware floorplanner.
        """
        order = self.topological_order()
        level: Dict[str, int] = {}
        for name in order:
            preds = self.predecessors(name)
            level[name] = 0 if not preds else max(level[p] for p in preds) + 1
        num_levels = max(level.values(), default=-1) + 1
        groups: List[List[str]] = [[] for _ in range(num_levels)]
        for name in order:
            groups[level[name]].append(name)
        return groups

    def validate(self, device_names: Optional[Iterable[str]] = None) -> None:
        """Check structural invariants; optionally check devices exist in a library."""
        self.topological_order()  # raises on cycles
        if device_names is not None:
            known: Set[str] = set(device_names)
            for inst in self._instances.values():
                if inst.device not in known:
                    raise KeyError(
                        f"instance {inst.name!r} references unknown device {inst.device!r}"
                    )

    # -- composition -------------------------------------------------------------
    def merge(self, other: "Netlist", prefix: str) -> Dict[str, str]:
        """Copy ``other``'s instances/nets into this netlist under ``prefix``.

        Returns the mapping from the other netlist's instance names to the new
        prefixed names, so callers can stitch inter-block connections afterwards.
        This is the mechanism for hierarchical node -> core -> tile construction.
        """
        if not prefix:
            raise ValueError("prefix must not be empty")
        mapping: Dict[str, str] = {}
        for name, inst in other._instances.items():
            new_name = f"{prefix}.{name}"
            self.add_instance(new_name, inst.device, role=inst.role)
            mapping[name] = new_name
        for net in other._nets:
            self.connect(mapping[net.src], mapping[net.dst])
        return mapping

    def edge_list(self) -> List[Tuple[str, str]]:
        return [(net.src, net.dst) for net in self._nets]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist(name={self.name!r}, instances={len(self._instances)}, "
            f"nets={len(self._nets)})"
        )


def linear_netlist(name: str, devices: Sequence[Tuple[str, str]]) -> Netlist:
    """Build a simple linear chain netlist from ``[(instance_name, device), ...]``."""
    netlist = Netlist(name=name)
    for inst_name, device in devices:
        netlist.add_instance(inst_name, device)
    names = [inst_name for inst_name, _ in devices]
    if len(names) >= 2:
        netlist.chain(*names)
    return netlist
