"""Circuit-level representation: directed 2-pin netlists, weighted DAGs, scaling rules.

Photonic tensor cores are described as a *node* netlist (the minimal dot-product
building block) whose instances are replicated across the architecture according to
symbolic :class:`~repro.netlist.scaling.ScalingRule` expressions.  The netlist is
lowered to a weighted directed acyclic graph whose edge weights carry insertion
loss, which drives both link-budget analysis (longest path) and the signal-flow-aware
floorplanner (topological levels).
"""

from repro.netlist.netlist import Instance, Net, Netlist
from repro.netlist.dag import CircuitDAG, CriticalPath
from repro.netlist.scaling import ScalingRule

__all__ = [
    "Instance",
    "Net",
    "Netlist",
    "CircuitDAG",
    "CriticalPath",
    "ScalingRule",
]
