"""Butterfly-mesh subspace photonic tensor core.

A log-depth butterfly of 2x2 coupler/phase-shifter cells implements a structured
(subspace) linear transform with ``(H/2) * log2(H)`` cells per core instead of the
``O(H^2)`` of a full mesh.  The transform is static (phases hold the weights) and
complex-valued, resolved to full-range real outputs with a positive/negative
differential measurement, hence one forward pass (Table I, "Butterfly Mesh").
"""

from __future__ import annotations

from typing import Optional

from repro.arch.architecture import Architecture, ArchitectureConfig
from repro.arch.dataflow_spec import Dataflow, DataflowSpec
from repro.arch.instance import Activity, ArchInstance, Role
from repro.arch.taxonomy import TABLE_I
from repro.devices.library import DeviceLibrary
from repro.netlist.netlist import Netlist


def _butterfly_link_netlist() -> Netlist:
    link = Netlist(name="butterfly_link")
    link.add_instance("laser", "laser", role="source")
    link.add_instance("coupler", "coupler", role="coupling")
    link.add_instance("mzm_in", "mzm", role="input_encoder")
    link.add_instance("butterfly_cell", "mzi", role="weight_encoder")
    link.add_instance("crossing", "crossing", role="shuffle")
    link.add_instance("pd", "pd", role="detector")
    link.chain("laser", "coupler", "mzm_in", "butterfly_cell", "crossing", "pd")
    return link


def build_butterfly_mesh(
    config: Optional[ArchitectureConfig] = None,
    library: Optional[DeviceLibrary] = None,
    name: str = "butterfly",
) -> Architecture:
    """Build a butterfly-mesh subspace PTC."""
    config = config or ArchitectureConfig(
        num_tiles=1,
        cores_per_tile=2,
        core_height=8,
        core_width=8,
        num_wavelengths=1,
        frequency_ghz=5.0,
        name=name,
    )
    library = library or DeviceLibrary.default(
        adc_bits=config.output_bits,
        dac_bits=config.input_bits,
        frequency_ghz=config.frequency_ghz,
        num_wavelengths=config.num_wavelengths,
    )

    instances = [
        ArchInstance("laser", "laser", Role.LIGHT_SOURCE, count="LAMBDA",
                     activity=Activity.STATIC, count_in_area=False),
        ArchInstance("coupler", "coupler", Role.COUPLING, count="LAMBDA",
                     activity=Activity.PASSIVE),
        ArchInstance("dac_in", "dac", Role.INPUT_ENCODER, count="R*C*H*LAMBDA",
                     activity=Activity.PER_CYCLE, operand="A"),
        ArchInstance("mzm_in", "mzm", Role.INPUT_ENCODER, count="R*C*H*LAMBDA",
                     activity=Activity.PER_CYCLE, operand="A"),
        # (H/2) * log2(H) butterfly cells per core; the signal traverses log2(H) stages.
        ArchInstance(
            "butterfly_cell", "mzi", Role.WEIGHT_ENCODER,
            count="R*C*(H/2)*ceil(log2(max(H, 2)))",
            activity=Activity.STATIC, data_dependent=True, operand="B",
            loss_multiplier="ceil(log2(max(H, 2)))",
        ),
        ArchInstance("crossing", "crossing", Role.DISTRIBUTION,
                     count="R*C*H*ceil(log2(max(H, 2)))",
                     activity=Activity.PASSIVE,
                     loss_multiplier="ceil(log2(max(H, 2)))"),
        ArchInstance("pd", "pd", Role.DETECTION, count="R*C*H",
                     activity=Activity.STATIC, count_in_area=False),
        ArchInstance("tia", "tia", Role.READOUT, count="R*C*H",
                     activity=Activity.STATIC),
        ArchInstance("adc", "adc", Role.READOUT, count="R*C*H",
                     activity=Activity.PER_CYCLE, duty="1/max(T_ACC, 1)"),
        ArchInstance("digital_control", "digital_control", Role.CONTROL, count="R",
                     activity=Activity.STATIC, count_in_area=False),
    ]

    dataflow = DataflowSpec(
        stationary=Dataflow.WEIGHT_STATIONARY,
        m_parallel="H",
        n_parallel="R*C*LAMBDA",
        k_parallel="H",
        temporal_accumulation=config.temporal_accumulation,
        weight_reuse_requires_reconfig=True,
    )

    return Architecture(
        name=name,
        config=config,
        library=library,
        instances=instances,
        link_netlist=_butterfly_link_netlist(),
        node_netlist=None,
        taxonomy=TABLE_I["butterfly_mesh"],
        dataflow=dataflow,
    )
