"""TeMPO: dynamic array-style, time-multiplexed dual-operand photonic tensor core.

Case study 1 of the paper (Fig. 3a).  The architecture has ``R`` tiles of ``C``
cores, each core an ``H x W`` array of dot-product nodes:

- operand A (activations) is encoded by a DAC + compact slow-light MZM per core row
  and *broadcast* across the C cores and W columns of a tile, so the A encoders
  scale as ``R*H*LAMBDA``;
- operand B is encoded per core column (``R*C*W*LAMBDA``);
- every node multiplies its A and B inputs per wavelength and detects the product on
  a balanced photodetector pair; photocurrents are summed across the C cores of a
  tile (analog parallel reduction), integrated over time (analog sequential
  reduction) and digitized once per integration window, so integrators / TIAs / ADCs
  scale as ``R*H*W`` with an ADC duty cycle of ``1/T_ACC``.

The node netlist (two input taps, a 2x2 combiner, a balanced PD pair) is the Fig. 6
layout example; its floorplanned area is what separates layout-aware from
layout-unaware area in Fig. 10(a).
"""

from __future__ import annotations

from typing import Optional

from repro.arch.architecture import Architecture, ArchitectureConfig
from repro.arch.dataflow_spec import Dataflow, DataflowSpec
from repro.arch.instance import Activity, ArchInstance, Role
from repro.arch.taxonomy import TABLE_I
from repro.devices.base import Device, DeviceCategory, DeviceSpec
from repro.devices.library import DeviceLibrary
from repro.devices.photonic import MachZehnderModulator
from repro.netlist.netlist import Netlist


def _tempo_library(config: ArchitectureConfig) -> DeviceLibrary:
    """Default SimPhony-DevLib specialised with TeMPO's compact slow-light devices."""
    library = DeviceLibrary.default(
        adc_bits=config.output_bits,
        dac_bits=config.input_bits,
        frequency_ghz=config.frequency_ghz,
        num_wavelengths=config.num_wavelengths,
    )
    # Compact slow-light electro-optic MZM: short (53 um) but slightly lossier.
    library.register(
        MachZehnderModulator(
            bandwidth_ghz=max(config.frequency_ghz, 10.0),
            insertion_loss_db=1.5,
            extinction_ratio_db=8.0,
            drive_energy_fj_per_symbol=50.0,
            static_power_mw=0.5,
            width_um=53.0,
            height_um=10.0,
            name="mzm",
        )
    )
    # Per-node static bias phase shifter (calibration), low holding power.
    library.register(
        Device(
            DeviceSpec(
                name="ps_bias",
                category=DeviceCategory.PHOTONIC,
                width_um=20.0,
                height_um=10.0,
                insertion_loss_db=0.1,
                static_power_mw=0.5,
                description="node bias phase shifter (calibration)",
            )
        )
    )
    return library


def tempo_node_netlist() -> Netlist:
    """The TeMPO dot-product node: two input taps, a 2x2 combiner, a balanced PD pair.

    This is the minimal building block of Fig. 2(a)/Fig. 6, used for layout-aware
    node area estimation.
    """
    node = Netlist(name="tempo_node")
    node.add_instance("i0", "y_branch", role="tap_a")
    node.add_instance("i1", "y_branch", role="tap_b")
    node.add_instance("i2", "directional_coupler", role="combiner")
    node.add_instance("i3", "pd", role="detector_p")
    node.add_instance("i4", "pd", role="detector_n")
    node.connect("i0", "i2")
    node.connect("i1", "i2")
    node.connect("i2", "i3")
    node.connect("i2", "i4")
    return node


def _tempo_link_netlist() -> Netlist:
    """Laser-to-detector chain used for the link-budget critical path (Fig. 3a)."""
    link = Netlist(name="tempo_link")
    link.add_instance("laser", "laser", role="source")
    link.add_instance("coupler", "coupler", role="coupling")
    link.add_instance("wdm_mux", "wdm_mux", role="mux")
    link.add_instance("mzm_a", "mzm", role="input_encoder")
    link.add_instance("y_branch_a", "y_branch", role="broadcast_a")
    link.add_instance("crossing", "crossing", role="routing")
    link.add_instance("mzm_b", "mzm", role="weight_encoder")
    link.add_instance("y_branch_b", "y_branch", role="broadcast_b")
    link.add_instance("node", "directional_coupler", role="node_combiner")
    link.add_instance("pd", "pd", role="detector")
    link.chain(
        "laser",
        "coupler",
        "wdm_mux",
        "mzm_a",
        "y_branch_a",
        "crossing",
        "mzm_b",
        "y_branch_b",
        "node",
        "pd",
    )
    return link


def build_tempo(
    config: Optional[ArchitectureConfig] = None,
    library: Optional[DeviceLibrary] = None,
    name: str = "tempo",
) -> Architecture:
    """Build the TeMPO architecture for the given configuration.

    The default configuration matches the paper's validation setup for Fig. 7:
    4x4 cores, 2 tiles, 2 cores per tile, 5 GHz, 8-bit converters.
    """
    config = config or ArchitectureConfig(
        num_tiles=2,
        cores_per_tile=2,
        core_height=4,
        core_width=4,
        num_wavelengths=1,
        frequency_ghz=5.0,
        temporal_accumulation=1,
        name=name,
    )
    library = library or _tempo_library(config)

    instances = [
        ArchInstance(
            "laser", "laser", Role.LIGHT_SOURCE,
            count="LAMBDA", activity=Activity.STATIC, count_in_area=False,
        ),
        ArchInstance(
            "coupler", "coupler", Role.COUPLING,
            count="LAMBDA", activity=Activity.PASSIVE,
        ),
        ArchInstance(
            "wdm_mux", "wdm_mux", Role.DISTRIBUTION,
            count="R", activity=Activity.PASSIVE,
        ),
        # Operand A (activation) encoders: shared across C cores and W columns.
        ArchInstance(
            "dac_a", "dac", Role.INPUT_ENCODER,
            count="R*H*LAMBDA", activity=Activity.PER_CYCLE, operand="A",
        ),
        ArchInstance(
            "mzm_a", "mzm", Role.INPUT_ENCODER,
            count="R*H*LAMBDA", activity=Activity.PER_CYCLE, operand="A",
        ),
        # Operand B encoders: one per core column (dynamic weights / second matrix).
        ArchInstance(
            "dac_b", "dac", Role.WEIGHT_ENCODER,
            count="R*C*W*LAMBDA", activity=Activity.PER_CYCLE, operand="B",
        ),
        ArchInstance(
            "mzm_b", "mzm", Role.WEIGHT_ENCODER,
            count="R*C*W*LAMBDA", activity=Activity.PER_CYCLE, operand="B",
        ),
        # Broadcast / routing optics. The worst-case path cascades (C*W - 1)
        # operand-A splitters and (H - 1) operand-B splitters.
        ArchInstance(
            "y_branch_a", "y_branch", Role.DISTRIBUTION,
            count="R*H*LAMBDA*(C*W-1)", activity=Activity.PASSIVE,
            loss_multiplier="max(C*W-1, 1)",
        ),
        ArchInstance(
            "y_branch_b", "y_branch", Role.DISTRIBUTION,
            count="R*C*W*LAMBDA*(H-1)", activity=Activity.PASSIVE,
            loss_multiplier="max(H-1, 1)",
        ),
        ArchInstance(
            "crossing", "crossing", Role.DISTRIBUTION,
            count="R*C*H*W", activity=Activity.PASSIVE,
            loss_multiplier="max(W-1, 1)",
        ),
        ArchInstance(
            "mmi", "mmi", Role.DISTRIBUTION,
            count="R*C*LAMBDA", activity=Activity.PASSIVE,
        ),
        # The dot-product node photonics: composite block, area from the node netlist.
        ArchInstance(
            "node", "directional_coupler", Role.COMPUTE,
            count="R*C*H*W", activity=Activity.PASSIVE,
            is_composite=True, count_in_energy=False,
        ),
        ArchInstance(
            "ps_bias", "ps_bias", Role.COMPUTE,
            count="R*C*H*W", activity=Activity.STATIC, count_in_area=False,
        ),
        ArchInstance(
            "pd", "pd", Role.DETECTION,
            count="R*C*H*W", activity=Activity.STATIC, count_in_area=False,
        ),
        # Readout chain shared across the C cores of a tile (analog summation).
        ArchInstance(
            "integrator", "integrator", Role.READOUT,
            count="R*H*W", activity=Activity.STATIC,
        ),
        ArchInstance(
            "tia", "tia", Role.READOUT,
            count="R*H*W", activity=Activity.STATIC,
        ),
        ArchInstance(
            "adc", "adc", Role.READOUT,
            count="R*H*W", activity=Activity.PER_CYCLE, duty="1/max(T_ACC, 1)",
        ),
        ArchInstance(
            "digital_control", "digital_control", Role.CONTROL,
            count="R", activity=Activity.STATIC, count_in_area=False,
        ),
    ]

    dataflow = DataflowSpec(
        stationary=Dataflow.OUTPUT_STATIONARY,
        m_parallel="R*H",
        n_parallel="W",
        k_parallel="C*LAMBDA",
        temporal_accumulation=config.temporal_accumulation,
    )

    return Architecture(
        name=name,
        config=config,
        library=library,
        instances=instances,
        link_netlist=_tempo_link_netlist(),
        node_netlist=tempo_node_netlist(),
        taxonomy=TABLE_I["tempo"],
        dataflow=dataflow,
    )
