"""SCATTER: weight-static, phase-shifter-based sparse photonic tensor core.

SCATTER (the paper's Fig. 10b / Fig. 11 convolution engine) holds weights on
thermo-optic phase shifters whose dissipation depends on the encoded weight value,
which is exactly the behaviour the data-aware energy analysis targets: pruned
(zero) weights can be power-gated, and small-magnitude weights dissipate less than
the nominal P_pi worst case.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.architecture import Architecture, ArchitectureConfig
from repro.arch.dataflow_spec import Dataflow, DataflowSpec
from repro.arch.instance import Activity, ArchInstance, Role
from repro.arch.taxonomy import TABLE_I
from repro.devices.library import DeviceLibrary
from repro.devices.photonic import ThermoOpticPhaseShifter
from repro.netlist.netlist import Netlist


def scatter_node_netlist() -> Netlist:
    """SCATTER weight cell: a tap, a weight phase shifter and a combiner."""
    node = Netlist(name="scatter_node")
    node.add_instance("i0", "y_branch", role="tap")
    node.add_instance("i1", "phase_shifter", role="weight")
    node.add_instance("i2", "directional_coupler", role="combiner")
    node.chain("i0", "i1", "i2")
    return node


def _scatter_link_netlist() -> Netlist:
    link = Netlist(name="scatter_link")
    link.add_instance("laser", "laser", role="source")
    link.add_instance("coupler", "coupler", role="coupling")
    link.add_instance("mzm_in", "mzm", role="input_encoder")
    link.add_instance("y_branch", "y_branch", role="broadcast")
    link.add_instance("phase_shifter", "phase_shifter", role="weight_encoder")
    link.add_instance("crossing", "crossing", role="routing")
    link.add_instance("pd", "pd", role="detector")
    link.chain("laser", "coupler", "mzm_in", "y_branch", "phase_shifter", "crossing", "pd")
    return link


def build_scatter(
    config: Optional[ArchitectureConfig] = None,
    library: Optional[DeviceLibrary] = None,
    p_pi_mw: float = 20.0,
    name: str = "scatter",
) -> Architecture:
    """Build the SCATTER weight-static PTC.

    ``p_pi_mw`` sets the full-swing phase-shifter power used both for the nominal
    (data-unaware) estimate and as the scale of the data-dependent response.
    """
    config = config or ArchitectureConfig(
        num_tiles=2,
        cores_per_tile=2,
        core_height=4,
        core_width=4,
        num_wavelengths=1,
        frequency_ghz=5.0,
        name=name,
    )
    library = library or DeviceLibrary.default(
        adc_bits=config.output_bits,
        dac_bits=config.input_bits,
        frequency_ghz=config.frequency_ghz,
        num_wavelengths=config.num_wavelengths,
    )
    # SCATTER's in-situ light redistribution avoids full thermal re-programming, so
    # weight updates settle in ~100 ns rather than the ~10 us of a bare TO heater.
    library.register(
        ThermoOpticPhaseShifter(
            p_pi_mw=p_pi_mw, reconfig_time_ns=100.0, name="phase_shifter"
        )
    )

    instances = [
        ArchInstance("laser", "laser", Role.LIGHT_SOURCE, count="LAMBDA",
                     activity=Activity.STATIC, count_in_area=False),
        ArchInstance("coupler", "coupler", Role.COUPLING, count="LAMBDA",
                     activity=Activity.PASSIVE),
        # Dynamic input (activation) encoders: one per core input row.
        ArchInstance("dac_in", "dac", Role.INPUT_ENCODER, count="R*C*H*LAMBDA",
                     activity=Activity.PER_CYCLE, operand="A"),
        ArchInstance("mzm_in", "mzm", Role.INPUT_ENCODER, count="R*C*H*LAMBDA",
                     activity=Activity.PER_CYCLE, operand="A"),
        # Broadcast optics.
        ArchInstance("y_branch", "y_branch", Role.DISTRIBUTION,
                     count="R*C*H*(W-1)", activity=Activity.PASSIVE,
                     loss_multiplier="max(W-1, 1)"),
        ArchInstance("crossing", "crossing", Role.DISTRIBUTION, count="R*C*H*W",
                     activity=Activity.PASSIVE, loss_multiplier="max(H-1, 1)"),
        # The weight fabric: one thermo-optic phase shifter per weight element.
        # Power is data dependent (and zero for pruned weights: power gating).
        ArchInstance(
            "phase_shifter", "phase_shifter", Role.WEIGHT_ENCODER,
            count="R*C*H*W", activity=Activity.STATIC,
            data_dependent=True, operand="B",
        ),
        # Readout per output column.
        ArchInstance("pd", "pd", Role.DETECTION, count="R*C*W",
                     activity=Activity.STATIC, count_in_area=False),
        ArchInstance("tia", "tia", Role.READOUT, count="R*C*W",
                     activity=Activity.STATIC),
        ArchInstance("adc", "adc", Role.READOUT, count="R*C*W",
                     activity=Activity.PER_CYCLE, duty="1/max(T_ACC, 1)"),
        ArchInstance("digital_control", "digital_control", Role.CONTROL, count="R",
                     activity=Activity.STATIC, count_in_area=False),
    ]

    dataflow = DataflowSpec(
        stationary=Dataflow.WEIGHT_STATIONARY,
        m_parallel="R*C*W",
        n_parallel="LAMBDA",
        k_parallel="H",
        temporal_accumulation=config.temporal_accumulation,
        weight_reuse_requires_reconfig=True,
    )

    return Architecture(
        name=name,
        config=config,
        library=library,
        instances=instances,
        link_netlist=_scatter_link_netlist(),
        node_netlist=scatter_node_netlist(),
        taxonomy=TABLE_I["mzi_array"],
        dataflow=dataflow,
    )
