"""Template photonic-tensor-core architectures built with SimPhony-Arch.

Each template is a builder function returning a fully populated
:class:`~repro.arch.architecture.Architecture`.  Templates correspond to the designs
the paper uses in its case studies and evaluation:

- :func:`~repro.arch.templates.tempo.build_tempo` -- dynamic array-style,
  time-multiplexed dual-operand PTC (case study 1, Figs. 7, 9, 10a).
- :func:`~repro.arch.templates.mzi_mesh.build_mzi_mesh` -- static Clements-style MZI
  mesh with SVD weight encoding (case study 2, Fig. 11 linear layers).
- :func:`~repro.arch.templates.scatter.build_scatter` -- weight-static, phase-shifter
  based sparse PTC (Fig. 10b, Fig. 11 convolution layers).
- :func:`~repro.arch.templates.lightening_transformer.build_lightening_transformer`
  -- WDM dynamic PTC for attention workloads (Fig. 8).
- :func:`~repro.arch.templates.mrr_bank.build_mrr_weight_bank`,
  :func:`~repro.arch.templates.butterfly.build_butterfly_mesh`,
  :func:`~repro.arch.templates.pcm_crossbar.build_pcm_crossbar` -- the remaining
  Table I taxonomy rows.
"""

from repro.arch.templates.tempo import build_tempo
from repro.arch.templates.mzi_mesh import build_mzi_mesh
from repro.arch.templates.mrr_bank import build_mrr_weight_bank
from repro.arch.templates.butterfly import build_butterfly_mesh
from repro.arch.templates.pcm_crossbar import build_pcm_crossbar
from repro.arch.templates.scatter import build_scatter
from repro.arch.templates.lightening_transformer import build_lightening_transformer

TEMPLATE_BUILDERS = {
    "tempo": build_tempo,
    "mzi_mesh": build_mzi_mesh,
    "mrr_bank": build_mrr_weight_bank,
    "butterfly": build_butterfly_mesh,
    "pcm_crossbar": build_pcm_crossbar,
    "scatter": build_scatter,
    "lightening_transformer": build_lightening_transformer,
}

__all__ = [
    "build_tempo",
    "build_mzi_mesh",
    "build_mrr_weight_bank",
    "build_butterfly_mesh",
    "build_pcm_crossbar",
    "build_scatter",
    "build_lightening_transformer",
    "TEMPLATE_BUILDERS",
]
