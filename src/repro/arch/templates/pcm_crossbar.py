"""Non-volatile PCM crossbar photonic tensor core.

Phase-change-material cells on waveguide crossings hold the weights with zero static
power, but both operands are intensity (positive-only) encoded, so a full-range
computation needs four forward passes, and rewriting a weight block costs hundreds
of nanoseconds per cell write (Table I, "PCM Crossbar").
"""

from __future__ import annotations

from typing import Optional

from repro.arch.architecture import Architecture, ArchitectureConfig
from repro.arch.dataflow_spec import Dataflow, DataflowSpec
from repro.arch.instance import Activity, ArchInstance, Role
from repro.arch.taxonomy import TABLE_I
from repro.devices.library import DeviceLibrary
from repro.netlist.netlist import Netlist


def _pcm_link_netlist() -> Netlist:
    link = Netlist(name="pcm_crossbar_link")
    link.add_instance("laser", "laser", role="source")
    link.add_instance("coupler", "coupler", role="coupling")
    link.add_instance("mrm_in", "mrm", role="input_encoder")
    link.add_instance("y_branch", "y_branch", role="broadcast")
    link.add_instance("pcm_cell", "pcm", role="weight_encoder")
    link.add_instance("crossing", "crossing", role="crossbar")
    link.add_instance("pd", "pd", role="detector")
    link.chain("laser", "coupler", "mrm_in", "y_branch", "pcm_cell", "crossing", "pd")
    return link


def build_pcm_crossbar(
    config: Optional[ArchitectureConfig] = None,
    library: Optional[DeviceLibrary] = None,
    name: str = "pcm_crossbar",
) -> Architecture:
    """Build a PCM-crossbar in-memory photonic computing accelerator."""
    config = config or ArchitectureConfig(
        num_tiles=1,
        cores_per_tile=1,
        core_height=8,
        core_width=8,
        num_wavelengths=4,
        frequency_ghz=2.0,
        name=name,
    )
    library = library or DeviceLibrary.default(
        adc_bits=config.output_bits,
        dac_bits=config.input_bits,
        frequency_ghz=config.frequency_ghz,
        num_wavelengths=config.num_wavelengths,
    )

    instances = [
        ArchInstance("laser", "laser", Role.LIGHT_SOURCE, count="LAMBDA",
                     activity=Activity.STATIC, count_in_area=False),
        ArchInstance("coupler", "coupler", Role.COUPLING, count="LAMBDA",
                     activity=Activity.PASSIVE),
        ArchInstance("dac_in", "dac", Role.INPUT_ENCODER, count="R*C*H",
                     activity=Activity.PER_CYCLE, operand="A"),
        ArchInstance("mrm_in", "mrm", Role.INPUT_ENCODER, count="R*C*H",
                     activity=Activity.PER_CYCLE, operand="A"),
        ArchInstance("y_branch", "y_branch", Role.DISTRIBUTION, count="R*C*H*(W-1)",
                     activity=Activity.PASSIVE, loss_multiplier="max(W-1, 1)"),
        # Non-volatile weights: zero hold power, energetic and slow writes.
        ArchInstance(
            "pcm_cell", "pcm", Role.WEIGHT_ENCODER, count="R*C*H*W",
            activity=Activity.PER_RECONFIG, data_dependent=False, operand="B",
        ),
        ArchInstance("crossing", "crossing", Role.DISTRIBUTION, count="R*C*H*W",
                     activity=Activity.PASSIVE, loss_multiplier="max(H-1, 1)"),
        ArchInstance("pd", "pd", Role.DETECTION, count="R*C*W",
                     activity=Activity.STATIC, count_in_area=False),
        ArchInstance("tia", "tia", Role.READOUT, count="R*C*W",
                     activity=Activity.STATIC),
        ArchInstance("adc", "adc", Role.READOUT, count="R*C*W",
                     activity=Activity.PER_CYCLE, duty="1/max(T_ACC, 1)"),
        ArchInstance("digital_control", "digital_control", Role.CONTROL, count="R",
                     activity=Activity.STATIC, count_in_area=False),
    ]

    dataflow = DataflowSpec(
        stationary=Dataflow.WEIGHT_STATIONARY,
        m_parallel="W",
        n_parallel="R*C*LAMBDA",
        k_parallel="H",
        temporal_accumulation=config.temporal_accumulation,
        weight_reuse_requires_reconfig=True,
    )

    return Architecture(
        name=name,
        config=config,
        library=library,
        instances=instances,
        link_netlist=_pcm_link_netlist(),
        node_netlist=None,
        taxonomy=TABLE_I["pcm_crossbar"],
        dataflow=dataflow,
    )
