"""Micro-ring weight bank (broadcast-and-weight) photonic tensor core.

Incoherent WDM architecture: each input is modulated onto its own wavelength,
broadcast to every output row, weighted by a tuned micro-ring per (row, wavelength)
pair, and summed on a balanced photodetector.  Inputs are intensity-encoded and
therefore positive-only, so a full-range computation takes two forward passes
(Table I, "MRR Array").
"""

from __future__ import annotations

from typing import Optional

from repro.arch.architecture import Architecture, ArchitectureConfig
from repro.arch.dataflow_spec import Dataflow, DataflowSpec
from repro.arch.instance import Activity, ArchInstance, Role
from repro.arch.taxonomy import TABLE_I
from repro.devices.library import DeviceLibrary
from repro.netlist.netlist import Netlist


def _mrr_link_netlist() -> Netlist:
    link = Netlist(name="mrr_bank_link")
    link.add_instance("laser", "laser", role="source")
    link.add_instance("coupler", "coupler", role="coupling")
    link.add_instance("mrm_in", "mrm", role="input_encoder")
    link.add_instance("wdm_mux", "wdm_mux", role="mux")
    link.add_instance("y_branch", "y_branch", role="broadcast")
    link.add_instance("mrr_weight", "mrr", role="weight_encoder")
    link.add_instance("pd", "pd", role="detector")
    link.chain("laser", "coupler", "mrm_in", "wdm_mux", "y_branch", "mrr_weight", "pd")
    return link


def build_mrr_weight_bank(
    config: Optional[ArchitectureConfig] = None,
    library: Optional[DeviceLibrary] = None,
    name: str = "mrr_bank",
) -> Architecture:
    """Build a broadcast-and-weight MRR weight-bank accelerator."""
    config = config or ArchitectureConfig(
        num_tiles=1,
        cores_per_tile=2,
        core_height=4,
        core_width=4,
        num_wavelengths=4,
        frequency_ghz=5.0,
        name=name,
    )
    library = library or DeviceLibrary.default(
        adc_bits=config.output_bits,
        dac_bits=config.input_bits,
        frequency_ghz=config.frequency_ghz,
        num_wavelengths=config.num_wavelengths,
    )

    instances = [
        ArchInstance("laser", "laser", Role.LIGHT_SOURCE, count="LAMBDA",
                     activity=Activity.STATIC, count_in_area=False),
        ArchInstance("coupler", "coupler", Role.COUPLING, count="LAMBDA",
                     activity=Activity.PASSIVE),
        # One input micro-ring modulator per wavelength channel per core.
        ArchInstance("dac_in", "dac", Role.INPUT_ENCODER, count="R*C*W",
                     activity=Activity.PER_CYCLE, operand="A"),
        ArchInstance("mrm_in", "mrm", Role.INPUT_ENCODER, count="R*C*W",
                     activity=Activity.PER_CYCLE, operand="A"),
        ArchInstance("wdm_mux", "wdm_mux", Role.DISTRIBUTION, count="R*C",
                     activity=Activity.PASSIVE),
        ArchInstance("y_branch", "y_branch", Role.DISTRIBUTION, count="R*C*(H-1)",
                     activity=Activity.PASSIVE, loss_multiplier="max(H-1, 1)"),
        # The weight bank: one tuned micro-ring per (output row, input wavelength).
        ArchInstance("mrr_weight", "mrr", Role.WEIGHT_ENCODER, count="R*C*H*W",
                     activity=Activity.STATIC, data_dependent=True, operand="B",
                     loss_multiplier="max(W-1, 1)"),
        ArchInstance("pd", "pd", Role.DETECTION, count="R*C*H",
                     activity=Activity.STATIC, count_in_area=False),
        ArchInstance("tia", "tia", Role.READOUT, count="R*C*H",
                     activity=Activity.STATIC),
        ArchInstance("adc", "adc", Role.READOUT, count="R*C*H",
                     activity=Activity.PER_CYCLE, duty="1/max(T_ACC, 1)"),
        ArchInstance("digital_control", "digital_control", Role.CONTROL, count="R",
                     activity=Activity.STATIC, count_in_area=False),
    ]

    dataflow = DataflowSpec(
        stationary=Dataflow.WEIGHT_STATIONARY,
        m_parallel="H",
        n_parallel="R*C",
        k_parallel="W",
        temporal_accumulation=config.temporal_accumulation,
        weight_reuse_requires_reconfig=True,
    )

    return Architecture(
        name=name,
        config=config,
        library=library,
        instances=instances,
        link_netlist=_mrr_link_netlist(),
        node_netlist=None,
        taxonomy=TABLE_I["mrr_array"],
        dataflow=dataflow,
    )
