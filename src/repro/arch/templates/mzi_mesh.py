"""Clements-style MZI mesh: static, weight-stationary universal PTC (case study 2).

The weight matrix is encoded by singular value decomposition ``W = U S V``; the
unitaries ``U`` and ``V`` map to triangular/rectangular meshes of 2x2 MZIs and the
diagonal ``S`` to a column of attenuating MZIs.  Following the paper's scaling
rules, node-U and node-V are replicated ``R*C*H*(H-1)/2`` times each and node-S
``R*C*min(H, W)`` times -- a topology that array-based simulators cannot express.

Thermo-optic phase shifters hold the weights, so the PTC is weight-stationary with a
large (~10 us) reconfiguration penalty whenever a new weight block is loaded.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.architecture import Architecture, ArchitectureConfig
from repro.arch.dataflow_spec import Dataflow, DataflowSpec
from repro.arch.instance import Activity, ArchInstance, Role
from repro.arch.taxonomy import TABLE_I
from repro.devices.library import DeviceLibrary
from repro.netlist.netlist import Netlist


def mzi_node_netlist() -> Netlist:
    """Single-MZI building block used for layout-aware mesh area estimation."""
    node = Netlist(name="mzi_node")
    node.add_instance("i0", "mzi", role="unitary_cell")
    return node


def _mzi_link_netlist() -> Netlist:
    """Laser -> input modulator -> U mesh column -> S -> V mesh column -> detector."""
    link = Netlist(name="mzi_mesh_link")
    link.add_instance("laser", "laser", role="source")
    link.add_instance("coupler", "coupler", role="coupling")
    link.add_instance("mmi", "mmi", role="fanout")
    link.add_instance("dac_mzm", "mzm", role="input_encoder")
    link.add_instance("mzi_v", "mzi", role="unitary_v")
    link.add_instance("mzi_sigma", "mzi", role="diagonal")
    link.add_instance("mzi_u", "mzi", role="unitary_u")
    link.add_instance("pd", "pd", role="detector")
    link.chain("laser", "coupler", "mmi", "dac_mzm", "mzi_v", "mzi_sigma", "mzi_u", "pd")
    return link


def build_mzi_mesh(
    config: Optional[ArchitectureConfig] = None,
    library: Optional[DeviceLibrary] = None,
    name: str = "mzi_mesh",
) -> Architecture:
    """Build a multi-core Clements MZI mesh accelerator."""
    config = config or ArchitectureConfig(
        num_tiles=2,
        cores_per_tile=2,
        core_height=4,
        core_width=4,
        num_wavelengths=1,
        frequency_ghz=5.0,
        name=name,
    )
    library = library or DeviceLibrary.default(
        adc_bits=config.output_bits,
        dac_bits=config.input_bits,
        frequency_ghz=config.frequency_ghz,
        num_wavelengths=config.num_wavelengths,
    )

    instances = [
        ArchInstance(
            "laser", "laser", Role.LIGHT_SOURCE,
            count="LAMBDA", activity=Activity.STATIC, count_in_area=False,
        ),
        ArchInstance("coupler", "coupler", Role.COUPLING, count="LAMBDA",
                     activity=Activity.PASSIVE),
        ArchInstance("mmi", "mmi", Role.DISTRIBUTION, count="R*C",
                     activity=Activity.PASSIVE, loss_multiplier="ceil(log2(max(W,2)))"),
        # Input vector encoders: one per core input port.
        ArchInstance("dac_in", "dac", Role.INPUT_ENCODER, count="R*C*W*LAMBDA",
                     activity=Activity.PER_CYCLE, operand="A"),
        ArchInstance("mzm_in", "mzm", Role.INPUT_ENCODER, count="R*C*W*LAMBDA",
                     activity=Activity.PER_CYCLE, operand="A"),
        # The mesh itself: U, Sigma, V MZIs holding the (static) weights.
        ArchInstance(
            "mzi_u", "mzi", Role.WEIGHT_ENCODER, count="R*C*H*(H-1)/2",
            activity=Activity.STATIC, data_dependent=True, operand="B",
            loss_multiplier="H",
        ),
        ArchInstance(
            "mzi_sigma", "mzi", Role.WEIGHT_ENCODER, count="R*C*min(H, W)",
            activity=Activity.STATIC, data_dependent=True, operand="B",
        ),
        ArchInstance(
            "mzi_v", "mzi", Role.WEIGHT_ENCODER, count="R*C*W*(W-1)/2",
            activity=Activity.STATIC, data_dependent=True, operand="B",
            loss_multiplier="W",
        ),
        # Readout: one detector chain per core output port.
        ArchInstance("pd", "pd", Role.DETECTION, count="R*C*H",
                     activity=Activity.STATIC, count_in_area=False),
        ArchInstance("tia", "tia", Role.READOUT, count="R*C*H",
                     activity=Activity.STATIC),
        ArchInstance("adc", "adc", Role.READOUT, count="R*C*H",
                     activity=Activity.PER_CYCLE, duty="1/max(T_ACC, 1)"),
        ArchInstance("digital_control", "digital_control", Role.CONTROL, count="R",
                     activity=Activity.STATIC, count_in_area=False),
    ]

    dataflow = DataflowSpec(
        stationary=Dataflow.WEIGHT_STATIONARY,
        m_parallel="H",
        n_parallel="R*C*LAMBDA",
        k_parallel="W",
        temporal_accumulation=config.temporal_accumulation,
        weight_reuse_requires_reconfig=True,
    )

    return Architecture(
        name=name,
        config=config,
        library=library,
        instances=instances,
        link_netlist=_mzi_link_netlist(),
        node_netlist=mzi_node_netlist(),
        taxonomy=TABLE_I["mzi_array"],
        dataflow=dataflow,
    )
