"""Lightening-Transformer (LT): dynamically-operated WDM photonic tensor core.

The reference design for the paper's transformer validation (Fig. 8): 4 tiles, 2
cores per tile, 12x12 dot-product nodes per core, 12 wavelengths at 5 GHz.  Both
operands are encoded at line rate by high-speed modulators, so dynamic matmuls
(attention scores, ``QK^T`` and ``AV``) map directly without weight reconfiguration.

Structurally it is an array-style dual-operand PTC like TeMPO, but with deeper WDM
(a micro-comb source plus per-wavelength encoders) and a larger readout array.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.architecture import Architecture, ArchitectureConfig
from repro.arch.dataflow_spec import Dataflow, DataflowSpec
from repro.arch.instance import Activity, ArchInstance, Role
from repro.arch.taxonomy import TABLE_I
from repro.devices.electrical import ADC, DAC
from repro.devices.library import DeviceLibrary
from repro.devices.photonic import MachZehnderModulator
from repro.netlist.netlist import Netlist
from repro.arch.templates.tempo import tempo_node_netlist


def _lt_library(config: ArchitectureConfig) -> DeviceLibrary:
    """Device library with LT's energy-optimized converters and compact modulators."""
    library = DeviceLibrary.default(
        adc_bits=config.output_bits,
        dac_bits=config.input_bits,
        frequency_ghz=config.frequency_ghz,
        num_wavelengths=config.num_wavelengths,
    )
    library.register(
        DAC(
            bits=config.input_bits,
            sampling_rate_ghz=config.frequency_ghz,
            fom_fj_per_conv_step=4.0,
            width_um=60.0,
            height_um=60.0,
            name="dac",
        )
    )
    library.register(
        ADC(
            bits=config.output_bits,
            sampling_rate_ghz=config.frequency_ghz,
            fom_fj_per_conv_step=20.0,
            width_um=120.0,
            height_um=90.0,
            name="adc",
        )
    )
    library.register(
        MachZehnderModulator(
            bandwidth_ghz=max(config.frequency_ghz, 20.0),
            insertion_loss_db=1.2,
            extinction_ratio_db=9.0,
            drive_energy_fj_per_symbol=30.0,
            static_power_mw=0.3,
            width_um=80.0,
            height_um=12.0,
            name="mzm",
        )
    )
    return library


def _lt_link_netlist() -> Netlist:
    link = Netlist(name="lt_link")
    link.add_instance("comb", "microcomb", role="source")
    link.add_instance("coupler", "coupler", role="coupling")
    link.add_instance("wdm_mux", "wdm_mux", role="mux")
    link.add_instance("mzm_a", "mzm", role="input_encoder")
    link.add_instance("y_branch_a", "y_branch", role="broadcast_a")
    link.add_instance("crossing", "crossing", role="routing")
    link.add_instance("mzm_b", "mzm", role="weight_encoder")
    link.add_instance("y_branch_b", "y_branch", role="broadcast_b")
    link.add_instance("node", "directional_coupler", role="node_combiner")
    link.add_instance("pd", "pd", role="detector")
    link.chain(
        "comb", "coupler", "wdm_mux", "mzm_a", "y_branch_a", "crossing",
        "mzm_b", "y_branch_b", "node", "pd",
    )
    return link


def build_lightening_transformer(
    config: Optional[ArchitectureConfig] = None,
    library: Optional[DeviceLibrary] = None,
    name: str = "lightening_transformer",
) -> Architecture:
    """Build the Lightening-Transformer architecture (default: the Fig. 8 setting)."""
    config = config or ArchitectureConfig(
        num_tiles=4,
        cores_per_tile=2,
        core_height=12,
        core_width=12,
        num_wavelengths=12,
        frequency_ghz=5.0,
        temporal_accumulation=1,
        name=name,
    )
    library = library or _lt_library(config)

    instances = [
        ArchInstance("comb", "microcomb", Role.LIGHT_SOURCE, count=1,
                     activity=Activity.STATIC),
        ArchInstance("coupler", "coupler", Role.COUPLING, count="LAMBDA",
                     activity=Activity.PASSIVE),
        ArchInstance("wdm_mux", "wdm_mux", Role.DISTRIBUTION, count="R",
                     activity=Activity.PASSIVE),
        ArchInstance("dac_a", "dac", Role.INPUT_ENCODER, count="R*H*LAMBDA",
                     activity=Activity.PER_CYCLE, operand="A"),
        ArchInstance("mzm_a", "mzm", Role.INPUT_ENCODER, count="R*H*LAMBDA",
                     activity=Activity.PER_CYCLE, operand="A"),
        ArchInstance("dac_b", "dac", Role.WEIGHT_ENCODER, count="R*C*W*LAMBDA",
                     activity=Activity.PER_CYCLE, operand="B"),
        ArchInstance("mzm_b", "mzm", Role.WEIGHT_ENCODER, count="R*C*W*LAMBDA",
                     activity=Activity.PER_CYCLE, operand="B"),
        ArchInstance("y_branch_a", "y_branch", Role.DISTRIBUTION,
                     count="R*H*LAMBDA*(C*W-1)", activity=Activity.PASSIVE,
                     loss_multiplier="ceil(log2(max(C*W, 2)))"),
        ArchInstance("y_branch_b", "y_branch", Role.DISTRIBUTION,
                     count="R*C*W*LAMBDA*(H-1)", activity=Activity.PASSIVE,
                     loss_multiplier="ceil(log2(max(H, 2)))"),
        ArchInstance("crossing", "crossing", Role.DISTRIBUTION, count="R*C*H*W",
                     activity=Activity.PASSIVE, loss_multiplier="max(W-1, 1)"),
        ArchInstance("node", "directional_coupler", Role.COMPUTE, count="R*C*H*W",
                     activity=Activity.PASSIVE, is_composite=True,
                     count_in_energy=False),
        ArchInstance("pd", "pd", Role.DETECTION, count="R*C*H*W",
                     activity=Activity.STATIC, count_in_area=False),
        ArchInstance("integrator", "integrator", Role.READOUT, count="R*H*W",
                     activity=Activity.STATIC),
        ArchInstance("tia", "tia", Role.READOUT, count="R*H*W",
                     activity=Activity.STATIC),
        ArchInstance("adc", "adc", Role.READOUT, count="R*H*W",
                     activity=Activity.PER_CYCLE, duty="1/max(T_ACC, 1)"),
        ArchInstance("digital_control", "digital_control", Role.CONTROL, count="R",
                     activity=Activity.STATIC, count_in_area=False),
    ]

    dataflow = DataflowSpec(
        stationary=Dataflow.OUTPUT_STATIONARY,
        m_parallel="R*H",
        n_parallel="W",
        k_parallel="C*LAMBDA",
        temporal_accumulation=config.temporal_accumulation,
    )

    return Architecture(
        name=name,
        config=config,
        library=library,
        instances=instances,
        link_netlist=_lt_link_netlist(),
        node_netlist=tempo_node_netlist(),
        taxonomy=TABLE_I["tempo"],
        dataflow=dataflow,
    )
