"""Photonic tensor core taxonomy (Table I of the paper).

PTC designs differ in the numerical range their operands can encode and in how fast
each operand can be reconfigured.  Range-restricted designs need multiple forward
passes to produce a full-range output (the ``I`` latency multiplier of Section
III-C2); slow reconfiguration (thermo-optic, PCM) adds a reprogramming penalty every
time the stationary operand changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict


class OperandRange(str, Enum):
    """Numerical range a PTC operand port can encode in a single pass."""

    FULL_REAL = "R"          # arbitrary real values (signed)
    POSITIVE_REAL = "R+"     # non-negative values only (incoherent intensity encoding)
    COMPLEX = "C"            # complex-valued (coherent subspace designs)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ReconfigSpeed(str, Enum):
    """How fast an operand can be rewritten relative to the compute clock."""

    DYNAMIC = "dynamic"   # GHz-rate modulators; can change every cycle
    STATIC = "static"     # thermo-optic / PCM; micro- to millisecond reprogramming

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def forwards_required(operand_a: OperandRange, operand_b: OperandRange) -> int:
    """Number of forward passes needed for a full-range (signed) output.

    Each positive-only operand must be split into a positive and a negative part,
    doubling the pass count; complex (coherent subspace) operands resolve sign via a
    differential positive/negative measurement and therefore do not multiply passes.
    This reproduces the ``#Forwards`` column of Table I.
    """
    forwards = 1
    for rng in (operand_a, operand_b):
        if rng is OperandRange.POSITIVE_REAL:
            forwards *= 2
    return forwards


@dataclass(frozen=True)
class PTCTaxonomyEntry:
    """One row of the PTC taxonomy: ranges, reconfiguration, and forward count."""

    name: str
    operand_a_range: OperandRange
    operand_a_reconfig: ReconfigSpeed
    operand_b_range: OperandRange
    operand_b_reconfig: ReconfigSpeed
    forward_method: str = "Direct"
    num_forwards: int = 0
    universal: bool = True

    def __post_init__(self) -> None:
        if self.num_forwards == 0:
            derived = forwards_required(self.operand_a_range, self.operand_b_range)
            object.__setattr__(self, "num_forwards", derived)
        if self.num_forwards < 1:
            raise ValueError("num_forwards must be at least 1")

    @property
    def is_weight_static(self) -> bool:
        """True when operand B (the weight operand) cannot change every cycle."""
        return self.operand_b_reconfig is ReconfigSpeed.STATIC

    @property
    def is_fully_dynamic(self) -> bool:
        """True when both operands can be reprogrammed at the compute clock rate."""
        return (
            self.operand_a_reconfig is ReconfigSpeed.DYNAMIC
            and self.operand_b_reconfig is ReconfigSpeed.DYNAMIC
        )

    def supports_dynamic_matmul(self) -> bool:
        """Whether dynamic tensor products (e.g. attention scores) map efficiently."""
        return self.is_fully_dynamic


#: Table I of the paper: representative PTC designs and their properties.
TABLE_I: Dict[str, PTCTaxonomyEntry] = {
    "mzi_array": PTCTaxonomyEntry(
        name="MZI Array",
        operand_a_range=OperandRange.FULL_REAL,
        operand_a_reconfig=ReconfigSpeed.DYNAMIC,
        operand_b_range=OperandRange.FULL_REAL,
        operand_b_reconfig=ReconfigSpeed.STATIC,
        forward_method="Direct",
        num_forwards=1,
    ),
    "butterfly_mesh": PTCTaxonomyEntry(
        name="Butterfly Mesh",
        operand_a_range=OperandRange.FULL_REAL,
        operand_a_reconfig=ReconfigSpeed.DYNAMIC,
        operand_b_range=OperandRange.COMPLEX,
        operand_b_reconfig=ReconfigSpeed.STATIC,
        forward_method="Pos-Neg",
        num_forwards=1,
        universal=False,
    ),
    "mrr_array": PTCTaxonomyEntry(
        name="MRR Array",
        operand_a_range=OperandRange.POSITIVE_REAL,
        operand_a_reconfig=ReconfigSpeed.DYNAMIC,
        operand_b_range=OperandRange.FULL_REAL,
        operand_b_reconfig=ReconfigSpeed.DYNAMIC,
        forward_method="Direct",
        num_forwards=2,
    ),
    "pcm_crossbar": PTCTaxonomyEntry(
        name="PCM Crossbar",
        operand_a_range=OperandRange.POSITIVE_REAL,
        operand_a_reconfig=ReconfigSpeed.DYNAMIC,
        operand_b_range=OperandRange.POSITIVE_REAL,
        operand_b_reconfig=ReconfigSpeed.STATIC,
        forward_method="Direct",
        num_forwards=4,
    ),
    "tempo": PTCTaxonomyEntry(
        name="TeMPO",
        operand_a_range=OperandRange.FULL_REAL,
        operand_a_reconfig=ReconfigSpeed.DYNAMIC,
        operand_b_range=OperandRange.FULL_REAL,
        operand_b_reconfig=ReconfigSpeed.DYNAMIC,
        forward_method="Direct",
        num_forwards=1,
    ),
}
