"""Dataflow specification: how an architecture's hardware dimensions map onto GEMM loops.

A GEMM ``C[M, N] = A[M, K] @ B[K, N]`` is mapped onto a photonic tensor core by
assigning hardware dimensions (core rows/columns, cores per tile, tiles,
wavelengths) to the M, N and K loops.  Photonic architectures add parallel
*reduction* dimensions beyond what electronic accelerators offer -- spectral
summation over wavelengths and analog photocurrent summation over cores -- followed
by temporal integration and digital accumulation, the "hierarchical accumulation" of
Fig. 4.  :class:`DataflowSpec` captures this mapping symbolically so the dataflow
mapper can compute cycle counts for any architecture parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Union

from repro.netlist.scaling import ScalingRule

RuleLike = Union[ScalingRule, str, int, float]


def _as_rule(value: RuleLike) -> ScalingRule:
    return value if isinstance(value, ScalingRule) else ScalingRule(value)


class Dataflow(str, Enum):
    """Stationarity of the mapping: which operand stays resident on the PTC."""

    OUTPUT_STATIONARY = "output_stationary"
    WEIGHT_STATIONARY = "weight_stationary"
    INPUT_STATIONARY = "input_stationary"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class DataflowSpec:
    """Symbolic mapping of GEMM loops onto hardware parallelism dimensions.

    ``m_parallel`` / ``n_parallel`` / ``k_parallel`` give the number of M / N / K
    iterations executed concurrently per cycle, as scaling rules over the
    architecture parameters.  ``temporal_accumulation`` is the number of consecutive
    cycles the analog integrator accumulates before one A/D conversion (1 means the
    ADC samples every cycle).
    """

    stationary: Dataflow = Dataflow.OUTPUT_STATIONARY
    m_parallel: ScalingRule = field(default_factory=lambda: ScalingRule("R*H"))
    n_parallel: ScalingRule = field(default_factory=lambda: ScalingRule("W"))
    k_parallel: ScalingRule = field(default_factory=lambda: ScalingRule("C*LAMBDA"))
    temporal_accumulation: int = 1
    weight_reuse_requires_reconfig: bool = False

    def __init__(
        self,
        stationary: Dataflow = Dataflow.OUTPUT_STATIONARY,
        m_parallel: RuleLike = "R*H",
        n_parallel: RuleLike = "W",
        k_parallel: RuleLike = "C*LAMBDA",
        temporal_accumulation: int = 1,
        weight_reuse_requires_reconfig: bool = False,
    ) -> None:
        if temporal_accumulation < 1:
            raise ValueError("temporal_accumulation must be >= 1")
        self.stationary = stationary
        self.m_parallel = _as_rule(m_parallel)
        self.n_parallel = _as_rule(n_parallel)
        self.k_parallel = _as_rule(k_parallel)
        self.temporal_accumulation = temporal_accumulation
        self.weight_reuse_requires_reconfig = weight_reuse_requires_reconfig

    # -- evaluation ----------------------------------------------------------------
    def parallel_dims(self, params: Mapping[str, float]) -> Mapping[str, int]:
        """Evaluate the per-cycle parallel extents for the given parameters."""
        return {
            "M": max(self.m_parallel.count(params), 1),
            "N": max(self.n_parallel.count(params), 1),
            "K": max(self.k_parallel.count(params), 1),
        }

    def macs_per_cycle(self, params: Mapping[str, float]) -> int:
        """Peak multiply-accumulates per cycle."""
        dims = self.parallel_dims(params)
        return dims["M"] * dims["N"] * dims["K"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataflowSpec({self.stationary.value}, M={self.m_parallel.expression}, "
            f"N={self.n_parallel.expression}, K={self.k_parallel.expression}, "
            f"T_acc={self.temporal_accumulation})"
        )
