"""Architecture-level device instance groups with symbolic scaling rules.

An :class:`ArchInstance` describes one *group* of identical device instances in the
architecture (e.g. "all operand-A MZMs"), carrying:

- the device-library name (or a composite node reference);
- a functional :class:`Role` and an :class:`Activity` model used by the energy
  analyzer;
- a symbolic ``count`` scaling rule (how many copies exist, as a function of the
  architecture parameters ``R``, ``C``, ``H``, ``W``, ``LAMBDA``, ...);
- a ``loss_multiplier`` rule (how many times its insertion loss is traversed on the
  worst-case optical path, e.g. ``C*W - 1`` cascaded Y-branches on a broadcast bus);
- a ``duty`` rule (fraction of cycles the group is active, e.g. ``1/T_ACC`` for an
  ADC that samples once per analog integration window);
- flags deciding whether the group contributes to area and/or energy, so composite
  "node" blocks can carry layout area without double counting their internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Optional, Union

from repro.netlist.scaling import ScalingRule

RuleLike = Union[ScalingRule, str, int, float]


def _as_rule(value: RuleLike) -> ScalingRule:
    return value if isinstance(value, ScalingRule) else ScalingRule(value)


class Role(str, Enum):
    """Functional role of a device group inside a photonic tensor core."""

    LIGHT_SOURCE = "light_source"
    COUPLING = "coupling"
    INPUT_ENCODER = "input_encoder"     # operand A (activations)
    WEIGHT_ENCODER = "weight_encoder"   # operand B (weights)
    DISTRIBUTION = "distribution"       # splitters, crossings, WDM (de)mux
    COMPUTE = "compute"                 # interference / product cells
    DETECTION = "detection"             # photodetectors
    READOUT = "readout"                 # TIA, integrator, ADC
    CONTROL = "control"                 # digital control / accumulation logic

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Activity(str, Enum):
    """How a device group consumes energy during execution."""

    STATIC = "static"            # power * elapsed time (lasers, bias, tuning)
    PER_CYCLE = "per_cycle"      # per-cycle energy on every active cycle (DAC, MZM)
    PER_RECONFIG = "per_reconfig"  # energy only when the stationary operand is rewritten
    PASSIVE = "passive"          # no electrical energy (passive optics)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class ArchInstance:
    """One group of identical device instances with symbolic scaling behaviour."""

    name: str
    device: str
    role: Role
    count: ScalingRule = field(default_factory=lambda: ScalingRule(1))
    activity: Activity = Activity.STATIC
    data_dependent: bool = False
    operand: Optional[str] = None           # "A", "B" or None
    loss_multiplier: ScalingRule = field(default_factory=lambda: ScalingRule(1))
    duty: ScalingRule = field(default_factory=lambda: ScalingRule(1))
    count_in_area: bool = True
    count_in_energy: bool = True
    is_composite: bool = False               # area comes from a node netlist floorplan

    def __init__(
        self,
        name: str,
        device: str,
        role: Role,
        count: RuleLike = 1,
        activity: Activity = Activity.STATIC,
        data_dependent: bool = False,
        operand: Optional[str] = None,
        loss_multiplier: RuleLike = 1,
        duty: RuleLike = 1,
        count_in_area: bool = True,
        count_in_energy: bool = True,
        is_composite: bool = False,
    ) -> None:
        if not name:
            raise ValueError("ArchInstance name must not be empty")
        if operand not in (None, "A", "B"):
            raise ValueError(f"operand must be 'A', 'B' or None, got {operand!r}")
        self.name = name
        self.device = device
        self.role = role
        self.count = _as_rule(count)
        self.activity = activity
        self.data_dependent = data_dependent
        self.operand = operand
        self.loss_multiplier = _as_rule(loss_multiplier)
        self.duty = _as_rule(duty)
        self.count_in_area = count_in_area
        self.count_in_energy = count_in_energy
        self.is_composite = is_composite

    # -- evaluation helpers -------------------------------------------------------
    def instance_count(self, params: Mapping[str, float]) -> int:
        """Number of physical copies of this group for the given parameters."""
        return self.count.count(params)

    def duty_factor(self, params: Mapping[str, float]) -> float:
        """Fraction of cycles during which the group is active (clamped to [0, 1])."""
        value = self.duty.evaluate(params)
        return float(min(max(value, 0.0), 1.0))

    def loss_multiplicity(self, params: Mapping[str, float]) -> float:
        """How many times the group's insertion loss appears on the critical path."""
        value = self.loss_multiplier.evaluate(params)
        return float(max(value, 0.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArchInstance({self.name!r}, device={self.device!r}, role={self.role.value}, "
            f"count={self.count.expression!r}, activity={self.activity.value})"
        )
