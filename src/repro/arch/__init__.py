"""SimPhony-Arch: hierarchical, parametric heterogeneous EPIC architecture builder.

An :class:`~repro.arch.architecture.Architecture` bundles

- an :class:`~repro.arch.architecture.ArchitectureConfig` (tiles ``R``, cores per
  tile ``C``, core height ``H`` and width ``W``, wavelengths, clock, bitwidths);
- a device library;
- a list of :class:`~repro.arch.instance.ArchInstance` records -- device groups with
  symbolic count / loss-multiplier / duty scaling rules;
- a *node* netlist (the minimal dot-product building block, used for layout-aware
  area) and a *link* netlist (the laser-to-detector chain, used for link budget);
- a :class:`~repro.arch.taxonomy.PTCTaxonomyEntry` describing operand ranges and
  reconfiguration behaviour (Table I of the paper);
- a :class:`~repro.arch.dataflow_spec.DataflowSpec` describing which hardware
  dimensions parallelize the GEMM M/N/K loops.

Template architectures (TeMPO, Clements MZI mesh, MRR weight bank, butterfly mesh,
PCM crossbar, SCATTER, Lightening-Transformer) live in :mod:`repro.arch.templates`.
"""

from repro.arch.architecture import Architecture, ArchitectureConfig
from repro.arch.instance import Activity, ArchInstance, Role
from repro.arch.dataflow_spec import Dataflow, DataflowSpec
from repro.arch.taxonomy import (
    OperandRange,
    PTCTaxonomyEntry,
    ReconfigSpeed,
    TABLE_I,
    forwards_required,
)

__all__ = [
    "Architecture",
    "ArchitectureConfig",
    "Activity",
    "ArchInstance",
    "Role",
    "Dataflow",
    "DataflowSpec",
    "OperandRange",
    "PTCTaxonomyEntry",
    "ReconfigSpeed",
    "TABLE_I",
    "forwards_required",
]
