"""Architecture: the hierarchical, parametric description of an EPIC AI accelerator.

An architecture is a *description*, not a behavioural model: it bundles the device
library, the symbolic device-instance groups, the node/link netlists, the PTC
taxonomy entry and the dataflow specification.  The analyzers in :mod:`repro.core`
consume this description together with a workload to produce latency, energy, area
and link-budget numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.arch.dataflow_spec import Dataflow, DataflowSpec
from repro.arch.instance import Activity, ArchInstance, Role
from repro.arch.taxonomy import PTCTaxonomyEntry, TABLE_I
from repro.devices.library import DeviceLibrary
from repro.netlist.dag import CircuitDAG, CriticalPath
from repro.netlist.netlist import Netlist


@dataclass
class ArchitectureConfig:
    """Parametric description of a multi-tile, multi-core PTC accelerator.

    Parameters follow the paper's notation: ``num_tiles`` (R), ``cores_per_tile``
    (C), ``core_height`` (H), ``core_width`` (W).  ``num_wavelengths`` is the WDM
    parallelism (LAMBDA in scaling rules), ``temporal_accumulation`` the analog
    integration window in cycles (T_ACC).
    """

    num_tiles: int = 2
    cores_per_tile: int = 2
    core_height: int = 4
    core_width: int = 4
    num_wavelengths: int = 1
    frequency_ghz: float = 5.0
    input_bits: int = 8
    weight_bits: int = 8
    output_bits: int = 8
    temporal_accumulation: int = 1
    name: str = "ptc"

    def __post_init__(self) -> None:
        for label, value in (
            ("num_tiles", self.num_tiles),
            ("cores_per_tile", self.cores_per_tile),
            ("core_height", self.core_height),
            ("core_width", self.core_width),
            ("num_wavelengths", self.num_wavelengths),
            ("temporal_accumulation", self.temporal_accumulation),
        ):
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{label} must be a positive integer, got {value!r}")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        for label, bits in (
            ("input_bits", self.input_bits),
            ("weight_bits", self.weight_bits),
            ("output_bits", self.output_bits),
        ):
            if not isinstance(bits, int) or bits < 1:
                raise ValueError(f"{label} must be a positive integer, got {bits!r}")

    # -- derived quantities -----------------------------------------------------
    @property
    def num_cores(self) -> int:
        return self.num_tiles * self.cores_per_tile

    @property
    def num_nodes(self) -> int:
        """Total dot-product nodes across the architecture (R*C*H*W)."""
        return self.num_cores * self.core_height * self.core_width

    @property
    def cycle_time_ns(self) -> float:
        return 1.0 / self.frequency_ghz

    def scaling_params(self) -> Dict[str, float]:
        """Parameter dictionary consumed by :class:`~repro.netlist.scaling.ScalingRule`."""
        return {
            "R": float(self.num_tiles),
            "C": float(self.cores_per_tile),
            "H": float(self.core_height),
            "W": float(self.core_width),
            "LAMBDA": float(self.num_wavelengths),
            "T_ACC": float(self.temporal_accumulation),
            "B_IN": float(self.input_bits),
            "B_W": float(self.weight_bits),
            "B_OUT": float(self.output_bits),
            "FREQ": float(self.frequency_ghz),
        }


class Architecture:
    """A complete parametric EPIC accelerator description."""

    def __init__(
        self,
        name: str,
        config: ArchitectureConfig,
        library: DeviceLibrary,
        instances: Iterable[ArchInstance],
        link_netlist: Netlist,
        node_netlist: Optional[Netlist] = None,
        taxonomy: Optional[PTCTaxonomyEntry] = None,
        dataflow: Optional[DataflowSpec] = None,
        node_device_spacing_um: float = 5.0,
        node_boundary_um: float = 10.0,
    ) -> None:
        self.name = name
        self.config = config
        self.library = library
        self.instances: List[ArchInstance] = list(instances)
        if not self.instances:
            raise ValueError(f"architecture {name!r} needs at least one ArchInstance")
        names = [inst.name for inst in self.instances]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate ArchInstance names: {sorted(duplicates)}")
        self.link_netlist = link_netlist
        self.node_netlist = node_netlist
        self.taxonomy = taxonomy or TABLE_I["tempo"]
        self.dataflow = dataflow or DataflowSpec()
        self.node_device_spacing_um = node_device_spacing_um
        self.node_boundary_um = node_boundary_um
        self._validate()

    def _validate(self) -> None:
        known_devices = set(self.library.names())
        for inst in self.instances:
            if not inst.is_composite and inst.device not in known_devices:
                raise KeyError(
                    f"ArchInstance {inst.name!r} references unknown device {inst.device!r}"
                )
        self.link_netlist.validate()
        if self.node_netlist is not None:
            self.node_netlist.validate(device_names=known_devices)

    # -- parameters ----------------------------------------------------------------
    @property
    def params(self) -> Dict[str, float]:
        return self.config.scaling_params()

    @property
    def frequency_ghz(self) -> float:
        return self.config.frequency_ghz

    # -- instance queries ------------------------------------------------------------
    def instance(self, name: str) -> ArchInstance:
        for inst in self.instances:
            if inst.name == name:
                return inst
        raise KeyError(f"architecture {self.name!r} has no ArchInstance {name!r}")

    def instances_by_role(self, role: Role) -> List[ArchInstance]:
        return [inst for inst in self.instances if inst.role is role]

    def device_counts(self) -> Dict[str, int]:
        """Physical instance count per ArchInstance group for the current parameters."""
        params = self.params
        return {inst.name: inst.instance_count(params) for inst in self.instances}

    def total_device_count(self) -> int:
        return sum(self.device_counts().values())

    # -- area (naive; layout-aware analysis lives in repro.core.area) ---------------
    def footprint_breakdown_um2(self) -> Dict[str, float]:
        """Naive device-footprint-sum area per group (layout-unaware baseline).

        Composite node groups use the sum of their node-netlist device footprints.
        """
        params = self.params
        breakdown: Dict[str, float] = {}
        for inst in self.instances:
            if not inst.count_in_area:
                continue
            count = inst.instance_count(params)
            if inst.is_composite:
                unit_area = self.node_footprint_sum_um2()
            else:
                unit_area = self.library.get(inst.device).area_um2
            breakdown[inst.name] = breakdown.get(inst.name, 0.0) + unit_area * count
        return breakdown

    def node_footprint_sum_um2(self) -> float:
        """Sum of device footprints inside the node netlist (no layout awareness)."""
        if self.node_netlist is None:
            return 0.0
        return sum(
            self.library.get(inst.device).area_um2
            for inst in self.node_netlist.instances.values()
        )

    # -- link budget -------------------------------------------------------------------
    def loss_multipliers(self) -> Dict[str, float]:
        """Per-link-netlist-instance loss multiplicities evaluated at current params."""
        params = self.params
        by_name = {inst.name: inst for inst in self.instances}
        multipliers: Dict[str, float] = {}
        for netlist_inst in self.link_netlist.instances.values():
            arch_inst = by_name.get(netlist_inst.name)
            if arch_inst is not None:
                multipliers[netlist_inst.name] = arch_inst.loss_multiplicity(params)
        return multipliers

    def circuit_dag(self) -> CircuitDAG:
        """Weighted DAG of the link netlist with parametric loss multiplicities."""
        return CircuitDAG(
            self.link_netlist, self.library, loss_multipliers=self.loss_multipliers()
        )

    def critical_path(self) -> CriticalPath:
        return self.circuit_dag().critical_path()

    def critical_path_loss_db(self) -> float:
        return self.critical_path().insertion_loss_db

    # -- compute capability ----------------------------------------------------------
    def macs_per_cycle(self) -> int:
        return self.dataflow.macs_per_cycle(self.params)

    def peak_ops_per_second(self) -> float:
        """Peak throughput in MAC operations per second (2 ops per MAC not counted)."""
        return self.macs_per_cycle() * self.config.frequency_ghz * 1e9

    @property
    def forwards_per_output(self) -> int:
        """Range-restriction latency multiplier I from Table I."""
        return self.taxonomy.num_forwards

    def weight_reconfig_time_ns(self) -> float:
        """Worst-case weight reprogramming time over the weight-encoder devices."""
        times = [
            self.library.get(inst.device).reconfig_time_ns
            for inst in self.instances_by_role(Role.WEIGHT_ENCODER)
            if not inst.is_composite
        ]
        return max(times, default=0.0)

    def weight_reconfig_cycles(self) -> int:
        """Reconfiguration penalty in whole cycles (0 when it fits in one cycle)."""
        reconfig_ns = self.weight_reconfig_time_ns()
        cycles = reconfig_ns * self.config.frequency_ghz
        return int(cycles) if cycles > 1.0 else 0

    # -- energy helpers ----------------------------------------------------------------
    def energy_instances(self) -> List[ArchInstance]:
        return [inst for inst in self.instances if inst.count_in_energy]

    def area_instances(self) -> List[ArchInstance]:
        return [inst for inst in self.instances if inst.count_in_area]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cfg = self.config
        return (
            f"Architecture({self.name!r}, R={cfg.num_tiles}, C={cfg.cores_per_tile}, "
            f"H={cfg.core_height}, W={cfg.core_width}, lambda={cfg.num_wavelengths}, "
            f"f={cfg.frequency_ghz}GHz)"
        )


@dataclass
class HeterogeneousArchitecture:
    """A set of named sub-architectures sharing one memory hierarchy.

    Layers are routed to sub-architectures by the heterogeneous mapper
    (:mod:`repro.dataflow.scheduler`), reproducing the paper's Fig. 11 use case
    (convolutions on SCATTER, linear layers on an MZI mesh).
    """

    name: str
    subarchs: Dict[str, Architecture] = field(default_factory=dict)

    def add(self, key: str, arch: Architecture) -> None:
        if key in self.subarchs:
            raise KeyError(f"sub-architecture {key!r} already present")
        self.subarchs[key] = arch

    def get(self, key: str) -> Architecture:
        try:
            return self.subarchs[key]
        except KeyError:
            known = ", ".join(sorted(self.subarchs))
            raise KeyError(f"unknown sub-architecture {key!r}; known: {known}") from None

    def __contains__(self, key: str) -> bool:
        return key in self.subarchs

    def __iter__(self):
        return iter(self.subarchs.items())

    def __len__(self) -> int:
        return len(self.subarchs)
