"""Base device model shared by all SimPhony-DevLib devices.

A device is characterized by:

- geometry (``width_um`` x ``height_um``), used by the layout-aware area analyzer;
- optical insertion loss in dB, used by the link-budget analyzer;
- static (always-on) power in mW;
- per-operation dynamic energy in pJ (per conversion for data converters, per
  symbol for modulators, ...);
- operating latency and reconfiguration time in ns, used by the latency analyzer;
- an optional data-dependent power response, used by the data-aware energy analyzer.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

from repro.devices.response import ConstantPower, PowerResponse


class DeviceCategory(str, Enum):
    """Coarse device category used for breakdown grouping and library filtering."""

    ELECTRICAL = "electrical"
    PHOTONIC = "photonic"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DeviceSpec:
    """Immutable record of a device's physical and electrical characteristics.

    All quantities use the canonical units from :mod:`repro.utils.units`:
    micrometers, milliwatts, picojoules, nanoseconds, decibels.
    """

    name: str
    category: DeviceCategory
    width_um: float
    height_um: float
    insertion_loss_db: float = 0.0
    static_power_mw: float = 0.0
    energy_per_op_pj: float = 0.0
    latency_ns: float = 0.0
    reconfig_time_ns: float = 0.0
    max_frequency_ghz: float = 0.0
    bit_resolution: int = 0
    description: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width_um < 0 or self.height_um < 0:
            raise ValueError(
                f"device {self.name!r}: dimensions must be non-negative, "
                f"got {self.width_um} x {self.height_um}"
            )
        if self.insertion_loss_db < 0:
            raise ValueError(
                f"device {self.name!r}: insertion loss must be non-negative, "
                f"got {self.insertion_loss_db} dB"
            )
        if self.static_power_mw < 0 or self.energy_per_op_pj < 0:
            raise ValueError(
                f"device {self.name!r}: power/energy must be non-negative"
            )

    @property
    def footprint_um2(self) -> float:
        """Bounding-box area of a single device instance in um^2."""
        return self.width_um * self.height_um

    def replace(self, **overrides: Any) -> "DeviceSpec":
        """Return a copy of the spec with the given fields replaced."""
        return dataclasses.replace(self, **overrides)


class Device:
    """A concrete device model: a spec plus an optional data-dependent power response.

    Subclasses expose physically meaningful constructor arguments and translate them
    into a :class:`DeviceSpec`.  The base class provides the uniform interface the
    analyzers rely on, so user-defined devices only need to build a spec (and,
    optionally, a response).
    """

    def __init__(
        self,
        spec: DeviceSpec,
        response: Optional[PowerResponse] = None,
    ) -> None:
        self.spec = spec
        self.response = response if response is not None else ConstantPower(
            spec.static_power_mw
        )

    # -- identity -------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def category(self) -> DeviceCategory:
        return self.spec.category

    def is_photonic(self) -> bool:
        return self.spec.category is DeviceCategory.PHOTONIC

    def is_electrical(self) -> bool:
        return self.spec.category is DeviceCategory.ELECTRICAL

    # -- geometry ------------------------------------------------------------
    @property
    def width_um(self) -> float:
        return self.spec.width_um

    @property
    def height_um(self) -> float:
        return self.spec.height_um

    @property
    def area_um2(self) -> float:
        return self.spec.footprint_um2

    # -- optics ----------------------------------------------------------------
    @property
    def insertion_loss_db(self) -> float:
        return self.spec.insertion_loss_db

    # -- power / energy --------------------------------------------------------
    @property
    def static_power_mw(self) -> float:
        return self.spec.static_power_mw

    @property
    def energy_per_op_pj(self) -> float:
        return self.spec.energy_per_op_pj

    def power_mw(self, value: Optional[float] = None) -> float:
        """Instantaneous power when the device encodes ``value``.

        ``value`` is the normalized operand routed to the device (a weight,
        transmission, or phase in the device's native encoding).  When ``value`` is
        ``None``, the device's nominal (data-unaware) power -- the worst case used by
        conventional simulators -- is returned.
        """
        if value is None:
            return self.nominal_power_mw()
        return self.response.power_mw(value)

    def nominal_power_mw(self) -> float:
        """Data-unaware power: the response's maximum plus any static bias floor."""
        return max(self.response.max_power_mw(), self.spec.static_power_mw)

    def energy_per_cycle_pj(self, frequency_ghz: float, value: Optional[float] = None) -> float:
        """Energy consumed during one clock cycle at ``frequency_ghz``.

        Combines the (possibly data-dependent) power integrated over one cycle with
        the per-operation dynamic energy of the device.
        """
        if frequency_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_ghz!r} GHz")
        cycle_ns = 1.0 / frequency_ghz
        return self.power_mw(value) * cycle_ns + self.spec.energy_per_op_pj

    # -- timing ----------------------------------------------------------------
    @property
    def latency_ns(self) -> float:
        return self.spec.latency_ns

    @property
    def reconfig_time_ns(self) -> float:
        return self.spec.reconfig_time_ns

    # -- customization ----------------------------------------------------------
    def scaled(self, **overrides: Any) -> "Device":
        """Return a copy of this device with spec fields replaced.

        This is the plug-in point for foundry-PDK data: users clone a library device
        and override measured footprint, loss or power numbers.
        """
        return Device(self.spec.replace(**overrides), response=self.response)

    def with_response(self, response: PowerResponse) -> "Device":
        """Return a copy of this device with a different power response."""
        return Device(self.spec, response=response)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.__class__.__name__}(name={self.spec.name!r}, "
            f"category={self.spec.category.value}, "
            f"area={self.area_um2:.1f}um2, IL={self.insertion_loss_db}dB)"
        )
