"""Electrical device models: data converters, analog front-end, digital control.

The headline feature (per the paper) is *power scaling with customized sampling
rates and bit resolutions*: DAC/ADC power follows the standard figure-of-merit model

    P = FoM * 2^bits * f_sample

so quantization-aware co-design experiments (Fig. 9b) can sweep the bitwidth and see
the converter power move accordingly.  All default figures of merit and footprints
are taken from the device assumptions of the reference designs the paper validates
against (TeMPO, Lightening-Transformer) and can be overridden per instance.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.base import Device, DeviceCategory, DeviceSpec
from repro.devices.response import ConstantPower


class DAC(Device):
    """Digital-to-analog converter driving an optical modulator.

    Power model: ``P = fom_fj_per_conv_step * 2^bits * f_sample`` (plus a small
    static bias).  The default 12.5 fJ/conversion-step figure of merit corresponds to
    a moderate-speed current-steering DAC in a 28-45 nm node.
    """

    DEFAULT_FOM_FJ = 12.5

    def __init__(
        self,
        bits: int = 8,
        sampling_rate_ghz: float = 5.0,
        fom_fj_per_conv_step: float = DEFAULT_FOM_FJ,
        static_power_mw: float = 0.1,
        width_um: float = 50.0,
        height_um: float = 50.0,
        name: str = "dac",
    ) -> None:
        if bits <= 0:
            raise ValueError(f"DAC bit resolution must be positive, got {bits}")
        if sampling_rate_ghz <= 0:
            raise ValueError("DAC sampling rate must be positive")
        self.bits = bits
        self.sampling_rate_ghz = sampling_rate_ghz
        self.fom_fj_per_conv_step = fom_fj_per_conv_step
        # energy per conversion in pJ: FoM[fJ] * 2^bits / 1000
        energy_per_conv_pj = fom_fj_per_conv_step * (2**bits) * 1e-3
        dynamic_power_mw = energy_per_conv_pj * sampling_rate_ghz
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.ELECTRICAL,
            width_um=width_um,
            height_um=height_um,
            static_power_mw=static_power_mw + dynamic_power_mw,
            energy_per_op_pj=0.0,
            latency_ns=1.0 / sampling_rate_ghz,
            max_frequency_ghz=sampling_rate_ghz,
            bit_resolution=bits,
            description=f"{bits}-bit DAC @ {sampling_rate_ghz} GS/s",
        )
        super().__init__(spec, response=ConstantPower(spec.static_power_mw))

    @property
    def energy_per_conversion_pj(self) -> float:
        """Energy for one D/A conversion at the configured resolution."""
        return self.fom_fj_per_conv_step * (2**self.bits) * 1e-3

    def rescaled(self, bits: Optional[int] = None, sampling_rate_ghz: Optional[float] = None) -> "DAC":
        """Return a new DAC with a different resolution and/or sampling rate."""
        return DAC(
            bits=bits if bits is not None else self.bits,
            sampling_rate_ghz=(
                sampling_rate_ghz if sampling_rate_ghz is not None else self.sampling_rate_ghz
            ),
            fom_fj_per_conv_step=self.fom_fj_per_conv_step,
            width_um=self.spec.width_um,
            height_um=self.spec.height_um,
            name=self.spec.name,
        )


class ADC(Device):
    """Analog-to-digital converter at the photodetector readout.

    Power model follows the Walden figure of merit: ``P = FoM * 2^bits * f_sample``.
    ADCs typically dominate the electrical power of analog AI accelerators, which is
    why bit-resolution sweeps (Fig. 9b) matter.
    """

    DEFAULT_FOM_FJ = 30.0

    def __init__(
        self,
        bits: int = 8,
        sampling_rate_ghz: float = 5.0,
        fom_fj_per_conv_step: float = DEFAULT_FOM_FJ,
        static_power_mw: float = 0.2,
        width_um: float = 100.0,
        height_um: float = 80.0,
        name: str = "adc",
    ) -> None:
        if bits <= 0:
            raise ValueError(f"ADC bit resolution must be positive, got {bits}")
        if sampling_rate_ghz <= 0:
            raise ValueError("ADC sampling rate must be positive")
        self.bits = bits
        self.sampling_rate_ghz = sampling_rate_ghz
        self.fom_fj_per_conv_step = fom_fj_per_conv_step
        energy_per_conv_pj = fom_fj_per_conv_step * (2**bits) * 1e-3
        dynamic_power_mw = energy_per_conv_pj * sampling_rate_ghz
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.ELECTRICAL,
            width_um=width_um,
            height_um=height_um,
            static_power_mw=static_power_mw + dynamic_power_mw,
            energy_per_op_pj=0.0,
            latency_ns=1.0 / sampling_rate_ghz,
            max_frequency_ghz=sampling_rate_ghz,
            bit_resolution=bits,
            description=f"{bits}-bit ADC @ {sampling_rate_ghz} GS/s",
        )
        super().__init__(spec, response=ConstantPower(spec.static_power_mw))

    @property
    def energy_per_conversion_pj(self) -> float:
        return self.fom_fj_per_conv_step * (2**self.bits) * 1e-3

    def rescaled(self, bits: Optional[int] = None, sampling_rate_ghz: Optional[float] = None) -> "ADC":
        return ADC(
            bits=bits if bits is not None else self.bits,
            sampling_rate_ghz=(
                sampling_rate_ghz if sampling_rate_ghz is not None else self.sampling_rate_ghz
            ),
            fom_fj_per_conv_step=self.fom_fj_per_conv_step,
            width_um=self.spec.width_um,
            height_um=self.spec.height_um,
            name=self.spec.name,
        )


class TIA(Device):
    """Transimpedance amplifier converting photocurrent to voltage before the ADC."""

    def __init__(
        self,
        power_mw: float = 3.0,
        bandwidth_ghz: float = 10.0,
        width_um: float = 60.0,
        height_um: float = 50.0,
        name: str = "tia",
    ) -> None:
        if power_mw < 0:
            raise ValueError("TIA power must be non-negative")
        self.bandwidth_ghz = bandwidth_ghz
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.ELECTRICAL,
            width_um=width_um,
            height_um=height_um,
            static_power_mw=power_mw,
            latency_ns=1.0 / bandwidth_ghz if bandwidth_ghz > 0 else 0.0,
            max_frequency_ghz=bandwidth_ghz,
            description=f"TIA, {bandwidth_ghz} GHz bandwidth",
        )
        super().__init__(spec)


class Integrator(Device):
    """Analog temporal integrator accumulating photocurrent over multiple cycles.

    Used by time-integrating PTCs (e.g. TeMPO) for analog sequential accumulation
    before a single A/D conversion, reducing ADC activity.
    """

    def __init__(
        self,
        power_mw: float = 0.8,
        max_integration_cycles: int = 32,
        width_um: float = 40.0,
        height_um: float = 40.0,
        name: str = "integrator",
    ) -> None:
        if max_integration_cycles <= 0:
            raise ValueError("max_integration_cycles must be positive")
        self.max_integration_cycles = max_integration_cycles
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.ELECTRICAL,
            width_um=width_um,
            height_um=height_um,
            static_power_mw=power_mw,
            description=f"analog integrator (up to {max_integration_cycles} cycles)",
        )
        super().__init__(spec)


class DigitalControl(Device):
    """Digital control / partial-sum accumulation logic (per tile).

    Models the small digital block that performs sequential partial-sum accumulation
    in the local buffer and drives the configuration state machine.
    """

    def __init__(
        self,
        power_mw: float = 2.0,
        width_um: float = 100.0,
        height_um: float = 100.0,
        name: str = "digital_control",
    ) -> None:
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.ELECTRICAL,
            width_um=width_um,
            height_um=height_um,
            static_power_mw=power_mw,
            description="digital control and partial-sum accumulation logic",
        )
        super().__init__(spec)
