"""Data-dependent device power-response models.

The paper's Fig. 5 distinguishes three fidelity levels for analog device power:

1. *data-independent* -- a single nominal (usually worst-case) power number;
2. *data-dependent with an analytical model* -- e.g. a thermo-optic phase shifter
   dissipating ``P_pi * phi / pi`` for phase ``phi``;
3. *data-dependent with simulated / measured curves* -- tabulated power-vs-setting
   data from Lumerical HEAT runs or chip measurements, interpolated at runtime.

All three are expressed here as :class:`PowerResponse` subclasses mapping the encoded
operand value to instantaneous power in mW.  The energy analyzer evaluates the
response on the *actual workload values* when running in data-aware mode.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


class PowerResponse:
    """Maps an encoded operand value to instantaneous device power (mW)."""

    def power_mw(self, value: float) -> float:
        raise NotImplementedError

    def max_power_mw(self) -> float:
        """Worst-case power over the valid operating range (data-unaware fallback)."""
        raise NotImplementedError

    def average_power_mw(self, values: Sequence[float]) -> float:
        """Mean power over a batch of encoded values (vectorized when possible)."""
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return 0.0
        return float(np.mean([self.power_mw(float(v)) for v in arr.ravel()]))


class ConstantPower(PowerResponse):
    """Data-independent power: the same value regardless of the encoded operand."""

    def __init__(self, power_mw: float) -> None:
        if power_mw < 0:
            raise ValueError(f"power must be non-negative, got {power_mw!r}")
        self._power_mw = power_mw

    def power_mw(self, value: float) -> float:
        return self._power_mw

    def max_power_mw(self) -> float:
        return self._power_mw

    def average_power_mw(self, values: Sequence[float]) -> float:
        return self._power_mw if len(np.atleast_1d(values)) else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConstantPower({self._power_mw} mW)"


class LinearResponse(PowerResponse):
    """Analytical linear response ``P = P_max * |value| / value_range``.

    Models devices whose dissipation is proportional to the encoded magnitude, e.g.
    a thermo-optic phase shifter driven with pulse-width modulation, or current-mode
    drivers.  ``value`` outside ``[-value_range, value_range]`` is clipped.
    """

    def __init__(self, max_power_mw: float, value_range: float = 1.0) -> None:
        if max_power_mw < 0:
            raise ValueError("max_power_mw must be non-negative")
        if value_range <= 0:
            raise ValueError("value_range must be positive")
        self._max_power_mw = max_power_mw
        self._value_range = value_range

    def power_mw(self, value: float) -> float:
        frac = min(abs(value) / self._value_range, 1.0)
        return self._max_power_mw * frac

    def max_power_mw(self) -> float:
        return self._max_power_mw

    def average_power_mw(self, values: Sequence[float]) -> float:
        arr = np.abs(np.asarray(values, dtype=float))
        if arr.size == 0:
            return 0.0
        frac = np.minimum(arr / self._value_range, 1.0)
        return float(self._max_power_mw * frac.mean())


class PolynomialResponse(PowerResponse):
    """Analytical polynomial response ``P = sum_k c_k * |value|^k`` clipped at >= 0.

    Covers electro-optic drivers whose power grows with the square of the drive
    swing (``P ~ C V^2 f``) and other smooth analytical device models.
    """

    def __init__(self, coefficients: Sequence[float], value_range: float = 1.0) -> None:
        if not len(coefficients):
            raise ValueError("need at least one coefficient")
        if value_range <= 0:
            raise ValueError("value_range must be positive")
        self._coeffs = np.asarray(coefficients, dtype=float)
        self._value_range = value_range

    def _eval(self, magnitude: np.ndarray) -> np.ndarray:
        powers = np.stack(
            [magnitude**k for k in range(len(self._coeffs))], axis=0
        )
        return np.maximum(np.tensordot(self._coeffs, powers, axes=1), 0.0)

    def power_mw(self, value: float) -> float:
        mag = min(abs(value) / self._value_range, 1.0)
        return float(self._eval(np.asarray([mag]))[0])

    def max_power_mw(self) -> float:
        # The polynomial is evaluated on [0, 1]; sample densely for a robust bound.
        mags = np.linspace(0.0, 1.0, 257)
        return float(self._eval(mags).max())

    def average_power_mw(self, values: Sequence[float]) -> float:
        arr = np.abs(np.asarray(values, dtype=float)).ravel()
        if arr.size == 0:
            return 0.0
        mags = np.minimum(arr / self._value_range, 1.0)
        return float(self._eval(mags).mean())


class TabulatedResponse(PowerResponse):
    """Measured / simulated power curve with linear interpolation.

    ``settings`` are the encoded operand values at which the power was characterized
    (e.g. normalized transmission levels or phase settings); ``powers_mw`` the
    corresponding measured powers.  Queries outside the characterized range clamp to
    the endpoints, matching how measured curves are used in practice.
    """

    def __init__(self, settings: Sequence[float], powers_mw: Sequence[float]) -> None:
        settings_arr = np.asarray(settings, dtype=float)
        powers_arr = np.asarray(powers_mw, dtype=float)
        if settings_arr.ndim != 1 or settings_arr.size < 2:
            raise ValueError("need at least two characterization points")
        if settings_arr.shape != powers_arr.shape:
            raise ValueError("settings and powers must have the same length")
        if np.any(np.diff(settings_arr) <= 0):
            raise ValueError("settings must be strictly increasing")
        if np.any(powers_arr < 0):
            raise ValueError("measured powers must be non-negative")
        self._settings = settings_arr
        self._powers = powers_arr

    def power_mw(self, value: float) -> float:
        return float(np.interp(value, self._settings, self._powers))

    def max_power_mw(self) -> float:
        return float(self._powers.max())

    def average_power_mw(self, values: Sequence[float]) -> float:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return 0.0
        return float(np.interp(arr, self._settings, self._powers).mean())


class QuadraticPhaseShifterResponse(PowerResponse):
    """Thermo-optic phase shifter: heater power for a target phase shift.

    A TO phase shifter reaches phase ``phi`` with heater power
    ``P = P_pi * (phi / pi)`` under the common linear phase-vs-power assumption; the
    encoded *weight* value, however, maps to phase through the interferometer's
    transfer function ``w = cos(phi)`` (magnitude encoding) so
    ``phi = arccos(clip(w))`` and the dissipated power is sub-linear in ``|w|``.
    This is the "rigorous device power model" used for SCATTER-style weight-static
    PTCs in Fig. 10(b).
    """

    def __init__(self, p_pi_mw: float, value_range: float = 1.0) -> None:
        if p_pi_mw < 0:
            raise ValueError("p_pi_mw must be non-negative")
        if value_range <= 0:
            raise ValueError("value_range must be positive")
        self._p_pi_mw = p_pi_mw
        self._value_range = value_range

    def _phase(self, magnitudes: np.ndarray) -> np.ndarray:
        clipped = np.clip(magnitudes / self._value_range, 0.0, 1.0)
        return np.arccos(clipped)

    def power_mw(self, value: float) -> float:
        phase = self._phase(np.asarray([abs(value)]))[0]
        return float(self._p_pi_mw * phase / np.pi)

    def max_power_mw(self) -> float:
        # Worst case is a zero-magnitude weight (phase pi/2 .. here arccos(0)=pi/2)
        # only when restricted to magnitude encoding; the true worst case over the
        # full phase range is P_pi.
        return self._p_pi_mw

    def average_power_mw(self, values: Sequence[float]) -> float:
        arr = np.abs(np.asarray(values, dtype=float)).ravel()
        if arr.size == 0:
            return 0.0
        phases = self._phase(arr)
        return float((self._p_pi_mw * phases / np.pi).mean())


def response_from_callable(fn: Callable[[float], float], max_power_mw: float) -> PowerResponse:
    """Wrap an arbitrary python callable as a :class:`PowerResponse`.

    Convenience hook for users who want to plug in their own analytical model
    without subclassing.
    """

    class _CallableResponse(PowerResponse):
        def power_mw(self, value: float) -> float:
            return max(float(fn(value)), 0.0)

        def max_power_mw(self) -> float:
            return max_power_mw

    return _CallableResponse()
