"""Device library: a named registry of device models.

The library is the hand-off point between the device layer and the architecture
layer: architecture templates refer to devices *by name* ("dac", "mzm", ...) so that
users can swap in foundry-PDK characterized devices -- or simply devices with
different bit resolution / sampling rate -- without touching the circuit topology.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional

from repro.devices.base import Device, DeviceCategory
from repro.devices.electrical import ADC, DAC, TIA, DigitalControl, Integrator
from repro.devices.photonic import (
    DirectionalCoupler,
    FiberCoupler,
    Laser,
    MachZehnderModulator,
    MicroCombSource,
    MicroRingModulator,
    MicroRingResonator,
    MMICoupler,
    MZIPhaseShifter,
    PCMCell,
    Photodetector,
    ThermoOpticPhaseShifter,
    WaveguideCrossing,
    WDMMux,
    YBranch,
)


class DeviceLibrary:
    """A mutable, named collection of :class:`~repro.devices.base.Device` models."""

    def __init__(self, devices: Optional[Iterable[Device]] = None, name: str = "custom") -> None:
        self.name = name
        self._devices: Dict[str, Device] = {}
        for device in devices or []:
            self.register(device)

    # -- construction -----------------------------------------------------------
    @classmethod
    def default(
        cls,
        adc_bits: int = 8,
        dac_bits: int = 8,
        frequency_ghz: float = 5.0,
        num_wavelengths: int = 1,
    ) -> "DeviceLibrary":
        """Build the default SimPhony-DevLib with converters sized for the system clock.

        ``frequency_ghz`` sets the converter sampling rate (one conversion per PTC
        cycle) so that bitwidth/frequency sweeps propagate into DAC/ADC power, the
        behaviour exercised by Fig. 9(b).
        """
        devices = [
            Laser(name="laser"),
            MicroCombSource(num_wavelengths=max(num_wavelengths, 1), name="microcomb"),
            FiberCoupler(name="coupler"),
            DAC(bits=dac_bits, sampling_rate_ghz=frequency_ghz, name="dac"),
            ADC(bits=adc_bits, sampling_rate_ghz=frequency_ghz, name="adc"),
            TIA(name="tia"),
            Integrator(name="integrator"),
            DigitalControl(name="digital_control"),
            MachZehnderModulator(name="mzm"),
            MZIPhaseShifter(name="mzi"),
            ThermoOpticPhaseShifter(name="phase_shifter"),
            MicroRingResonator(name="mrr"),
            MicroRingModulator(name="mrm"),
            Photodetector(name="pd"),
            YBranch(name="y_branch"),
            DirectionalCoupler(name="directional_coupler"),
            MMICoupler(name="mmi"),
            WaveguideCrossing(name="crossing"),
            PCMCell(name="pcm"),
            WDMMux(num_channels=max(num_wavelengths, 1), name="wdm_mux"),
        ]
        return cls(devices, name="simphony-devlib-default")

    # -- registry protocol --------------------------------------------------------
    def register(self, device: Device, overwrite: bool = True) -> None:
        """Add ``device`` to the library under ``device.name``."""
        if not overwrite and device.name in self._devices:
            raise KeyError(f"device {device.name!r} already registered")
        self._devices[device.name] = device

    def get(self, name: str) -> Device:
        """Look up a device by name; raises ``KeyError`` with the known names listed."""
        try:
            return self._devices[name]
        except KeyError:
            known = ", ".join(sorted(self._devices))
            raise KeyError(f"unknown device {name!r}; library contains: {known}") from None

    def __getitem__(self, name: str) -> Device:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._devices

    def __iter__(self) -> Iterator[str]:
        return iter(self._devices)

    def __len__(self) -> int:
        return len(self._devices)

    def names(self) -> Iterable[str]:
        return sorted(self._devices)

    def devices(self) -> Iterable[Device]:
        return list(self._devices.values())

    # -- filtering / customization --------------------------------------------------
    def photonic_devices(self) -> Dict[str, Device]:
        return {
            name: dev
            for name, dev in self._devices.items()
            if dev.category is DeviceCategory.PHOTONIC
        }

    def electrical_devices(self) -> Dict[str, Device]:
        return {
            name: dev
            for name, dev in self._devices.items()
            if dev.category is DeviceCategory.ELECTRICAL
        }

    def copy(self, name: Optional[str] = None) -> "DeviceLibrary":
        """Shallow copy of the library (device models are immutable in practice)."""
        return DeviceLibrary(self._devices.values(), name=name or self.name)

    def override(self, name: str, **spec_overrides: object) -> "DeviceLibrary":
        """Return a copy of the library with one device's spec fields replaced.

        This is the recommended way to inject PDK-measured numbers, e.g.::

            lib = DeviceLibrary.default().override("mzm", insertion_loss_db=2.5)
        """
        new = self.copy()
        new.register(self.get(name).scaled(**spec_overrides))
        return new

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeviceLibrary(name={self.name!r}, devices={len(self._devices)})"
