"""Photonic device models: lasers, modulators, interferometers, detectors, passives.

Each device carries a footprint (for layout-aware area), an insertion loss (for link
budget), static/dynamic power, and -- for devices whose dissipation depends on the
encoded operand (phase shifters, ring tuners, PCM cells) -- a data-dependent
:class:`~repro.devices.response.PowerResponse`.

Default numbers are representative of the silicon-photonic reference designs the
paper validates against and are meant to be overridden by foundry-PDK data via
:meth:`~repro.devices.base.Device.scaled`.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.base import Device, DeviceCategory, DeviceSpec
from repro.devices.response import (
    ConstantPower,
    LinearResponse,
    PowerResponse,
    QuadraticPhaseShifterResponse,
)
from repro.utils.units import dbm_to_mw


class Laser(Device):
    """CW laser source.

    The optical output power is *not* fixed at construction time: the link-budget
    analyzer derives the minimum required optical power from the critical-path
    insertion loss (Eq. 1 of the paper) and then converts it to electrical power via
    the wall-plug efficiency stored here.
    """

    def __init__(
        self,
        wall_plug_efficiency: float = 0.2,
        default_output_dbm: float = 10.0,
        width_um: float = 400.0,
        height_um: float = 300.0,
        insertion_loss_db: float = 0.0,
        name: str = "laser",
    ) -> None:
        if not 0 < wall_plug_efficiency <= 1:
            raise ValueError(
                f"wall-plug efficiency must be in (0, 1], got {wall_plug_efficiency}"
            )
        self.wall_plug_efficiency = wall_plug_efficiency
        self.default_output_dbm = default_output_dbm
        electrical_power_mw = dbm_to_mw(default_output_dbm) / wall_plug_efficiency
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=width_um,
            height_um=height_um,
            insertion_loss_db=insertion_loss_db,
            static_power_mw=electrical_power_mw,
            description=f"CW laser, WPE={wall_plug_efficiency}",
        )
        super().__init__(spec)

    def electrical_power_mw(self, optical_power_mw: float) -> float:
        """Electrical power needed to emit ``optical_power_mw`` of light."""
        if optical_power_mw < 0:
            raise ValueError("optical power must be non-negative")
        return optical_power_mw / self.wall_plug_efficiency


class MicroCombSource(Laser):
    """Multi-wavelength micro-comb source used by WDM architectures.

    Behaves like a laser whose electrical power scales with the number of comb lines
    actually used; the per-line optical power is still set by the link budget.
    """

    def __init__(
        self,
        num_wavelengths: int = 12,
        wall_plug_efficiency: float = 0.1,
        default_output_dbm: float = 10.0,
        width_um: float = 600.0,
        height_um: float = 400.0,
        name: str = "microcomb",
    ) -> None:
        if num_wavelengths <= 0:
            raise ValueError("num_wavelengths must be positive")
        super().__init__(
            wall_plug_efficiency=wall_plug_efficiency,
            default_output_dbm=default_output_dbm,
            width_um=width_um,
            height_um=height_um,
            name=name,
        )
        self.num_wavelengths = num_wavelengths


class FiberCoupler(Device):
    """Fiber-to-chip coupler (edge or grating)."""

    def __init__(
        self,
        insertion_loss_db: float = 1.0,
        width_um: float = 40.0,
        height_um: float = 20.0,
        name: str = "coupler",
    ) -> None:
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=width_um,
            height_um=height_um,
            insertion_loss_db=insertion_loss_db,
            description="fiber-to-chip coupler",
        )
        super().__init__(spec)


class MachZehnderModulator(Device):
    """High-speed electro-optic Mach-Zehnder modulator (MZM) for operand encoding.

    Captures the properties the paper enumerates for precise modeling: spatial size,
    bandwidth, insertion loss, modulation efficiency (V_pi*L), static power,
    extinction ratio and drive energy per symbol.
    """

    def __init__(
        self,
        bandwidth_ghz: float = 50.0,
        insertion_loss_db: float = 4.0,
        extinction_ratio_db: float = 8.0,
        modulation_efficiency_v_cm: float = 1.0,
        drive_energy_fj_per_symbol: float = 50.0,
        static_power_mw: float = 0.5,
        width_um: float = 300.0,
        height_um: float = 25.0,
        name: str = "mzm",
    ) -> None:
        if bandwidth_ghz <= 0:
            raise ValueError("MZM bandwidth must be positive")
        if extinction_ratio_db <= 0:
            raise ValueError("extinction ratio must be positive")
        self.bandwidth_ghz = bandwidth_ghz
        self.extinction_ratio_db = extinction_ratio_db
        self.modulation_efficiency_v_cm = modulation_efficiency_v_cm
        self.drive_energy_fj_per_symbol = drive_energy_fj_per_symbol
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=width_um,
            height_um=height_um,
            insertion_loss_db=insertion_loss_db,
            static_power_mw=static_power_mw,
            energy_per_op_pj=drive_energy_fj_per_symbol * 1e-3,
            latency_ns=1.0 / bandwidth_ghz,
            max_frequency_ghz=bandwidth_ghz,
            description=(
                f"EO MZM, {bandwidth_ghz} GHz, ER={extinction_ratio_db} dB, "
                f"IL={insertion_loss_db} dB"
            ),
        )
        super().__init__(spec)


class ThermoOpticPhaseShifter(Device):
    """Thermo-optic phase shifter: slow (us-scale) but low-loss weight encoding.

    Data-dependent power follows the encoded weight magnitude through the
    interferometric transfer function (see
    :class:`~repro.devices.response.QuadraticPhaseShifterResponse`).  Used by
    weight-static PTCs (MZI meshes, SCATTER).
    """

    def __init__(
        self,
        p_pi_mw: float = 20.0,
        insertion_loss_db: float = 0.2,
        reconfig_time_ns: float = 10_000.0,
        width_um: float = 60.0,
        height_um: float = 20.0,
        response: Optional[PowerResponse] = None,
        name: str = "phase_shifter",
    ) -> None:
        if p_pi_mw < 0:
            raise ValueError("P_pi must be non-negative")
        self.p_pi_mw = p_pi_mw
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=width_um,
            height_um=height_um,
            insertion_loss_db=insertion_loss_db,
            static_power_mw=p_pi_mw,  # nominal (data-unaware) worst case
            reconfig_time_ns=reconfig_time_ns,
            description=f"thermo-optic phase shifter, P_pi={p_pi_mw} mW",
        )
        if response is None:
            response = QuadraticPhaseShifterResponse(p_pi_mw)
        super().__init__(spec, response=response)


class MZIPhaseShifter(ThermoOpticPhaseShifter):
    """2x2 Mach-Zehnder interferometer unit cell with two phase shifters.

    The MZI of a Clements/Reck mesh: a pair of phase shifters plus two 50:50
    couplers, lumped into a single device for netlist simplicity.  Power counts both
    phase shifters; the insertion loss includes the couplers.
    """

    def __init__(
        self,
        p_pi_mw: float = 20.0,
        insertion_loss_db: float = 0.33,
        reconfig_time_ns: float = 10_000.0,
        width_um: float = 150.0,
        height_um: float = 60.0,
        name: str = "mzi",
    ) -> None:
        super().__init__(
            p_pi_mw=2.0 * p_pi_mw,
            insertion_loss_db=insertion_loss_db,
            reconfig_time_ns=reconfig_time_ns,
            width_um=width_um,
            height_um=height_um,
            name=name,
        )


class MicroRingResonator(Device):
    """Micro-ring resonator weight element (MRR weight bank).

    Tuning power is data dependent: rings parked on resonance dissipate the most,
    so the response is linear in the detuning required by the encoded weight.
    """

    def __init__(
        self,
        tuning_power_mw: float = 4.0,
        insertion_loss_db: float = 0.5,
        reconfig_time_ns: float = 1_000.0,
        radius_um: float = 10.0,
        name: str = "mrr",
    ) -> None:
        if tuning_power_mw < 0:
            raise ValueError("tuning power must be non-negative")
        self.tuning_power_mw = tuning_power_mw
        size = 2 * radius_um + 10.0
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=size,
            height_um=size,
            insertion_loss_db=insertion_loss_db,
            static_power_mw=tuning_power_mw,
            reconfig_time_ns=reconfig_time_ns,
            description=f"micro-ring resonator, r={radius_um} um",
        )
        super().__init__(spec, response=LinearResponse(tuning_power_mw))


class MicroRingModulator(Device):
    """High-speed micro-ring modulator for dynamic operand encoding (MRM)."""

    def __init__(
        self,
        bandwidth_ghz: float = 25.0,
        insertion_loss_db: float = 1.0,
        extinction_ratio_db: float = 6.0,
        drive_energy_fj_per_symbol: float = 20.0,
        tuning_power_mw: float = 1.5,
        radius_um: float = 8.0,
        name: str = "mrm",
    ) -> None:
        self.bandwidth_ghz = bandwidth_ghz
        self.extinction_ratio_db = extinction_ratio_db
        self.drive_energy_fj_per_symbol = drive_energy_fj_per_symbol
        size = 2 * radius_um + 10.0
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=size,
            height_um=size,
            insertion_loss_db=insertion_loss_db,
            static_power_mw=tuning_power_mw,
            energy_per_op_pj=drive_energy_fj_per_symbol * 1e-3,
            latency_ns=1.0 / bandwidth_ghz,
            max_frequency_ghz=bandwidth_ghz,
            description=f"micro-ring modulator, {bandwidth_ghz} GHz",
        )
        super().__init__(spec)


class Photodetector(Device):
    """Photodetector (PD) converting optical power to photocurrent.

    ``sensitivity_dbm`` is the minimum detectable optical power used by the
    link-budget analyzer to size the laser.
    """

    def __init__(
        self,
        responsivity_a_per_w: float = 1.0,
        sensitivity_dbm: float = -25.0,
        bandwidth_ghz: float = 40.0,
        bias_power_mw: float = 0.1,
        insertion_loss_db: float = 0.0,
        width_um: float = 20.0,
        height_um: float = 15.0,
        name: str = "pd",
    ) -> None:
        if responsivity_a_per_w <= 0:
            raise ValueError("responsivity must be positive")
        self.responsivity_a_per_w = responsivity_a_per_w
        self.sensitivity_dbm = sensitivity_dbm
        self.bandwidth_ghz = bandwidth_ghz
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=width_um,
            height_um=height_um,
            insertion_loss_db=insertion_loss_db,
            static_power_mw=bias_power_mw,
            latency_ns=1.0 / bandwidth_ghz if bandwidth_ghz > 0 else 0.0,
            max_frequency_ghz=bandwidth_ghz,
            description=f"photodetector, S={sensitivity_dbm} dBm",
        )
        super().__init__(spec)


class YBranch(Device):
    """Passive 1x2 Y-branch splitter/combiner."""

    def __init__(
        self,
        insertion_loss_db: float = 0.1,
        width_um: float = 15.0,
        height_um: float = 10.0,
        name: str = "y_branch",
    ) -> None:
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=width_um,
            height_um=height_um,
            insertion_loss_db=insertion_loss_db,
            description="1x2 Y-branch",
        )
        super().__init__(spec)


class MMICoupler(Device):
    """Multi-mode interference coupler (NxN splitter/combiner)."""

    def __init__(
        self,
        num_ports: int = 2,
        insertion_loss_db: float = 0.3,
        width_um: float = 30.0,
        height_um: float = 12.0,
        name: str = "mmi",
    ) -> None:
        if num_ports < 1:
            raise ValueError("MMI must have at least one port")
        self.num_ports = num_ports
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=width_um,
            height_um=height_um,
            insertion_loss_db=insertion_loss_db,
            description=f"{num_ports}x{num_ports} MMI coupler",
        )
        super().__init__(spec)


class DirectionalCoupler(Device):
    """Passive 2x2 directional coupler."""

    def __init__(
        self,
        insertion_loss_db: float = 0.2,
        width_um: float = 25.0,
        height_um: float = 10.0,
        name: str = "directional_coupler",
    ) -> None:
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=width_um,
            height_um=height_um,
            insertion_loss_db=insertion_loss_db,
            description="2x2 directional coupler",
        )
        super().__init__(spec)


class WaveguideCrossing(Device):
    """Waveguide crossing.  Loss accumulates rapidly on broadcast paths."""

    def __init__(
        self,
        insertion_loss_db: float = 0.15,
        width_um: float = 8.0,
        height_um: float = 8.0,
        name: str = "crossing",
    ) -> None:
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=width_um,
            height_um=height_um,
            insertion_loss_db=insertion_loss_db,
            description="waveguide crossing",
        )
        super().__init__(spec)


class PCMCell(Device):
    """Non-volatile phase-change-material weight cell (e.g. GST on a waveguide).

    Zero static holding power, but writes are slow (>100 ns) and energetic, which is
    what triggers the reconfiguration-latency penalty in weight-static dataflows.
    """

    def __init__(
        self,
        write_energy_pj: float = 100.0,
        write_time_ns: float = 200.0,
        insertion_loss_db: float = 1.0,
        width_um: float = 15.0,
        height_um: float = 10.0,
        name: str = "pcm",
    ) -> None:
        if write_time_ns <= 0:
            raise ValueError("PCM write time must be positive")
        self.write_energy_pj = write_energy_pj
        self.write_time_ns = write_time_ns
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=width_um,
            height_um=height_um,
            insertion_loss_db=insertion_loss_db,
            static_power_mw=0.0,
            energy_per_op_pj=0.0,
            reconfig_time_ns=write_time_ns,
            description="non-volatile PCM weight cell",
            extra={"write_energy_pj": write_energy_pj},
        )
        super().__init__(spec, response=ConstantPower(0.0))


class WDMMux(Device):
    """Wavelength (de)multiplexer used at the boundary of WDM links."""

    def __init__(
        self,
        num_channels: int = 8,
        insertion_loss_db: float = 1.0,
        width_um: float = 100.0,
        height_um: float = 50.0,
        name: str = "wdm_mux",
    ) -> None:
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        self.num_channels = num_channels
        spec = DeviceSpec(
            name=name,
            category=DeviceCategory.PHOTONIC,
            width_um=width_um,
            height_um=height_um,
            insertion_loss_db=insertion_loss_db,
            description=f"{num_channels}-channel WDM mux/demux",
        )
        super().__init__(spec)
