"""SimPhony-DevLib: the customizable electronic-photonic device library.

Every device is described by a :class:`~repro.devices.base.DeviceSpec` (geometry,
insertion loss, static power, per-operation energy, latency, reconfiguration time)
plus an optional data-dependent :class:`~repro.devices.response.PowerResponse` that
maps the encoded operand value to instantaneous device power.  Concrete device
classes expose physically meaningful constructor parameters (bit resolution,
sampling rate, P_pi, responsivity, ...) and derive the spec from them, mirroring the
paper's "power scaling with customized sampling rates and bit resolutions".
"""

from repro.devices.base import Device, DeviceCategory, DeviceSpec
from repro.devices.response import (
    PowerResponse,
    ConstantPower,
    LinearResponse,
    PolynomialResponse,
    TabulatedResponse,
    QuadraticPhaseShifterResponse,
)
from repro.devices.electrical import (
    DAC,
    ADC,
    TIA,
    Integrator,
    DigitalControl,
)
from repro.devices.photonic import (
    Laser,
    MicroCombSource,
    FiberCoupler,
    MachZehnderModulator,
    MZIPhaseShifter,
    ThermoOpticPhaseShifter,
    MicroRingResonator,
    MicroRingModulator,
    Photodetector,
    YBranch,
    MMICoupler,
    WaveguideCrossing,
    DirectionalCoupler,
    PCMCell,
    WDMMux,
)
from repro.devices.library import DeviceLibrary

__all__ = [
    "Device",
    "DeviceCategory",
    "DeviceSpec",
    "PowerResponse",
    "ConstantPower",
    "LinearResponse",
    "PolynomialResponse",
    "TabulatedResponse",
    "QuadraticPhaseShifterResponse",
    "DAC",
    "ADC",
    "TIA",
    "Integrator",
    "DigitalControl",
    "Laser",
    "MicroCombSource",
    "FiberCoupler",
    "MachZehnderModulator",
    "MZIPhaseShifter",
    "ThermoOpticPhaseShifter",
    "MicroRingResonator",
    "MicroRingModulator",
    "Photodetector",
    "YBranch",
    "MMICoupler",
    "WaveguideCrossing",
    "DirectionalCoupler",
    "PCMCell",
    "WDMMux",
    "DeviceLibrary",
]
