"""Declarative scenario specifications and their results.

A :class:`ScenarioSpec` is pure data: it names the architecture templates, the
configuration and simulation overrides, the workload set, the sweep axes, the
search strategy and the output columns of one figure/table experiment.  The
executable half (the build function that turns a spec into a rendered table)
lives in the :class:`~repro.scenarios.registry.ScenarioRegistry`; the spec is
what gets validated, fingerprinted and keyed into the persistent result store.

Validation is eager and actionable: unknown override fields, malformed sweep
axes, unknown strategies/objectives/templates all raise at *registration* time
with a did-you-mean suggestion, instead of silently falling through the way
ad-hoc scripts allowed.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.arch.architecture import ArchitectureConfig
from repro.arch.templates import TEMPLATE_BUILDERS
from repro.core.config import SimulationConfig
from repro.explore.dse import DesignPoint, validate_sweep_axes
from repro.explore.search import STRATEGIES

_ARCH_FIELDS = {f.name for f in dataclasses.fields(ArchitectureConfig)}
_SIM_FIELDS = {f.name for f in dataclasses.fields(SimulationConfig)}
_OBJECTIVES = {f.name for f in dataclasses.fields(DesignPoint) if f.name != "parameters"}


def _unknown_field_error(kind: str, name: str, known: Sequence[str]) -> KeyError:
    close = difflib.get_close_matches(str(name), sorted(known), n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    return KeyError(
        f"unknown {kind} {name!r}{hint}; known: {', '.join(sorted(known))}"
    )


def validate_config_overrides(overrides: Mapping[str, Any]) -> Dict[str, Any]:
    """Check ``overrides`` against ArchitectureConfig's fields (typos raise)."""
    for name in overrides:
        if name not in _ARCH_FIELDS:
            raise _unknown_field_error("ArchitectureConfig override", name, _ARCH_FIELDS)
    return dict(overrides)


def validate_sim_overrides(overrides: Mapping[str, Any]) -> Dict[str, Any]:
    """Check ``overrides`` against SimulationConfig's fields (typos raise)."""
    for name in overrides:
        if name not in _SIM_FIELDS:
            raise _unknown_field_error("SimulationConfig override", name, _SIM_FIELDS)
    return dict(overrides)


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one registered figure/table experiment.

    Fields:

    - ``name``: registry key, also the stem of ``benchmarks/results/<name>.txt``;
    - ``title`` / ``figure`` / ``description``: display metadata (``figure`` is
      the paper anchor, e.g. ``"Fig. 9(a)"`` or ``"Table I"``);
    - ``templates``: the architecture templates the scenario instantiates, by
      :data:`~repro.arch.templates.TEMPLATE_BUILDERS` key;
    - ``config_overrides`` / ``sim_overrides``: declarative deviations from the
      default :class:`ArchitectureConfig` / :class:`SimulationConfig`, validated
      field-by-field;
    - ``workloads``: human-readable identifiers of the workload set;
    - ``sweep``: swept ``ArchitectureConfig`` axes (``{field: (values...)}``),
      validated like a :class:`~repro.explore.dse.DesignSpace`;
    - ``strategy``: search-strategy name for sweep scenarios (grid/random/...);
    - ``objectives``: recorded DesignPoint objectives for sweep scenarios;
    - ``columns``: the output table's column headers;
    - ``params``: scenario-specific knobs with their defaults (e.g. the number
      of simulated BERT encoder blocks), overridable per run;
    - ``env_params``: ``{param: ENV_VAR}`` environment overrides for ``params``
      (kept for compatibility with the seed benchmarks' env knobs);
    - ``tags``: free-form labels; ``"smoke"`` marks the fast CI subset;
    - ``deterministic``: whether the rendered table is byte-reproducible
      (wall-clock timing tables are not).
    """

    name: str
    title: str
    figure: str = ""
    description: str = ""
    templates: Tuple[str, ...] = ()
    config_overrides: Mapping[str, Any] = field(default_factory=dict)
    sim_overrides: Mapping[str, Any] = field(default_factory=dict)
    workloads: Tuple[str, ...] = ()
    sweep: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)
    strategy: Optional[str] = None
    objectives: Tuple[str, ...] = ()
    columns: Tuple[str, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    env_params: Mapping[str, str] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()
    deterministic: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(
                f"scenario name must be a non-empty identifier-like string, got {self.name!r}"
            )
        for template in self.templates:
            if template not in TEMPLATE_BUILDERS:
                raise _unknown_field_error(
                    "architecture template", template, TEMPLATE_BUILDERS
                )
        object.__setattr__(
            self, "config_overrides", validate_config_overrides(self.config_overrides)
        )
        object.__setattr__(self, "sim_overrides", validate_sim_overrides(self.sim_overrides))
        if self.sweep:
            object.__setattr__(self, "sweep", validate_sweep_axes(self.sweep))
        if self.strategy is not None and self.strategy not in STRATEGIES:
            raise _unknown_field_error("search strategy", self.strategy, STRATEGIES)
        for objective in self.objectives:
            if objective not in _OBJECTIVES:
                raise _unknown_field_error("objective", objective, _OBJECTIVES)
        for param in self.env_params:
            if param not in self.params:
                raise _unknown_field_error("env_params key", param, self.params or ["<none>"])

    # -- parameter resolution ---------------------------------------------------------
    def resolve_params(
        self,
        overrides: Optional[Mapping[str, Any]] = None,
        env: Optional[Mapping[str, str]] = None,
    ) -> Dict[str, Any]:
        """Defaults -> environment knobs -> explicit overrides, type-coerced.

        Values coming from the environment or from CLI strings are coerced to
        the type of the declared default; unknown override names raise with a
        suggestion (the actionable-validation contract).
        """
        resolved = dict(self.params)
        if env is not None:
            for param, var in self.env_params.items():
                if var in env:
                    resolved[param] = _coerce(env[var], resolved[param], param)
        for name, value in dict(overrides or {}).items():
            if name not in resolved:
                raise _unknown_field_error(
                    f"parameter of scenario {self.name!r}", name, self.params or ["<none>"]
                )
            resolved[name] = _coerce(value, self.params[name], name)
        return resolved

    # -- configuration helpers --------------------------------------------------------
    def arch_config(self, **extra: Any) -> ArchitectureConfig:
        """ArchitectureConfig with this spec's overrides (plus ``extra``) applied."""
        merged = {**self.config_overrides, **validate_config_overrides(extra)}
        return ArchitectureConfig(**merged)

    def sim_config(self, **extra: Any) -> SimulationConfig:
        """SimulationConfig with this spec's overrides (plus ``extra``) applied."""
        merged = {**self.sim_overrides, **validate_sim_overrides(extra)}
        return SimulationConfig(**merged)


def _coerce(value: Any, default: Any, name: str) -> Any:
    """Coerce a string-ish override to the type of the declared default."""
    if isinstance(value, str) and not isinstance(default, str):
        try:
            if isinstance(default, bool):
                return value.lower() in ("1", "true", "yes", "on")
            if isinstance(default, int):
                return int(value)
            if isinstance(default, float):
                return float(value)
        except ValueError:
            raise ValueError(
                f"parameter {name!r} expects a {type(default).__name__}, got {value!r}"
            ) from None
    return value


@dataclass
class ScenarioResult:
    """Outcome of running one scenario.

    ``table`` is the rendered report (the exact text the seed benchmark wrote to
    ``benchmarks/results/<name>.txt``); ``metrics`` is the JSON-serializable
    summary the scenario's verification checks consume (it round-trips through
    the persistent store); ``extras`` holds live, non-persisted objects
    (simulation results, floorplans) for in-process consumers only.
    """

    table: str
    metrics: Dict[str, Any] = field(default_factory=dict)
    extras: Dict[str, Any] = field(default_factory=dict)
    name: str = ""
    fingerprint: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    elapsed_s: float = 0.0
    from_store: bool = False

    def to_payload(self) -> Dict[str, Any]:
        """The JSON artifact body persisted by the result store."""
        return {
            "schema": 1,
            "name": self.name,
            "fingerprint": self.fingerprint,
            "params": self.params,
            "elapsed_s": self.elapsed_s,
            "table": self.table,
            "metrics": self.metrics,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ScenarioResult":
        return cls(
            table=payload["table"],
            metrics=dict(payload.get("metrics", {})),
            name=payload.get("name", ""),
            fingerprint=payload.get("fingerprint", ""),
            params=dict(payload.get("params", {})),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
            from_store=True,
        )
