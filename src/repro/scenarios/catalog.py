"""The registered scenario catalog: every figure/table experiment of the paper.

Each entry re-expresses one of the seed's ``benchmarks/bench_*.py`` scripts as a
declarative :class:`~repro.scenarios.spec.ScenarioSpec` plus a build function
producing the *byte-identical* table the script used to print, and a verify
function carrying the script's qualitative shape checks.  The benchmark files
are now thin shims over this catalog; ``python -m repro run <name>`` and the
batch runner execute the same entries.

Scenario names match the stems of ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.arch.architecture import ArchitectureConfig, HeterogeneousArchitecture
from repro.arch.templates import (
    build_butterfly_mesh,
    build_lightening_transformer,
    build_mrr_weight_bank,
    build_mzi_mesh,
    build_pcm_crossbar,
    build_scatter,
    build_tempo,
)
from repro.arch.templates.tempo import tempo_node_netlist
from repro.arch.taxonomy import TABLE_I
from repro.core.area import AreaAnalyzer
from repro.core.report import render_breakdown, scale_breakdown
from repro.dataflow.gemm import GEMMWorkload
from repro.dataflow.mapping import DataflowMapper
from repro.devices.response import QuadraticPhaseShifterResponse, TabulatedResponse
from repro.explore import DesignSpace, DesignSpaceExplorer
from repro.layout import SignalFlowFloorplanner, naive_footprint_sum_um2
from repro.onn import ONNConversionConfig, convert_to_onn, extract_workloads
from repro.onn.layers import dtype_mode
from repro.onn.models import build_bert_base_image, build_vgg8_cifar10
from repro.scenarios.registry import REGISTRY, ScenarioContext
from repro.scenarios.spec import ScenarioResult, ScenarioSpec
from repro.onn.quantize import receiver_limited_bits
from repro.scenarios.workloads import (
    ablation_workload,
    large_grid_workloads,
    mc_classifier_inputs,
    mc_classifier_model,
    paper_gemm,
    scatter_conv_workload,
)
from repro.utils.format import format_table
from repro.variation import AccuracyRequest, standard_noise

# ---------------------------------------------------------------------------------
# Table I: PTC taxonomy
# ---------------------------------------------------------------------------------

PAPER_TABLE1_ROWS = {
    "MZI Array": ("R", "Dynamic", "R", "Static", "Direct", 1),
    "Butterfly Mesh": ("R", "Dynamic", "C", "Static", "Pos-Neg", 1),
    "MRR Array": ("R+", "Dynamic", "R", "Dynamic", "Direct", 2),
    "PCM Crossbar": ("R+", "Dynamic", "R+", "Static", "Direct", 4),
    "TeMPO": ("R", "Dynamic", "R", "Dynamic", "Direct", 1),
}

_TABLE1_BUILDERS = {
    "MZI Array": build_mzi_mesh,
    "Butterfly Mesh": build_butterfly_mesh,
    "MRR Array": build_mrr_weight_bank,
    "PCM Crossbar": build_pcm_crossbar,
    "TeMPO": build_tempo,
}


def _check_table1(result: ScenarioResult) -> None:
    measured = result.metrics["measured_forwards"]
    for name, (_, _, _, _, _, forwards) in PAPER_TABLE1_ROWS.items():
        assert measured[name] == forwards, name
    # The two weight-static designs must carry a reconfiguration penalty.
    reconfig = result.metrics["weight_reconfig_cycles"]
    assert reconfig["mzi_mesh"] > 0
    assert reconfig["pcm_crossbar"] > 0
    assert reconfig["tempo"] == 0


@REGISTRY.register(
    ScenarioSpec(
        name="table1_taxonomy",
        title="PTC taxonomy: operand ranges, reconfiguration speed, #forwards",
        figure="Table I",
        templates=("mzi_mesh", "butterfly", "mrr_bank", "pcm_crossbar", "tempo"),
        workloads=("probe_gemm_64",),
        columns=("design", "A range", "A reconfig", "B range", "B reconfig",
                 "method", "#forwards"),
        tags=("smoke", "table"),
    ),
    verify=_check_table1,
)
def _build_table1(ctx: ScenarioContext) -> ScenarioResult:
    mapper = DataflowMapper()
    probe = GEMMWorkload("probe", m=64, k=64, n=64)
    rows = []
    measured_forwards = {}
    built = {}
    for key, entry in TABLE_I.items():
        rows.append(
            (
                entry.name,
                entry.operand_a_range.value,
                entry.operand_a_reconfig.value.capitalize(),
                entry.operand_b_range.value,
                entry.operand_b_reconfig.value.capitalize(),
                entry.forward_method,
                entry.num_forwards,
            )
        )
        arch = built[entry.name] = _TABLE1_BUILDERS[entry.name]()
        measured_forwards[entry.name] = mapper.map(probe, arch).forwards
    table = format_table(list(ctx.spec.columns), rows)
    reconfig = {
        "mzi_mesh": built["MZI Array"].weight_reconfig_cycles(),
        "pcm_crossbar": built["PCM Crossbar"].weight_reconfig_cycles(),
        "tempo": built["TeMPO"].weight_reconfig_cycles(),
    }
    return ScenarioResult(
        table=table,
        metrics={
            "measured_forwards": measured_forwards,
            "weight_reconfig_cycles": reconfig,
        },
    )


# ---------------------------------------------------------------------------------
# Fig. 6: signal-flow-aware floorplan vs naive footprint sum
# ---------------------------------------------------------------------------------

FIG6_PAPER_NAIVE_UM2 = 1270.5
FIG6_PAPER_REAL_UM2 = 4416.0
FIG6_PAPER_ESTIMATE_UM2 = 4531.5


def _check_fig6(result: ScenarioResult) -> None:
    naive = result.metrics["naive_um2"]
    planned = result.metrics["planned_um2"]
    # Shape: the naive sum underestimates the real layout by >2x; the floorplan
    # estimate lands within 25% of the real layout area.
    assert FIG6_PAPER_REAL_UM2 / naive > 2.0
    assert abs(planned - FIG6_PAPER_REAL_UM2) / FIG6_PAPER_REAL_UM2 < 0.25
    # The floorplan bounding box is fully packed with the node's five devices.
    assert result.metrics["num_placements"] == 5


@REGISTRY.register(
    ScenarioSpec(
        name="fig6_layout",
        title="Floorplan estimate vs naive footprint sum vs real layout",
        figure="Fig. 6",
        templates=("tempo",),
        columns=("method", "measured (um2)", "paper (um2)"),
        tags=("smoke", "layout"),
    ),
    verify=_check_fig6,
)
def _build_fig6(ctx: ScenarioContext) -> ScenarioResult:
    arch = build_tempo()
    node = tempo_node_netlist()
    naive = naive_footprint_sum_um2(node, arch.library)
    planner = SignalFlowFloorplanner(
        device_spacing_um=arch.node_device_spacing_um,
        boundary_um=arch.node_boundary_um,
    )
    plan = planner.plan(node, arch.library)
    rows = [
        ("naive footprint sum", naive, FIG6_PAPER_NAIVE_UM2),
        ("floorplan estimate", plan.area_um2, FIG6_PAPER_ESTIMATE_UM2),
        ("real layout (reference)", float("nan"), FIG6_PAPER_REAL_UM2),
    ]
    table = format_table(list(ctx.spec.columns), rows)
    return ScenarioResult(
        table=table,
        metrics={
            "naive_um2": naive,
            "planned_um2": plan.area_um2,
            "num_placements": len(plan.placements),
        },
        extras={"plan": plan},
    )


# ---------------------------------------------------------------------------------
# Fig. 7: TeMPO validation (area + energy breakdowns)
# ---------------------------------------------------------------------------------

FIG7_PAPER_AREA_MM2 = 0.84
FIG7_PAPER_ENERGY_COMPONENTS = ("Laser", "PS", "PD", "MZM", "ADC", "DAC", "Integrator")


def _check_fig7(result: ScenarioResult) -> None:
    area = result.metrics["photonic_core_area_mm2"]
    area_breakdown_mm2 = result.metrics["area_breakdown_mm2"]
    area_breakdown_um2 = result.metrics["area_breakdown_um2"]
    # Area within ~2x band of the reference value (component data are representative,
    # not PDK-exact); the breakdown must contain the reference components.
    assert 0.4 < area < 1.7
    for label in ("ADC", "DAC", "Node", "TIA", "MZM", "Y Branch", "Crossing"):
        assert label in area_breakdown_mm2
    # ADC macros and the dot-product nodes are the two largest area contributors.
    top_two = sorted(area_breakdown_um2, key=area_breakdown_um2.get)[-2:]
    assert set(top_two) <= {"ADC", "Node", "DAC"}

    breakdown = result.metrics["energy_breakdown_pj"]
    for label in FIG7_PAPER_ENERGY_COMPONENTS:
        assert label in breakdown, label
    total = result.metrics["total_energy_pj"]
    assert breakdown["DAC"] + breakdown["ADC"] > 0.3 * total
    assert 0.5 < result.metrics["energy_per_mac_pj"] < 20.0


@REGISTRY.register(
    ScenarioSpec(
        name="fig7_tempo_validation",
        title="SimPhony vs TeMPO on the (280x28)x(28x280) GEMM",
        figure="Fig. 7",
        templates=("tempo",),
        sim_overrides={"include_memory": False},
        workloads=("paper_gemm",),
        columns=("component", "value", "share"),
        tags=("smoke", "validation"),
    ),
    verify=_check_fig7,
)
def _build_fig7(ctx: ScenarioContext) -> ScenarioResult:
    arch = build_tempo()
    result = ctx.simulate(arch, paper_gemm())
    area_report = result.area_reports["tempo"]
    text = "\n".join(
        [
            "-- area breakdown (photonic core, mm2) --",
            render_breakdown(area_report.breakdown_mm2, unit="mm2"),
            f"paper reference total: {FIG7_PAPER_AREA_MM2} mm2",
            "",
            "-- energy breakdown (pJ) --",
            render_breakdown(result.energy_breakdown_pj, unit="pJ"),
            f"total energy: {result.total_energy_uj:.3f} uJ "
            f"({result.energy_per_mac_pj:.3f} pJ/MAC)",
        ]
    )
    return ScenarioResult(
        table=text,
        metrics={
            "photonic_core_area_mm2": area_report.photonic_core_area_mm2,
            "area_breakdown_mm2": dict(area_report.breakdown_mm2),
            "area_breakdown_um2": dict(area_report.breakdown_um2),
            "energy_breakdown_pj": dict(result.energy_breakdown_pj),
            "total_energy_pj": result.total_energy_pj,
            "energy_per_mac_pj": result.energy_per_mac_pj,
        },
        extras={"result": result, "area_report": area_report},
    )


# ---------------------------------------------------------------------------------
# Fig. 8: BERT-Base on Lightening-Transformer
# ---------------------------------------------------------------------------------

FIG8_PAPER_AREA_MM2 = {"simphony": 59.83, "reference": 60.30}
FIG8_PAPER_POWER_W = {"simphony": 20.77, "reference": 14.75}
FIG8_FULL_LAYERS = 12


def _check_fig8(result: ScenarioResult) -> None:
    area = result.metrics["area_mm2"]
    power_w = result.metrics["power_w"]
    total_area = sum(area.values())
    total_power = sum(power_w.values())
    # Order-of-magnitude agreement with the reference chip (59.83 / 60.30 mm^2 and
    # 20.77 / 14.75 W): tens of mm^2 of chip area and watts-range power, with
    # converters and memory among the dominant contributors.
    assert 15.0 < total_area < 180.0
    assert 3.0 < total_power < 150.0
    for label in ("DAC", "ADC", "MZM", "Laser", "DM"):
        assert label in power_w, label
    assert "Mem" in area
    # Converters are a first-order power contributor, as in the reference breakdown.
    converters = power_w["DAC"] + power_w["ADC"]
    assert converters > 0.10 * total_power
    top_power = sorted(power_w, key=power_w.get)[-3:]
    assert set(top_power) & {"DAC", "ADC", "DM", "Laser"}


@REGISTRY.register(
    ScenarioSpec(
        name="fig8_lt_validation",
        title="BERT-Base (224x224 image) on Lightening-Transformer",
        figure="Fig. 8",
        templates=("lightening_transformer",),
        sim_overrides={"include_memory": True},
        workloads=("bert_base_image_patches",),
        params={"num_layers": 4},
        env_params={"num_layers": "REPRO_BERT_LAYERS"},
        columns=("component", "value", "share"),
        tags=("validation", "onn"),
    ),
    verify=_check_fig8,
)
def _build_fig8(ctx: ScenarioContext) -> ScenarioResult:
    num_layers = max(1, min(int(ctx.params["num_layers"]), FIG8_FULL_LAYERS))
    model = build_bert_base_image(image_size=224, num_layers=num_layers)
    convert_to_onn(model, ONNConversionConfig(default_ptc="lightening_transformer"))
    image = np.random.default_rng(0).normal(size=(3, 224, 224))
    workloads = extract_workloads(model, image)

    arch = build_lightening_transformer()
    result = ctx.simulate(arch, workloads)

    # Per-block costs are identical; extrapolate energy/time to the full 12 layers.
    scale = FIG8_FULL_LAYERS / num_layers
    energy = scale_breakdown(result.energy_breakdown_pj, scale)
    time_ns = result.total_time_ns * scale
    power_w = {key: value / time_ns / 1e3 for key, value in energy.items()}

    area = result.area_breakdown_mm2
    text = "\n".join(
        [
            f"encoder blocks simulated: {num_layers} (extrapolated to {FIG8_FULL_LAYERS})",
            "",
            "-- area breakdown (mm2) --",
            render_breakdown(area, unit="mm2"),
            f"paper reference: SimPhony {FIG8_PAPER_AREA_MM2['simphony']} mm2, "
            f"LT {FIG8_PAPER_AREA_MM2['reference']} mm2",
            "",
            "-- power breakdown (W) --",
            render_breakdown(power_w, unit="W"),
            f"paper reference: SimPhony {FIG8_PAPER_POWER_W['simphony']} W, "
            f"LT {FIG8_PAPER_POWER_W['reference']} W",
        ]
    )
    return ScenarioResult(
        table=text,
        metrics={
            "num_layers": num_layers,
            "area_mm2": dict(area),
            "power_w": power_w,
        },
        extras={"result": result},
    )


# ---------------------------------------------------------------------------------
# Fig. 9(a): energy vs number of wavelengths
# ---------------------------------------------------------------------------------

FIG9A_WAVELENGTHS = (1, 2, 3, 4, 5, 6, 7)
FIG9_SERIES_COMPONENTS = ("Laser", "PS", "PD", "MZM", "ADC", "DAC", "Integrator", "DM")


def _check_fig9a(result: ScenarioResult) -> None:
    series = {int(k): v for k, v in result.metrics["series"].items()}
    totals = [series[w]["total_uj"] for w in FIG9A_WAVELENGTHS]
    times = [series[w]["time_ns"] for w in FIG9A_WAVELENGTHS]
    # More wavelengths -> faster execution and lower total energy (paper trend).
    assert times[0] > times[-1]
    assert totals[0] > totals[-1]
    # Components that do not scale with wavelengths shrink with the runtime (the ADC
    # is bounded by the fixed number of output samples, so it must not grow)...
    assert series[7]["ADC"] <= series[1]["ADC"] * 1.05
    assert series[7]["Integrator"] < series[1]["Integrator"]
    assert series[7]["PS"] < series[1]["PS"]
    # ...while the MZM energy stays roughly constant (count scales with wavelengths).
    mzm_ratio = series[7]["MZM"] / series[1]["MZM"]
    assert 0.5 < mzm_ratio < 2.0


@REGISTRY.register(
    ScenarioSpec(
        name="fig9a_wavelength_sweep",
        title="TeMPO energy vs number of wavelengths",
        figure="Fig. 9(a)",
        templates=("tempo",),
        workloads=("paper_gemm",),
        sweep={"num_wavelengths": FIG9A_WAVELENGTHS},
        columns=("# wavelengths", "total (uJ)", "time (ns)")
        + tuple(f"{c} (uJ)" for c in FIG9_SERIES_COMPONENTS),
        tags=("sweep",),
    ),
    verify=_check_fig9a,
)
def _build_fig9a(ctx: ScenarioContext) -> ScenarioResult:
    workload = paper_gemm()
    series = {}
    for wavelengths in ctx.spec.sweep["num_wavelengths"]:
        arch = build_tempo(
            config=ArchitectureConfig(num_wavelengths=wavelengths),
            name=f"tempo_w{wavelengths}",
        )
        result = ctx.simulate(arch, workload)
        breakdown = result.energy_breakdown_pj
        series[wavelengths] = {
            "total_uj": result.total_energy_uj,
            "time_ns": result.total_time_ns,
            **{label: breakdown.get(label, 0.0) / 1e6 for label in FIG9_SERIES_COMPONENTS},
        }
    rows = [
        (w, f"{data['total_uj']:.3f}", f"{data['time_ns']:.0f}")
        + tuple(f"{data[label]:.3f}" for label in FIG9_SERIES_COMPONENTS)
        for w, data in series.items()
    ]
    table = format_table(list(ctx.spec.columns), rows)
    return ScenarioResult(table=table, metrics={"series": series})


# ---------------------------------------------------------------------------------
# Fig. 9(b): energy vs operand bitwidth
# ---------------------------------------------------------------------------------

FIG9B_BITWIDTHS = (2, 3, 4, 5, 6, 7, 8)


def _check_fig9b(result: ScenarioResult) -> None:
    series = {int(k): v for k, v in result.metrics["series"].items()}
    totals = [series[b]["total_uj"] for b in FIG9B_BITWIDTHS]
    # Energy increases monotonically with bitwidth and grows super-linearly overall.
    assert all(later > earlier for earlier, later in zip(totals, totals[1:]))
    assert totals[-1] / totals[0] > 2.0
    # Converters drive the increase.
    assert series[8]["DAC"] > series[2]["DAC"]
    assert series[8]["ADC"] > series[2]["ADC"]
    # Laser power doubles per extra input bit, so it also rises sharply.
    assert series[8]["Laser"] > 4.0 * series[2]["Laser"]


@REGISTRY.register(
    ScenarioSpec(
        name="fig9b_bitwidth_sweep",
        title="TeMPO energy vs input/weight/output bitwidth",
        figure="Fig. 9(b)",
        templates=("tempo",),
        workloads=("paper_gemm",),
        sweep={
            "input_bits": FIG9B_BITWIDTHS,
            "weight_bits": FIG9B_BITWIDTHS,
            "output_bits": FIG9B_BITWIDTHS,
        },
        columns=("bitwidth", "total (uJ)")
        + tuple(f"{c} (uJ)" for c in FIG9_SERIES_COMPONENTS),
        description="The three bitwidth axes are swept together (b, b, b).",
        tags=("sweep",),
    ),
    verify=_check_fig9b,
)
def _build_fig9b(ctx: ScenarioContext) -> ScenarioResult:
    series = {}
    for bits in FIG9B_BITWIDTHS:
        arch = build_tempo(
            config=ArchitectureConfig(input_bits=bits, weight_bits=bits, output_bits=bits),
            name=f"tempo_b{bits}",
        )
        result = ctx.simulate(arch, paper_gemm(bits=bits))
        breakdown = result.energy_breakdown_pj
        series[bits] = {
            "total_uj": result.total_energy_uj,
            **{label: breakdown.get(label, 0.0) / 1e6 for label in FIG9_SERIES_COMPONENTS},
        }
    rows = [
        (bits, f"{data['total_uj']:.3f}")
        + tuple(f"{data[label]:.4f}" for label in FIG9_SERIES_COMPONENTS)
        for bits, data in series.items()
    ]
    table = format_table(list(ctx.spec.columns), rows)
    return ScenarioResult(table=table, metrics={"series": series})


# ---------------------------------------------------------------------------------
# Fig. 10(a): layout-aware vs layout-unaware area
# ---------------------------------------------------------------------------------

FIG10A_PAPER_AWARE_MM2 = 0.84
FIG10A_PAPER_UNAWARE_MM2 = 0.63


def _check_fig10a(result: ScenarioResult) -> None:
    aware = result.metrics["aware_mm2"]
    unaware = result.metrics["unaware_mm2"]
    ratio = unaware / aware
    paper_ratio = FIG10A_PAPER_UNAWARE_MM2 / FIG10A_PAPER_AWARE_MM2  # 0.75
    # The unaware estimate must be a clear underestimate, close to the paper's gap.
    assert ratio < 0.92
    assert abs(ratio - paper_ratio) < 0.2
    # The node-level gap is the root cause (naive sum misses routing whitespace).
    assert result.metrics["node_um2"] / result.metrics["node_naive_um2"] > 2.0


@REGISTRY.register(
    ScenarioSpec(
        name="fig10a_layout_aware",
        title="TeMPO area with and without layout awareness",
        figure="Fig. 10(a)",
        templates=("tempo",),
        sim_overrides={"include_memory": False},
        columns=("component", "value", "share"),
        tags=("smoke", "layout"),
    ),
    verify=_check_fig10a,
)
def _build_fig10a(ctx: ScenarioContext) -> ScenarioResult:
    arch = build_tempo()
    analyzer = AreaAnalyzer(ctx.spec.sim_config())
    aware = analyzer.analyze(arch, layout_aware=True)
    unaware = analyzer.analyze(arch, layout_aware=False)
    text = "\n".join(
        [
            "-- layout-aware breakdown (mm2) --",
            render_breakdown(aware.breakdown_mm2, unit="mm2"),
            "",
            "-- layout-unaware breakdown (mm2) --",
            render_breakdown(unaware.breakdown_mm2, unit="mm2"),
            "",
            f"layout-aware total  : {aware.photonic_core_area_mm2:.3f} mm2 "
            f"(paper {FIG10A_PAPER_AWARE_MM2})",
            f"layout-unaware total: {unaware.photonic_core_area_mm2:.3f} mm2 "
            f"(paper {FIG10A_PAPER_UNAWARE_MM2})",
            f"node area: floorplanned {aware.node_area_um2:.1f} um2 vs naive "
            f"{aware.node_area_naive_um2:.1f} um2",
        ]
    )
    return ScenarioResult(
        table=text,
        metrics={
            "aware_mm2": aware.photonic_core_area_mm2,
            "unaware_mm2": unaware.photonic_core_area_mm2,
            "node_um2": aware.node_area_um2,
            "node_naive_um2": aware.node_area_naive_um2,
        },
        extras={"aware": aware, "unaware": unaware},
    )


# ---------------------------------------------------------------------------------
# Fig. 10(b): data-aware energy on SCATTER
# ---------------------------------------------------------------------------------

FIG10B_PAPER_PS_UJ = {"data_unaware": 0.0537, "analytical": 0.0215, "measured": 0.0209}


def _measured_phase_shifter_curve(p_pi_mw: float) -> TabulatedResponse:
    """A 'chip-measured' heater curve: slightly more efficient than the ideal model.

    The curve is characterized over the full signed weight range so negative weight
    values interpolate correctly (the analytical model folds the sign internally).
    """
    settings = np.linspace(-1.0, 1.0, 33)
    analytical = QuadraticPhaseShifterResponse(p_pi_mw)
    powers = np.array([analytical.power_mw(s) for s in settings]) * 0.97
    return TabulatedResponse(settings, powers)


def _check_fig10b(result: ScenarioResult) -> None:
    summary = result.metrics["summary"]
    unaware = summary["data_unaware"]["ps_uj"]
    analytical = summary["analytical"]["ps_uj"]
    measured = summary["measured"]["ps_uj"]
    # Shape: data awareness roughly halves the PS energy; the rigorous model trims a
    # little more (paper: 0.0537 -> 0.0215 -> 0.0209 uJ).
    assert analytical < 0.7 * unaware
    assert measured <= analytical
    assert measured > 0.8 * analytical
    paper_ratio = FIG10B_PAPER_PS_UJ["analytical"] / FIG10B_PAPER_PS_UJ["data_unaware"]
    ours_ratio = analytical / unaware
    assert abs(ours_ratio - paper_ratio) < 0.25


@REGISTRY.register(
    ScenarioSpec(
        name="fig10b_data_aware",
        title="SCATTER energy with and without data awareness",
        figure="Fig. 10(b)",
        templates=("scatter",),
        workloads=("scatter_conv_layer",),
        columns=("mode", "PS (uJ)", "MZM (uJ)", "total (uJ)", "paper PS (uJ)"),
        params={"workload_seed": 7},
        env_params={"workload_seed": "REPRO_FIG10B_SEED"},
        tags=("validation",),
    ),
    verify=_check_fig10b,
)
def _build_fig10b(ctx: ScenarioContext) -> ScenarioResult:
    workload = scatter_conv_workload(seed=int(ctx.params["workload_seed"]))
    results = {}

    # (1) data-unaware: every phase shifter burns its nominal P_pi power.
    arch = build_scatter()
    results["data_unaware"] = ctx.simulate(
        arch, workload, config=ctx.spec.sim_config(data_aware=False)
    )

    # (2) data-aware with the analytical phase/power model.
    arch = build_scatter()
    results["analytical"] = ctx.simulate(
        arch, workload, config=ctx.spec.sim_config(data_aware=True)
    )

    # (3) data-aware with a measured (tabulated) device power curve.
    arch = build_scatter()
    p_pi = arch.library["phase_shifter"].nominal_power_mw()
    arch.library.register(
        arch.library["phase_shifter"].with_response(_measured_phase_shifter_curve(p_pi))
    )
    results["measured"] = ctx.simulate(
        arch, workload, config=ctx.spec.sim_config(data_aware=True)
    )

    rows = []
    summary = {}
    for mode, result in results.items():
        ps_uj = result.energy_breakdown_pj.get("PS", 0.0) / 1e6
        mzm_uj = result.energy_breakdown_pj.get("MZM", 0.0) / 1e6
        summary[mode] = {"ps_uj": ps_uj, "mzm_uj": mzm_uj, "total_uj": result.total_energy_uj}
        rows.append(
            (mode, f"{ps_uj:.4f}", f"{mzm_uj:.4f}", f"{result.total_energy_uj:.4f}",
             f"{FIG10B_PAPER_PS_UJ[mode]:.4f}")
        )
    table = format_table(list(ctx.spec.columns), rows)
    return ScenarioResult(table=table, metrics={"summary": summary})


# ---------------------------------------------------------------------------------
# Fig. 11: heterogeneous VGG-8 mapping
# ---------------------------------------------------------------------------------


def _check_fig11(result: ScenarioResult) -> None:
    layers = result.metrics["layers"]
    assert len(layers) == 8
    conv_layers = [l for l in layers if l["arch"] == "scatter"]
    linear_layers = [l for l in layers if l["arch"] == "mzi_mesh"]
    assert len(conv_layers) == 6
    assert len(linear_layers) == 2
    # Convolutions carry the bulk of VGG-8's compute and therefore its energy.
    conv_energy = sum(l["energy_pj"] for l in conv_layers)
    linear_energy = sum(l["energy_pj"] for l in linear_layers)
    assert conv_energy > linear_energy
    # Both sub-architectures share one memory hierarchy (a single report).
    assert result.metrics["has_memory"]
    assert set(result.metrics["area_report_names"]) == {"scatter", "mzi_mesh"}


@REGISTRY.register(
    ScenarioSpec(
        name="fig11_heterogeneous",
        title="Per-layer VGG-8 energy under heterogeneous mapping",
        figure="Fig. 11",
        templates=("scatter", "mzi_mesh"),
        workloads=("vgg8_cifar10",),
        params={"width_multiplier": 0.25},
        env_params={"width_multiplier": "REPRO_VGG_WIDTH"},
        columns=("layer", "sub-arch", "MACs", "total (uJ)", "PS (uJ)", "DAC (uJ)",
                 "ADC (uJ)", "DM (uJ)"),
        tags=("onn", "heterogeneous"),
    ),
    verify=_check_fig11,
)
def _build_fig11(ctx: ScenarioContext) -> ScenarioResult:
    width = float(ctx.params["width_multiplier"])
    model = build_vgg8_cifar10(width_multiplier=width, input_size=32)
    convert_to_onn(
        model,
        ONNConversionConfig(
            ptc_assignment={"conv": "scatter", "linear": "mzi_mesh"}, prune_ratio=0.3
        ),
    )
    image = np.random.default_rng(0).normal(size=(3, 32, 32))
    workloads = extract_workloads(model, image)

    system = HeterogeneousArchitecture(name="vgg8_hybrid")
    system.add("scatter", build_scatter())
    system.add("mzi_mesh", build_mzi_mesh())
    result = ctx.simulate(
        system, workloads, type_rules={"conv": "scatter", "linear": "mzi_mesh"}
    )

    rows = []
    layer_records = []
    for layer in result.layers:
        breakdown = layer.energy.breakdown_pj
        rows.append(
            (
                layer.name,
                layer.arch_name,
                f"{layer.workload.num_macs}",
                f"{layer.total_energy_pj / 1e6:.4f}",
                f"{breakdown.get('PS', 0.0) / 1e6:.4f}",
                f"{breakdown.get('DAC', 0.0) / 1e6:.4f}",
                f"{breakdown.get('ADC', 0.0) / 1e6:.4f}",
                f"{breakdown.get('DM', 0.0) / 1e6:.4f}",
            )
        )
        layer_records.append(
            {
                "name": layer.name,
                "arch": layer.arch_name,
                "macs": layer.workload.num_macs,
                "energy_pj": layer.total_energy_pj,
            }
        )
    table = format_table(list(ctx.spec.columns), rows)
    return ScenarioResult(
        table=table,
        metrics={
            "width_multiplier": width,
            "layers": layer_records,
            "has_memory": result.memory is not None,
            "area_report_names": sorted(result.area_reports),
        },
        extras={"result": result},
    )


# ---------------------------------------------------------------------------------
# Extension: automated DSE + modeling-feature ablation
# ---------------------------------------------------------------------------------

_DSE_SWEEP = {
    "core_height": (2, 4, 8),
    "core_width": (2, 4, 8),
    "num_wavelengths": (1, 4),
}
_DSE_BASE = {"num_tiles": 2, "cores_per_tile": 2}


def _check_dse_ablation(result: ScenarioResult) -> None:
    points = result.metrics["points"]
    front_params = result.metrics["front_params"]
    # DSE: the grid is fully evaluated and the Pareto front is a proper subset that
    # contains the single-objective optima.
    assert len(points) == 18
    assert 1 <= len(front_params) < len(points)
    for objective in ("energy_uj", "latency_ns", "area_mm2"):
        best = min(points, key=lambda p: p[objective])
        assert best["params"] in front_params

    # Ablations: removing each modeling feature moves the reported numbers in the
    # documented direction.
    ablation = result.metrics["ablation"]
    full = ablation["full model"]
    assert ablation["no layout awareness"]["tempo_area_mm2"] < full["tempo_area_mm2"]
    assert ablation["no data awareness"]["energy_uj"] > full["energy_uj"]
    assert ablation["no idle-lane gating"]["energy_uj"] >= full["energy_uj"]
    assert ablation["no memory model"]["energy_uj"] < full["energy_uj"]
    assert ablation["no memory model"]["area_mm2"] < full["area_mm2"]


@REGISTRY.register(
    ScenarioSpec(
        name="dse_ablation",
        title="Automated DSE over TeMPO + modeling-feature ablation",
        figure="extension",
        templates=("tempo", "scatter"),
        config_overrides=_DSE_BASE,
        workloads=("paper_gemm", "ablation_layer"),
        sweep=_DSE_SWEEP,
        strategy="grid",
        objectives=("energy_uj", "latency_ns", "area_mm2"),
        columns=("design point", "energy (uJ)", "latency (ns)", "area (mm2)", "pareto"),
        params={"workload_seed": 5},
        env_params={"workload_seed": "REPRO_ABLATION_SEED"},
        tags=("dse",),
    ),
    verify=_check_dse_ablation,
)
def _build_dse_ablation(ctx: ScenarioContext) -> ScenarioResult:
    explorer = ctx.explorer(
        build_tempo, [paper_gemm()], base_config=ctx.spec.arch_config()
    )
    result = explorer.explore(ctx.design_space(), strategy=ctx.spec.strategy)
    front = result.pareto_front(ctx.spec.objectives)
    rows = [
        (", ".join(f"{k}={v}" for k, v in sorted(p.parameters.items())),
         f"{p.energy_uj:.3f}", f"{p.latency_ns:.0f}", f"{p.area_mm2:.3f}",
         "yes" if p in front else "no")
        for p in result.points
    ]
    dse_table = format_table(list(ctx.spec.columns), rows)

    workload = ablation_workload(seed=int(ctx.params["workload_seed"]))
    settings = {
        "full model": {},
        "no layout awareness": {"use_layout_aware_area": False},
        "no data awareness": {"data_aware": False},
        "no idle-lane gating": {"include_idle_gating": False},
        "no memory model": {"include_memory": False},
    }
    # Two carriers so every ablation has a visible effect: SCATTER exercises data
    # awareness (weight-dependent phase-shifter power), TeMPO exercises layout
    # awareness (its dot-product node is a floorplanned composite block).
    ablation_rows = []
    metrics = {}
    for label, overrides in settings.items():
        config = ctx.spec.sim_config(**overrides)
        scatter_result = ctx.simulate(build_scatter(), workload, config=config)
        tempo_result = ctx.simulate(build_tempo(), workload, config=config)
        metrics[label] = {
            "energy_uj": scatter_result.total_energy_uj,
            "area_mm2": scatter_result.total_area_mm2,
            "tempo_area_mm2": tempo_result.total_area_mm2,
        }
        ablation_rows.append(
            (label, f"{scatter_result.total_energy_uj:.3f}",
             f"{scatter_result.total_area_mm2:.3f}",
             f"{tempo_result.total_area_mm2:.3f}",
             f"{scatter_result.total_time_ns:.0f}")
        )
    ablation_table = format_table(
        ["configuration", "SCATTER energy (uJ)", "SCATTER area (mm2)",
         "TeMPO area (mm2)", "SCATTER latency (ns)"],
        ablation_rows,
    )
    text = "\n".join(
        [
            "-- design-space exploration (TeMPO, Pareto over energy/latency/area) --",
            dse_table,
            "",
            "-- modeling-feature ablation (SCATTER) --",
            ablation_table,
        ]
    )
    front_params = [dict(p.parameters) for p in front]
    point_records = [
        {
            "params": dict(p.parameters),
            "energy_uj": p.energy_uj,
            "latency_ns": p.latency_ns,
            "area_mm2": p.area_mm2,
        }
        for p in result.points
    ]
    return ScenarioResult(
        table=text,
        metrics={
            "points": point_records,
            "front_params": front_params,
            "ablation": metrics,
        },
        extras={"dse_result": result, "front": front},
    )


# ---------------------------------------------------------------------------------
# Extension: large-grid DSE over TeMPO (the process-backend workload)
# ---------------------------------------------------------------------------------

_DSE_LARGE_SWEEP = {
    "num_tiles": (2, 4),
    "cores_per_tile": (2, 4),
    "core_height": (2, 4, 8, 16),
    "core_width": (2, 4, 8, 16),
    "num_wavelengths": (1, 2, 4),
}
_DSE_LARGE_SIZE = 192  # the product of the axes above


def _check_dse_large_grid(result: ScenarioResult) -> None:
    points = result.metrics["points"]
    front_params = result.metrics["front_params"]
    assert len(points) == _DSE_LARGE_SIZE
    assert 1 <= len(front_params) < len(points)
    # Every swept axis shows up in every design point's parameters.
    for point in points:
        assert set(point["params"]) == set(_DSE_LARGE_SWEEP)
    # The single-objective optima are on the front (Pareto sanity).
    for objective in ("energy_uj", "latency_ns", "area_mm2"):
        best = min(points, key=lambda p: p[objective])
        assert best["params"] in front_params


@REGISTRY.register(
    ScenarioSpec(
        name="dse_large_grid",
        title="Large-grid DSE over TeMPO (192 points, backend-selectable)",
        figure="extension",
        templates=("tempo",),
        workloads=("blk_qkv", "blk_ffn_in", "blk_ffn_out"),
        sweep=_DSE_LARGE_SWEEP,
        strategy="grid",
        objectives=("energy_uj", "latency_ns", "area_mm2"),
        columns=("design point", "energy (uJ)", "latency (ns)", "area (mm2)", "pareto"),
        params={"backend": "serial", "jobs": 0},
        env_params={"backend": "REPRO_DSE_BACKEND", "jobs": "REPRO_DSE_JOBS"},
        description=(
            "The full 192-point grid over tiles/cores/core-size/wavelengths with "
            "data-carrying transformer-block workloads.  The rendered table is "
            "byte-identical for every execution backend; `jobs=0` means one "
            "worker per core."
        ),
        tags=("dse", "large"),
    ),
    verify=_check_dse_large_grid,
)
def _build_dse_large_grid(ctx: ScenarioContext) -> ScenarioResult:
    backend = str(ctx.params["backend"])
    jobs = int(ctx.params["jobs"]) or None
    explorer = ctx.explorer(
        build_tempo, large_grid_workloads(), base_config=ctx.spec.arch_config()
    )
    result = explorer.explore(
        ctx.design_space(), strategy=ctx.spec.strategy, backend=backend,
        max_workers=jobs,
    )
    front = result.pareto_front(ctx.spec.objectives)
    rows = [
        (", ".join(f"{k}={v}" for k, v in sorted(p.parameters.items())),
         f"{p.energy_uj:.3f}", f"{p.latency_ns:.0f}", f"{p.area_mm2:.3f}",
         "yes" if p in front else "no")
        for p in result.points
    ]
    table = format_table(list(ctx.spec.columns), rows)
    return ScenarioResult(
        table=table,
        metrics={
            "points": [
                {
                    "params": dict(p.parameters),
                    "energy_uj": p.energy_uj,
                    "latency_ns": p.latency_ns,
                    "area_mm2": p.area_mm2,
                }
                for p in result.points
            ],
            "front_params": [dict(p.parameters) for p in front],
            "backend": result.backend,
            "engine_passes": sum(t.count for t in result.pass_timings.values()),
        },
        extras={"dse_result": result, "front": front},
    )


# ---------------------------------------------------------------------------------
# Extension: execution-backend scaling on the large grid
# ---------------------------------------------------------------------------------


def _check_dse_backend_scaling(result: ScenarioResult) -> None:
    # Hard guarantee first: all backends record identical design points.
    assert all(result.metrics["identical"].values()), result.metrics["identical"]
    timings = result.metrics["timings_ms"]
    assert set(timings) == {"serial", "threads", "processes"}
    assert all(t > 0 for t in timings.values())
    # The wall-clock claim needs enough real cores that the margin is
    # structural, not scheduler noise (affinity-aware, so a cpuset-pinned
    # container doesn't promise parallelism it cannot deliver).  On >= 4
    # effective CPUs the GIL-bound thread sweep cannot scale while the process
    # sweep must, with room to spare over pool startup and per-chunk pickling;
    # on 1-3 CPUs the table still reports the measured ratios, unasserted.
    if int(result.metrics["cpu_count"]) >= 4:
        assert timings["processes"] < 0.9 * timings["threads"], (
            f"process backend only {timings['threads'] / timings['processes']:.2f}x "
            "over threads on a multi-core host"
        )


@REGISTRY.register(
    ScenarioSpec(
        name="dse_backend_scaling",
        title="Serial vs thread vs process backends on the large-grid DSE",
        figure="extension",
        templates=("tempo",),
        workloads=("blk_qkv", "blk_ffn_in", "blk_ffn_out"),
        sweep=_DSE_LARGE_SWEEP,
        strategy="grid",
        columns=("backend", "jobs", "wall-clock (ms)", "vs serial", "vs threads"),
        params={"jobs": 2},
        env_params={"jobs": "REPRO_BACKEND_JOBS"},
        deterministic=False,
        description=(
            "Times the 192-point grid with the engine cache off (every point "
            "pays its full pure-Python cost) under each execution backend.  "
            "Wall-clock timings; the rendered table is not byte-reproducible."
        ),
        tags=("dse", "perf"),
    ),
    verify=_check_dse_backend_scaling,
)
def _build_dse_backend_scaling(ctx: ScenarioContext) -> ScenarioResult:
    from repro.exec import available_cpus

    jobs = int(ctx.params["jobs"])
    space = ctx.design_space()
    workloads = large_grid_workloads()

    def timed_sweep(backend: str):
        # A fresh disabled cache per sweep: every backend pays the identical
        # per-point cost, which is exactly the GIL-bound work processes dodge.
        explorer = DesignSpaceExplorer(
            build_tempo, workloads, base_config=ctx.spec.arch_config(), cache=False
        )
        start = time.perf_counter()
        result = explorer.explore(space, backend=backend, max_workers=jobs)
        return (time.perf_counter() - start) * 1e3, result

    timings: Dict[str, float] = {}
    results = {}
    for backend in ("serial", "threads", "processes"):
        timings[backend], results[backend] = timed_sweep(backend)

    identical = {
        backend: results[backend].points == results["serial"].points
        for backend in ("threads", "processes")
    }
    rows = [
        (
            backend,
            1 if backend == "serial" else jobs,
            f"{timings[backend]:.1f}",
            f"{timings['serial'] / timings[backend]:.2f}x",
            f"{timings['threads'] / timings[backend]:.2f}x",
        )
        for backend in ("serial", "threads", "processes")
    ]
    table = format_table(list(ctx.spec.columns), rows)
    text = (
        f"large-grid backend scaling: {space.size()} points x "
        f"{len(workloads)} workloads (TeMPO, engine cache off)\n"
        f"{table}"
    )
    return ScenarioResult(
        table=text,
        metrics={
            "timings_ms": timings,
            "identical": identical,
            "jobs": jobs,
            "cpu_count": available_cpus(),
        },
        extras={"results": results},
    )


# ---------------------------------------------------------------------------------
# Extension: DSE scaling benchmark (memoized engine vs seed-style sweep)
# ---------------------------------------------------------------------------------

_DSE_SCALING_ROUNDS = 5


def _check_dse_scaling(result: ScenarioResult) -> None:
    # All configurations agree on every recorded value.
    assert all(result.metrics["identical"].values())

    # The shared cache pays even within one cold sweep: structural rebinds
    # replace 16 of 18 template builds, and lambda-insensitive passes collapse.
    stats = result.metrics["cache_stats"]
    assert stats["build"] == [16, 18]
    assert stats["critical_path"][0] >= 9
    assert stats["floorplan"][0] >= 16

    timings = result.metrics["timings_ms"]
    t_seed = timings["seed-style (cache off)"]
    t_cold = timings["cached, cold"]
    t_warm = timings["cached, steady-state"]
    # Cold, the engine cache removes well over half the sweep; steady-state
    # (every realistic repeated / interactive sweep) clears 3x with a wide margin.
    # Thresholds are set below the locally measured ratios (~2.9x cold, ~80x
    # steady-state on an idle machine) to stay robust on loaded CI runners.
    assert t_cold < t_seed / 1.75, f"cold cached sweep only {t_seed / t_cold:.2f}x faster"
    assert t_warm < t_seed / 3.0, f"steady-state sweep only {t_seed / t_warm:.2f}x faster"


@REGISTRY.register(
    ScenarioSpec(
        name="dse_scaling",
        title="Memoized engine + parallel explorer vs seed-style sweep",
        figure="extension",
        templates=("tempo",),
        config_overrides=_DSE_BASE,
        workloads=("paper_gemm",),
        sweep=_DSE_SWEEP,
        strategy="grid",
        columns=("configuration", "sweep wall-clock (ms)", "speedup"),
        deterministic=False,
        description="Wall-clock timings; the rendered table is not byte-reproducible.",
        tags=("dse", "perf"),
    ),
    verify=_check_dse_scaling,
)
def _build_dse_scaling(ctx: ScenarioContext) -> ScenarioResult:
    space = ctx.design_space()
    workload = paper_gemm()

    def make_explorer(cache: bool, max_workers=None) -> DesignSpaceExplorer:
        # Deliberately *not* the batch-shared cache: each configuration times a
        # fresh (or deliberately reused) cache to measure cold/steady-state cost.
        return DesignSpaceExplorer(
            build_tempo,
            [workload],
            base_config=ctx.spec.arch_config(),
            cache=cache,
            max_workers=max_workers,
        )

    def timed_sweep(explorer: DesignSpaceExplorer):
        start = time.perf_counter()
        result = explorer.explore(space)
        return time.perf_counter() - start, result

    timings: Dict[str, float] = {}
    seed_result = cold_result = warm_result = None
    seed_times, cold_times, warm_times, par_times = [], [], [], []
    for _ in range(_DSE_SCALING_ROUNDS):
        t, seed_result = timed_sweep(make_explorer(cache=False))
        seed_times.append(t)
        explorer = make_explorer(cache=True)
        t, cold_result = timed_sweep(explorer)
        cold_times.append(t)
        t, warm_result = timed_sweep(explorer)
        warm_times.append(t)
        t, _ = timed_sweep(make_explorer(cache=True, max_workers=4))
        par_times.append(t)
    timings["seed-style (cache off)"] = min(seed_times)
    timings["cached, cold"] = min(cold_times)
    timings["cached, steady-state"] = min(warm_times)
    timings["cached + parallel (4 workers), cold"] = min(par_times)

    # Determinism: parallel and serial sweeps yield identical DesignPoint records.
    par_result = make_explorer(cache=True, max_workers=4).explore(space)

    stats = {
        stage: [s.hits, s.lookups] for stage, s in sorted(cold_result.cache_stats.items())
    }

    base = timings["seed-style (cache off)"]
    rows = [
        (label, f"{seconds * 1e3:.2f}", f"{base / seconds:.2f}x")
        for label, seconds in timings.items()
    ]
    table = format_table(list(ctx.spec.columns), rows)
    stat_lines = "\n".join(
        f"  {stage:16s} {hits}/{lookups} hits" for stage, (hits, lookups) in stats.items()
    )
    text = (
        f"grid: {space.size()} points (core_height x core_width x num_wavelengths), "
        "TeMPO, paper GEMM\n"
        f"{table}\n\ncold-sweep cache hit rates per pass:\n{stat_lines}"
    )
    timings_ms = {label: seconds * 1e3 for label, seconds in timings.items()}
    return ScenarioResult(
        table=text,
        metrics={
            "timings_ms": timings_ms,
            "identical": {
                "cold": cold_result.points == seed_result.points,
                "warm": warm_result.points == seed_result.points,
                "parallel": par_result.points == seed_result.points,
            },
            "cache_stats": stats,
        },
        extras={"seed_result": seed_result, "cold_result": cold_result},
    )


# ---------------------------------------------------------------------------------
# Extension: variation-aware Monte Carlo accuracy (repro.variation)
# ---------------------------------------------------------------------------------

_ROBUSTNESS_MAGNITUDES = (0.0, 0.25, 0.5, 1.0, 2.0)


def _mc_request(
    ctx: ScenarioContext, noise, reference: str = "quantized"
) -> AccuracyRequest:
    """An AccuracyRequest from the scenario's shared model/input/seed parameters."""
    jobs = int(ctx.params.get("jobs", 0)) or None
    backend = str(ctx.params.get("backend", "serial"))
    return AccuracyRequest(
        model=mc_classifier_model(seed=int(ctx.params["model_seed"])),
        inputs=mc_classifier_inputs(
            samples=int(ctx.params["samples"]), seed=int(ctx.params["input_seed"])
        ),
        noise=noise,
        trials=int(ctx.params["trials"]),
        seed=int(ctx.params["seed"]),
        reference=reference,
        backend=backend,
        jobs=jobs,
    )


def _check_variation_robustness(result: ScenarioResult) -> None:
    series = {float(k): v for k, v in result.metrics["series"].items()}
    magnitudes = sorted(series)
    assert magnitudes == sorted(_ROBUSTNESS_MAGNITUDES)
    # Zero variation is exact fidelity to the quantized hardware baseline.
    # The float64 reference is bit-exact; the REPRO_DTYPE=float32 throughput
    # mode runs the noisy forward in single precision against the float64
    # baseline, so its zero-noise residual is single-precision epsilon, not 0.
    assert series[0.0]["accuracy_mean"] == 1.0
    if dtype_mode() == "float64":
        assert series[0.0]["rmse_mean"] == 0.0
    else:
        assert series[0.0]["rmse_mean"] <= 1e-5
    accuracies = [series[m]["accuracy_mean"] for m in magnitudes]
    rmses = [series[m]["rmse_mean"] for m in magnitudes]
    for value in accuracies:
        assert 0.0 <= value <= 1.0
    # Accuracy degrades (monotonically, modulo Monte Carlo wiggle) and the
    # output error grows as the noise magnitude scales up.
    for earlier, later in zip(accuracies, accuracies[1:]):
        assert later <= earlier + 0.01
    assert accuracies[-1] < accuracies[0]
    assert rmses[-1] > rmses[0]
    # The drifted link resolves no more than the nominal operating point.
    for magnitude in magnitudes:
        assert (
            series[magnitude]["effective_bits_mean"]
            <= series[magnitude]["effective_bits_nominal"] + 0.05
        )


@REGISTRY.register(
    ScenarioSpec(
        name="variation_robustness",
        title="Monte Carlo ONN accuracy vs device-variation magnitude (TeMPO)",
        figure="extension",
        templates=("tempo",),
        workloads=("mc_classifier",),
        columns=("noise scale", "eff bits (nom)", "eff bits (mean)",
                 "accuracy (mean)", "accuracy (std)", "accuracy (min)",
                 "output RMSE"),
        params={
            "trials": 24,
            "seed": 7,
            "model_seed": 3,
            "input_seed": 9,
            "samples": 48,
            "backend": "serial",
            "jobs": 0,
        },
        env_params={
            "trials": "REPRO_MC_TRIALS",
            "backend": "REPRO_MC_BACKEND",
            "jobs": "REPRO_MC_JOBS",
        },
        description=(
            "Scales a representative silicon-photonics noise corner "
            "(weight-encoding error, phase noise, crosstalk, link-loss drift) "
            "and Monte Carlo-samples the classifier's fidelity to the "
            "noise-free quantized baseline.  Per-trial seeds derive from "
            "(seed, trial index), so the rendered table is byte-identical on "
            "the serial, thread and process backends; `jobs=0` means one "
            "worker per core."
        ),
        tags=("smoke", "variation", "montecarlo"),
    ),
    verify=_check_variation_robustness,
)
def _build_variation_robustness(ctx: ScenarioContext) -> ScenarioResult:
    arch = build_tempo()
    base = standard_noise()
    rows = []
    series = {}
    for magnitude in _ROBUSTNESS_MAGNITUDES:
        request = _mc_request(ctx, base.scaled(magnitude))
        report = ctx.evaluate_accuracy(arch, request)
        series[magnitude] = {
            "accuracy_mean": report.accuracy_mean,
            "accuracy_std": report.accuracy_std,
            "accuracy_min": report.accuracy_min,
            "error_rate": report.error_rate,
            "rmse_mean": report.rmse_mean,
            "effective_bits_nominal": report.effective_bits_nominal,
            "effective_bits_mean": report.effective_bits_mean,
        }
        rows.append(
            (
                f"{magnitude:.2f}",
                f"{report.effective_bits_nominal:.3f}",
                f"{report.effective_bits_mean:.3f}",
                f"{report.accuracy_mean:.4f}",
                f"{report.accuracy_std:.4f}",
                f"{report.accuracy_min:.4f}",
                f"{report.rmse_mean:.5f}",
            )
        )
    table = format_table(list(ctx.spec.columns), rows)
    return ScenarioResult(
        table=table,
        metrics={"series": series, "trials": int(ctx.params["trials"])},
    )


# ---------------------------------------------------------------------------------
# Extension: accuracy vs DAC/ADC precision under the receiver-limited grid
# ---------------------------------------------------------------------------------

_PRECISION_BITS = (2, 3, 4, 5, 6, 7, 8)


def _check_accuracy_vs_precision(result: ScenarioResult) -> None:
    series = {int(k): v for k, v in result.metrics["series"].items()}
    bits_axis = sorted(series)
    assert len(bits_axis) >= 2
    accuracies = [series[b]["accuracy_mean"] for b in bits_axis]
    # Finer converters recover fidelity: the trend rises from the coarsest to
    # the finest bitwidth and is monotone modulo a small Monte Carlo wiggle.
    assert accuracies[-1] > accuracies[0]
    for earlier, later in zip(accuracies, accuracies[1:]):
        assert later >= earlier - 0.02
    # Quantization error shrinks with precision.
    assert series[bits_axis[-1]]["rmse_mean"] < series[bits_axis[0]]["rmse_mean"]
    # The receiver can never resolve more levels than the converters encode.
    for bits in bits_axis:
        assert series[bits]["resolved_bits"] <= bits


@REGISTRY.register(
    ScenarioSpec(
        name="accuracy_vs_precision",
        title="Monte Carlo accuracy vs DAC/ADC bitwidth (TeMPO, receiver-limited)",
        figure="extension",
        templates=("tempo",),
        workloads=("mc_classifier",),
        columns=("bitwidth", "link eff bits", "resolved bits", "accuracy (mean)",
                 "accuracy (std)", "output RMSE"),
        params={
            # Swept as a zipped (b, b, b) diagonal over all three converter
            # bitwidths -- not a cross-product, so it lives in params rather
            # than declarative `sweep` axes (which mean a full grid).
            "precision_bits": ",".join(str(b) for b in _PRECISION_BITS),
            "trials": 8,
            "seed": 11,
            "model_seed": 3,
            "input_seed": 9,
            "samples": 48,
            "backend": "serial",
            "jobs": 0,
        },
        env_params={"precision_bits": "REPRO_PRECISION_BITS"},
        description=(
            "The three bitwidth axes are swept together (b, b, b).  Operands "
            "quantize to min(DAC/ADC bits, SNR-derived effective bits), so the "
            "curve shows where converter precision outruns what the optical "
            "link actually resolves."
        ),
        tags=("variation", "sweep"),
    ),
    verify=_check_accuracy_vs_precision,
)
def _build_accuracy_vs_precision(ctx: ScenarioContext) -> ScenarioResult:
    noise = standard_noise().scaled(0.5)
    bits_axis = tuple(
        int(b) for b in str(ctx.params["precision_bits"]).split(",") if b.strip()
    )
    rows = []
    series = {}
    for bits in bits_axis:
        arch = build_tempo(
            config=ArchitectureConfig(
                input_bits=bits, weight_bits=bits, output_bits=bits
            ),
            name=f"tempo_mc_b{bits}",
        )
        report = ctx.evaluate_accuracy(arch, _mc_request(ctx, noise, reference="float"))
        resolved = receiver_limited_bits(bits, report.effective_bits_nominal)
        series[bits] = {
            "accuracy_mean": report.accuracy_mean,
            "accuracy_std": report.accuracy_std,
            "rmse_mean": report.rmse_mean,
            "effective_bits_nominal": report.effective_bits_nominal,
            "resolved_bits": resolved,
        }
        rows.append(
            (
                bits,
                f"{report.effective_bits_nominal:.3f}",
                resolved,
                f"{report.accuracy_mean:.4f}",
                f"{report.accuracy_std:.4f}",
                f"{report.rmse_mean:.5f}",
            )
        )
    table = format_table(list(ctx.spec.columns), rows)
    return ScenarioResult(table=table, metrics={"series": series})


# ---------------------------------------------------------------------------------
# Extension: accuracy-vs-energy Pareto exploration (accuracy as a DSE objective)
# ---------------------------------------------------------------------------------

_PARETO_SWEEP = {
    "input_bits": (4, 6, 8),
    "core_height": (4, 8),
    "core_width": (4, 8),
}


def _check_accuracy_energy_pareto(result: ScenarioResult) -> None:
    points = result.metrics["points"]
    front_params = result.metrics["front_params"]
    assert len(points) == 12
    assert 1 <= len(front_params) <= len(points)
    for point in points:
        assert 0.0 <= point["error_rate"] <= 1.0
        assert point["energy_uj"] > 0.0
        assert abs(point["error_rate"] + point["accuracy"] - 1.0) < 1e-12
    # The front attains both single-objective optima (Pareto sanity; ties in
    # one objective are broken by the other, so compare values, not identities).
    front_points = [p for p in points if p["params"] in front_params]
    for objective in ("error_rate", "energy_uj"):
        best = min(p[objective] for p in points)
        assert min(p[objective] for p in front_points) == best
    # Paying for wider converters buys fidelity: 8-bit designs are no less
    # accurate than 4-bit designs on average.
    by_bits = {}
    for point in points:
        by_bits.setdefault(point["params"]["input_bits"], []).append(point["error_rate"])
    mean_err = {bits: sum(v) / len(v) for bits, v in by_bits.items()}
    assert mean_err[8] <= mean_err[4]


@REGISTRY.register(
    ScenarioSpec(
        name="accuracy_energy_pareto",
        title="Accuracy-vs-energy Pareto front over TeMPO (variation-aware DSE)",
        figure="extension",
        templates=("tempo",),
        workloads=("mc_classifier",),
        sweep=_PARETO_SWEEP,
        strategy="grid",
        objectives=("error_rate", "energy_uj"),
        columns=("design point", "error rate", "accuracy", "energy (uJ)", "pareto"),
        params={
            "trials": 6,
            "seed": 7,
            "model_seed": 3,
            "input_seed": 9,
            "samples": 48,
            "backend": "serial",
            "jobs": 0,
        },
        env_params={"backend": "REPRO_PARETO_BACKEND", "jobs": "REPRO_PARETO_JOBS"},
        description=(
            "Sweeps converter precision and core geometry with Monte Carlo "
            "inference accuracy as a first-class DSE objective next to energy: "
            "wider converters burn more laser/converter energy but resolve "
            "more levels, so the front traces the accuracy-energy trade-off."
        ),
        tags=("variation", "dse"),
    ),
    verify=_check_accuracy_energy_pareto,
)
def _build_accuracy_energy_pareto(ctx: ScenarioContext) -> ScenarioResult:
    model = mc_classifier_model(seed=int(ctx.params["model_seed"]))
    inputs = mc_classifier_inputs(
        samples=int(ctx.params["samples"]), seed=int(ctx.params["input_seed"])
    )
    request = AccuracyRequest(
        model=model,
        inputs=inputs,
        noise=standard_noise(),
        trials=int(ctx.params["trials"]),
        seed=int(ctx.params["seed"]),
    )
    workloads = extract_workloads(model, inputs)
    explorer = ctx.explorer(
        build_tempo,
        workloads,
        base_config=ctx.spec.arch_config(),
        accuracy=request,
    )
    backend = str(ctx.params["backend"])
    jobs = int(ctx.params["jobs"]) or None
    result = explorer.explore(
        ctx.design_space(), strategy=ctx.spec.strategy, backend=backend,
        max_workers=jobs,
    )
    front = result.pareto_front(ctx.spec.objectives)
    rows = [
        (", ".join(f"{k}={v}" for k, v in sorted(p.parameters.items())),
         f"{p.error_rate:.4f}", f"{p.accuracy:.4f}", f"{p.energy_uj:.4f}",
         "yes" if p in front else "no")
        for p in result.points
    ]
    table = format_table(list(ctx.spec.columns), rows)
    return ScenarioResult(
        table=table,
        metrics={
            "points": [
                {
                    "params": dict(p.parameters),
                    "error_rate": p.error_rate,
                    "accuracy": p.accuracy,
                    "energy_uj": p.energy_uj,
                }
                for p in result.points
            ],
            "front_params": [dict(p.parameters) for p in front],
            "backend": result.backend,
        },
        extras={"dse_result": result, "front": front},
    )
