"""Machine-readable performance benchmarking of registered scenarios.

``repro bench`` times scenarios from the registry -- warmup runs followed by
timed repeats, each against a fresh private :class:`EvaluationCache` and no
result store, so every repeat measures real engine work -- and writes a
versioned JSON report (``BENCH_PR6.json`` by default) seeding the repo's
performance trajectory: one file per PR, diffable across hosts and commits.

Schema ``repro-bench/2`` makes every timing block self-describing:

- ``knobs`` records the active perf knobs (``REPRO_FORWARD``, ``REPRO_RNG``,
  ``REPRO_DTYPE``, ``REPRO_MC_TRIALS``, ``REPRO_MC_BACKEND``,
  ``REPRO_MC_JOBS``) so entries from different modes are never compared
  apples-to-oranges;
- ``stages_s`` / ``stage_fractions`` attribute the Monte Carlo wall-clock to
  the rng / forward / quantize / metrics stages
  (:mod:`repro.variation.stages`), recording where the *next* ceiling is.

A scenario can be timed along three axes: the legacy ``REPRO_FORWARD=loop``
path (``compare_loop`` -> ``speedup_median``, the regression gate CI's
perf-smoke job checks), and the ``rng`` / ``dtype`` throughput modes.  When a
non-reference rng or dtype is selected, the bit-exact reference mode
(``vectorized`` + ``seedseq`` + ``float64``) is timed alongside and
``speedup_vs_reference_median`` records the additional speedup the fast path
buys over it.
"""

from __future__ import annotations

import contextlib
import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cache import EvaluationCache
from repro.core.engine import observe_passes
from repro.core.knobs import forced_env as _forced_env
from repro.core.knobs import raw_value as _knob_raw
from repro.exec.backends import available_cpus
from repro.onn.layers import (
    DTYPE_MODE_ENV,
    FORWARD_MODE_ENV,
    dtype_mode,
    forward_mode,
)
from repro.scenarios.registry import REGISTRY
from repro.variation.sampler import RNG_MODE_ENV, rng_mode
from repro.variation.stages import StageAccumulator, observe_stages

#: Schema tag embedded in every report, bumped on incompatible layout changes.
BENCH_SCHEMA = "repro-bench/2"

#: Default output path -- the repo-root perf-trajectory artifact of this PR.
DEFAULT_BENCH_PATH = "BENCH_PR10.json"

#: Environment knobs recorded verbatim in every timing block (execution shape).
_RECORDED_ENV = ("REPRO_MC_TRIALS", "REPRO_MC_BACKEND", "REPRO_MC_JOBS")

#: The bit-exact reference mode: the only mode committed scenario tables
#: reproduce under, and the baseline ``speedup_vs_reference_median`` divides by.
REFERENCE_MODE = ("vectorized", "seedseq", "float64")


def _percentile(sorted_times: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sample (stable for tiny N)."""
    if not sorted_times:
        raise ValueError("no samples")
    rank = max(0, min(len(sorted_times) - 1, int(round(fraction * (len(sorted_times) - 1)))))
    return sorted_times[rank]


@dataclass
class BenchTiming:
    """Timed repeats of one scenario on one (forward, rng, dtype) mode."""

    mode: str
    repeats: int
    warmup: int
    times_s: List[float] = field(default_factory=list)
    median_s: float = 0.0
    p90_s: float = 0.0
    min_s: float = 0.0
    mean_s: float = 0.0
    engine_passes: int = 0
    cache_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Active perf knobs at measurement time (self-describing entries).
    knobs: Dict[str, Optional[str]] = field(default_factory=dict)
    #: Per-stage wall-clock totals over the timed repeats (absent stages ran 0s).
    stages_s: Dict[str, float] = field(default_factory=dict)
    #: Each stage's fraction of the total timed wall-clock.
    stage_fractions: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_times(
        cls,
        mode: str,
        warmup: int,
        times_s: Sequence[float],
        engine_passes: int,
        cache_stats: Mapping[str, Mapping[str, float]],
        knobs: Optional[Mapping[str, Optional[str]]] = None,
        stages_s: Optional[Mapping[str, float]] = None,
    ) -> "BenchTiming":
        ordered = sorted(times_s)
        total = float(sum(times_s))
        stages = {k: float(v) for k, v in (stages_s or {}).items()}
        return cls(
            mode=mode,
            repeats=len(ordered),
            warmup=warmup,
            times_s=[float(t) for t in times_s],
            median_s=_percentile(ordered, 0.5),
            p90_s=_percentile(ordered, 0.9),
            min_s=ordered[0],
            mean_s=float(sum(ordered) / len(ordered)),
            engine_passes=int(engine_passes),
            cache_stats={k: dict(v) for k, v in cache_stats.items()},
            knobs=dict(knobs or {}),
            stages_s=stages,
            stage_fractions={
                k: (v / total if total > 0 else 0.0) for k, v in stages.items()
            },
        )


@contextlib.contextmanager
def _forced_forward_mode(mode: Optional[str]) -> Iterator[None]:
    """Pin ``$REPRO_FORWARD`` for the duration of the block (None = leave as is)."""
    with _forced_env(FORWARD_MODE_ENV, mode):
        yield


def _active_knobs() -> Dict[str, Optional[str]]:
    """The resolved perf knobs plus the raw execution-shape environment."""
    knobs: Dict[str, Optional[str]] = {
        FORWARD_MODE_ENV: forward_mode(),
        RNG_MODE_ENV: rng_mode(),
        DTYPE_MODE_ENV: dtype_mode(),
    }
    for var in _RECORDED_ENV:
        knobs[var] = _knob_raw(var)
    return knobs


def time_scenario(
    name: str,
    repeats: int = 3,
    warmup: int = 1,
    params: Optional[Mapping[str, Any]] = None,
    mode: Optional[str] = None,
    rng: Optional[str] = None,
    dtype: Optional[str] = None,
) -> BenchTiming:
    """Time ``repeats`` fresh runs of one scenario (after ``warmup`` discards).

    Every run gets a private evaluation cache and bypasses the result store,
    so the wall-clock covers the scenario's real engine passes; the pass count,
    the final run's per-stage cache hit rates, the active perf knobs and the
    variation pipeline's per-stage wall-clock are recorded alongside the
    timings (scenarios with internal sweeps legitimately hit their own cache).

    ``mode`` / ``rng`` / ``dtype`` pin ``$REPRO_FORWARD`` / ``$REPRO_RNG`` /
    ``$REPRO_DTYPE`` for the measurement; ``None`` leaves the ambient value.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    times: List[float] = []
    passes = 0
    stats: Dict[str, Dict[str, float]] = {}
    stage_totals = StageAccumulator()
    with _forced_env(FORWARD_MODE_ENV, mode), _forced_env(
        RNG_MODE_ENV, rng
    ), _forced_env(DTYPE_MODE_ENV, dtype):
        knobs = _active_knobs()
        mode_label = "/".join(
            (knobs[FORWARD_MODE_ENV], knobs[RNG_MODE_ENV], knobs[DTYPE_MODE_ENV])
        )
        for round_index in range(warmup + repeats):
            cache = EvaluationCache()
            pass_count = 0

            def count(stage: str, engine: object) -> None:
                nonlocal pass_count
                if getattr(engine, "cache", None) is cache:
                    pass_count += 1

            timed = round_index >= warmup
            with contextlib.ExitStack() as stack:
                stack.enter_context(observe_passes(count))
                if timed:
                    # Stage observation only on timed rounds: identical
                    # instrumentation overhead in every mode's numbers.
                    stack.enter_context(observe_stages(stage_totals))
                start = time.perf_counter()
                REGISTRY.run(name, params=params, cache=cache, store=None, force=True)
                elapsed = time.perf_counter() - start
            if timed:
                times.append(elapsed)
                passes = pass_count
                stats = {
                    stage: {
                        "hits": stat.hits,
                        "misses": stat.misses,
                        "hit_rate": stat.hit_rate,
                    }
                    for stage, stat in cache.stats.items()
                }
    return BenchTiming.from_times(
        mode_label, warmup, times, passes, stats, knobs=knobs,
        stages_s=stage_totals.totals(),
    )


def bench_scenarios(
    names: Sequence[str],
    repeats: int = 3,
    warmup: int = 1,
    compare_loop: Sequence[str] = (),
    params: Optional[Mapping[str, Any]] = None,
    rng: Optional[str] = None,
    dtype: Optional[str] = None,
) -> Dict[str, Any]:
    """Benchmark ``names`` and return the JSON-ready report payload.

    The headline ``vectorized`` timing runs on the requested ``rng`` / ``dtype``
    modes (defaults: the ambient environment, normally the bit-exact reference).
    Scenarios listed in ``compare_loop`` are additionally timed on the legacy
    ``REPRO_FORWARD=loop`` path (same rng/dtype); their entries gain a ``loop``
    timing block and ``speedup_median`` (loop median / vectorized median --
    > 1 means the vectorized default is faster).  When the requested rng/dtype
    differ from the reference mode, each scenario is *also* timed on the
    reference mode (``reference`` block) and ``speedup_vs_reference_median``
    records reference median / vectorized median -- the additional speedup the
    selected throughput mode buys over the bit-exact contract.
    """
    unknown = [n for n in compare_loop if n not in names]
    if unknown:
        raise ValueError(
            f"compare-loop scenarios not in the benchmark selection: {unknown}"
        )
    scenarios: Dict[str, Any] = {}
    for name in names:
        vectorized = time_scenario(
            name, repeats=repeats, warmup=warmup, params=params,
            mode="vectorized", rng=rng, dtype=dtype,
        )
        entry: Dict[str, Any] = {"vectorized": asdict(vectorized)}
        # Scenarios that never enter the Monte Carlo pipeline (no rng/forward/
        # quantize/metrics stage time) are pure analytic table computations:
        # the rng/dtype throughput modes cannot change their wall-clock, so a
        # "reference comparison" would only record sub-millisecond timer
        # jitter as a fake speedup (BENCH_PR6 recorded 0.88-0.95x noise for
        # fig10a/fig6/fig7/table1).  Mark them instead of timing a
        # meaningless baseline.
        analytic_only = not vectorized.stages_s
        entry["analytic_only"] = analytic_only
        selected: Tuple[str, str, str] = (
            "vectorized",
            vectorized.knobs[RNG_MODE_ENV] or "seedseq",
            vectorized.knobs[DTYPE_MODE_ENV] or "float64",
        )
        if selected != REFERENCE_MODE and not analytic_only:
            reference = time_scenario(
                name, repeats=repeats, warmup=warmup, params=params,
                mode="vectorized", rng="seedseq", dtype="float64",
            )
            entry["reference"] = asdict(reference)
            entry["speedup_vs_reference_median"] = (
                reference.median_s / vectorized.median_s
                if vectorized.median_s > 0
                else 0.0
            )
        if name in compare_loop:
            loop = time_scenario(
                name, repeats=repeats, warmup=warmup, params=params,
                mode="loop", rng=rng, dtype=dtype,
            )
            entry["loop"] = asdict(loop)
            entry["speedup_median"] = (
                loop.median_s / vectorized.median_s if vectorized.median_s > 0 else 0.0
            )
        scenarios[name] = entry
    return {
        "schema": BENCH_SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "cpus": available_cpus(),
        },
        "settings": {
            "repeats": repeats,
            "warmup": warmup,
            "params": dict(params or {}),
            "forward_env": FORWARD_MODE_ENV,
            "rng_env": RNG_MODE_ENV,
            "dtype_env": DTYPE_MODE_ENV,
            "rng": rng,
            "dtype": dtype,
        },
        "scenarios": scenarios,
    }


def bench_cluster_scaling(
    name: str,
    worker_counts: Sequence[int] = (1, 2),
    repeats: int = 3,
    warmup: int = 1,
    params: Optional[Mapping[str, Any]] = None,
    rng: Optional[str] = None,
    dtype: Optional[str] = None,
    wait_s: float = 60.0,
) -> Dict[str, Any]:
    """Time one scenario serially and on localhost clusters of growing size.

    For every worker count a *fresh* coordinator is started on an ephemeral
    port and exactly that many ``repro worker`` subprocesses are spawned and
    torn down, so each measurement sees precisely the fleet it claims
    (persistent workers from a previous count can never inflate a later one).
    Returns the ``cluster_scaling`` payload block: the serial baseline plus a
    ``workers -> timing`` map with ``speedup_vs_serial_median`` ratios -- the
    workers x wall-clock record BENCH_PR7 tracks.

    Localhost workers share the host's cores, so the recorded scaling is a
    lower bound dominated by per-round shipping overhead; the same knobs point
    the backend at real remote hosts.
    """
    from repro.exec.cluster import (
        CLUSTER_HOST_ENV,
        CLUSTER_PORT_ENV,
        CLUSTER_WORKERS_ENV,
        coordinator_for,
        spawn_local_workers,
    )

    counts = sorted(set(int(c) for c in worker_counts))
    if not counts or counts[0] < 1:
        raise ValueError(f"worker counts must be positive, got {worker_counts!r}")
    with _forced_env("REPRO_MC_BACKEND", "serial"):
        serial = time_scenario(
            name, repeats=repeats, warmup=warmup, params=params,
            mode="vectorized", rng=rng, dtype=dtype,
        )
    block: Dict[str, Any] = {
        "scenario": name,
        "serial": asdict(serial),
        "cluster": {},
    }
    for count in counts:
        coordinator = coordinator_for("127.0.0.1", 0)
        processes = spawn_local_workers(count, coordinator.host, coordinator.port)
        try:
            coordinator.wait_for_workers(count, wait_s)
            with _forced_env("REPRO_MC_BACKEND", "cluster"), _forced_env(
                CLUSTER_HOST_ENV, coordinator.host
            ), _forced_env(CLUSTER_PORT_ENV, str(coordinator.port)), _forced_env(
                CLUSTER_WORKERS_ENV, str(count)
            ):
                timing = time_scenario(
                    name, repeats=repeats, warmup=warmup, params=params,
                    mode="vectorized", rng=rng, dtype=dtype,
                )
        finally:
            coordinator.close("shutdown")
            for process in processes:
                try:
                    process.wait(timeout=10)
                except Exception:  # noqa: BLE001 - last resort below
                    process.terminate()
                    process.wait(timeout=10)
        entry = asdict(timing)
        entry["workers"] = count
        entry["speedup_vs_serial_median"] = (
            serial.median_s / timing.median_s if timing.median_s > 0 else 0.0
        )
        block["cluster"][str(count)] = entry
    return block


#: The dispatch configurations ``bench_dispatch_comparison`` times, in order:
#: the pre-warm-pool baseline, the persistent pool alone, and the pool plus
#: shared-memory task transport.
DISPATCH_MODES: Tuple[Tuple[str, str, str], ...] = (
    ("cold", "cold", "off"),
    ("warm", "warm", "off"),
    ("warm_shm", "warm", "on"),
)


def bench_dispatch_comparison(
    name: str = "variation_robustness",
    repeats: int = 3,
    warmup: int = 1,
    jobs: Optional[int] = None,
    params: Optional[Mapping[str, Any]] = None,
    rng: Optional[str] = None,
    dtype: Optional[str] = None,
) -> Dict[str, Any]:
    """Time one scenario serially and under each process-dispatch configuration.

    Pins ``REPRO_MC_BACKEND=processes`` and sweeps ``(REPRO_POOL, REPRO_SHM)``
    through :data:`DISPATCH_MODES`: the cold-pool baseline pays executor
    spin-up on every run, ``warm`` reuses one persistent pool across the timed
    repeats (the warmup round absorbs the one-time spin-up), and ``warm_shm``
    additionally ships task arrays as shared-memory digests instead of
    pickles.  Every entry records ``speedup_vs_serial_median`` against the
    same-knobs serial baseline and ``dispatch_overhead_s`` -- the ``dispatch``
    stage total: backend wall-clock not attributable to any worker compute
    stage (spin-up, pickling, IPC, idle gaps).  Warm pools are stopped between
    modes so each configuration measures exactly the fleet it claims.
    """
    from repro.exec.pool import stop_pools

    with _forced_env("REPRO_MC_BACKEND", "serial"):
        serial = time_scenario(
            name, repeats=repeats, warmup=warmup, params=params,
            mode="vectorized", rng=rng, dtype=dtype,
        )
    block: Dict[str, Any] = {
        "scenario": name,
        "serial": asdict(serial),
        "dispatch": {},
    }
    for label, pool, shm in DISPATCH_MODES:
        stop_pools()
        try:
            with contextlib.ExitStack() as stack:
                stack.enter_context(_forced_env("REPRO_MC_BACKEND", "processes"))
                if jobs is not None:
                    stack.enter_context(_forced_env("REPRO_MC_JOBS", str(jobs)))
                stack.enter_context(_forced_env("REPRO_POOL", pool))
                stack.enter_context(_forced_env("REPRO_SHM", shm))
                timing = time_scenario(
                    name, repeats=repeats, warmup=warmup, params=params,
                    mode="vectorized", rng=rng, dtype=dtype,
                )
        finally:
            stop_pools()
        entry = asdict(timing)
        entry["pool"] = pool
        entry["shm"] = shm
        entry["speedup_vs_serial_median"] = (
            serial.median_s / timing.median_s if timing.median_s > 0 else 0.0
        )
        entry["dispatch_overhead_s"] = float(timing.stages_s.get("dispatch", 0.0))
        block["dispatch"][label] = entry
    return block


def write_bench_report(
    payload: Mapping[str, Any], path: Union[str, Path] = DEFAULT_BENCH_PATH
) -> Path:
    """Write the report as stable, diff-friendly JSON and return its path."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def check_speedups(
    payload: Mapping[str, Any],
    thresholds: Mapping[str, float],
    key: str = "speedup_median",
) -> List[str]:
    """Validate recorded speedups against per-scenario minimum factors.

    ``key`` selects which recorded ratio is gated: ``speedup_median`` (the
    loop-path comparison, default) or ``speedup_vs_reference_median`` (the
    throughput-mode-vs-reference comparison).  Returns human-readable
    violation messages (empty = all thresholds met).  Scenarios without the
    recorded comparison fail loudly -- a gate against a missing comparison
    selection silently passing CI.
    """
    labels = {
        "speedup_median": "no loop-path comparison recorded",
        "speedup_vs_reference_median": "no reference-mode comparison recorded",
    }
    failures = []
    for name, minimum in thresholds.items():
        entry = payload.get("scenarios", {}).get(name)
        if entry is None:
            failures.append(f"{name}: not benchmarked")
            continue
        speedup = entry.get(key)
        if speedup is None:
            if key == "speedup_vs_reference_median" and entry.get("analytic_only"):
                # Deterministic config error, not a jitter-dependent flake: an
                # analytic scenario has no Monte Carlo stage work for the
                # throughput modes to speed up, so no ratio is recorded.
                failures.append(
                    f"{name}: analytic-only scenario (no Monte Carlo stage "
                    "work), no reference ratio is recorded -- drop this "
                    "--fail-below-ref gate"
                )
            else:
                failures.append(f"{name}: {labels.get(key, f'no {key} recorded')}")
        elif speedup < minimum:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below the "
                f"required {minimum:.2f}x ({key})"
            )
    return failures
