"""Machine-readable performance benchmarking of registered scenarios.

``repro bench`` times scenarios from the registry -- warmup runs followed by
timed repeats, each against a fresh private :class:`EvaluationCache` and no
result store, so every repeat measures real engine work -- and writes a
versioned JSON report (``BENCH_PR5.json`` by default) seeding the repo's
performance trajectory: one file per PR, diffable across hosts and commits.

A scenario can additionally be timed on the legacy ``REPRO_FORWARD=loop``
path (``compare_loop``), which records both timings plus the median speedup of
the default vectorized path -- the regression gate CI's perf-smoke job checks.
"""

from __future__ import annotations

import contextlib
import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.cache import EvaluationCache
from repro.core.engine import observe_passes
from repro.exec.backends import available_cpus
from repro.onn.layers import FORWARD_MODE_ENV, forward_mode
from repro.scenarios.registry import REGISTRY

#: Schema tag embedded in every report, bumped on incompatible layout changes.
BENCH_SCHEMA = "repro-bench/1"

#: Default output path -- the repo-root perf-trajectory artifact of this PR.
DEFAULT_BENCH_PATH = "BENCH_PR5.json"


def _percentile(sorted_times: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sample (stable for tiny N)."""
    if not sorted_times:
        raise ValueError("no samples")
    rank = max(0, min(len(sorted_times) - 1, int(round(fraction * (len(sorted_times) - 1)))))
    return sorted_times[rank]


@dataclass
class BenchTiming:
    """Timed repeats of one scenario on one forward mode."""

    mode: str
    repeats: int
    warmup: int
    times_s: List[float] = field(default_factory=list)
    median_s: float = 0.0
    p90_s: float = 0.0
    min_s: float = 0.0
    mean_s: float = 0.0
    engine_passes: int = 0
    cache_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @classmethod
    def from_times(
        cls,
        mode: str,
        warmup: int,
        times_s: Sequence[float],
        engine_passes: int,
        cache_stats: Mapping[str, Mapping[str, float]],
    ) -> "BenchTiming":
        ordered = sorted(times_s)
        return cls(
            mode=mode,
            repeats=len(ordered),
            warmup=warmup,
            times_s=[float(t) for t in times_s],
            median_s=_percentile(ordered, 0.5),
            p90_s=_percentile(ordered, 0.9),
            min_s=ordered[0],
            mean_s=float(sum(ordered) / len(ordered)),
            engine_passes=int(engine_passes),
            cache_stats={k: dict(v) for k, v in cache_stats.items()},
        )


@contextlib.contextmanager
def _forced_forward_mode(mode: Optional[str]) -> Iterator[None]:
    """Pin ``$REPRO_FORWARD`` for the duration of the block (None = leave as is)."""
    if mode is None:
        yield
        return
    previous = os.environ.get(FORWARD_MODE_ENV)
    os.environ[FORWARD_MODE_ENV] = mode
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FORWARD_MODE_ENV, None)
        else:
            os.environ[FORWARD_MODE_ENV] = previous


def time_scenario(
    name: str,
    repeats: int = 3,
    warmup: int = 1,
    params: Optional[Mapping[str, Any]] = None,
    mode: Optional[str] = None,
) -> BenchTiming:
    """Time ``repeats`` fresh runs of one scenario (after ``warmup`` discards).

    Every run gets a private evaluation cache and bypasses the result store,
    so the wall-clock covers the scenario's real engine passes; the pass count
    and the final run's per-stage cache hit rates are recorded alongside the
    timings (scenarios with internal sweeps legitimately hit their own cache).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    times: List[float] = []
    passes = 0
    stats: Dict[str, Dict[str, float]] = {}
    with _forced_forward_mode(mode):
        resolved_mode = forward_mode()
        for round_index in range(warmup + repeats):
            cache = EvaluationCache()
            pass_count = 0

            def count(stage: str, engine: object) -> None:
                nonlocal pass_count
                if getattr(engine, "cache", None) is cache:
                    pass_count += 1

            with observe_passes(count):
                start = time.perf_counter()
                REGISTRY.run(name, params=params, cache=cache, store=None, force=True)
                elapsed = time.perf_counter() - start
            if round_index >= warmup:
                times.append(elapsed)
                passes = pass_count
                stats = {
                    stage: {
                        "hits": stat.hits,
                        "misses": stat.misses,
                        "hit_rate": stat.hit_rate,
                    }
                    for stage, stat in cache.stats.items()
                }
    return BenchTiming.from_times(resolved_mode, warmup, times, passes, stats)


def bench_scenarios(
    names: Sequence[str],
    repeats: int = 3,
    warmup: int = 1,
    compare_loop: Sequence[str] = (),
    params: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Benchmark ``names`` and return the JSON-ready report payload.

    Scenarios listed in ``compare_loop`` are additionally timed on the legacy
    ``REPRO_FORWARD=loop`` path; their entries gain a ``loop`` timing block and
    ``speedup_median`` (loop median / vectorized median -- > 1 means the
    vectorized default is faster).
    """
    unknown = [n for n in compare_loop if n not in names]
    if unknown:
        raise ValueError(
            f"compare-loop scenarios not in the benchmark selection: {unknown}"
        )
    scenarios: Dict[str, Any] = {}
    for name in names:
        vectorized = time_scenario(
            name, repeats=repeats, warmup=warmup, params=params, mode="vectorized"
        )
        entry: Dict[str, Any] = {"vectorized": asdict(vectorized)}
        if name in compare_loop:
            loop = time_scenario(
                name, repeats=repeats, warmup=warmup, params=params, mode="loop"
            )
            entry["loop"] = asdict(loop)
            entry["speedup_median"] = (
                loop.median_s / vectorized.median_s if vectorized.median_s > 0 else 0.0
            )
        scenarios[name] = entry
    return {
        "schema": BENCH_SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "cpus": available_cpus(),
        },
        "settings": {
            "repeats": repeats,
            "warmup": warmup,
            "params": dict(params or {}),
            "forward_env": FORWARD_MODE_ENV,
        },
        "scenarios": scenarios,
    }


def write_bench_report(
    payload: Mapping[str, Any], path: Union[str, Path] = DEFAULT_BENCH_PATH
) -> Path:
    """Write the report as stable, diff-friendly JSON and return its path."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def check_speedups(
    payload: Mapping[str, Any], thresholds: Mapping[str, float]
) -> List[str]:
    """Validate recorded speedups against per-scenario minimum factors.

    Returns human-readable violation messages (empty = all thresholds met).
    Scenarios without a recorded comparison fail loudly -- a gate against a
    missing ``compare_loop`` selection silently passing CI.
    """
    failures = []
    for name, minimum in thresholds.items():
        entry = payload.get("scenarios", {}).get(name)
        if entry is None:
            failures.append(f"{name}: not benchmarked")
            continue
        speedup = entry.get("speedup_median")
        if speedup is None:
            failures.append(f"{name}: no loop-path comparison recorded")
        elif speedup < minimum:
            failures.append(
                f"{name}: vectorized speedup {speedup:.2f}x below the "
                f"required {minimum:.2f}x"
            )
    return failures
