"""The scenario registry: declarative specs bound to their build/verify code.

Usage (see :mod:`repro.scenarios.catalog` for the real entries)::

    @REGISTRY.register(
        ScenarioSpec(name="fig6_layout", title="...", templates=("tempo",)),
        verify=_check_fig6,
    )
    def _build_fig6(ctx: ScenarioContext) -> ScenarioResult:
        ...

``REGISTRY.run(name)`` resolves parameters, consults the persistent
:class:`~repro.scenarios.store.ResultStore` (when one is supplied), executes the
build function against a :class:`ScenarioContext` carrying the shared
:class:`~repro.core.cache.EvaluationCache`, sanitizes the metrics to their
JSON-canonical form, and persists the artifact.
"""

from __future__ import annotations

import difflib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.arch.architecture import Architecture, HeterogeneousArchitecture
from repro.core.cache import EvaluationCache
from repro.core.config import SimulationConfig
from repro.core.engine import EvaluationEngine, SimulationResult
from repro.core.knobs import repro_env_snapshot
from repro.explore.dse import DesignSpace, DesignSpaceExplorer
from repro.scenarios.spec import ScenarioResult, ScenarioSpec
from repro.scenarios.store import ResultStore, scenario_fingerprint

BuildFn = Callable[["ScenarioContext"], ScenarioResult]
VerifyFn = Callable[[ScenarioResult], None]


@dataclass
class ScenarioContext:
    """Everything a scenario build function needs to execute.

    The context carries the resolved per-run parameters and the evaluation
    cache shared across a batch, plus engine-backed conveniences so scenario
    code does not hand-roll `Simulator` plumbing.
    """

    spec: ScenarioSpec
    params: Dict[str, Any] = field(default_factory=dict)
    cache: EvaluationCache = field(default_factory=EvaluationCache)

    def simulate(
        self,
        system: Union[Architecture, HeterogeneousArchitecture],
        workloads: object,
        config: Optional[SimulationConfig] = None,
        type_rules: Optional[Dict[str, str]] = None,
    ) -> SimulationResult:
        """Run the staged engine over ``system`` with the batch-shared cache."""
        engine = EvaluationEngine(
            system,
            config if config is not None else self.spec.sim_config(),
            type_rules=type_rules,
            cache=self.cache,
        )
        return engine.run(workloads)

    def explorer(
        self,
        builder: Callable[..., Architecture],
        workloads: Sequence[object],
        **kwargs: Any,
    ) -> DesignSpaceExplorer:
        """A design-space explorer wired to the batch-shared cache."""
        kwargs.setdefault("cache", self.cache)
        return DesignSpaceExplorer(builder, workloads, **kwargs)

    def design_space(self) -> DesignSpace:
        """The spec's declarative sweep axes as a DesignSpace."""
        if not self.spec.sweep:
            raise ValueError(f"scenario {self.spec.name!r} declares no sweep axes")
        return DesignSpace.from_axes(self.spec.sweep)

    def evaluate_accuracy(self, arch: Architecture, request) -> object:
        """Monte Carlo accuracy of ``request`` on ``arch`` via the shared cache.

        ``request`` is a :class:`~repro.variation.montecarlo.AccuracyRequest`;
        the study runs through the engine's memoized ``receiver_precision`` /
        ``mc_accuracy`` passes, so repeated magnitudes or architectures within
        a batch are cache hits.
        """
        engine = EvaluationEngine(arch, self.spec.sim_config(), cache=self.cache)
        return engine.run_accuracy(request)


@dataclass
class Scenario:
    """A registered scenario: declarative spec + build + optional verification."""

    spec: ScenarioSpec
    build: BuildFn
    verify: Optional[VerifyFn] = None

    @property
    def name(self) -> str:
        return self.spec.name


def _jsonify(value: Any) -> Any:
    """Canonicalize metrics to what a JSON round-trip would return."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"scenario metrics must be JSON-serializable, got {type(value).__name__}: {value!r}"
    )


class ScenarioRegistry:
    """Name -> :class:`Scenario` mapping with decorator-based registration."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    # -- registration ------------------------------------------------------------------
    def register(
        self, spec: ScenarioSpec, verify: Optional[VerifyFn] = None
    ) -> Callable[[BuildFn], BuildFn]:
        """Decorator registering ``spec`` with the decorated build function."""

        def decorator(build: BuildFn) -> BuildFn:
            if spec.name in self._scenarios:
                raise ValueError(f"scenario {spec.name!r} is already registered")
            self._scenarios[spec.name] = Scenario(spec=spec, build=build, verify=verify)
            return build

        return decorator

    # -- lookup ------------------------------------------------------------------------
    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            close = difflib.get_close_matches(name, sorted(self._scenarios), n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise KeyError(
                f"unknown scenario {name!r}{hint}; "
                f"registered: {', '.join(sorted(self._scenarios))}"
            ) from None

    def names(self, tag: Optional[str] = None) -> List[str]:
        if tag is None:
            return sorted(self._scenarios)
        return sorted(
            name for name, sc in self._scenarios.items() if tag in sc.spec.tags
        )

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __iter__(self) -> Iterator[Scenario]:
        for name in sorted(self._scenarios):
            yield self._scenarios[name]

    def __len__(self) -> int:
        return len(self._scenarios)

    # -- execution ---------------------------------------------------------------------
    def fingerprint(
        self, name: str, params: Optional[Mapping[str, Any]] = None
    ) -> str:
        scenario = self.get(name)
        resolved = scenario.spec.resolve_params(params, env=repro_env_snapshot())
        return scenario_fingerprint(scenario.spec, resolved, scenario.build)

    def run(
        self,
        name: str,
        params: Optional[Mapping[str, Any]] = None,
        cache: Optional[EvaluationCache] = None,
        store: Optional[ResultStore] = None,
        force: bool = False,
    ) -> ScenarioResult:
        """Execute (or fetch from the store) one scenario and return its result.

        - ``params`` override the spec's declared parameter defaults;
        - ``cache`` is the evaluation cache shared across a batch (a private
          one is created per run when omitted);
        - ``store``, when given, is consulted before running and updated after;
        - ``force`` bypasses the store lookup (the artifact is still rewritten).
        """
        scenario = self.get(name)
        resolved = scenario.spec.resolve_params(params, env=repro_env_snapshot())
        fingerprint = scenario_fingerprint(scenario.spec, resolved, scenario.build)
        if store is not None and not force:
            stored = store.load(name, fingerprint)
            if stored is not None:
                return stored
        ctx = ScenarioContext(
            spec=scenario.spec,
            params=resolved,
            cache=cache if cache is not None else EvaluationCache(),
        )
        start = time.perf_counter()
        result = scenario.build(ctx)
        result.name = name
        result.fingerprint = fingerprint
        result.params = dict(resolved)
        result.elapsed_s = time.perf_counter() - start
        result.metrics = _jsonify(result.metrics)
        # Self-check: the artifact body must survive a JSON round-trip as-is.
        result.metrics = json.loads(json.dumps(result.metrics))
        if store is not None:
            store.save(result)
        return result

    def verify(self, name: str, result: ScenarioResult) -> None:
        """Run the scenario's qualitative shape checks against ``result``."""
        scenario = self.get(name)
        if scenario.verify is not None:
            scenario.verify(result)


#: The process-wide registry every catalog entry registers into.
REGISTRY = ScenarioRegistry()


def run_scenario(name: str, **kwargs: Any) -> ScenarioResult:
    """Convenience wrapper over :meth:`ScenarioRegistry.run` on the global registry."""
    return REGISTRY.run(name, **kwargs)
