"""Batch execution of registered scenarios with a shared cache and result store.

The :class:`BatchRunner` is the engine room behind ``python -m repro batch``:

- one :class:`~repro.core.cache.EvaluationCache` is shared by every scenario in
  the batch, so scenarios that touch the same templates/workloads reuse each
  other's engine passes within the process;
- the persistent :class:`~repro.scenarios.store.ResultStore` is consulted per
  scenario, so an unchanged scenario is a cross-process cache hit that executes
  *zero* engine passes (counted via :func:`repro.core.engine.observe_passes`
  and reported in the batch summary);
- ``max_workers`` > 1 runs scenarios on a thread pool; results keep request
  order regardless of completion order.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.cache import EvaluationCache
from repro.core.engine import observe_passes
from repro.core.report import format_table
from repro.scenarios.registry import REGISTRY, ScenarioRegistry
from repro.scenarios.spec import ScenarioResult
from repro.scenarios.store import ResultStore


@dataclass
class BatchItem:
    """Outcome of one scenario within a batch."""

    name: str
    result: Optional[ScenarioResult] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def from_store(self) -> bool:
        return self.result is not None and self.result.from_store


@dataclass
class BatchReport:
    """All batch items plus process-level accounting."""

    items: List[BatchItem] = field(default_factory=list)
    engine_passes: int = 0
    elapsed_s: float = 0.0
    cache: Optional[EvaluationCache] = None

    @property
    def ok(self) -> bool:
        return all(item.ok for item in self.items)

    @property
    def all_from_store(self) -> bool:
        return bool(self.items) and all(item.from_store for item in self.items if item.ok)

    def item(self, name: str) -> BatchItem:
        for item in self.items:
            if item.name == name:
                return item
        raise KeyError(f"no batch item named {name!r}")

    def summary_table(self) -> str:
        rows = []
        for item in self.items:
            if not item.ok:
                status = "ERROR"
            elif item.from_store:
                status = "store hit"
            else:
                status = "ran"
            rows.append((item.name, status, f"{item.elapsed_s * 1e3:.1f}"))
        table = format_table(["scenario", "status", "wall-clock (ms)"], rows)
        return (
            f"{table}\n\n"
            f"engine passes executed: {self.engine_passes}\n"
            f"batch wall-clock: {self.elapsed_s:.2f} s"
        )


class BatchRunner:
    """Run one or many registered scenarios through a shared cache and store."""

    def __init__(
        self,
        registry: ScenarioRegistry = REGISTRY,
        store: Optional[ResultStore] = None,
        cache: Optional[EvaluationCache] = None,
        max_workers: Optional[int] = None,
        force: bool = False,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive when given")
        self.registry = registry
        self.store = store
        self.cache = cache if cache is not None else EvaluationCache()
        self.max_workers = max_workers
        self.force = force

    def _run_one(self, name: str) -> BatchItem:
        start = time.perf_counter()
        try:
            result = self.registry.run(
                name, cache=self.cache, store=self.store, force=self.force
            )
            return BatchItem(
                name=name, result=result, elapsed_s=time.perf_counter() - start
            )
        except Exception as exc:  # noqa: BLE001 - reported per item, batch continues
            return BatchItem(
                name=name,
                error=f"{type(exc).__name__}: {exc}",
                elapsed_s=time.perf_counter() - start,
            )

    def run(self, names: Sequence[str]) -> BatchReport:
        """Execute ``names`` in order (or on a thread pool) and report per item.

        Unknown scenario names raise before anything runs; execution errors are
        captured per item so one broken scenario does not abort the batch.
        """
        names = list(names)
        for name in names:
            self.registry.get(name)  # fail fast with the actionable message
        pass_count = 0
        lock = threading.Lock()

        def count_pass(_stage: str, _engine: object) -> None:
            nonlocal pass_count
            with lock:
                pass_count += 1

        start = time.perf_counter()
        with observe_passes(count_pass):
            if self.max_workers is not None and self.max_workers > 1:
                with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                    items = list(pool.map(self._run_one, names))
            else:
                items = [self._run_one(name) for name in names]
        return BatchReport(
            items=items,
            engine_passes=pass_count,
            elapsed_s=time.perf_counter() - start,
            cache=self.cache,
        )
