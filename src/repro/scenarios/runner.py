"""Batch execution of registered scenarios over a pluggable execution backend.

The :class:`BatchRunner` is the engine room behind ``python -m repro batch``:

- one :class:`~repro.core.cache.EvaluationCache` is shared by every scenario in
  the batch (per worker process under the process backend), so scenarios that
  touch the same templates/workloads reuse each other's engine passes;
- the persistent :class:`~repro.scenarios.store.ResultStore` is consulted per
  scenario, so an unchanged scenario is a cross-process cache hit that executes
  *zero* engine passes; under the process backend the parent prefetches stored
  artifacts so workers are never even spawned for them (warm start);
- the execution backend (:mod:`repro.exec`) decides how fresh scenarios run:
  inline (``serial``), on a thread pool (``threads``), or on a process pool
  (``processes``) that sidesteps the GIL.  Results keep request order and are
  byte-identical across backends.

Pass accounting is per-runner: each runner counts only the passes of engines
bound to *its* evaluation cache (via :func:`repro.core.engine.observe_passes`),
so concurrent runners -- or a runner inside an observed test -- never
cross-contaminate each other's ``engine_passes``.  Under the process backend
each worker counts its own share and the parent merges the telemetry.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cache import CacheStats, EvaluationCache
from repro.core.engine import observe_passes
from repro.core.report import format_table
from repro.exec import (
    ExecutionBackend,
    PassTiming,
    WorkerTelemetry,
    applied_env_snapshot,
    cache_stats_delta,
    cache_stats_snapshot,
    render_pass_timings,
    repro_env_snapshot,
    resolve_backend,
    scoped_pass_observer,
)
from repro.scenarios.registry import REGISTRY, ScenarioRegistry
from repro.scenarios.spec import ScenarioResult
from repro.scenarios.store import ResultStore


@dataclass
class BatchItem:
    """Outcome of one scenario within a batch."""

    name: str
    result: Optional[ScenarioResult] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def from_store(self) -> bool:
        return self.result is not None and self.result.from_store


@dataclass
class BatchReport:
    """All batch items plus batch-level accounting.

    ``engine_passes`` / ``pass_timings`` / ``cache_stats`` cover the engine
    work bound to the batch-shared evaluation cache (the ``ScenarioContext``
    plumbing: ``ctx.simulate`` / ``ctx.explorer``), merged across workers when
    the batch ran on the process backend.  The cache-identity scoping is what
    keeps concurrent runners from cross-contaminating each other; its flip side
    is that scenarios which deliberately construct *private* caches (the
    ``dse_scaling``/``dse_backend_scaling`` timing studies measure fresh caches
    by design) are excluded from these counters.  The store-hit contract is
    unaffected: a fully store-served batch reports ``engine_passes == 0``.
    """

    items: List[BatchItem] = field(default_factory=list)
    engine_passes: int = 0
    elapsed_s: float = 0.0
    cache: Optional[EvaluationCache] = None
    backend: str = "serial"
    jobs: int = 1
    pass_timings: Dict[str, PassTiming] = field(default_factory=dict)
    cache_stats: Dict[str, CacheStats] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(item.ok for item in self.items)

    @property
    def all_from_store(self) -> bool:
        return bool(self.items) and all(item.from_store for item in self.items if item.ok)

    def item(self, name: str) -> BatchItem:
        for item in self.items:
            if item.name == name:
                return item
        raise KeyError(f"no batch item named {name!r}")

    def summary_table(self) -> str:
        rows = []
        for item in self.items:
            if not item.ok:
                status = "ERROR"
            elif item.from_store:
                status = "store hit"
            else:
                status = "ran"
            rows.append((item.name, status, f"{item.elapsed_s * 1e3:.1f}"))
        table = format_table(["scenario", "status", "wall-clock (ms)"], rows)
        lines = [
            table,
            "",
            f"backend: {self.backend} ({self.jobs} jobs)",
            f"engine passes executed: {self.engine_passes}",
        ]
        if self.pass_timings:
            lines.append("per-pass wall-clock:")
            lines.append(render_pass_timings(self.pass_timings))
        lines.append(f"batch wall-clock: {self.elapsed_s:.2f} s")
        return "\n".join(lines)


# -- process-backend worker protocol ---------------------------------------------------


@dataclass(frozen=True)
class _ProcessBatchContext:
    """Picklable per-batch context shipped to every worker chunk.

    ``env`` snapshots the parent's ``REPRO_*`` environment at encoding time:
    process-pool workers inherit the parent env anyway, but cluster workers
    may live on another host with a different shell environment, and the
    scenario tables must be a function of the *parent's* modes.
    """

    store_root: Optional[str]
    force: bool
    env: Optional[Dict[str, str]] = None


@dataclass
class _BatchTaskOutcome:
    """Picklable per-task return: the item plus the worker's telemetry delta."""

    item: BatchItem
    telemetry: WorkerTelemetry


#: One evaluation cache per worker process, shared by every scenario that
#: worker executes (the process-pool analogue of the runner's shared cache).
_WORKER_CACHE: Optional[EvaluationCache] = None


def _worker_cache() -> EvaluationCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = EvaluationCache()
    return _WORKER_CACHE


def _run_batch_task(shared: _ProcessBatchContext, name: str) -> _BatchTaskOutcome:
    """Run one scenario inside a worker process.

    Tasks within one worker run sequentially, so the per-worker cache and the
    plain counters need no locking; telemetry is returned as a delta so the
    parent's merge never double-counts the cache shared across tasks.
    """
    cache = _worker_cache()
    store = ResultStore(shared.store_root) if shared.store_root is not None else None
    stats_before = cache_stats_snapshot(cache)
    telemetry = WorkerTelemetry()
    start = time.perf_counter()
    with applied_env_snapshot(shared.env), observe_passes(
        scoped_pass_observer(cache, telemetry)
    ):
        try:
            result = REGISTRY.run(name, cache=cache, store=store, force=shared.force)
            # extras hold live objects (simulation results, floorplans) that are
            # neither picklable nor meaningful across the process boundary.
            item = BatchItem(
                name=name,
                result=dataclasses.replace(result, extras={}),
                elapsed_s=time.perf_counter() - start,
            )
        except Exception as exc:  # noqa: BLE001 - reported per item, batch continues
            item = BatchItem(
                name=name,
                error=f"{type(exc).__name__}: {exc}",
                elapsed_s=time.perf_counter() - start,
            )
    telemetry.cache_stats = cache_stats_delta(cache, stats_before)
    return _BatchTaskOutcome(item=item, telemetry=telemetry)


# -- the runner ------------------------------------------------------------------------


class BatchRunner:
    """Run one or many registered scenarios through a shared cache and store."""

    def __init__(
        self,
        registry: ScenarioRegistry = REGISTRY,
        store: Optional[ResultStore] = None,
        cache: Optional[EvaluationCache] = None,
        max_workers: Optional[int] = None,
        force: bool = False,
        backend: object = None,
        jobs: Optional[int] = None,
    ) -> None:
        """``backend`` is an :class:`~repro.exec.ExecutionBackend`, a name
        (``serial``/``threads``/``processes``) or None; ``jobs`` sizes the
        worker pool.  ``max_workers`` is the legacy alias for ``jobs`` (kept
        for the pre-backend thread-pool API)."""
        if jobs is None:
            jobs = max_workers
        self.backend: ExecutionBackend = resolve_backend(backend, jobs)
        if self.backend.ships_tasks:
            if registry is not REGISTRY:
                raise ValueError(
                    f"the {self.backend.name} backend runs scenarios from the "
                    "module-global registry (workers re-import it); custom "
                    "registries need the serial or thread backend"
                )
            if cache is not None:
                raise ValueError(
                    f"the {self.backend.name} backend cannot share an in-memory "
                    "evaluation cache across workers (each worker keeps its "
                    "own); pass cache= only with the serial or thread backend"
                )
        self.registry = registry
        self.store = store
        self.cache = cache if cache is not None else EvaluationCache()
        self.max_workers = jobs
        self.force = force

    def _run_one(self, name: str) -> BatchItem:
        start = time.perf_counter()
        try:
            result = self.registry.run(
                name, cache=self.cache, store=self.store, force=self.force
            )
            return BatchItem(
                name=name, result=result, elapsed_s=time.perf_counter() - start
            )
        except Exception as exc:  # noqa: BLE001 - reported per item, batch continues
            return BatchItem(
                name=name,
                error=f"{type(exc).__name__}: {exc}",
                elapsed_s=time.perf_counter() - start,
            )

    # -- in-process execution (serial / threads) ---------------------------------------
    def _run_inprocess(
        self, names: List[str]
    ) -> Tuple[List[BatchItem], WorkerTelemetry]:
        telemetry = WorkerTelemetry()
        stats_before = cache_stats_snapshot(self.cache)
        # Only this runner's engines: scenario builds receive the runner's
        # shared cache, so cache identity scopes the count per runner even
        # when other runners (or observed tests) execute concurrently.
        count_pass = scoped_pass_observer(self.cache, telemetry, lock=threading.Lock())

        with observe_passes(count_pass):
            items = self.backend.map_tasks(
                lambda _shared, name: self._run_one(name), names
            )
        telemetry.cache_stats = cache_stats_delta(self.cache, stats_before)
        return items, telemetry

    # -- process-pool execution --------------------------------------------------------
    def _prefetch_from_store(
        self, names: List[str]
    ) -> Tuple[Dict[str, BatchItem], List[str]]:
        """Serve stored artifacts from the parent; ship only misses to workers."""
        hits: Dict[str, BatchItem] = {}
        misses: List[str] = []
        if self.store is None or self.force:
            return hits, list(names)
        for name in names:
            start = time.perf_counter()
            try:
                stored = self.store.load(name, self.registry.fingerprint(name))
            except Exception:  # noqa: BLE001 - workers re-raise it per item
                stored = None
            if stored is not None:
                hits[name] = BatchItem(
                    name=name, result=stored, elapsed_s=time.perf_counter() - start
                )
            else:
                misses.append(name)
        return hits, misses

    def _run_processes(
        self, names: List[str]
    ) -> Tuple[List[BatchItem], WorkerTelemetry]:
        telemetry = WorkerTelemetry()
        prefetched, to_run = self._prefetch_from_store(names)
        shared = _ProcessBatchContext(
            store_root=str(self.store.root) if self.store is not None else None,
            force=self.force,
            env=repro_env_snapshot(),
        )
        outcomes = self.backend.map_tasks(_run_batch_task, to_run, shared=shared)
        computed: Dict[str, BatchItem] = {}
        for outcome in outcomes:
            computed[outcome.item.name] = outcome.item
            outcome.telemetry.merge_into(telemetry)
        items = [prefetched.get(name) or computed[name] for name in names]
        return items, telemetry

    def run(self, names: Sequence[str]) -> BatchReport:
        """Execute ``names`` on the configured backend and report per item.

        Unknown scenario names raise before anything runs; execution errors are
        captured per item so one broken scenario does not abort the batch.
        Items keep request order regardless of backend or completion order.
        """
        names = list(names)
        for name in names:
            self.registry.get(name)  # fail fast with the actionable message
        start = time.perf_counter()
        if self.backend.ships_tasks:
            items, telemetry = self._run_processes(names)
        else:
            items, telemetry = self._run_inprocess(names)
        return BatchReport(
            items=items,
            engine_passes=telemetry.engine_passes,
            elapsed_s=time.perf_counter() - start,
            cache=self.cache,
            backend=self.backend.name,
            jobs=self.backend.jobs,
            pass_timings=telemetry.pass_timings,
            cache_stats=telemetry.cache_stats,
        )
