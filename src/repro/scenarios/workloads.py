"""Workload builders shared by the registered scenarios (and the examples).

These are the fixed tensors of the paper's evaluation section, formerly
duplicated across ``benchmarks/helpers.py`` and several example scripts.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.gemm import GEMMWorkload

#: Default layer widths of the Monte Carlo accuracy classifier.
MC_CLASSIFIER_SIZES = (16, 24, 12, 6)


def mc_classifier_model(seed: int = 3, layer_sizes=MC_CLASSIFIER_SIZES):
    """The small ReLU MLP classifier the variation scenarios evaluate.

    Deliberately tiny (a few thousand MACs per sample) so a full Monte Carlo
    study stays in scenario-smoke territory; the model seed is a scenario
    parameter so robustness studies can vary the weights without editing source.
    """
    from repro.onn.models import build_mlp

    return build_mlp(tuple(layer_sizes), rng=np.random.default_rng(seed))


def mc_classifier_inputs(
    samples: int = 48, features: int = MC_CLASSIFIER_SIZES[0], seed: int = 9
) -> np.ndarray:
    """The fixed evaluation batch fed to the Monte Carlo classifier."""
    if samples < 1 or features < 1:
        raise ValueError("samples and features must be positive")
    return np.random.default_rng(seed).normal(0.0, 1.0, size=(samples, features))


def paper_gemm(bits: int = 8, seed: int = 0) -> GEMMWorkload:
    """The (280x28) x (28x280) GEMM used for the TeMPO validation and sweeps."""
    rng = np.random.default_rng(seed)
    return GEMMWorkload(
        "gemm_280x28_28x280",
        m=280,
        k=28,
        n=280,
        input_bits=bits,
        weight_bits=bits,
        output_bits=bits,
        weight_values=rng.normal(0.0, 0.25, size=(28, 280)),
        input_values=rng.normal(0.0, 0.5, size=(280, 28)),
    )


def scatter_conv_workload(seed: int = 7) -> GEMMWorkload:
    """The SCATTER convolution layer of the Fig. 10(b) data-awareness study."""
    rng = np.random.default_rng(seed)
    return GEMMWorkload(
        "scatter_conv_layer",
        m=1024,
        k=16,
        n=16,
        weight_values=rng.normal(0.0, 0.25, size=(16, 16)),
        input_values=rng.normal(0.0, 0.5, size=(1024, 16)),
    )


def large_grid_workloads(seed: int = 11) -> list:
    """Three data-carrying transformer-block GEMMs for the large-grid DSE studies.

    Sized so one full evaluation does real per-point work (operand-dependent
    energy over ~1.5 MB of tensors), which is what makes the 192-point grid
    GIL-bound under threads and worth shipping to worker processes.
    """
    rng = np.random.default_rng(seed)

    def block(name: str, m: int, k: int, n: int) -> GEMMWorkload:
        return GEMMWorkload(
            name,
            m=m,
            k=k,
            n=n,
            weight_values=rng.normal(0.0, 0.25, size=(k, n)),
            input_values=rng.normal(0.0, 0.5, size=(m, k)),
        )

    return [
        block("blk_qkv", 512, 256, 768),
        block("blk_ffn_in", 512, 256, 1024),
        block("blk_ffn_out", 512, 1024, 256),
    ]


def ablation_workload(seed: int = 5) -> GEMMWorkload:
    """The mid-size layer used by the modeling-feature ablation study."""
    rng = np.random.default_rng(seed)
    return GEMMWorkload(
        "ablation_layer",
        m=512,
        k=16,
        n=16,
        weight_values=rng.normal(0, 0.25, size=(16, 16)),
        input_values=rng.normal(0, 0.5, size=(512, 16)),
    )
