"""Persistent, content-addressed store for scenario results.

Artifacts are JSON files named ``<scenario>-<fingerprint16>.json`` under the
store root.  The fingerprint is a SHA-1 over

- the scenario's canonical :class:`~repro.scenarios.spec.ScenarioSpec` (every
  declarative field, including overrides and sweep axes),
- the resolved per-run parameters,
- a *code hash* of everything that can change the numbers: the source of every
  module in the ``repro`` package (plus, for externally registered scenarios,
  the module defining the build function) and the package version.

Re-running an unchanged scenario therefore hits the store across processes --
``repro batch`` twice in a row executes zero engine passes the second time --
while any edit to the catalog, a spec field, a parameter or the package version
misses cleanly and recomputes.
"""

from __future__ import annotations

import inspect
import json
import os
import time
import uuid
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.core.cache import digest
from repro.core.knobs import raw_value as _knob_raw
from repro.scenarios.spec import ScenarioResult, ScenarioSpec

#: Environment variable selecting the default store root for the CLI/runner.
#: Declared, like every ``REPRO_*`` knob, in :mod:`repro.core.knobs`.
STORE_ENV_VAR = "REPRO_STORE"

#: Default on-disk location (relative to the current working directory).
DEFAULT_STORE_DIR = ".repro_store"


def default_store_root() -> Path:
    return Path(_knob_raw(STORE_ENV_VAR) or DEFAULT_STORE_DIR)


@lru_cache(maxsize=1)
def _package_source_hash() -> str:
    """SHA-1 over every ``repro`` source file (computed once per process).

    Any edit anywhere in the package -- engine passes, device constants,
    templates, the catalog itself -- must invalidate stored artifacts, so the
    code hash covers the whole package tree, not just the catalog module.
    """
    import repro

    root = Path(repro.__file__).parent
    sources = tuple(
        (str(path.relative_to(root)), path.read_bytes())
        for path in sorted(root.rglob("*.py"))
    )
    return digest("package-source", sources)


@lru_cache(maxsize=None)
def _module_source_hash(module_name: str) -> str:
    """SHA-1 of a module's source text (sentinel hash when the source is hidden)."""
    import importlib

    try:
        module = importlib.import_module(module_name)
        source = inspect.getsource(module)
    except (ImportError, OSError, TypeError):
        return digest("no-source", module_name)
    return digest("module-source", module_name, source)


def scenario_fingerprint(
    spec: ScenarioSpec,
    params: Mapping[str, Any],
    build: Optional[Callable[..., Any]] = None,
) -> str:
    """Content address of one (spec, params, code) combination."""
    from repro import __version__

    code_parts: List[str] = [__version__, _package_source_hash()]
    if build is not None:
        # Covers build functions registered from outside the repro package
        # (e.g. project-local scenario catalogs).
        module_name = getattr(build, "__module__", None)
        if module_name and not module_name.startswith("repro."):
            code_parts.append(_module_source_hash(module_name))
    return digest("scenario", spec, dict(params), tuple(code_parts))


class ResultStore:
    """Directory of content-addressed scenario-result artifacts."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()

    def path_for(self, name: str, fingerprint: str) -> Path:
        return self.root / f"{name}-{fingerprint[:16]}.json"

    # -- read ------------------------------------------------------------------------
    def load(self, name: str, fingerprint: str) -> Optional[ScenarioResult]:
        """The stored result for this exact fingerprint, or None on a miss."""
        path = self.path_for(name, fingerprint)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("fingerprint") != fingerprint:
            return None  # truncated-prefix collision; treat as a miss
        return ScenarioResult.from_payload(payload)

    def entries(self) -> List[Dict[str, Any]]:
        """Metadata of every artifact in the store, newest first."""
        if not self.root.is_dir():
            return []
        records = []
        for path in sorted(self.root.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            records.append(
                {
                    "name": payload.get("name", path.stem),
                    "fingerprint": payload.get("fingerprint", ""),
                    "created_at": payload.get("created_at", ""),
                    "elapsed_s": payload.get("elapsed_s", 0.0),
                    "params": payload.get("params", {}),
                    "path": path,
                    "table": payload.get("table", ""),
                }
            )
        records.sort(key=lambda r: r["created_at"], reverse=True)
        return records

    # -- write -----------------------------------------------------------------------
    def save(self, result: ScenarioResult) -> Path:
        """Persist ``result`` atomically (write-then-rename) and return its path.

        The temp name embeds the writer's pid plus a uuid, so concurrent
        writers -- threads or worker processes saving the same artifact -- each
        stage into a private file and the final ``os.replace`` publishes one
        complete payload (last rename wins); readers never observe a torn file.
        """
        if not result.name or not result.fingerprint:
            raise ValueError("result must carry a scenario name and fingerprint")
        self.root.mkdir(parents=True, exist_ok=True)
        payload = result.to_payload()
        payload["created_at"] = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
        path = self.path_for(result.name, result.fingerprint)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        try:
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore(root={str(self.root)!r})"
