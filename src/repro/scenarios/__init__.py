"""Declarative scenario subsystem: registry, batch runner, persistent store.

Every figure/table experiment of the paper's evaluation -- and every extension
study -- is a registered :class:`~repro.scenarios.spec.ScenarioSpec` executed
through the staged :class:`~repro.core.engine.EvaluationEngine`.  The public
surface:

- :data:`REGISTRY` / :func:`run_scenario` -- look up and execute scenarios;
- :class:`BatchRunner` -- run many scenarios with one shared evaluation cache
  and a persistent on-disk :class:`ResultStore`;
- ``python -m repro`` (:mod:`repro.cli`) -- the command-line frontend.

Importing this package registers the full catalog.
"""

from repro.scenarios.bench import (
    DEFAULT_BENCH_PATH,
    bench_scenarios,
    check_speedups,
    time_scenario,
    write_bench_report,
)
from repro.scenarios.registry import (
    REGISTRY,
    Scenario,
    ScenarioContext,
    ScenarioRegistry,
    run_scenario,
)
from repro.scenarios.runner import BatchItem, BatchReport, BatchRunner
from repro.scenarios.spec import ScenarioResult, ScenarioSpec
from repro.scenarios.store import ResultStore, default_store_root, scenario_fingerprint
from repro.scenarios.workloads import ablation_workload, paper_gemm, scatter_conv_workload

# Registering the catalog is an import side effect by design: any importer of
# ``repro.scenarios`` sees the complete registry.
from repro.scenarios import catalog  # noqa: E402,F401  (registration side effect)

__all__ = [
    "REGISTRY",
    "Scenario",
    "ScenarioContext",
    "ScenarioRegistry",
    "ScenarioResult",
    "ScenarioSpec",
    "BatchItem",
    "BatchReport",
    "BatchRunner",
    "ResultStore",
    "default_store_root",
    "scenario_fingerprint",
    "run_scenario",
    "DEFAULT_BENCH_PATH",
    "bench_scenarios",
    "check_speedups",
    "time_scenario",
    "write_bench_report",
    "paper_gemm",
    "scatter_conv_workload",
    "ablation_workload",
]
