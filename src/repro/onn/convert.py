"""Digital-to-ONN model conversion.

Mirrors SimPhony's TorchONN interface at the granularity the simulator needs: each
compute layer (``Conv2d``, ``Linear``, attention projections) is converted in place
to its "optical" version by

- quantizing its weights to the target DAC/ADC resolution,
- attaching a magnitude pruning mask (optional co-design),
- recording the operand bitwidths the hardware will use, and
- assigning the layer to a PTC type (``"tempo"``, ``"scatter"``, ``"mzi_mesh"``, ...)
  based on its layer type -- the hook used by heterogeneous mapping (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.onn.layers import Conv2d, Linear, Module, MultiHeadAttention
from repro.onn.prune import magnitude_prune_mask
from repro.onn.quantize import quantize_uniform


@dataclass
class ONNConversionConfig:
    """Settings for the digital-to-ONN conversion pass."""

    input_bits: int = 8
    weight_bits: int = 8
    output_bits: int = 8
    prune_ratio: float = 0.0
    quantize_weights: bool = True
    #: layer_type -> PTC/sub-architecture name, e.g. {"conv": "scatter", "linear": "mzi_mesh"}
    ptc_assignment: Dict[str, str] = field(default_factory=dict)
    default_ptc: str = "tempo"

    def __post_init__(self) -> None:
        for label, bits in (
            ("input_bits", self.input_bits),
            ("weight_bits", self.weight_bits),
            ("output_bits", self.output_bits),
        ):
            if bits < 1:
                raise ValueError(f"{label} must be >= 1, got {bits}")
        if not 0.0 <= self.prune_ratio < 1.0:
            raise ValueError(f"prune_ratio must be in [0, 1), got {self.prune_ratio}")

    def ptc_for(self, layer_type: str) -> str:
        return self.ptc_assignment.get(layer_type, self.default_ptc)


def _convert_weighted_layer(layer, layer_type: str, config: ONNConversionConfig) -> None:
    layer.input_bits = config.input_bits
    layer.weight_bits = config.weight_bits
    layer.output_bits = config.output_bits
    layer.ptc_type = config.ptc_for(layer_type)
    if config.quantize_weights:
        layer.weight = quantize_uniform(layer.weight, config.weight_bits)
    if config.prune_ratio > 0.0:
        layer.pruning_mask = magnitude_prune_mask(layer.weight, config.prune_ratio)


def convert_to_onn(model: Module, config: Optional[ONNConversionConfig] = None) -> Module:
    """Convert a digital model to its ONN version in place and return it.

    Conversion is idempotent: re-running it with the same config re-quantizes the
    already quantized weights onto the same grid.
    """
    config = config or ONNConversionConfig()
    for module in model.modules():
        if isinstance(module, Conv2d):
            _convert_weighted_layer(module, "conv", config)
        elif isinstance(module, MultiHeadAttention):
            module.input_bits = config.input_bits
            module.weight_bits = config.weight_bits
            module.output_bits = config.output_bits
            # The four projection Linears are converted as attention sub-layers so
            # a dedicated "attention" assignment (dynamic PTC) wins over "linear".
            for proj in module.children():
                _convert_weighted_layer(proj, "attention", config)
        elif isinstance(module, Linear):
            if getattr(module, "ptc_type", None) is None:
                _convert_weighted_layer(module, "linear", config)
    return model


def ptc_assignment_of(model: Module) -> Dict[str, str]:
    """Collect the layer-name -> PTC-type assignment recorded during conversion."""
    assignment: Dict[str, str] = {}
    for module in model.modules():
        ptc = getattr(module, "ptc_type", None)
        if ptc is not None:
            assignment[module.name] = ptc
    return assignment
