"""TorchONN-lite: a numpy neural-network substrate for workload extraction.

The real SimPhony interfaces with the TorchONN training library; the architecture
simulator, however, only consumes each layer's *workload description* -- GEMM shape,
operand bitwidths, pruning mask and actual operand values.  This package provides a
small, dependency-free NN substrate that produces exactly those records:

- :mod:`repro.onn.layers`    -- Module / Linear / Conv2d / attention / activation
  layers with numpy forward passes and GEMM extraction;
- :mod:`repro.onn.models`    -- the evaluation models (VGG-8 for CIFAR-10, a
  BERT-Base-class transformer encoder over image patches, an MLP);
- :mod:`repro.onn.convert`   -- digital-to-ONN layer conversion (quantization,
  pruning, device-value encoding, PTC assignment);
- :mod:`repro.onn.quantize`, :mod:`repro.onn.prune` -- co-design utilities;
- :mod:`repro.onn.workload`  -- end-to-end workload extraction.
"""

from repro.onn.layers import (
    FORWARD_MODE_ENV,
    forward_mode,
    Module,
    Sequential,
    Linear,
    Conv2d,
    MultiHeadAttention,
    ReLU,
    GELU,
    Flatten,
    MaxPool2d,
    AvgPool2d,
    BatchNorm2d,
    LayerNorm,
)
from repro.onn.convert import ONNConversionConfig, convert_to_onn
from repro.onn.quantize import (
    quantize_uniform,
    quantize_uniform_batch,
    quantization_error,
)
from repro.onn.prune import magnitude_prune_mask, apply_pruning
from repro.onn.workload import LayerWorkload, extract_workloads

__all__ = [
    "FORWARD_MODE_ENV",
    "forward_mode",
    "Module",
    "Sequential",
    "Linear",
    "Conv2d",
    "MultiHeadAttention",
    "ReLU",
    "GELU",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm2d",
    "LayerNorm",
    "ONNConversionConfig",
    "convert_to_onn",
    "quantize_uniform",
    "quantize_uniform_batch",
    "quantization_error",
    "magnitude_prune_mask",
    "apply_pruning",
    "LayerWorkload",
    "extract_workloads",
]
