"""Magnitude pruning utilities.

Pruned (zero) weights let the data-aware energy analysis power-gate the
corresponding weight-encoding devices, the co-design knob highlighted with SCATTER
in the paper's Fig. 5 and Fig. 10(b).
"""

from __future__ import annotations

import numpy as np


def magnitude_prune_mask(weights: np.ndarray, prune_ratio: float) -> np.ndarray:
    """Boolean keep-mask pruning the smallest-magnitude ``prune_ratio`` of weights.

    ``True`` marks weights that are kept.  A ratio of 0 keeps everything, 1 prunes
    everything.
    """
    if not 0.0 <= prune_ratio <= 1.0:
        raise ValueError(f"prune_ratio must be in [0, 1], got {prune_ratio}")
    weights = np.asarray(weights, dtype=float)
    if weights.size == 0 or prune_ratio == 0.0:
        return np.ones(weights.shape, dtype=bool)
    if prune_ratio == 1.0:
        return np.zeros(weights.shape, dtype=bool)
    magnitudes = np.abs(weights).ravel()
    threshold = np.quantile(magnitudes, prune_ratio)
    mask = np.abs(weights) > threshold
    # Quantile ties can over-prune; if everything fell at/below the threshold keep
    # the largest elements explicitly to honour the requested ratio.
    target_keep = max(int(round(weights.size * (1.0 - prune_ratio))), 1)
    if mask.sum() < target_keep:
        order = np.argsort(-magnitudes)
        mask = np.zeros(weights.size, dtype=bool)
        mask[order[:target_keep]] = True
        mask = mask.reshape(weights.shape)
    return mask


def apply_pruning(layer, prune_ratio: float) -> np.ndarray:
    """Attach a magnitude pruning mask to a Linear/Conv2d layer and return it."""
    if not hasattr(layer, "weight"):
        raise TypeError(f"layer {layer!r} has no weights to prune")
    mask = magnitude_prune_mask(layer.weight, prune_ratio)
    layer.pruning_mask = mask
    return mask


def sparsity(mask_or_weights: np.ndarray) -> float:
    """Fraction of zero (pruned) entries in a mask or weight tensor."""
    arr = np.asarray(mask_or_weights)
    if arr.size == 0:
        return 0.0
    if arr.dtype == bool:
        return float(1.0 - arr.mean())
    return float(np.mean(arr == 0.0))
