"""End-to-end workload extraction: model + input -> per-layer GEMM workloads.

The extraction runs a real numpy forward pass, so every
:class:`~repro.dataflow.gemm.GEMMWorkload` carries the actual operand values that
data-aware energy analysis needs, plus the layer's PTC assignment for heterogeneous
mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.dataflow.gemm import GEMMWorkload
from repro.onn.convert import ptc_assignment_of
from repro.onn.layers import Module


@dataclass
class LayerWorkload:
    """One GEMM workload tagged with its source layer and PTC assignment."""

    gemm: GEMMWorkload
    layer_name: str
    layer_type: str
    ptc_type: Optional[str] = None

    @property
    def num_macs(self) -> int:
        return self.gemm.num_macs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LayerWorkload({self.layer_name!r}, type={self.layer_type}, "
            f"ptc={self.ptc_type}, macs={self.num_macs})"
        )


def _assign_ptc(gemm_name: str, assignment: Dict[str, str]) -> Optional[str]:
    """Longest-prefix match of a GEMM name against converted layer names."""
    best: Optional[str] = None
    best_len = -1
    for layer_name, ptc in assignment.items():
        if gemm_name == layer_name or gemm_name.startswith(layer_name + "."):
            if len(layer_name) > best_len:
                best, best_len = ptc, len(layer_name)
    if best is None and gemm_name in assignment:
        best = assignment[gemm_name]
    return best


def extract_workloads(model: Module, input_array: np.ndarray) -> List[LayerWorkload]:
    """Run ``model`` on ``input_array`` and return all extracted GEMM workloads."""
    input_array = np.asarray(input_array, dtype=float)
    gemms, _ = model.extract_gemms(input_array)
    assignment = ptc_assignment_of(model)
    workloads: List[LayerWorkload] = []
    for gemm in gemms:
        ptc = _assign_ptc(gemm.name, assignment)
        # Attention score/context matmuls belong to the attention block, not to any
        # single projection layer; fall back to the enclosing attention module.
        if ptc is None and gemm.layer_type == "attention":
            prefix = gemm.name.split(".qk_head")[0].split(".av_head")[0]
            ptc = _assign_ptc(prefix + ".q_proj", assignment)
        workloads.append(
            LayerWorkload(
                gemm=gemm,
                layer_name=gemm.name,
                layer_type=gemm.layer_type,
                ptc_type=ptc,
            )
        )
    return workloads


def total_macs(workloads: List[LayerWorkload]) -> int:
    """Total multiply-accumulates across a workload list."""
    return sum(w.num_macs for w in workloads)


def max_layer_bytes(workloads: List[LayerWorkload]) -> float:
    """Largest single-layer operand footprint, used to size the GLB."""
    if not workloads:
        return 0.0
    return max(w.gemm.total_bytes for w in workloads)
