"""Numpy neural-network layers with GEMM workload extraction.

Layers implement two things:

- ``forward(x)``: a plain numpy inference pass, so realistic activation values can
  flow into the data-aware energy analysis;
- ``extract_gemms(x)``: the list of :class:`~repro.dataflow.gemm.GEMMWorkload`
  records the layer contributes (empty for activations / pooling / normalization,
  which the paper offloads to electrical processors), together with the layer
  output so extraction can proceed through the network.

Shapes follow the usual conventions: images are ``(channels, height, width)`` (a
single sample -- the paper evaluates single-image inference), token sequences are
``(tokens, features)``.

Two execution paths exist for the hot kernels (Conv2d's im2col lowering):

- the default *vectorized* path builds the patch matrix with
  ``numpy.lib.stride_tricks.sliding_window_view`` -- a single strided copy
  instead of an ``out_h x out_w`` Python loop -- and is bit-identical to the
  legacy loop (both materialize the same patch bytes in the same row order);
- ``REPRO_FORWARD=loop`` selects the legacy per-window loop, kept as the
  reference implementation for the equivalence tests.

Every layer additionally exposes :meth:`Module.forward_batch`, the
*trial-batched* forward used by the Monte Carlo variation studies: inputs (and,
for weighted layers, weights) carry a leading ``(trials, ...)`` axis so one
batched numpy call replaces ``trials`` Python-level forwards.  The base-class
fallback loops per trial with the exact serial semantics, so custom layers stay
correct without opting in.
"""

from __future__ import annotations

import contextlib
import copy
import math
import threading
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataflow.gemm import GEMMWorkload

#: Environment knob selecting the forward implementation: ``vectorized``
#: (default) or ``loop`` (the legacy reference path).  Declared, like every
#: ``REPRO_*`` knob, in the central :mod:`repro.core.knobs` registry.
FORWARD_MODE_ENV = "REPRO_FORWARD"

_FORWARD_MODES = ("vectorized", "loop")

#: Environment knob selecting the trial-batched compute precision: ``float64``
#: (default, the bit-exact reference) or ``float32`` (an opt-in throughput mode
#: for non-reference studies -- half the memory traffic per GEMM).
DTYPE_MODE_ENV = "REPRO_DTYPE"

_DTYPE_MODES = ("float64", "float32")


def _knob_raw(name: str) -> Optional[str]:
    """Registry-routed environment read (imported lazily: repro.core's package
    init pulls in the engine, which imports this module back through
    ``repro.onn.workload`` -- a module-level import here would cycle)."""
    from repro.core.knobs import raw_value

    return raw_value(name)

#: Thread-local mode override installed by :func:`pinned_modes`.  Worker-bound
#: task encodings (Monte Carlo trial contexts, batch/DSE task payloads) carry
#: the modes they were dispatched under and pin them around execution, so a
#: process or cluster worker computes under the *parent's* modes regardless of
#: its own environment.
_MODE_OVERRIDE = threading.local()


@contextlib.contextmanager
def pinned_modes(forward: Optional[str] = None, dtype: Optional[str] = None):
    """Run with :func:`forward_mode` / :func:`dtype_mode` pinned to these values.

    ``None`` leaves that mode reading the environment as usual.  The override
    is thread-local and restores the previous pin on exit, so nested pins and
    concurrent thread-backend workers stay independent.  Invalid mode names
    fail loudly here, at pin time, not deep inside a forward.
    """
    if forward is not None and forward not in _FORWARD_MODES:
        raise ValueError(
            f"forward mode must be one of {', '.join(_FORWARD_MODES)}, "
            f"got {forward!r}"
        )
    if dtype is not None and dtype not in _DTYPE_MODES:
        raise ValueError(
            f"dtype mode must be one of {', '.join(_DTYPE_MODES)}, got {dtype!r}"
        )
    previous_forward = getattr(_MODE_OVERRIDE, "forward", None)
    previous_dtype = getattr(_MODE_OVERRIDE, "dtype", None)
    if forward is not None:
        _MODE_OVERRIDE.forward = forward
    if dtype is not None:
        _MODE_OVERRIDE.dtype = dtype
    try:
        yield
    finally:
        _MODE_OVERRIDE.forward = previous_forward
        _MODE_OVERRIDE.dtype = previous_dtype


def forward_mode() -> str:
    """The active forward path: ``"vectorized"`` (default) or ``"loop"``.

    A :func:`pinned_modes` override (task encodings shipped to workers) wins;
    otherwise read from ``$REPRO_FORWARD`` on every call so tests and
    benchmarks can flip the path without re-importing.  Unknown values fail
    loudly rather than silently timing the wrong implementation.
    """
    pinned = getattr(_MODE_OVERRIDE, "forward", None)
    if pinned is not None:
        return pinned
    mode = (_knob_raw(FORWARD_MODE_ENV) or "vectorized").strip().lower()
    if mode not in _FORWARD_MODES:
        raise ValueError(
            f"{FORWARD_MODE_ENV} must be one of {', '.join(_FORWARD_MODES)}, "
            f"got {mode!r}"
        )
    return mode


def dtype_mode() -> str:
    """The active batched-compute precision: ``"float64"`` or ``"float32"``.

    Like :func:`forward_mode`, a :func:`pinned_modes` override wins, then
    ``$REPRO_DTYPE`` is read on every call.  The float32 mode applies to the
    *trial-batched* Monte Carlo path only; the serial reference forwards
    always compute in float64, and committed tables are only reproduced in
    the default mode.
    """
    pinned = getattr(_MODE_OVERRIDE, "dtype", None)
    if pinned is not None:
        return pinned
    mode = (_knob_raw(DTYPE_MODE_ENV) or "float64").strip().lower()
    if mode not in _DTYPE_MODES:
        raise ValueError(
            f"{DTYPE_MODE_ENV} must be one of {', '.join(_DTYPE_MODES)}, "
            f"got {mode!r}"
        )
    return mode


def compute_dtype() -> np.dtype:
    """The numpy dtype of the active :func:`dtype_mode`."""
    return np.dtype(np.float32 if dtype_mode() == "float32" else np.float64)


def _as_float(x: np.ndarray) -> np.ndarray:
    """``x`` as a floating array, without copying already-float inputs.

    ``np.asarray(x, dtype=float)`` silently upcasts (and therefore copies)
    float32 stacks back to float64, defeating ``REPRO_DTYPE=float32``; this
    keeps whatever float precision the caller chose and only converts
    non-float inputs.
    """
    arr = np.asarray(x)
    if arr.dtype.kind != "f":
        arr = arr.astype(float)
    return arr


def _match_dtype(x: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """``x`` cast to ``dtype`` only when it differs (no-op in reference mode)."""
    return x if x.dtype == dtype else x.astype(dtype)


# -- reusable scratch buffers ----------------------------------------------------------


class Workspace:
    """A pool of 64-byte-aligned, keyed scratch buffers reused across calls.

    The trial-batched forwards allocate the same large temporaries (im2col
    patch matrices, fused draw blocks) once per layer per chunk; a workspace
    hands back the *same* backing memory on every request with the same key,
    growing it only when a larger shape is asked for.  Buffers are aligned to
    64-byte boundaries so BLAS and the vectorized ufunc loops see aligned
    operands regardless of numpy's allocator.

    A workspace is intentionally not thread-safe: each worker activates its own
    via :func:`scratch_workspace` (thread-local), which is what makes reuse
    safe under the thread backend.
    """

    def __init__(self) -> None:
        self._raw: Dict[str, np.ndarray] = {}

    def take(self, key: str, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """An uninitialized ``shape``/``dtype`` view over the keyed buffer."""
        dtype = np.dtype(dtype)
        size = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        raw = self._raw.get(key)
        if raw is None or raw.nbytes < size + 64:
            raw = self._raw[key] = np.empty(size + 64, dtype=np.uint8)
        offset = (-raw.ctypes.data) % 64
        return raw[offset : offset + size].view(dtype).reshape(shape)


_WORKSPACE_TLS = threading.local()


def active_workspace() -> Optional[Workspace]:
    """The calling thread's active workspace, or ``None`` outside any scope."""
    return getattr(_WORKSPACE_TLS, "workspace", None)


@contextlib.contextmanager
def scratch_workspace() -> Iterator[Workspace]:
    """Activate a scratch workspace for the calling thread's forwards.

    Re-entrant: nested scopes share the outermost workspace, so a chunk-level
    scope (``montecarlo._run_trial_chunk``) covers every layer underneath it.
    """
    existing = active_workspace()
    if existing is not None:
        yield existing
        return
    workspace = Workspace()
    _WORKSPACE_TLS.workspace = workspace
    try:
        yield workspace
    finally:
        _WORKSPACE_TLS.workspace = None


class Module:
    """Base class for all layers.  Mirrors a minimal subset of the torch.nn API."""

    def __init__(self, name: str = "") -> None:
        self.name = name or self.__class__.__name__.lower()

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def extract_gemms(self, x: np.ndarray) -> Tuple[List[GEMMWorkload], np.ndarray]:
        """Default: no GEMM contribution; pass activations through."""
        return [], self.forward(x)

    def forward_batch(
        self, x: np.ndarray, weight: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Forward a ``(trials, ...)`` stack of inputs, one output per trial.

        ``weight``, when given, is a ``(trials, *weight_shape)`` stack of
        per-trial weights replacing the layer's own (the Monte Carlo variation
        path).  The base implementation loops per trial with the exact serial
        clone-and-forward semantics, so any layer is batchable; vectorizable
        layers override this with a single numpy call.
        """
        x = _as_float(x)
        if weight is None:
            return np.stack([self.forward(x[i]) for i in range(x.shape[0])])
        outputs = []
        for i in range(x.shape[0]):
            clone = copy.copy(self)
            clone.weight = weight[i]
            if hasattr(clone, "pruning_mask"):
                clone.pruning_mask = None
            outputs.append(clone.forward(x[i]))
        return np.stack(outputs)

    def children(self) -> Iterable["Module"]:
        return []

    def modules(self) -> Iterable["Module"]:
        """This module followed by all descendants (depth first)."""
        yield self
        for child in self.children():
            yield from child.modules()

    def num_parameters(self) -> int:
        return sum(child.num_parameters() for child in self.children())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(name={self.name!r})"


class Sequential(Module):
    """A linear container of layers."""

    def __init__(self, *layers: Module, name: str = "sequential") -> None:
        super().__init__(name=name)
        self.layers: List[Module] = []
        for idx, layer in enumerate(layers):
            if not isinstance(layer, Module):
                raise TypeError(f"Sequential expects Module instances, got {type(layer)}")
            if layer.name == layer.__class__.__name__.lower():
                layer.name = f"{name}.{idx}_{layer.__class__.__name__.lower()}"
            self.layers.append(layer)

    def append(self, layer: Module) -> None:
        self.layers.append(layer)

    def children(self) -> Iterable[Module]:
        return list(self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def extract_gemms(self, x: np.ndarray) -> Tuple[List[GEMMWorkload], np.ndarray]:
        gemms: List[GEMMWorkload] = []
        for layer in self.layers:
            layer_gemms, x = layer.extract_gemms(x)
            gemms.extend(layer_gemms)
        return gemms, x

    def forward_batch(
        self, x: np.ndarray, weight: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if weight is not None:
            raise ValueError("Sequential has no weights of its own")
        for layer in self.layers:
            x = layer.forward_batch(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class Linear(Module):
    """Fully connected layer ``y = x @ W^T + b`` (weights shaped ``(out, in)``)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name=name)
        if in_features < 1 or out_features < 1:
            raise ValueError("feature dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng(0)
        scale = 1.0 / math.sqrt(in_features)
        self.weight = rng.uniform(-scale, scale, size=(out_features, in_features))
        self.bias = np.zeros(out_features) if bias else None
        # Populated by the ONN conversion pass.
        self.input_bits = 8
        self.weight_bits = 8
        self.output_bits = 8
        self.pruning_mask: Optional[np.ndarray] = None
        self.ptc_type: Optional[str] = None

    def num_parameters(self) -> int:
        n = self.weight.size
        if self.bias is not None:
            n += self.bias.size
        return n

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        squeeze = False
        if x.ndim == 1:
            x = x[None, :]
            squeeze = True
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        weight = self.effective_weight()
        y = x @ weight.T
        if self.bias is not None:
            y = y + self.bias
        return y[0] if squeeze else y

    def effective_weight(self) -> np.ndarray:
        if self.pruning_mask is None:
            return self.weight
        return np.where(self.pruning_mask, self.weight, 0.0)

    def forward_batch(
        self, x: np.ndarray, weight: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Batched ``y = x @ W^T + b`` with an optional per-trial weight stack.

        ``x`` is ``(trials, ..., in_features)``; ``weight`` (when given) is
        ``(trials, out_features, in_features)``.  Wherever one operand is
        shared across trials the per-trial stack collapses into a *single*
        2-D BLAS GEMM over a ``(trials*out, in)`` (or ``(trials*rows, in)``)
        reshape -- one large GEMM instead of ``trials`` small ones -- and the
        collapse is bit-identical to the batched matmul because the k-dim
        reduction order per output element is unchanged.
        """
        x = _as_float(x)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        trials = x.shape[0]
        if weight is None:
            # The layer's own weights are shared by every trial: flatten all
            # leading axes into one GEMM m-dimension.
            w = _match_dtype(self.effective_weight(), x.dtype)
            flat = np.ascontiguousarray(x.reshape(-1, self.in_features))
            y = (flat @ w.T).reshape(x.shape[:-1] + (self.out_features,))
        else:
            w = _as_float(weight)
            if x.ndim == 2 and x.strides[0] == 0:
                # Shared input vector, per-trial weights: one (trials*out, in)
                # x (in,) matvec-GEMM instead of trials small ones.
                y = (w.reshape(trials * self.out_features, self.in_features) @ x[0]).reshape(
                    trials, self.out_features
                )
            elif x.ndim == 2:  # one vector per trial
                y = np.einsum("ti,toi->to", x, w)
            elif x.strides[0] == 0:
                # Shared (rows, in) input, per-trial weights: one GEMM against
                # the stacked (trials*out, in) weight view, then unstack.
                stacked = w.reshape(trials * self.out_features, self.in_features)
                y = (x[0] @ stacked.T).reshape(
                    x.shape[1:-1] + (trials, self.out_features)
                )
                y = np.moveaxis(y, -2, 0)
            else:
                y = np.matmul(x, np.swapaxes(w, -1, -2))
        if self.bias is not None:
            y = y + _match_dtype(self.bias, y.dtype)
        return y

    def extract_gemms(self, x: np.ndarray) -> Tuple[List[GEMMWorkload], np.ndarray]:
        x = np.asarray(x, dtype=float)
        flat = x.reshape(-1, x.shape[-1]) if x.ndim > 1 else x[None, :]
        weight = self.effective_weight()
        gemm = GEMMWorkload(
            name=self.name,
            m=flat.shape[0],
            n=self.out_features,
            k=self.in_features,
            input_bits=self.input_bits,
            weight_bits=self.weight_bits,
            output_bits=self.output_bits,
            layer_type="linear",
            weight_values=weight.T.copy(),
            input_values=flat.copy(),
            pruning_mask=None if self.pruning_mask is None else self.pruning_mask.T.copy(),
            weight_static=True,
        )
        return [gemm], self.forward(x)


class Conv2d(Module):
    """2D convolution on a single ``(C, H, W)`` sample, lowered to GEMM via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name=name)
        if min(in_channels, out_channels, kernel_size) < 1:
            raise ValueError("channels and kernel size must be positive")
        if stride < 1 or padding < 0:
            raise ValueError("invalid stride/padding")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        scale = 1.0 / math.sqrt(fan_in)
        self.weight = rng.uniform(
            -scale, scale, size=(out_channels, in_channels, kernel_size, kernel_size)
        )
        self.bias = np.zeros(out_channels) if bias else None
        self.input_bits = 8
        self.weight_bits = 8
        self.output_bits = 8
        self.pruning_mask: Optional[np.ndarray] = None
        self.ptc_type: Optional[str] = None

    def num_parameters(self) -> int:
        n = self.weight.size
        if self.bias is not None:
            n += self.bias.size
        return n

    def output_hw(self, height: int, width: int) -> Tuple[int, int]:
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        if out_h < 1 or out_w < 1:
            raise ValueError(
                f"{self.name}: input {height}x{width} too small for kernel "
                f"{self.kernel_size}, stride {self.stride}, padding {self.padding}"
            )
        return out_h, out_w

    def _im2col(self, x: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        """Lower ``(C, H, W)`` to the ``(out_h*out_w, C*k*k)`` patch matrix.

        Dispatches on :func:`forward_mode`; both paths materialize exactly the
        same patch bytes in the same row order, so they are bit-identical.
        """
        if forward_mode() == "loop":
            return self._im2col_loop(x)
        return self._im2col_strided(x)

    def _im2col_loop(self, x: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        """The legacy per-window double loop (the equivalence-test reference)."""
        channels, height, width = x.shape
        out_h, out_w = self.output_hw(height, width)
        padded = np.pad(
            x, ((0, 0), (self.padding, self.padding), (self.padding, self.padding))
        )
        k = self.kernel_size
        cols = np.empty((out_h * out_w, channels * k * k))
        idx = 0
        for i in range(out_h):
            for j in range(out_w):
                patch = padded[
                    :,
                    i * self.stride : i * self.stride + k,
                    j * self.stride : j * self.stride + k,
                ]
                cols[idx] = patch.ravel()
                idx += 1
        return cols, (out_h, out_w)

    def _im2col_strided(self, x: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        """Stride-tricks im2col: one strided view + one copy, no Python loop.

        Row ``i*out_w + j`` holds the ravel of the ``(C, k, k)`` patch at
        window ``(i, j)`` -- the same layout the loop builds -- so downstream
        GEMM records and forwards are bit-identical to the legacy path.
        """
        channels, height, width = x.shape
        out_h, out_w = self.output_hw(height, width)
        padded = np.pad(
            x, ((0, 0), (self.padding, self.padding), (self.padding, self.padding))
        )
        k = self.kernel_size
        windows = np.lib.stride_tricks.sliding_window_view(padded, (k, k), axis=(1, 2))
        windows = windows[:, :: self.stride, :: self.stride]  # (C, out_h, out_w, k, k)
        cols = windows.transpose(1, 2, 0, 3, 4).reshape(out_h * out_w, channels * k * k)
        return cols, (out_h, out_w)

    def _im2col_batch(self, x: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        """im2col over a ``(trials, C, H, W)`` stack -> ``(trials, P, C*k*k)``.

        When a scratch workspace is active (the chunked Monte Carlo path) the
        patch matrix is written into a reused aligned buffer instead of a fresh
        allocation per layer call.
        """
        trials, channels, height, width = x.shape
        out_h, out_w = self.output_hw(height, width)
        padded = np.pad(
            x,
            ((0, 0), (0, 0), (self.padding, self.padding), (self.padding, self.padding)),
        )
        k = self.kernel_size
        windows = np.lib.stride_tricks.sliding_window_view(padded, (k, k), axis=(2, 3))
        windows = windows[:, :, :: self.stride, :: self.stride]
        view = windows.transpose(0, 2, 3, 1, 4, 5)  # (t, out_h, out_w, C, k, k)
        workspace = active_workspace()
        if workspace is None:
            cols = view.reshape(trials, out_h * out_w, channels * k * k)
            return cols, (out_h, out_w)
        cols = workspace.take(
            f"im2col:{self.name}", (trials, out_h * out_w, channels * k * k), x.dtype
        )
        np.copyto(cols.reshape(view.shape), view)
        return cols, (out_h, out_w)

    def effective_weight(self) -> np.ndarray:
        if self.pruning_mask is None:
            return self.weight
        return np.where(self.pruning_mask, self.weight, 0.0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 3 or x.shape[0] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (C={self.in_channels}, H, W) input, got {x.shape}"
            )
        cols, (out_h, out_w) = self._im2col(x)
        weight = self.effective_weight().reshape(self.out_channels, -1)
        out = cols @ weight.T
        if self.bias is not None:
            out = out + self.bias
        return out.T.reshape(self.out_channels, out_h, out_w)

    def forward_batch(
        self, x: np.ndarray, weight: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Batched convolution: ``x`` is ``(trials, C, H, W)``, ``weight``
        (when given) a ``(trials, out_c, C, k, k)`` per-trial stack."""
        x = _as_float(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (trials, C={self.in_channels}, H, W) "
                f"input, got {x.shape}"
            )
        trials = x.shape[0]
        shared_cols = None
        if x.strides[0] == 0:
            # All trials share one input (a broadcast stack, e.g. the first
            # weighted layer of a Monte Carlo study): build the patch matrix
            # once -- the per-trial weight stack then collapses into a single
            # (P, C*k*k) x (C*k*k, trials*out_c) GEMM below.
            shared_cols, (out_h, out_w) = self._im2col_strided(x[0])
            cols = np.broadcast_to(shared_cols, (trials,) + shared_cols.shape)
        else:
            cols, (out_h, out_w) = self._im2col_batch(x)
        patch = self.in_channels * self.kernel_size * self.kernel_size
        if weight is None:
            w2 = _match_dtype(self.effective_weight().reshape(self.out_channels, -1), x.dtype)
            if shared_cols is not None:
                out = np.broadcast_to(shared_cols @ w2.T, (trials,) + (cols.shape[1], self.out_channels))
            else:
                # One GEMM over all trials' rows instead of a stacked matmul.
                flat = cols.reshape(trials * cols.shape[1], patch)
                out = (flat @ w2.T).reshape(trials, cols.shape[1], self.out_channels)
        else:
            w2 = _as_float(weight).reshape(trials, self.out_channels, patch)
            if shared_cols is not None:
                # Fused GEMM: the shared patch matrix against the stacked
                # (trials*out_c, patch) weight view, unstacked afterwards.
                stacked = w2.reshape(trials * self.out_channels, patch)
                out = (shared_cols @ stacked.T).reshape(
                    cols.shape[1], trials, self.out_channels
                )
                out = out.transpose(1, 0, 2)
            else:
                out = np.matmul(cols, np.swapaxes(w2, -1, -2))
        if self.bias is not None:
            out = out + _match_dtype(self.bias, out.dtype)
        return np.ascontiguousarray(out.transpose(0, 2, 1)).reshape(
            trials, self.out_channels, out_h, out_w
        )

    def extract_gemms(self, x: np.ndarray) -> Tuple[List[GEMMWorkload], np.ndarray]:
        x = np.asarray(x, dtype=float)
        cols, _ = self._im2col(x)
        weight = self.effective_weight().reshape(self.out_channels, -1)
        mask = (
            None
            if self.pruning_mask is None
            else self.pruning_mask.reshape(self.out_channels, -1).T.copy()
        )
        gemm = GEMMWorkload(
            name=self.name,
            m=cols.shape[0],
            n=self.out_channels,
            k=cols.shape[1],
            input_bits=self.input_bits,
            weight_bits=self.weight_bits,
            output_bits=self.output_bits,
            layer_type="conv",
            weight_values=weight.T.copy(),
            input_values=cols,
            pruning_mask=mask,
            weight_static=True,
        )
        return [gemm], self.forward(x)


class MultiHeadAttention(Module):
    """Multi-head self-attention over a ``(tokens, embed_dim)`` sequence.

    Contributes the Q/K/V/output projections plus the two *dynamic* matmuls
    (``Q K^T`` and ``A V``) whose operands both change every inference -- the
    workloads that only dynamically-reconfigurable PTCs can serve without a
    reconfiguration penalty.
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name=name)
        if embed_dim % num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        rng = rng or np.random.default_rng(0)
        self.w_q = Linear(embed_dim, embed_dim, name=f"{name or 'attn'}.q_proj", rng=rng)
        self.w_k = Linear(embed_dim, embed_dim, name=f"{name or 'attn'}.k_proj", rng=rng)
        self.w_v = Linear(embed_dim, embed_dim, name=f"{name or 'attn'}.v_proj", rng=rng)
        self.w_o = Linear(embed_dim, embed_dim, name=f"{name or 'attn'}.out_proj", rng=rng)
        self.input_bits = 8
        self.weight_bits = 8
        self.output_bits = 8

    def children(self) -> Iterable[Module]:
        return [self.w_q, self.w_k, self.w_v, self.w_o]

    @staticmethod
    def _softmax(x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def _heads(self, x: np.ndarray) -> np.ndarray:
        tokens = x.shape[0]
        return x.reshape(tokens, self.num_heads, self.head_dim).transpose(1, 0, 2)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.embed_dim:
            raise ValueError(
                f"{self.name}: expected (tokens, {self.embed_dim}) input, got {x.shape}"
            )
        q, k, v = self.w_q(x), self.w_k(x), self.w_v(x)
        qh, kh, vh = self._heads(q), self._heads(k), self._heads(v)
        scores = qh @ kh.transpose(0, 2, 1) / math.sqrt(self.head_dim)
        attn = self._softmax(scores)
        context = attn @ vh
        tokens = x.shape[0]
        merged = context.transpose(1, 0, 2).reshape(tokens, self.embed_dim)
        return self.w_o(merged)

    def forward_batch(
        self, x: np.ndarray, weight: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Trial-batched attention over a ``(trials, tokens, embed_dim)`` stack.

        All heads of all trials run through einsum-batched score/context
        contractions -- no per-trial or per-head Python loop.  Projections use
        the layer's own weights (attention carries no top-level ``weight``, so
        the variation path never perturbs it directly).
        """
        if weight is not None:
            raise ValueError("MultiHeadAttention has no top-level weight stack")
        x = _as_float(x)
        if x.ndim == 2:
            return self.forward(x)
        if x.ndim != 3 or x.shape[-1] != self.embed_dim:
            raise ValueError(
                f"{self.name}: expected (trials, tokens, {self.embed_dim}) "
                f"input, got {x.shape}"
            )
        trials, tokens = x.shape[0], x.shape[1]
        q, k, v = self.w_q.forward_batch(x), self.w_k.forward_batch(x), self.w_v.forward_batch(x)

        def heads(y: np.ndarray) -> np.ndarray:
            return y.reshape(trials, tokens, self.num_heads, self.head_dim)

        qh, kh, vh = heads(q), heads(k), heads(v)
        scores = np.einsum("tqhd,tkhd->thqk", qh, kh, optimize=True) / math.sqrt(
            self.head_dim
        )
        attn = self._softmax(scores)
        context = np.einsum("thqk,tkhd->tqhd", attn, vh, optimize=True)
        merged = context.reshape(trials, tokens, self.embed_dim)
        return self.w_o.forward_batch(merged)

    def extract_gemms(self, x: np.ndarray) -> Tuple[List[GEMMWorkload], np.ndarray]:
        x = np.asarray(x, dtype=float)
        tokens = x.shape[0]
        gemms: List[GEMMWorkload] = []
        for proj in (self.w_q, self.w_k, self.w_v):
            proj_gemms, _ = proj.extract_gemms(x)
            gemms.extend(proj_gemms)
        q, k, v = self.w_q(x), self.w_k(x), self.w_v(x)
        qh, kh, vh = self._heads(q), self._heads(k), self._heads(v)
        # Dynamic attention matmuls (one GEMM record per head, operands both
        # data dependent).  The scores/attention tensors are computed once,
        # batched over heads, and sliced into the per-head records.
        scores = qh @ kh.transpose(0, 2, 1) / math.sqrt(self.head_dim)
        attn = self._softmax(scores)
        for head in range(self.num_heads):
            gemms.append(
                GEMMWorkload(
                    name=f"{self.name}.qk_head{head}",
                    m=tokens,
                    n=tokens,
                    k=self.head_dim,
                    input_bits=self.input_bits,
                    weight_bits=self.input_bits,
                    output_bits=self.output_bits,
                    layer_type="attention",
                    weight_values=kh[head].T.copy(),
                    input_values=qh[head].copy(),
                    weight_static=False,
                )
            )
        for head in range(self.num_heads):
            gemms.append(
                GEMMWorkload(
                    name=f"{self.name}.av_head{head}",
                    m=tokens,
                    n=self.head_dim,
                    k=tokens,
                    input_bits=self.input_bits,
                    weight_bits=self.input_bits,
                    output_bits=self.output_bits,
                    layer_type="attention",
                    weight_values=vh[head].copy(),
                    input_values=attn[head].copy(),
                    weight_static=False,
                )
            )
        context = (attn @ vh).transpose(1, 0, 2).reshape(tokens, self.embed_dim)
        out_gemms, out = self.w_o.extract_gemms(context)
        gemms.extend(out_gemms)
        return gemms, out


class _ElementwiseModule(Module):
    """A layer whose forward is shape-agnostic: batching is the same call."""

    def forward_batch(
        self, x: np.ndarray, weight: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if weight is not None:
            raise ValueError(f"{type(self).__name__} takes no weight stack")
        return self.forward(x)


class ReLU(_ElementwiseModule):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(_as_float(x), 0.0)


class GELU(_ElementwiseModule):
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = _as_float(x)
        return 0.5 * x * (1.0 + np.tanh(math.sqrt(2.0 / math.pi) * (x + 0.044715 * x**3)))


class Flatten(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return _as_float(x).ravel()

    def forward_batch(
        self, x: np.ndarray, weight: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if weight is not None:
            raise ValueError("Flatten takes no weight stack")
        x = _as_float(x)
        return x.reshape(x.shape[0], -1)


class MaxPool2d(Module):
    """Max pooling on a ``(C, H, W)`` sample with square window and stride = window."""

    def __init__(self, kernel_size: int, name: str = "") -> None:
        super().__init__(name=name)
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size

    @staticmethod
    def _windowed(x: np.ndarray, k: int) -> np.ndarray:
        """Reshape trailing ``(H, W)`` into ``(out_h, k, out_w, k)`` windows."""
        *lead, height, width = x.shape
        out_h, out_w = height // k, width // k
        trimmed = x[..., : out_h * k, : out_w * k]
        return trimmed.reshape(*lead, out_h, k, out_w, k)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = _as_float(x)
        return self._windowed(x, self.kernel_size).max(axis=(-3, -1))

    def forward_batch(
        self, x: np.ndarray, weight: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if weight is not None:
            raise ValueError(f"{type(self).__name__} takes no weight stack")
        # The window reduction already operates on the trailing axes only.
        return self.forward(x)


class AvgPool2d(MaxPool2d):
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = _as_float(x)
        return self._windowed(x, self.kernel_size).mean(axis=(-3, -1))


class BatchNorm2d(Module):
    """Inference-mode batch normalization: a per-channel affine transform."""

    def __init__(self, num_channels: int, name: str = "") -> None:
        super().__init__(name=name)
        self.num_channels = num_channels
        self.scale = np.ones(num_channels)
        self.shift = np.zeros(num_channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.shape[0] != self.num_channels:
            raise ValueError(f"{self.name}: expected {self.num_channels} channels")
        return x * self.scale[:, None, None] + self.shift[:, None, None]

    def forward_batch(
        self, x: np.ndarray, weight: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if weight is not None:
            raise ValueError("BatchNorm2d takes no weight stack")
        x = _as_float(x)
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(
                f"{self.name}: expected (trials, {self.num_channels}, H, W), "
                f"got {x.shape}"
            )
        scale = _match_dtype(self.scale, x.dtype)
        shift = _match_dtype(self.shift, x.dtype)
        return x * scale[:, None, None] + shift[:, None, None]


class LayerNorm(_ElementwiseModule):
    """Layer normalization over the last dimension."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5, name: str = "") -> None:
        super().__init__(name=name)
        self.normalized_dim = normalized_dim
        self.eps = eps
        self.scale = np.ones(normalized_dim)
        self.shift = np.zeros(normalized_dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = _as_float(x)
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        scale = _match_dtype(self.scale, x.dtype)
        shift = _match_dtype(self.shift, x.dtype)
        return (x - mean) / np.sqrt(var + self.eps) * scale + shift
