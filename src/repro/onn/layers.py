"""Numpy neural-network layers with GEMM workload extraction.

Layers implement two things:

- ``forward(x)``: a plain numpy inference pass, so realistic activation values can
  flow into the data-aware energy analysis;
- ``extract_gemms(x)``: the list of :class:`~repro.dataflow.gemm.GEMMWorkload`
  records the layer contributes (empty for activations / pooling / normalization,
  which the paper offloads to electrical processors), together with the layer
  output so extraction can proceed through the network.

Shapes follow the usual conventions: images are ``(channels, height, width)`` (a
single sample -- the paper evaluates single-image inference), token sequences are
``(tokens, features)``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataflow.gemm import GEMMWorkload


class Module:
    """Base class for all layers.  Mirrors a minimal subset of the torch.nn API."""

    def __init__(self, name: str = "") -> None:
        self.name = name or self.__class__.__name__.lower()

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def extract_gemms(self, x: np.ndarray) -> Tuple[List[GEMMWorkload], np.ndarray]:
        """Default: no GEMM contribution; pass activations through."""
        return [], self.forward(x)

    def children(self) -> Iterable["Module"]:
        return []

    def modules(self) -> Iterable["Module"]:
        """This module followed by all descendants (depth first)."""
        yield self
        for child in self.children():
            yield from child.modules()

    def num_parameters(self) -> int:
        return sum(child.num_parameters() for child in self.children())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(name={self.name!r})"


class Sequential(Module):
    """A linear container of layers."""

    def __init__(self, *layers: Module, name: str = "sequential") -> None:
        super().__init__(name=name)
        self.layers: List[Module] = []
        for idx, layer in enumerate(layers):
            if not isinstance(layer, Module):
                raise TypeError(f"Sequential expects Module instances, got {type(layer)}")
            if layer.name == layer.__class__.__name__.lower():
                layer.name = f"{name}.{idx}_{layer.__class__.__name__.lower()}"
            self.layers.append(layer)

    def append(self, layer: Module) -> None:
        self.layers.append(layer)

    def children(self) -> Iterable[Module]:
        return list(self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def extract_gemms(self, x: np.ndarray) -> Tuple[List[GEMMWorkload], np.ndarray]:
        gemms: List[GEMMWorkload] = []
        for layer in self.layers:
            layer_gemms, x = layer.extract_gemms(x)
            gemms.extend(layer_gemms)
        return gemms, x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class Linear(Module):
    """Fully connected layer ``y = x @ W^T + b`` (weights shaped ``(out, in)``)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name=name)
        if in_features < 1 or out_features < 1:
            raise ValueError("feature dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng(0)
        scale = 1.0 / math.sqrt(in_features)
        self.weight = rng.uniform(-scale, scale, size=(out_features, in_features))
        self.bias = np.zeros(out_features) if bias else None
        # Populated by the ONN conversion pass.
        self.input_bits = 8
        self.weight_bits = 8
        self.output_bits = 8
        self.pruning_mask: Optional[np.ndarray] = None
        self.ptc_type: Optional[str] = None

    def num_parameters(self) -> int:
        n = self.weight.size
        if self.bias is not None:
            n += self.bias.size
        return n

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        squeeze = False
        if x.ndim == 1:
            x = x[None, :]
            squeeze = True
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        weight = self.effective_weight()
        y = x @ weight.T
        if self.bias is not None:
            y = y + self.bias
        return y[0] if squeeze else y

    def effective_weight(self) -> np.ndarray:
        if self.pruning_mask is None:
            return self.weight
        return np.where(self.pruning_mask, self.weight, 0.0)

    def extract_gemms(self, x: np.ndarray) -> Tuple[List[GEMMWorkload], np.ndarray]:
        x = np.asarray(x, dtype=float)
        flat = x.reshape(-1, x.shape[-1]) if x.ndim > 1 else x[None, :]
        weight = self.effective_weight()
        gemm = GEMMWorkload(
            name=self.name,
            m=flat.shape[0],
            n=self.out_features,
            k=self.in_features,
            input_bits=self.input_bits,
            weight_bits=self.weight_bits,
            output_bits=self.output_bits,
            layer_type="linear",
            weight_values=weight.T.copy(),
            input_values=flat.copy(),
            pruning_mask=None if self.pruning_mask is None else self.pruning_mask.T.copy(),
            weight_static=True,
        )
        return [gemm], self.forward(x)


class Conv2d(Module):
    """2D convolution on a single ``(C, H, W)`` sample, lowered to GEMM via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name=name)
        if min(in_channels, out_channels, kernel_size) < 1:
            raise ValueError("channels and kernel size must be positive")
        if stride < 1 or padding < 0:
            raise ValueError("invalid stride/padding")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        scale = 1.0 / math.sqrt(fan_in)
        self.weight = rng.uniform(
            -scale, scale, size=(out_channels, in_channels, kernel_size, kernel_size)
        )
        self.bias = np.zeros(out_channels) if bias else None
        self.input_bits = 8
        self.weight_bits = 8
        self.output_bits = 8
        self.pruning_mask: Optional[np.ndarray] = None
        self.ptc_type: Optional[str] = None

    def num_parameters(self) -> int:
        n = self.weight.size
        if self.bias is not None:
            n += self.bias.size
        return n

    def output_hw(self, height: int, width: int) -> Tuple[int, int]:
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        if out_h < 1 or out_w < 1:
            raise ValueError(
                f"{self.name}: input {height}x{width} too small for kernel "
                f"{self.kernel_size}, stride {self.stride}, padding {self.padding}"
            )
        return out_h, out_w

    def _im2col(self, x: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        channels, height, width = x.shape
        out_h, out_w = self.output_hw(height, width)
        padded = np.pad(
            x, ((0, 0), (self.padding, self.padding), (self.padding, self.padding))
        )
        k = self.kernel_size
        cols = np.empty((out_h * out_w, channels * k * k))
        idx = 0
        for i in range(out_h):
            for j in range(out_w):
                patch = padded[
                    :,
                    i * self.stride : i * self.stride + k,
                    j * self.stride : j * self.stride + k,
                ]
                cols[idx] = patch.ravel()
                idx += 1
        return cols, (out_h, out_w)

    def effective_weight(self) -> np.ndarray:
        if self.pruning_mask is None:
            return self.weight
        return np.where(self.pruning_mask, self.weight, 0.0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 3 or x.shape[0] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (C={self.in_channels}, H, W) input, got {x.shape}"
            )
        cols, (out_h, out_w) = self._im2col(x)
        weight = self.effective_weight().reshape(self.out_channels, -1)
        out = cols @ weight.T
        if self.bias is not None:
            out = out + self.bias
        return out.T.reshape(self.out_channels, out_h, out_w)

    def extract_gemms(self, x: np.ndarray) -> Tuple[List[GEMMWorkload], np.ndarray]:
        x = np.asarray(x, dtype=float)
        cols, _ = self._im2col(x)
        weight = self.effective_weight().reshape(self.out_channels, -1)
        mask = (
            None
            if self.pruning_mask is None
            else self.pruning_mask.reshape(self.out_channels, -1).T.copy()
        )
        gemm = GEMMWorkload(
            name=self.name,
            m=cols.shape[0],
            n=self.out_channels,
            k=cols.shape[1],
            input_bits=self.input_bits,
            weight_bits=self.weight_bits,
            output_bits=self.output_bits,
            layer_type="conv",
            weight_values=weight.T.copy(),
            input_values=cols,
            pruning_mask=mask,
            weight_static=True,
        )
        return [gemm], self.forward(x)


class MultiHeadAttention(Module):
    """Multi-head self-attention over a ``(tokens, embed_dim)`` sequence.

    Contributes the Q/K/V/output projections plus the two *dynamic* matmuls
    (``Q K^T`` and ``A V``) whose operands both change every inference -- the
    workloads that only dynamically-reconfigurable PTCs can serve without a
    reconfiguration penalty.
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name=name)
        if embed_dim % num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        rng = rng or np.random.default_rng(0)
        self.w_q = Linear(embed_dim, embed_dim, name=f"{name or 'attn'}.q_proj", rng=rng)
        self.w_k = Linear(embed_dim, embed_dim, name=f"{name or 'attn'}.k_proj", rng=rng)
        self.w_v = Linear(embed_dim, embed_dim, name=f"{name or 'attn'}.v_proj", rng=rng)
        self.w_o = Linear(embed_dim, embed_dim, name=f"{name or 'attn'}.out_proj", rng=rng)
        self.input_bits = 8
        self.weight_bits = 8
        self.output_bits = 8

    def children(self) -> Iterable[Module]:
        return [self.w_q, self.w_k, self.w_v, self.w_o]

    @staticmethod
    def _softmax(x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def _heads(self, x: np.ndarray) -> np.ndarray:
        tokens = x.shape[0]
        return x.reshape(tokens, self.num_heads, self.head_dim).transpose(1, 0, 2)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.embed_dim:
            raise ValueError(
                f"{self.name}: expected (tokens, {self.embed_dim}) input, got {x.shape}"
            )
        q, k, v = self.w_q(x), self.w_k(x), self.w_v(x)
        qh, kh, vh = self._heads(q), self._heads(k), self._heads(v)
        scores = qh @ kh.transpose(0, 2, 1) / math.sqrt(self.head_dim)
        attn = self._softmax(scores)
        context = attn @ vh
        tokens = x.shape[0]
        merged = context.transpose(1, 0, 2).reshape(tokens, self.embed_dim)
        return self.w_o(merged)

    def extract_gemms(self, x: np.ndarray) -> Tuple[List[GEMMWorkload], np.ndarray]:
        x = np.asarray(x, dtype=float)
        tokens = x.shape[0]
        gemms: List[GEMMWorkload] = []
        for proj in (self.w_q, self.w_k, self.w_v):
            proj_gemms, _ = proj.extract_gemms(x)
            gemms.extend(proj_gemms)
        q, k, v = self.w_q(x), self.w_k(x), self.w_v(x)
        qh, kh, vh = self._heads(q), self._heads(k), self._heads(v)
        # Dynamic attention matmuls (one GEMM per head, operands both data dependent).
        for head in range(self.num_heads):
            gemms.append(
                GEMMWorkload(
                    name=f"{self.name}.qk_head{head}",
                    m=tokens,
                    n=tokens,
                    k=self.head_dim,
                    input_bits=self.input_bits,
                    weight_bits=self.input_bits,
                    output_bits=self.output_bits,
                    layer_type="attention",
                    weight_values=kh[head].T.copy(),
                    input_values=qh[head].copy(),
                    weight_static=False,
                )
            )
        scores = qh @ kh.transpose(0, 2, 1) / math.sqrt(self.head_dim)
        attn = self._softmax(scores)
        for head in range(self.num_heads):
            gemms.append(
                GEMMWorkload(
                    name=f"{self.name}.av_head{head}",
                    m=tokens,
                    n=self.head_dim,
                    k=tokens,
                    input_bits=self.input_bits,
                    weight_bits=self.input_bits,
                    output_bits=self.output_bits,
                    layer_type="attention",
                    weight_values=vh[head].copy(),
                    input_values=attn[head].copy(),
                    weight_static=False,
                )
            )
        context = (attn @ vh).transpose(1, 0, 2).reshape(tokens, self.embed_dim)
        out_gemms, out = self.w_o.extract_gemms(context)
        gemms.extend(out_gemms)
        return gemms, out


class ReLU(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(np.asarray(x, dtype=float), 0.0)


class GELU(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return 0.5 * x * (1.0 + np.tanh(math.sqrt(2.0 / math.pi) * (x + 0.044715 * x**3)))


class Flatten(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=float).ravel()


class MaxPool2d(Module):
    """Max pooling on a ``(C, H, W)`` sample with square window and stride = window."""

    def __init__(self, kernel_size: int, name: str = "") -> None:
        super().__init__(name=name)
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        channels, height, width = x.shape
        k = self.kernel_size
        out_h, out_w = height // k, width // k
        trimmed = x[:, : out_h * k, : out_w * k]
        reshaped = trimmed.reshape(channels, out_h, k, out_w, k)
        return reshaped.max(axis=(2, 4))


class AvgPool2d(MaxPool2d):
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        channels, height, width = x.shape
        k = self.kernel_size
        out_h, out_w = height // k, width // k
        trimmed = x[:, : out_h * k, : out_w * k]
        reshaped = trimmed.reshape(channels, out_h, k, out_w, k)
        return reshaped.mean(axis=(2, 4))


class BatchNorm2d(Module):
    """Inference-mode batch normalization: a per-channel affine transform."""

    def __init__(self, num_channels: int, name: str = "") -> None:
        super().__init__(name=name)
        self.num_channels = num_channels
        self.scale = np.ones(num_channels)
        self.shift = np.zeros(num_channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.shape[0] != self.num_channels:
            raise ValueError(f"{self.name}: expected {self.num_channels} channels")
        return x * self.scale[:, None, None] + self.shift[:, None, None]


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5, name: str = "") -> None:
        super().__init__(name=name)
        self.normalized_dim = normalized_dim
        self.eps = eps
        self.scale = np.ones(normalized_dim)
        self.shift = np.zeros(normalized_dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mean) / np.sqrt(var + self.eps) * self.scale + self.shift
