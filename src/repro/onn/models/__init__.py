"""Evaluation models: VGG-8 (CIFAR-10), a BERT-Base-class vision transformer, MLPs."""

from repro.onn.models.vgg import build_vgg8_cifar10
from repro.onn.models.transformer import TransformerEncoder, build_bert_base_image
from repro.onn.models.mlp import build_mlp

__all__ = [
    "build_vgg8_cifar10",
    "TransformerEncoder",
    "build_bert_base_image",
    "build_mlp",
]
