"""VGG-8 for CIFAR-10: the heterogeneous-mapping workload of Fig. 11.

VGG-8 is the 8-weight-layer VGG variant commonly used in the ONN literature:
six 3x3 convolutions (two per stage, three stages with 2x2 max pooling between
stages) followed by two fully connected layers.  ``width_multiplier`` scales all
channel counts so tests can instantiate a fast miniature version with the same
topology.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.onn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)


def build_vgg8_cifar10(
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    input_channels: int = 3,
    input_size: int = 32,
    hidden_features: int = 512,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build VGG-8 sized for ``input_size`` x ``input_size`` images (CIFAR-10 default)."""
    if width_multiplier <= 0:
        raise ValueError("width_multiplier must be positive")
    if input_size % 8 != 0:
        raise ValueError("input_size must be divisible by 8 (three 2x2 poolings)")
    rng = rng or np.random.default_rng(42)

    def ch(base: int) -> int:
        return max(int(round(base * width_multiplier)), 1)

    c1, c2, c3 = ch(64), ch(128), ch(256)
    hidden = max(int(round(hidden_features * width_multiplier)), num_classes)
    final_spatial = input_size // 8

    layers = [
        Conv2d(input_channels, c1, 3, padding=1, name="conv1", rng=rng),
        BatchNorm2d(c1, name="bn1"),
        ReLU(name="relu1"),
        Conv2d(c1, c1, 3, padding=1, name="conv2", rng=rng),
        BatchNorm2d(c1, name="bn2"),
        ReLU(name="relu2"),
        MaxPool2d(2, name="pool1"),
        Conv2d(c1, c2, 3, padding=1, name="conv3", rng=rng),
        BatchNorm2d(c2, name="bn3"),
        ReLU(name="relu3"),
        Conv2d(c2, c2, 3, padding=1, name="conv4", rng=rng),
        BatchNorm2d(c2, name="bn4"),
        ReLU(name="relu4"),
        MaxPool2d(2, name="pool2"),
        Conv2d(c2, c3, 3, padding=1, name="conv5", rng=rng),
        BatchNorm2d(c3, name="bn5"),
        ReLU(name="relu5"),
        Conv2d(c3, c3, 3, padding=1, name="conv6", rng=rng),
        BatchNorm2d(c3, name="bn6"),
        ReLU(name="relu6"),
        MaxPool2d(2, name="pool3"),
        Flatten(name="flatten"),
        Linear(c3 * final_spatial * final_spatial, hidden, name="fc1", rng=rng),
        ReLU(name="relu_fc1"),
        Linear(hidden, num_classes, name="fc2", rng=rng),
    ]
    return Sequential(*layers, name="vgg8")
