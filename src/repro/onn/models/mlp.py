"""Simple multi-layer perceptrons for quickstarts and tests."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.onn.layers import Linear, ReLU, Sequential


def build_mlp(
    layer_sizes: Sequence[int] = (784, 256, 128, 10),
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build a ReLU MLP with the given layer widths (at least input and output)."""
    if len(layer_sizes) < 2:
        raise ValueError("need at least an input and an output size")
    if any(size < 1 for size in layer_sizes):
        raise ValueError("all layer sizes must be positive")
    rng = rng or np.random.default_rng(7)
    layers = []
    for idx, (fan_in, fan_out) in enumerate(zip(layer_sizes, layer_sizes[1:])):
        layers.append(Linear(fan_in, fan_out, name=f"fc{idx + 1}", rng=rng))
        if idx < len(layer_sizes) - 2:
            layers.append(ReLU(name=f"relu{idx + 1}"))
    return Sequential(*layers, name="mlp")
