"""BERT-Base-class transformer encoder over image patches.

The paper validates against Lightening-Transformer by simulating "BERT-Base with a
single 224x224 ImageNet image", i.e. a vision-transformer-style pipeline: the image
is split into 16x16 patches, linearly embedded to the 768-dimensional hidden size,
and processed by 12 encoder blocks of 12-head self-attention plus a 3072-wide MLP --
the BERT-Base parameterization.  ``num_layers`` / ``embed_dim`` / image size are
configurable so tests can build small instances with identical structure.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.dataflow.gemm import GEMMWorkload
from repro.onn.layers import (
    GELU,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
    Sequential,
)


class TransformerEncoderBlock(Module):
    """Pre-norm transformer encoder block: attention + MLP with residual connections."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        mlp_dim: int,
        name: str = "block",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name=name)
        rng = rng or np.random.default_rng(0)
        self.norm1 = LayerNorm(embed_dim, name=f"{name}.norm1")
        self.attention = MultiHeadAttention(embed_dim, num_heads, name=f"{name}.attn", rng=rng)
        self.norm2 = LayerNorm(embed_dim, name=f"{name}.norm2")
        self.mlp = Sequential(
            Linear(embed_dim, mlp_dim, name=f"{name}.mlp.fc1", rng=rng),
            GELU(name=f"{name}.mlp.gelu"),
            Linear(mlp_dim, embed_dim, name=f"{name}.mlp.fc2", rng=rng),
            name=f"{name}.mlp",
        )

    def children(self):
        return [self.norm1, self.attention, self.norm2, self.mlp]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.attention(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x

    def extract_gemms(self, x: np.ndarray) -> Tuple[List[GEMMWorkload], np.ndarray]:
        gemms: List[GEMMWorkload] = []
        attn_gemms, attn_out = self.attention.extract_gemms(self.norm1(x))
        gemms.extend(attn_gemms)
        x = x + attn_out
        mlp_gemms, mlp_out = self.mlp.extract_gemms(self.norm2(x))
        gemms.extend(mlp_gemms)
        return gemms, x + mlp_out


class TransformerEncoder(Module):
    """Patch embedding + positional embedding + a stack of encoder blocks + head."""

    def __init__(
        self,
        image_size: int = 224,
        patch_size: int = 16,
        in_channels: int = 3,
        embed_dim: int = 768,
        num_heads: int = 12,
        mlp_dim: int = 3072,
        num_layers: int = 12,
        num_classes: int = 1000,
        name: str = "bert_base_image",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name=name)
        if image_size % patch_size != 0:
            raise ValueError("image_size must be divisible by patch_size")
        rng = rng or np.random.default_rng(13)
        self.image_size = image_size
        self.patch_size = patch_size
        self.in_channels = in_channels
        self.embed_dim = embed_dim
        self.num_patches = (image_size // patch_size) ** 2
        self.num_tokens = self.num_patches + 1  # class token
        self.patch_embed = Linear(
            in_channels * patch_size * patch_size, embed_dim, name=f"{name}.patch_embed", rng=rng
        )
        self.cls_token = rng.normal(0.0, 0.02, size=(1, embed_dim))
        self.pos_embed = rng.normal(0.0, 0.02, size=(self.num_tokens, embed_dim))
        self.blocks = [
            TransformerEncoderBlock(
                embed_dim, num_heads, mlp_dim, name=f"{name}.block{i}", rng=rng
            )
            for i in range(num_layers)
        ]
        self.final_norm = LayerNorm(embed_dim, name=f"{name}.final_norm")
        self.head = Linear(embed_dim, num_classes, name=f"{name}.head", rng=rng)

    def children(self):
        return [self.patch_embed, *self.blocks, self.final_norm, self.head]

    # -- patching -------------------------------------------------------------------
    def patchify(self, image: np.ndarray) -> np.ndarray:
        """Split a ``(C, H, W)`` image into flattened non-overlapping patches."""
        image = np.asarray(image, dtype=float)
        if image.shape != (self.in_channels, self.image_size, self.image_size):
            raise ValueError(
                f"expected image of shape ({self.in_channels}, {self.image_size}, "
                f"{self.image_size}), got {image.shape}"
            )
        p = self.patch_size
        grid = self.image_size // p
        patches = image.reshape(self.in_channels, grid, p, grid, p)
        patches = patches.transpose(1, 3, 0, 2, 4).reshape(grid * grid, -1)
        return patches

    def _embed(self, image: np.ndarray) -> np.ndarray:
        patches = self.patchify(image)
        tokens = self.patch_embed(patches)
        tokens = np.concatenate([self.cls_token, tokens], axis=0)
        return tokens + self.pos_embed

    def forward(self, image: np.ndarray) -> np.ndarray:
        tokens = self._embed(image)
        for block in self.blocks:
            tokens = block(tokens)
        tokens = self.final_norm(tokens)
        return self.head(tokens[0])

    def extract_gemms(self, image: np.ndarray) -> Tuple[List[GEMMWorkload], np.ndarray]:
        gemms: List[GEMMWorkload] = []
        patches = self.patchify(image)
        embed_gemms, tokens = self.patch_embed.extract_gemms(patches)
        gemms.extend(embed_gemms)
        tokens = np.concatenate([self.cls_token, tokens], axis=0) + self.pos_embed
        for block in self.blocks:
            block_gemms, tokens = block.extract_gemms(tokens)
            gemms.extend(block_gemms)
        tokens = self.final_norm(tokens)
        head_gemms, logits = self.head.extract_gemms(tokens[0][None, :])
        gemms.extend(head_gemms)
        return gemms, logits[0]

    def num_parameters(self) -> int:
        total = self.patch_embed.num_parameters() + self.head.num_parameters()
        total += self.cls_token.size + self.pos_embed.size
        for block in self.blocks:
            total += block.num_parameters()
        return total


def build_bert_base_image(
    image_size: int = 224,
    num_layers: int = 12,
    num_classes: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> TransformerEncoder:
    """BERT-Base parameterization (768 hidden, 12 heads, 3072 MLP) over image patches."""
    return TransformerEncoder(
        image_size=image_size,
        patch_size=16,
        in_channels=3,
        embed_dim=768,
        num_heads=12,
        mlp_dim=3072,
        num_layers=num_layers,
        num_classes=num_classes,
        rng=rng,
    )
